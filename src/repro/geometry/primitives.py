"""Scalar and vector primitives for 2-D computational geometry.

Points are plain ``(x, y)`` tuples of floats throughout the geometry
package; the spatial data types of :mod:`repro.spatial` wrap them in
value classes.  Keeping the kernel tuple-based keeps it allocation-light
and trivially hashable.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.config import EPSILON, fsign, fzero

#: A 2-D point or vector as a plain tuple.
Vec = Tuple[float, float]


def sub(p: Vec, q: Vec) -> Vec:
    """Return the vector ``p - q``."""
    return (p[0] - q[0], p[1] - q[1])


def add(p: Vec, q: Vec) -> Vec:
    """Return the vector ``p + q``."""
    return (p[0] + q[0], p[1] + q[1])


def scale(p: Vec, k: float) -> Vec:
    """Return the vector ``k * p``."""
    return (p[0] * k, p[1] * k)


def cross(u: Vec, v: Vec) -> float:
    """Return the 2-D cross product (z-component) of ``u`` and ``v``."""
    return u[0] * v[1] - u[1] * v[0]


def dot(u: Vec, v: Vec) -> float:
    """Return the dot product of ``u`` and ``v``."""
    return u[0] * v[0] + u[1] * v[1]


def norm(u: Vec) -> float:
    """Return the Euclidean length of ``u``."""
    return math.hypot(u[0], u[1])


def dist(p: Vec, q: Vec) -> float:
    """Return the Euclidean distance between points ``p`` and ``q``."""
    return math.hypot(p[0] - q[0], p[1] - q[1])


def dist_sq(p: Vec, q: Vec) -> float:
    """Return the squared Euclidean distance between ``p`` and ``q``."""
    dx = p[0] - q[0]
    dy = p[1] - q[1]
    return dx * dx + dy * dy


def orientation(p: Vec, q: Vec, r: Vec, eps: float = EPSILON) -> int:
    """Return the orientation of the ordered triple ``(p, q, r)``.

    +1 for a counter-clockwise turn, -1 for clockwise, 0 for collinear
    (within tolerance).  The tolerance is scaled by the magnitude of the
    involved coordinates so that large coordinates do not spuriously
    report proper turns for nearly collinear points.
    """
    val = (q[0] - p[0]) * (r[1] - p[1]) - (q[1] - p[1]) * (r[0] - p[0])
    span = max(
        abs(q[0] - p[0]), abs(q[1] - p[1]), abs(r[0] - p[0]), abs(r[1] - p[1]), 1.0
    )
    return fsign(val, eps * span)


def point_eq(p: Vec, q: Vec, eps: float = EPSILON) -> bool:
    """Return True if ``p`` and ``q`` coincide within tolerance."""
    return abs(p[0] - q[0]) <= eps and abs(p[1] - q[1]) <= eps


def point_cmp(p: Vec, q: Vec) -> int:
    """Lexicographic comparison of points as defined in Section 3.2.2.

    ``p < q`` iff ``p.x < q.x`` or (``p.x == q.x`` and ``p.y < q.y``);
    returns -1, 0, or +1.  Uses exact float comparison: canonical
    orderings must be total and deterministic, so no tolerance applies.
    """
    if p[0] < q[0]:
        return -1
    if p[0] > q[0]:
        return 1
    if p[1] < q[1]:
        return -1
    if p[1] > q[1]:
        return 1
    return 0


def point_lt(p: Vec, q: Vec) -> bool:
    """Return True iff ``p`` precedes ``q`` in lexicographic order."""
    return point_cmp(p, q) < 0


def midpoint(p: Vec, q: Vec) -> Vec:
    """Return the midpoint of the segment from ``p`` to ``q``."""
    return ((p[0] + q[0]) / 2.0, (p[1] + q[1]) / 2.0)


def lerp(p: Vec, q: Vec, t: float) -> Vec:
    """Linearly interpolate from ``p`` (t=0) to ``q`` (t=1)."""
    return (p[0] + (q[0] - p[0]) * t, p[1] + (q[1] - p[1]) * t)


def unit_normal(p: Vec, q: Vec) -> Vec:
    """Return the left unit normal of the direction from ``p`` to ``q``.

    Raises ``ZeroDivisionError`` for coincident input points; callers must
    only pass proper segments.
    """
    d = sub(q, p)
    n = norm(d)
    if fzero(n):
        raise ZeroDivisionError("unit_normal of a degenerate segment")
    return (-d[1] / n, d[0] / n)


def polygon_area(vertices: list[Vec]) -> float:
    """Return the signed area of the polygon given by ``vertices``.

    Positive for counter-clockwise vertex order (shoelace formula).
    """
    area = 0.0
    n = len(vertices)
    for i in range(n):
        x1, y1 = vertices[i]
        x2, y2 = vertices[(i + 1) % n]
        area += x1 * y2 - x2 * y1
    return area / 2.0


def convex_hull(points: list[Vec]) -> list[Vec]:
    """Return the convex hull of ``points`` in counter-clockwise order.

    Andrew's monotone chain; collinear points on the hull boundary are
    dropped.  Returns the input unchanged (deduplicated, sorted) when
    fewer than three distinct points are supplied.
    """
    pts = sorted(set(points))
    if len(pts) < 3:
        return pts
    lower: list[Vec] = []
    for p in pts:
        while len(lower) >= 2 and orientation(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: list[Vec] = []
    for p in reversed(pts):
        while len(upper) >= 2 and orientation(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    return lower[:-1] + upper[:-1]
