"""Normalization of collinear segment collections.

Two operations from the paper live here:

* :func:`merge_segs` — the ``merge-segs`` function used by the degeneracy
  cleanup of ``uline`` (Section 3.2.6): merge collinear overlapping or
  adjacent segments into maximal ones, so the result satisfies the
  ``line`` uniqueness constraint.

* :func:`parity_fragments` — the fragment/parity rule used by the
  endpoint cleanup of ``uregion``: partition each carrier line into
  fragments covered by the same set of segments and keep exactly the
  fragments covered an odd number of times.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.config import EPSILON
from repro.geometry.primitives import Vec, lerp, point_cmp
from repro.geometry.segment import Seg, collinear, make_seg, project_param


def _group_collinear(segs: list[Seg], eps: float) -> list[list[Seg]]:
    """Partition segments into groups lying on the same infinite line.

    Each group is represented by its longest member (the carrier):
    testing new segments against the carrier rather than an arbitrary
    member prevents near-degenerate segments — collinear with everything
    within tolerance — from bridging unrelated carriers.

    Quadratic in the number of segments, which is fine for the unit-local
    cleanups this module serves (units carry few segments compared to
    whole mappings).
    """
    from repro.geometry.primitives import dist_sq

    groups: list[list[Seg]] = []
    carriers: list[Seg] = []
    for s in segs:
        for gi, group in enumerate(groups):
            if collinear(carriers[gi], s, eps):
                group.append(s)
                # Exact longest-member selection: near-ties pick either
                # carrier and both are equally good parameterizations.
                if dist_sq(s[0], s[1]) > dist_sq(  # modlint: disable=MOD001 see comment above
                    carriers[gi][0], carriers[gi][1]
                ):
                    carriers[gi] = s
                break
        else:
            groups.append([s])
            carriers.append(s)
    return groups


def _carrier_point(carrier: Seg, param: float) -> Vec:
    """Return the point at ``param`` along the carrier segment's line."""
    return lerp(carrier[0], carrier[1], param)


def _carrier_of(group: list[Seg]) -> Seg:
    """The longest segment of a collinear group (numerically stable carrier)."""
    from repro.geometry.primitives import dist_sq

    return max(group, key=lambda s: dist_sq(s[0], s[1]))


def _carrier_underflows(carrier: Seg) -> bool:
    """True when the squared carrier length underflows to zero.

    Such segments (length < ~1e-154) are far below any modelling
    resolution; projection onto them is meaningless, so callers pass
    the group through unchanged instead of merging.
    """
    from repro.geometry.primitives import dist_sq

    # Exact-zero underflow guard, not a tolerance test: only a true
    # floating-point underflow makes projection onto the carrier undefined.
    return dist_sq(carrier[0], carrier[1]) == 0.0  # modlint: disable=MOD001 see comment above


def _events_on_carrier(
    group: list[Seg], param_tol: float = 1e-12
) -> tuple[list[tuple[float, int]], list[Seg]]:
    """Project a collinear group onto its carrier line as 1-D intervals.

    Returns sorted events ``(param, delta)`` with delta +1 at a segment
    start and -1 at a segment end, parameterized along the group's
    longest segment (a short carrier would lose precision), plus the
    members whose projection *degenerates* to a single parameter.  Such
    a member is a sub-tolerance segment lying (near-)orthogonal to the
    carrier — the eps-tolerant collinearity test groups it with
    anything — and merging it would silently delete it from the union;
    callers must emit those members unchanged.
    """
    carrier = _carrier_of(group)
    events: list[tuple[float, int]] = []
    passthrough: list[Seg] = []
    for s in group:
        t0 = project_param(s[0], carrier)
        t1 = project_param(s[1], carrier)
        if t0 > t1:  # modlint: disable=MOD001 ordering swap, not a tolerance decision
            t0, t1 = t1, t0
        if t1 - t0 <= param_tol:
            passthrough.append(s)
            continue
        events.append((t0, +1))
        events.append((t1, -1))
    events.sort(key=lambda e: (e[0], -e[1]))
    return events, passthrough


def merge_segs(segs: Iterable[Seg], eps: float = EPSILON) -> list[Seg]:
    """Merge collinear overlapping/adjacent segments into maximal segments.

    The result covers exactly the union of the input point sets and
    satisfies the ``line`` constraint that no two collinear segments
    overlap.  Non-collinear segments pass through unchanged.
    """
    seg_list = [make_seg(s[0], s[1]) for s in segs]
    result: list[Seg] = []
    for group in _group_collinear(seg_list, eps):
        if len(group) == 1:
            result.append(group[0])
            continue
        carrier = _carrier_of(group)
        if _carrier_underflows(carrier):
            result.extend(set(group))
            continue
        # Carrier parameters are real-space distance divided by carrier
        # length, so a fixed parameter tolerance would grow with the
        # carrier (on a length-2000 carrier a 1e-9 parameter gap is a
        # 2e-6 real gap) and silently bridge genuine gaps.  Scale it so
        # the coalescing tolerance is ``eps`` in real space.
        param_tol = eps / math.dist(carrier[0], carrier[1])
        events, passthrough = _events_on_carrier(group)
        result.extend(set(passthrough))
        depth = 0
        run_start: float | None = None
        runs: list[tuple[float, float]] = []
        for param, delta in events:
            if depth == 0 and delta == +1:
                run_start = param
            depth += delta
            if depth == 0 and delta == -1:
                assert run_start is not None
                runs.append((run_start, param))
        # Coalesce runs that touch end-to-start (adjacent segments).
        coalesced: list[tuple[float, float]] = []
        for lo, hi in runs:
            if coalesced and lo - coalesced[-1][1] <= param_tol:
                coalesced[-1] = (coalesced[-1][0], hi)
            else:
                coalesced.append((lo, hi))
        for lo, hi in coalesced:
            p = _carrier_point(carrier, lo)
            q = _carrier_point(carrier, hi)
            if point_cmp(p, q) != 0:
                result.append(make_seg(p, q))
    return sorted(result)


def parity_fragments(segs: Iterable[Seg], eps: float = EPSILON) -> list[Seg]:
    """Apply the odd-parity fragment rule of the ``uregion`` cleanup.

    Partition every carrier line into fragments belonging to the same set
    of segments, count for each fragment the number of covering segments,
    drop even fragments and keep odd ones (Section 3.2.6).  Adjacent odd
    fragments are merged into maximal segments.
    """
    seg_list = [make_seg(s[0], s[1]) for s in segs]
    result: list[Seg] = []
    for group in _group_collinear(seg_list, eps):
        if len(group) == 1:
            result.append(group[0])
            continue
        carrier = _carrier_of(group)
        if _carrier_underflows(carrier):
            result.extend(set(group))
            continue
        # Same real-space scaling as in merge_segs: the parity tolerance
        # must not depend on how long the carrier happens to be.
        param_tol = eps / math.dist(carrier[0], carrier[1])
        events, passthrough = _events_on_carrier(group)
        result.extend(set(passthrough))
        depth = 0
        prev_param: float | None = None
        odd_runs: list[tuple[float, float]] = []
        for param, delta in events:
            if (
                prev_param is not None
                and param - prev_param > param_tol
                and depth % 2 == 1
            ):
                odd_runs.append((prev_param, param))
            depth += delta
            prev_param = param
        # Merge adjacent odd fragments.
        coalesced: list[tuple[float, float]] = []
        for lo, hi in odd_runs:
            if coalesced and lo - coalesced[-1][1] <= param_tol:
                coalesced[-1] = (coalesced[-1][0], hi)
            else:
                coalesced.append((lo, hi))
        for lo, hi in coalesced:
            p = _carrier_point(carrier, lo)
            q = _carrier_point(carrier, hi)
            if point_cmp(p, q) != 0:
                result.append(make_seg(p, q))
    return sorted(result)
