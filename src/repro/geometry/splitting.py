"""Splitting segment collections at their mutual intersections.

This is the arrangement step used by the set operations on ``line`` and
``region`` values: after splitting, every surviving sub-segment either
lies entirely inside, entirely outside, or entirely on the boundary of
any operand, so a single midpoint classification per sub-segment
suffices.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.config import EPSILON
from repro.geometry.primitives import Vec, point_cmp, point_eq
from repro.geometry.segment import (
    Seg,
    collinear,
    make_seg,
    point_on_seg,
    project_param,
    seg_intersection_point,
    seg_overlap,
)


def _split_points_for(s: Seg, others: Sequence[Seg], eps: float) -> list[Vec]:
    """Collect all points at which ``s`` must be cut."""
    cuts: list[Vec] = []
    for t in others:
        if t is s:
            continue
        if collinear(s, t, eps):
            # Overlapping or touching collinear segment: cut at t's
            # endpoints that fall strictly inside s.
            for p in t:
                if point_on_seg(p, s, eps):
                    cuts.append(p)
            continue
        ip = seg_intersection_point(s, t, eps)
        if ip is not None:
            cuts.append(ip)
    return cuts


def split_segment(s: Seg, cuts: Iterable[Vec], eps: float = EPSILON) -> list[Seg]:
    """Split segment ``s`` at every cut point lying in its interior."""
    params = [0.0, 1.0]
    for p in cuts:
        if not point_on_seg(p, s, eps):
            continue
        t = project_param(p, s)
        if eps < t < 1.0 - eps:
            params.append(t)
    params = sorted(set(params))
    pieces: list[Seg] = []
    prev = s[0]
    for t in params[1:]:
        nxt = (
            s[0][0] + t * (s[1][0] - s[0][0]),
            s[0][1] + t * (s[1][1] - s[0][1]),
        )
        # Exact sentinel membership: params may contain the literal 1.0
        # appended by the caller, and only that exact value means "end".
        if t == 1.0:  # modlint: disable=MOD001 see comment above
            nxt = s[1]
        if point_cmp(prev, nxt) != 0 and not point_eq(prev, nxt, eps):
            pieces.append(make_seg(prev, nxt))
        prev = nxt
    return pieces


def split_at_intersections(
    a: Sequence[Seg], b: Sequence[Seg], eps: float = EPSILON
) -> tuple[list[Seg], list[Seg]]:
    """Split the segments of ``a`` and of ``b`` at all mutual intersections.

    Returns the two refined collections.  Self-intersections within each
    collection are also resolved, so the output pieces of either side
    only share endpoints among themselves.

    The implementation is the straightforward quadratic pairwise scan;
    the collections this library feeds here (single region boundaries,
    per-unit segment sets) are small enough that the robustness of the
    simple approach beats the constant-factor gains of a full
    Bentley–Ottmann sweep.
    """
    all_segs = list(a) + list(b)

    def refine(side: Sequence[Seg]) -> list[Seg]:
        out: list[Seg] = []
        for s in side:
            cuts = _split_points_for(s, all_segs, eps)
            out.extend(split_segment(s, cuts, eps))
        return out

    return refine(a), refine(b)


def segment_midpoint(s: Seg) -> Vec:
    """Return the midpoint of ``s`` (safe sampling point after splitting)."""
    return ((s[0][0] + s[1][0]) / 2.0, (s[0][1] + s[1][1]) / 2.0)
