"""Geometric kernel: points, segments, predicates, and sweep algorithms.

Everything in the library that touches 2-D geometry goes through this
package, so the floating point tolerance policy of :mod:`repro.config`
is applied uniformly.
"""

from __future__ import annotations

from repro.geometry.primitives import (
    Vec,
    orientation,
    cross,
    dot,
    point_cmp,
    point_eq,
    dist,
    dist_sq,
)
from repro.geometry.segment import (
    Seg,
    make_seg,
    collinear,
    p_intersect,
    touch,
    meet,
    seg_overlap,
    segs_disjoint,
    point_on_seg,
    seg_intersection_point,
    HalfSegment,
    halfsegments_of,
)
from repro.geometry.mergesegs import merge_segs, parity_fragments
from repro.geometry.plumbline import point_in_segset, point_on_boundary
from repro.geometry.splitting import split_at_intersections

__all__ = [
    "Vec",
    "orientation",
    "cross",
    "dot",
    "point_cmp",
    "point_eq",
    "dist",
    "dist_sq",
    "Seg",
    "make_seg",
    "collinear",
    "p_intersect",
    "touch",
    "meet",
    "seg_overlap",
    "segs_disjoint",
    "point_on_seg",
    "seg_intersection_point",
    "HalfSegment",
    "halfsegments_of",
    "merge_segs",
    "parity_fragments",
    "point_in_segset",
    "point_on_boundary",
    "split_at_intersections",
]
