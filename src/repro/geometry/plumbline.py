"""Point-in-polygon testing via the plumbline (ray casting) algorithm.

Section 5.2 of the paper invokes "a well-known technique in computational
geometry, the 'plumbline' algorithm which counts how many segments in 2D
are above the point".  We cast a vertical ray upward from the query point
and count proper crossings; an odd count means the point is enclosed.

The functions here operate on raw segment collections; the spatial
``region`` type wraps them with face/cycle structure.
"""

from __future__ import annotations

from typing import Iterable

from repro import obs
from repro.config import EPSILON
from repro.geometry.primitives import Vec
from repro.geometry.segment import Seg, point_on_seg


def point_on_boundary(p: Vec, segs: Iterable[Seg], eps: float = EPSILON) -> bool:
    """Return True if ``p`` lies on any of the given segments."""
    return any(point_on_seg(p, s, eps) for s in segs)


def crossings_above(p: Vec, segs: Iterable[Seg], eps: float = EPSILON) -> int:
    """Count segments crossed by the vertical ray going up from ``p``.

    A segment is counted when the ray pierces its interior or its left
    end point: the half-open rule ``x0 <= px < x1`` makes vertices count
    exactly once and vertical segments never, giving a consistent parity
    for points not on the boundary.

    Every comparison is eps-tolerant, with one *shifted* half-open
    window per segment: a segment is treated as vertical when its
    x-extent is within ``eps`` (the exact ``x0 == x1`` test would let a
    near-vertical segment through to the interpolation below, where the
    tiny denominator turns rounding noise into an arbitrary height), and
    the ray hits the segment when ``x0 - eps <= px < x1 - eps``.  The
    shifted windows of a segment chain tile the x-axis exactly like the
    exact rule's windows do, so points within ``eps`` of a shared vertex
    are claimed by exactly one of the two incident segments and the
    parity stays stable under vertex perturbation.
    """
    x, y = p
    count = 0
    tested = 0
    for (x0, y0), (x1, y1) in segs:
        tested += 1
        if x0 > x1:  # modlint: disable=MOD001 ordering swap tolerating unnormalized input
            x0, y0, x1, y1 = x1, y1, x0, y0
        if x1 - x0 <= eps:
            continue  # (near-)vertical segment: never crossed
        if x0 - eps <= x < x1 - eps:
            # y-coordinate of the segment at the ray's x position; the
            # eps-widened window may put x a hair outside [x0, x1], so
            # clamp the parameter to the segment.
            t = min(1.0, max(0.0, (x - x0) / (x1 - x0)))
            ys = y0 + t * (y1 - y0)
            if ys > y + eps:
                count += 1
    if obs.enabled:
        obs.counters.add("plumbline.calls")
        obs.counters.add("plumbline.segments", tested)
        obs.counters.add("plumbline.crossings", count)
    return count


def point_in_segset(
    p: Vec,
    segs: Iterable[Seg],
    eps: float = EPSILON,
    boundary_counts: bool = True,
) -> bool:
    """Return True if ``p`` is enclosed by the closed polygon(s) in ``segs``.

    The segments must form the boundary of a (multi-)polygon, e.g. the
    segments of a region value: each face boundary is a closed cycle.
    Points on the boundary are inside iff ``boundary_counts`` (region
    values of the abstract model include their boundary).
    """
    seg_list = list(segs)
    if obs.enabled:
        obs.counters.add("plumbline.point_tests")
    if point_on_boundary(p, seg_list, eps):
        return boundary_counts
    return crossings_above(p, seg_list, eps) % 2 == 1
