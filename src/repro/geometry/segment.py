"""Line segments and the predicates of Section 3.2.2.

A segment ``Seg`` is an ordered pair ``(u, v)`` of points with ``u < v``
in lexicographic order, exactly as the paper's ``Seg`` set demands.  The
predicates *p-intersect*, *touch*, *meet*, *collinear*, and *overlap*
implement the vocabulary used in the definitions of ``line``, ``Cycle``,
``Face``, and ``region``.

The :class:`HalfSegment` type implements the plane-sweep-friendly
representation of Section 4.1: every segment is stored twice, once per
end point, with the *dominating* point marked, and a total order that
extends lexicographic point order (following Gueting, de Ridder &
Schneider [GdRS95]).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.config import EPSILON, feq, fzero
from repro.errors import InvalidValue
from repro.geometry.primitives import (
    Vec,
    cross,
    dist,
    dot,
    orientation,
    point_cmp,
    point_eq,
    sub,
)

#: A segment as an ordered pair of endpoints, left < right lexicographically.
Seg = Tuple[Vec, Vec]


def make_seg(p: Vec, q: Vec) -> Seg:
    """Build a canonical segment from two distinct points.

    The smaller point (lexicographically) becomes the left end point.
    Raises :class:`InvalidValue` for degenerate (zero-length) input.
    """
    c = point_cmp(p, q)
    if c == 0:
        raise InvalidValue(f"degenerate segment at {p}")
    return (p, q) if c < 0 else (q, p)


def seg_length(s: Seg) -> float:
    """Return the Euclidean length of segment ``s``."""
    return dist(s[0], s[1])


def collinear(s: Seg, t: Seg, eps: float = EPSILON) -> bool:
    """Return True if ``s`` and ``t`` lie on the same infinite line.

    The test is symmetric — each segment's endpoints must lie on the
    other's carrier line.  A one-sided test would classify any segment
    as collinear with a near-degenerate one.
    """
    return (
        orientation(s[0], s[1], t[0], eps) == 0
        and orientation(s[0], s[1], t[1], eps) == 0
        and orientation(t[0], t[1], s[0], eps) == 0
        and orientation(t[0], t[1], s[1], eps) == 0
    )


def point_on_seg(p: Vec, s: Seg, eps: float = EPSILON) -> bool:
    """Return True if point ``p`` lies on segment ``s`` (endpoints included)."""
    if orientation(s[0], s[1], p, eps) != 0:
        return False
    minx, maxx = min(s[0][0], s[1][0]), max(s[0][0], s[1][0])
    miny, maxy = min(s[0][1], s[1][1]), max(s[0][1], s[1][1])
    return (
        minx - eps <= p[0] <= maxx + eps and miny - eps <= p[1] <= maxy + eps
    )


def point_in_seg_interior(p: Vec, s: Seg, eps: float = EPSILON) -> bool:
    """Return True if ``p`` lies on ``s`` but is not one of its endpoints."""
    return (
        point_on_seg(p, s, eps)
        and not point_eq(p, s[0], eps)
        and not point_eq(p, s[1], eps)
    )


def p_intersect(s: Seg, t: Seg, eps: float = EPSILON) -> bool:
    """Return True if ``s`` and ``t`` properly intersect.

    Proper intersection means crossing in a point interior to both
    segments (Section 3.2.2).  Collinear overlap is *not* a proper
    intersection.
    """
    if collinear(s, t, eps):
        return False
    o1 = orientation(s[0], s[1], t[0], eps)
    o2 = orientation(s[0], s[1], t[1], eps)
    o3 = orientation(t[0], t[1], s[0], eps)
    o4 = orientation(t[0], t[1], s[1], eps)
    return o1 * o2 < 0 and o3 * o4 < 0


def touch(s: Seg, t: Seg, eps: float = EPSILON) -> bool:
    """Return True if an endpoint of one segment lies in the interior of the other."""
    return (
        point_in_seg_interior(t[0], s, eps)
        or point_in_seg_interior(t[1], s, eps)
        or point_in_seg_interior(s[0], t, eps)
        or point_in_seg_interior(s[1], t, eps)
    )


def meet(s: Seg, t: Seg, eps: float = EPSILON) -> bool:
    """Return True if ``s`` and ``t`` share a common endpoint."""
    return (
        point_eq(s[0], t[0], eps)
        or point_eq(s[0], t[1], eps)
        or point_eq(s[1], t[0], eps)
        or point_eq(s[1], t[1], eps)
    )


def seg_overlap(s: Seg, t: Seg, eps: float = EPSILON) -> bool:
    """Return True if ``s`` and ``t`` are collinear with more than a point in common."""
    if not collinear(s, t, eps):
        return False
    # Project onto the dominant axis of s to obtain 1-D intervals.
    dx = abs(s[1][0] - s[0][0])
    dy = abs(s[1][1] - s[0][1])
    # Either axis works at a near-45° tie; the choice only needs to be
    # deterministic, not tolerance-aware.
    axis = 0 if dx >= dy else 1  # modlint: disable=MOD001 see comment above
    a0, a1 = sorted((s[0][axis], s[1][axis]))
    b0, b1 = sorted((t[0][axis], t[1][axis]))
    lo = max(a0, b0)
    hi = min(a1, b1)
    return hi - lo > eps


def segs_disjoint(s: Seg, t: Seg, eps: float = EPSILON) -> bool:
    """Return True if ``s`` and ``t`` share no point at all."""
    if p_intersect(s, t, eps) or touch(s, t, eps) or meet(s, t, eps):
        return False
    if seg_overlap(s, t, eps):
        return False
    return True


def seg_intersection_point(s: Seg, t: Seg, eps: float = EPSILON) -> Optional[Vec]:
    """Return the single intersection point of ``s`` and ``t``, or None.

    Returns None when the segments do not intersect *and* when they
    overlap in more than one point (collinear overlap has no single
    intersection point).  Endpoint contacts are reported.
    """
    if collinear(s, t, eps):
        return None
    d1 = sub(s[1], s[0])
    d2 = sub(t[1], t[0])
    denom = cross(d1, d2)
    if fzero(denom, eps):
        return None
    w = sub(t[0], s[0])
    u = cross(w, d2) / denom
    v = cross(w, d1) / denom
    scale1 = max(abs(d1[0]), abs(d1[1]), 1.0)
    scale2 = max(abs(d2[0]), abs(d2[1]), 1.0)
    tol1 = eps / scale1 * 10.0
    tol2 = eps / scale2 * 10.0
    if -tol1 <= u <= 1.0 + tol1 and -tol2 <= v <= 1.0 + tol2:
        return (s[0][0] + u * d1[0], s[0][1] + u * d1[1])
    return None


@dataclass(frozen=True, order=False)
class HalfSegment:
    """One half of a segment, anchored at its *dominating* end point.

    ``left_dominating`` is True for the half anchored at the (smaller)
    left end point.  The total order sorts halfsegments by dominating
    point first, then right halves before left halves at the same point,
    and finally by the counter-clockwise angle of the segment around the
    dominating point — the order required by plane-sweep algorithms
    [GdRS95].
    """

    seg: Seg
    left_dominating: bool

    @property
    def dom(self) -> Vec:
        """The dominating end point of this halfsegment."""
        return self.seg[0] if self.left_dominating else self.seg[1]

    @property
    def sec(self) -> Vec:
        """The secondary (non-dominating) end point."""
        return self.seg[1] if self.left_dominating else self.seg[0]

    def sort_key(self) -> tuple:
        """Key realizing the halfsegment total order."""
        d = self.dom
        s = self.sec
        angle = math.atan2(s[1] - d[1], s[0] - d[0])
        # Right halfsegments (left_dominating == False) come first at
        # equal dominating points so that a sweep closes segments before
        # opening new ones.
        return (d[0], d[1], self.left_dominating, angle)

    def __lt__(self, other: "HalfSegment") -> bool:
        return self.sort_key() < other.sort_key()

    def __le__(self, other: "HalfSegment") -> bool:
        return self.sort_key() <= other.sort_key()

    def __gt__(self, other: "HalfSegment") -> bool:
        return self.sort_key() > other.sort_key()

    def __ge__(self, other: "HalfSegment") -> bool:
        return self.sort_key() >= other.sort_key()


def halfsegments_of(segs: Iterable[Seg]) -> list[HalfSegment]:
    """Return the ordered halfsegment sequence for a collection of segments.

    This is the on-disk order of the ``line``/``region`` array
    representation of Section 4.1.
    """
    halves: list[HalfSegment] = []
    for s in segs:
        halves.append(HalfSegment(s, True))
        halves.append(HalfSegment(s, False))
    halves.sort()
    return halves


def project_param(p: Vec, s: Seg) -> float:
    """Return the parameter of the projection of ``p`` onto the line of ``s``.

    0 maps to the left end point and 1 to the right end point.
    """
    d = sub(s[1], s[0])
    denom = dot(d, d)
    # Exact-zero guard only: a valid Seg has distinct endpoints, so the
    # denominator can vanish only by floating point underflow.
    if denom == 0.0:  # modlint: disable=MOD001 see comment above
        return 0.0
    return dot(sub(p, s[0]), d) / denom
