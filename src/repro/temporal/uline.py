"""The ``uline`` unit type: a set of non-rotating moving segments.

Section 3.2.6 requires that, at every instant of the open unit interval,
evaluating the moving segments yields a valid ``line`` value: all
segments proper (non-degenerate) and no collinear overlapping pairs.
At the closed interval end points, degeneracies are permitted and the
``ι_s``/``ι_e`` evaluators clean them up with ``merge-segs``.

Validation is exact: degeneracy instants of each moving segment are the
solutions of two linear equations; collinearity of a pair of moving
segments is governed by two quadratics in t, whose common roots (or
identical vanishing) pinpoint every instant at which an overlap could
occur.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.errors import InvalidValue
from repro.geometry.mergesegs import merge_segs
from repro.geometry.segment import Seg, seg_overlap
from repro.spatial.bbox import Cube, Rect
from repro.spatial.line import Line
from repro.temporal.mseg import MPoint, MSeg
from repro.temporal.quadratics import Quad, common_roots, mul_linear
from repro.temporal.unit import Unit


def orientation_quad(a: MPoint, b: MPoint, c: MPoint) -> Quad:
    """The orientation test ``(b−a) × (c−a)`` as a quadratic in time.

    Zero exactly when the three moving points are collinear at time t.
    """
    # (b - a) components as linear polynomials (slope, intercept):
    ux = (b.x1 - a.x1, b.x0 - a.x0)
    uy = (b.y1 - a.y1, b.y0 - a.y0)
    vx = (c.x1 - a.x1, c.x0 - a.x0)
    vy = (c.y1 - a.y1, c.y0 - a.y0)
    p1 = mul_linear(ux, vy)
    p2 = mul_linear(uy, vx)
    return (p1[0] - p2[0], p1[1] - p2[1], p1[2] - p2[2])


class ULine(Unit[Line]):
    """A moving-line unit: interval × set of MSeg under the line constraints."""

    __slots__ = ("_msegs", "_cube")

    def __init__(self, interval, msegs: Iterable[MSeg], validate: bool = True):
        super().__init__(interval)
        mseg_list = sorted(set(msegs), key=lambda m: m.sort_key())
        if not mseg_list:
            raise InvalidValue("a uline unit needs at least one moving segment")
        object.__setattr__(self, "_msegs", tuple(mseg_list))
        object.__setattr__(self, "_cube", None)
        if validate:
            self._check_constraints()

    # -- constructors ------------------------------------------------------

    @classmethod
    def stationary(cls, interval, line: Line) -> "ULine":
        """A unit holding a line value still."""
        return cls(interval, [MSeg.stationary(s) for s in line.segments])

    @classmethod
    def between_lines(cls, t0: float, l0: Line, t1: float, l1: Line) -> "ULine":
        """Interpolate two line snapshots segment-by-segment.

        The snapshots must have equally many segments, matched in
        canonical order, with parallel counterparts (the no-rotation
        constraint); raises :class:`InvalidValue` otherwise.
        """
        if len(l0.segments) != len(l1.segments):
            raise InvalidValue(
                "between_lines needs snapshots with equal segment counts"
            )
        msegs = [
            MSeg.between_segments(t0, s0, t1, s1)
            for s0, s1 in zip(l0.segments, l1.segments)
        ]
        from repro.ranges.interval import Interval

        return cls(Interval(float(t0), float(t1)), msegs)

    # -- validation -----------------------------------------------------------

    def _check_constraints(self) -> None:
        iv = self.interval
        if iv.is_degenerate:
            value = self._iota_start(iv.s)
            if not value:
                raise InvalidValue("instant uline evaluates to the empty line")
            return
        lo, hi = iv.s, iv.e
        # (a) segments must stay proper inside the open interval.
        for m in self._msegs:
            times = m.degenerate_times()
            if times is None:
                raise InvalidValue("moving segment is degenerate at all times")
            for t in times:
                if lo < t < hi:
                    raise InvalidValue(
                        f"moving segment degenerates at t={t} inside the open interval"
                    )
        # (b) no collinear overlap inside the open interval.
        for i, a in enumerate(self._msegs):
            for b in self._msegs[i + 1 :]:
                self._check_pair_overlap(a, b, lo, hi)

    def _check_pair_overlap(self, a: MSeg, b: MSeg, lo: float, hi: float) -> None:
        """Exact check that a and b never overlap within (lo, hi)."""
        q1 = orientation_quad(a.s, a.e, b.s)
        q2 = orientation_quad(a.s, a.e, b.e)
        roots = common_roots([q1, q2], lo, hi)
        if roots is None:
            # Collinear throughout: sample interior instants for overlap.
            for frac in (0.5, 0.25, 0.75):
                t = lo + (hi - lo) * frac
                sa, sb = a.seg_at(t), b.seg_at(t)
                if sa is not None and sb is not None and seg_overlap(sa, sb):
                    raise InvalidValue(
                        f"moving segments overlap (collinear) around t={t}"
                    )
            return
        for t in roots:
            sa, sb = a.seg_at(t), b.seg_at(t)
            if sa is not None and sb is not None and seg_overlap(sa, sb):
                raise InvalidValue(f"moving segments overlap at t={t}")

    # -- accessors --------------------------------------------------------------

    @property
    def msegs(self) -> Sequence[MSeg]:
        """The ordered moving segments (lexicographic order, Section 4.2)."""
        return self._msegs

    def unit_function(self) -> Sequence[MSeg]:
        return self._msegs

    def __len__(self) -> int:
        return len(self._msegs)

    def _function_key(self) -> tuple:
        return tuple(m.sort_key() for m in self._msegs)

    # -- evaluation ----------------------------------------------------------------

    def _iota(self, t: float) -> Line:
        segs = []
        for m in self._msegs:
            s = m.seg_at(t)
            if s is None:
                raise InvalidValue(
                    f"degenerate segment at t={t} inside a uline open interval"
                )
            segs.append(s)
        return Line(segs, validate=False)

    def _cleanup(self, t: float) -> Line:
        """ι_s/ι_e: drop degenerated pairs and merge overlapping segments."""
        proper: List[Seg] = []
        for m in self._msegs:
            s = m.seg_at(t)
            if s is not None:
                proper.append(s)
        return Line(merge_segs(proper), validate=False)

    def _iota_start(self, t: float) -> Line:
        return self._cleanup(t)

    def _iota_end(self, t: float) -> Line:
        return self._cleanup(t)

    def with_interval(self, interval) -> "ULine":
        return ULine(interval, self._msegs, validate=False)

    # -- geometry ---------------------------------------------------------------------

    def bounding_rect(self) -> Rect:
        """Spatial bounding box over the unit interval.

        End point evaluations suffice: every vertex moves linearly, so
        coordinate extrema occur at the interval boundary.
        """
        pts = []
        for m in self._msegs:
            p, q = m.at(self.interval.s)
            pts.extend((p, q))
            p, q = m.at(self.interval.e)
            pts.extend((p, q))
        return Rect.around(pts)

    def bounding_cube(self) -> Cube:
        """The 3-D bounding cube of Section 4.2 (computed once, cached)."""
        if self._cube is None:
            object.__setattr__(
                self,
                "_cube",
                Cube.from_rect(self.bounding_rect(), self.interval.s, self.interval.e),
            )
        return self._cube

    def __repr__(self) -> str:
        return f"ULine({self.interval.pretty()}, {len(self._msegs)} msegs)"
