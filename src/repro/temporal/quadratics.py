"""Quadratic polynomial utilities shared by the unit types.

Every "simple function" of the discrete model reduces to polynomials of
degree at most two in time: the ``ureal`` unit function itself, the
coordinate differences of moving points, and the orientation tests
between moving segments.  This module centralizes root finding and
sign analysis for them.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.config import EPSILON, fzero

#: Coefficients (a, b, c) of  a·t² + b·t + c.
Quad = Tuple[float, float, float]


def eval_quad(q: Quad, t: float) -> float:
    """Evaluate ``a t^2 + b t + c`` at ``t``."""
    a, b, c = q
    return (a * t + b) * t + c


def add_quad(p: Quad, q: Quad) -> Quad:
    """Coefficient-wise sum."""
    return (p[0] + q[0], p[1] + q[1], p[2] + q[2])


def sub_quad(p: Quad, q: Quad) -> Quad:
    """Coefficient-wise difference."""
    return (p[0] - q[0], p[1] - q[1], p[2] - q[2])


def scale_quad(q: Quad, k: float) -> Quad:
    """Coefficient-wise scaling."""
    return (q[0] * k, q[1] * k, q[2] * k)


def mul_linear(p: Tuple[float, float], q: Tuple[float, float]) -> Quad:
    """Product of two linear polynomials ``p1 t + p0`` (given as (p1, p0))."""
    return (p[0] * q[0], p[0] * q[1] + p[1] * q[0], p[1] * q[1])


def is_zero_quad(q: Quad, eps: float = EPSILON) -> bool:
    """True iff the polynomial is identically zero (within tolerance)."""
    return fzero(q[0], eps) and fzero(q[1], eps) and fzero(q[2], eps)


def solve_quadratic(a: float, b: float, c: float, eps: float = EPSILON) -> List[float]:
    """Real roots of ``a t^2 + b t + c = 0``, ascending; [] if none.

    An identically zero polynomial returns [] — callers must test
    :func:`is_zero_quad` first when "everywhere zero" matters.
    Uses the numerically stable citardauq formulation for the smaller
    root.
    """
    scale = max(abs(a), abs(b), abs(c), 1.0)
    if fzero(a, eps * scale):
        if fzero(b, eps * scale):
            return []
        return [-c / b]
    disc = b * b - 4.0 * a * c
    # Clamp to a double root only when the discriminant is negative by an
    # amount that is tiny *relative to its own terms* — an absolute
    # threshold would manufacture wildly wrong roots for small coefficients.
    disc_scale = b * b + abs(4.0 * a * c)
    if disc < -eps * disc_scale:
        return []
    if disc < 0.0:
        disc = 0.0
    sq = math.sqrt(disc)
    if b >= 0.0:
        q = -(b + sq) / 2.0
    else:
        q = -(b - sq) / 2.0
    roots = set()
    if not fzero(q, 0.0):
        roots.add(q / a)
        roots.add(c / q)
    else:
        roots.add(0.0)
        roots.add(-b / a)
    return sorted(roots)


def roots_in_interval(
    q: Quad, lo: float, hi: float, open_ends: bool = True, eps: float = EPSILON
) -> List[float]:
    """Roots of the quadratic within ``(lo, hi)`` (or ``[lo, hi]``)."""
    out = []
    for r in solve_quadratic(q[0], q[1], q[2], eps):
        if open_ends:
            if lo + eps < r < hi - eps:
                out.append(r)
        else:
            if lo - eps <= r <= hi + eps:
                out.append(min(max(r, lo), hi))
    return out


def quad_extremum(q: Quad) -> Tuple[float, float] | None:
    """The vertex ``(t*, f(t*))`` of a proper quadratic, else None."""
    a, b, _c = q
    if fzero(a):
        return None
    t = -b / (2.0 * a)
    return (t, eval_quad(q, t))


def quad_range_on(q: Quad, lo: float, hi: float) -> Tuple[float, float]:
    """Minimum and maximum of the quadratic on the closed interval."""
    candidates = [eval_quad(q, lo), eval_quad(q, hi)]
    vertex = quad_extremum(q)
    if vertex is not None and lo <= vertex[0] <= hi:
        candidates.append(vertex[1])
    return (min(candidates), max(candidates))


def quad_nonnegative_on(q: Quad, lo: float, hi: float, eps: float = 1e-7) -> bool:
    """True iff the quadratic is >= 0 (within tolerance) on [lo, hi]."""
    mn, _ = quad_range_on(q, lo, hi)
    span = max(abs(v) for v in (q[0], q[1], q[2], 1.0))
    return mn >= -eps * span


def sign_intervals(
    q: Quad, lo: float, hi: float, eps: float = EPSILON
) -> List[Tuple[float, float, int]]:
    """Partition ``[lo, hi]`` into maximal sub-intervals of constant sign.

    Returns triples ``(a, b, sign)`` with sign in {-1, 0, +1} evaluated
    at each sub-interval's midpoint.  An identically zero quadratic
    yields a single zero-sign interval.
    """
    if is_zero_quad(q, eps):
        return [(lo, hi, 0)]
    cuts = [lo] + roots_in_interval(q, lo, hi, open_ends=True, eps=eps) + [hi]
    cuts = sorted(set(cuts))
    out: List[Tuple[float, float, int]] = []
    for a, b in zip(cuts, cuts[1:]):
        mid = (a + b) / 2.0
        v = eval_quad(q, mid)
        span = max(abs(q[0]), abs(q[1]), abs(q[2]), 1.0)
        if abs(v) <= eps * span:
            s = 0
        else:
            s = 1 if v > 0 else -1
        out.append((a, b, s))
    return out


def common_roots(
    quads: Sequence[Quad], lo: float, hi: float, eps: float = 1e-9
) -> List[float] | None:
    """Times in the open ``(lo, hi)`` at which *all* quadratics vanish.

    Returns None when all quadratics are identically zero (the condition
    holds everywhere).  Uses a relative tolerance per polynomial.
    """
    nonzero = [q for q in quads if not is_zero_quad(q, eps)]
    if not nonzero:
        return None
    candidates = roots_in_interval(nonzero[0], lo, hi, open_ends=True, eps=eps)
    out = []
    for t in candidates:
        ok = True
        for q in nonzero[1:]:
            span = max(abs(q[0]) * t * t if t else abs(q[0]), abs(q[1] * t), abs(q[2]), 1.0)
            if abs(eval_quad(q, t)) > 1e-6 * span:
                ok = False
                break
        if ok:
            out.append(t)
    return out
