"""The ``const(α)`` unit type constructor (Section 3.2.5).

A constant unit carries a value of α that holds throughout its time
interval: ``ι(v, t) = v``.  It exists primarily to represent the moving
versions of the discretely changing base types (``int``, ``string``,
``bool``), but — as the paper notes — it can be applied to any type
whose values change in discrete steps.
"""

from __future__ import annotations

from typing import Any, Generic, TypeVar

from repro.base.values import BaseValue, wrap
from repro.errors import InvalidValue
from repro.temporal.unit import Unit

V = TypeVar("V")


class ConstUnit(Unit[V], Generic[V]):
    """A unit whose function is the constant function."""

    __slots__ = ("_value",)

    def __init__(self, interval, value: V):
        super().__init__(interval)
        if value is None:
            raise InvalidValue(
                "const units cannot carry the undefined value; omit the unit instead"
            )
        if isinstance(value, BaseValue) and not value.defined:
            raise InvalidValue(
                "const units cannot carry the undefined value; omit the unit instead"
            )
        object.__setattr__(self, "_value", value)

    @classmethod
    def of(cls, interval, value: Any) -> "ConstUnit":
        """Build a const unit, wrapping plain Python scalars into base values."""
        if isinstance(value, (bool, int, float, str)):
            return cls(interval, wrap(value))
        return cls(interval, value)

    @property
    def value(self) -> V:
        """The constant the unit carries."""
        return self._value

    def unit_function(self) -> V:
        return self._value

    def _iota(self, t: float) -> V:
        return self._value

    def with_interval(self, interval) -> "ConstUnit[V]":
        return ConstUnit(interval, self._value)

    def same_function(self, other) -> bool:
        """Value equality decides function equality for const units.

        The generic key-based comparison is not enough for arbitrary
        payloads (e.g. two distinct regions can share a ``repr``), so
        const units compare the carried values directly.
        """
        return isinstance(other, ConstUnit) and self._value == other._value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConstUnit):
            return NotImplemented
        return self.interval == other.interval and self._value == other._value

    def __hash__(self) -> int:
        try:
            return hash(("const", self.interval, self._value))
        except TypeError:
            return hash(("const", self.interval))

    def _function_key(self) -> tuple:
        """Ordering key only — equality goes through :meth:`same_function`."""
        v = self._value
        if isinstance(v, BaseValue):
            return (v._order_key(),)
        try:
            h = hash(v)
        except TypeError:
            h = 0
        return (type(v).__name__, h, repr(v))

    def __repr__(self) -> str:
        return f"ConstUnit({self.interval.pretty()}, {self._value!r})"
