"""The ``mapping`` type constructor: the sliced representation (Section 3.2.4).

A ``Mapping`` assembles units into a complete moving value.  Its
invariants are exactly those of the paper:

(i)  equal unit intervals imply equal units (no duplicates);
(ii) distinct unit intervals are disjoint, and adjacent intervals carry
     distinct unit functions (otherwise the two units could be merged —
     uniqueness and minimality of the representation).

Units are stored ordered by their time intervals, so ``unit_at`` is a
binary search (the first step of the ``atinstant`` algorithm of
Section 5.1) and pairwise scans such as the refinement partition run in
linear time.

The typed subclasses (``MovingReal``, ``MovingPoint``, ...) add the
operations of the abstract model that are intrinsic to a single moving
value; binary operations (distance, lifted predicates, ``inside``) live
in :mod:`repro.ops`.
"""

from __future__ import annotations

import bisect
from typing import (
    Any,
    Callable,
    Generic,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Type,
    TypeVar,
    Union,
)

from repro import obs
from repro.base.instant import Instant, as_time
from repro.base.values import BoolVal, IntVal, RealVal, StringVal
from repro.errors import InvalidValue, UndefinedValue
from repro.ranges.intime import Intime
from repro.ranges.interval import Interval
from repro.ranges.rangeset import RangeSet
from repro.spatial.bbox import Cube
from repro.spatial.line import Line
from repro.spatial.point import Point
from repro.spatial.points import Points
from repro.spatial.region import Region
from repro.temporal.uconst import ConstUnit
from repro.temporal.uline import ULine
from repro.temporal.unit import Unit, UnitInterval, as_interval
from repro.temporal.upoint import UPoint
from repro.temporal.upoints import UPoints
from repro.temporal.ureal import UReal
from repro.temporal.uregion import URegion

V = TypeVar("V")
U = TypeVar("U", bound=Unit)


class Mapping(Generic[V]):
    """A value of type ``mapping(unit)``: the sliced representation."""

    __slots__ = ("_units", "_starts")

    #: Unit class this mapping accepts; None admits any unit type.
    unit_type: Optional[type] = None

    def __init__(self, units: Iterable[Unit[V]] = (), validate: bool = True):
        unit_list = sorted(units, key=lambda u: u.sort_key())
        if validate:
            self._check_invariants(unit_list)
        object.__setattr__(self, "_units", tuple(unit_list))
        object.__setattr__(
            self, "_starts", [u.interval.s for u in unit_list]
        )

    def __setattr__(self, name, value):
        raise AttributeError("mapping values are immutable")

    def _check_invariants(self, units: List[Unit[V]]) -> None:
        expected = self.unit_type
        for u in units:
            if expected is not None and not isinstance(u, expected):
                raise InvalidValue(
                    f"{type(self).__name__} holds {expected.__name__} units, "
                    f"got {type(u).__name__}"
                )
        for a, b in zip(units, units[1:]):
            if a.interval == b.interval:
                raise InvalidValue(
                    f"two units share the interval {a.interval!r}"
                )
            if not a.interval.disjoint(b.interval):
                raise InvalidValue(
                    f"unit intervals {a.interval!r} and {b.interval!r} overlap"
                )
            if a.interval.adjacent(b.interval) and a.same_function(b):
                raise InvalidValue(
                    "adjacent units carry the same function; merge them for "
                    "the canonical minimal representation"
                )

    @classmethod
    def normalized(cls, units: Iterable[Unit[V]]) -> "Mapping[V]":
        """Build a mapping from arbitrary units, merging mergeable neighbours."""
        unit_list = sorted(units, key=lambda u: u.sort_key())
        merged: List[Unit[V]] = []
        for u in unit_list:
            if (
                merged
                and merged[-1].interval.adjacent(u.interval)
                and merged[-1].same_function(u)
            ):
                merged[-1] = merged[-1].with_interval(
                    merged[-1].interval.merge(u.interval)
                )
            else:
                merged.append(u)
        return cls(merged)

    def appended(self, unit: Unit[V]) -> "Mapping[V]":
        """A new mapping with ``unit`` appended as the latest slice.

        The live-ingest primitive: Section 4's sliced representation
        grows an evolving history by appending unit records, never by
        mutating existing slices, so this returns a *new* immutable
        mapping sharing every existing unit.  Appending past the end
        only needs the boundary pair checked (O(1) amortized, vs the
        full-scan constructor); a unit that sorts before the current
        last slice falls back to full construction + validation.
        Raises :class:`InvalidValue` exactly where the constructor
        would — overlapping intervals, a mergeable adjacent unit, a
        foreign unit type.
        """
        if self._units and unit.sort_key() < self._units[-1].sort_key():
            return type(self)([*self._units, unit])
        self._check_invariants([*self._units[-1:], unit])
        m = type(self).__new__(type(self))
        object.__setattr__(m, "_units", (*self._units, unit))
        object.__setattr__(m, "_starts", [*self._starts, unit.interval.s])
        return m

    # -- container protocol ------------------------------------------------

    @property
    def units(self) -> Sequence[Unit[V]]:
        """The ordered unit tuple (the ``units`` array of Figure 7)."""
        return self._units

    def __iter__(self) -> Iterator[Unit[V]]:
        return iter(self._units)

    def __len__(self) -> int:
        return len(self._units)

    def __bool__(self) -> bool:
        return bool(self._units)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return type(self) is type(other) and self._units == other._units

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._units))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({len(self._units)} units)"

    # -- temporal domain ------------------------------------------------------

    def deftime(self) -> RangeSet[float]:
        """The times at which the moving value is defined (``deftime``)."""
        return RangeSet.normalized([u.interval for u in self._units])

    def present(self, t: Union[Instant, float]) -> bool:
        """True iff the value is defined at instant ``t``."""
        return self.unit_at(t) is not None

    def start_time(self) -> float:
        """Earliest defined instant; raises on the empty mapping."""
        if not self._units:
            raise UndefinedValue("start time of an empty mapping")
        return self._units[0].interval.s

    def end_time(self) -> float:
        """Latest defined instant; raises on the empty mapping."""
        if not self._units:
            raise UndefinedValue("end time of an empty mapping")
        return max(u.interval.e for u in self._units)

    # -- evaluation --------------------------------------------------------------

    def unit_at(self, t: Union[Instant, float]) -> Optional[Unit[V]]:
        """The unit whose interval contains ``t`` (binary search), or None."""
        tt = as_time(t)
        if obs.enabled:
            # Hand-rolled bisect_right so each halving step is counted:
            # the probe count is the Section-5.1 O(log n) claim.
            starts = self._starts
            lo, hi = 0, len(starts)
            probes = 0
            while lo < hi:
                probes += 1
                mid = (lo + hi) >> 1
                if tt < starts[mid]:
                    hi = mid
                else:
                    lo = mid + 1
            idx = lo
            obs.counters.add("mapping.unit_at.calls")
            obs.counters.add("mapping.unit_at.probes", probes)
        else:
            idx = bisect.bisect_right(self._starts, tt)
        # The containing unit is among the last two units starting at or
        # before tt (a unit may start exactly at tt with an open start
        # while its predecessor still contains tt).
        for i in (idx - 1, idx - 2):
            if 0 <= i < len(self._units) and self._units[i].interval.contains(tt):
                return self._units[i]
        return None

    def value_at(self, t: Union[Instant, float]) -> Optional[V]:
        """The moving value at instant ``t`` (the ``atinstant`` kernel)."""
        unit = self.unit_at(t)
        if unit is None:
            return None
        return unit.value_at(t)

    def at_instant(self, t: Union[Instant, float]) -> Optional[Intime[V]]:
        """``atinstant``: the timestamped value at ``t``, or None."""
        v = self.value_at(t)
        if v is None:
            return None
        return Intime(t, v)

    def initial(self) -> Optional[Intime[V]]:
        """``initial``: value at the earliest defined instant."""
        if not self._units:
            return None
        first = self._units[0]
        t = first.interval.s
        if first.interval.lc:
            return Intime(t, first.value_at(t))
        # Open start: the value at the start instant is the limit; evaluate
        # the unit function there (its ι is defined on the closure).
        return Intime(t, first._iota_start(t))

    def final(self) -> Optional[Intime[V]]:
        """``final``: value at the latest defined instant."""
        if not self._units:
            return None
        last = max(self._units, key=lambda u: (u.interval.e, u.interval.rc))
        t = last.interval.e
        if last.interval.rc:
            return Intime(t, last.value_at(t))
        return Intime(t, last._iota_end(t))

    # -- restriction ----------------------------------------------------------------

    def at_periods(self, periods: RangeSet[float]) -> "Mapping[V]":
        """``atperiods``: restrict the moving value to a set of time intervals.

        Both the unit sequence and the range set are time-ordered, so a
        linear merge-scan pairs every unit with exactly the periods it
        can overlap: each step either emits a restriction or retires the
        operand ending first, giving O(n + m) instead of the nested
        O(n · m) loop.
        """
        out: List[Unit[V]] = []
        units = self._units
        ivs = list(periods)
        i = j = 0
        steps = 0
        while i < len(units) and j < len(ivs):
            steps += 1
            u = units[i]
            iv = ivs[j]
            piece = u.restricted(iv)
            if piece is not None:
                out.append(piece)
            # Retire whichever operand ends first.  On equal end points a
            # closed end outlives an open one: the closed end may still
            # meet the other sequence's next interval at that instant.
            if (u.interval.e, u.interval.rc) <= (iv.e, iv.rc):
                i += 1
            else:
                j += 1
        if obs.enabled:
            obs.counters.add("mapping.at_periods.calls")
            obs.counters.add("mapping.at_periods.steps", steps)
        return type(self)(out, validate=False)

    def restricted_to(self, interval) -> "Mapping[V]":
        """Restrict to a single time interval."""
        iv = as_interval(interval)
        out: List[Unit[V]] = []
        for u in self._units:
            piece = u.restricted(iv)
            if piece is not None:
                out.append(piece)
        return type(self)(out, validate=False)

    def map_units(self, fn: Callable[[Unit[V]], Optional[Unit]]) -> List[Unit]:
        """Apply ``fn`` to every unit, collecting non-None results."""
        out = []
        for u in self._units:
            r = fn(u)
            if r is not None:
                out.append(r)
        return out


# ---------------------------------------------------------------------------
# Typed moving values (Table 3 correspondence)
# ---------------------------------------------------------------------------


class MovingBool(Mapping[BoolVal]):
    """``moving(bool)`` as ``mapping(const(bool))``."""

    unit_type = ConstUnit

    @classmethod
    def piecewise(cls, pieces: Iterable[tuple]) -> "MovingBool":
        """Build from ``(interval, bool)`` pairs, merging where possible."""
        return cls.normalized(
            [ConstUnit(iv, BoolVal(bool(v))) for iv, v in pieces]
        )

    def when(self, expected: bool = True) -> RangeSet[float]:
        """The times at which the value equals ``expected`` (``at`` on mbool)."""
        out = [
            u.interval
            for u in self.units
            if isinstance(u, ConstUnit) and bool(u.value.value) == expected
        ]
        return RangeSet.normalized(out)

    def negated(self) -> "MovingBool":
        """Pointwise logical negation."""
        return MovingBool(
            [
                ConstUnit(u.interval, BoolVal(not u.value.value))
                for u in self.units
                if isinstance(u, ConstUnit)
            ],
            validate=False,
        )


class MovingInt(Mapping[IntVal]):
    """``moving(int)`` as ``mapping(const(int))``."""

    unit_type = ConstUnit


class MovingString(Mapping[StringVal]):
    """``moving(string)`` as ``mapping(const(string))``."""

    unit_type = ConstUnit


class MovingReal(Mapping[RealVal]):
    """``moving(real)`` as ``mapping(ureal)``."""

    unit_type = UReal

    def minimum(self) -> float:
        """Global minimum over all units."""
        if not self.units:
            raise UndefinedValue("minimum of an empty moving real")
        return min(u.minimum() for u in self.units)  # type: ignore[union-attr]

    def maximum(self) -> float:
        """Global maximum over all units."""
        if not self.units:
            raise UndefinedValue("maximum of an empty moving real")
        return max(u.maximum() for u in self.units)  # type: ignore[union-attr]

    def atmin(self) -> "MovingReal":
        """``atmin``: restrict to the instants attaining the global minimum."""
        from repro.ops.aggregates import mreal_atmin

        return mreal_atmin(self)

    def atmax(self) -> "MovingReal":
        """``atmax``: restrict to the instants attaining the global maximum."""
        from repro.ops.aggregates import mreal_atmax

        return mreal_atmax(self)

    def plus(self, other: "MovingReal") -> "MovingReal":
        """Pointwise sum over the common deftime (lifted ``+``)."""
        from repro.ops.lifted import mreal_add

        return mreal_add(self, other)

    def minus(self, other: "MovingReal") -> "MovingReal":
        """Pointwise difference over the common deftime (lifted ``−``)."""
        from repro.ops.lifted import mreal_sub

        return mreal_sub(self, other)

    def compare(self, op: str, other: Union["MovingReal", float]) -> "MovingBool":
        """Lifted comparison producing a moving bool."""
        from repro.ops.lifted import mreal_compare

        return mreal_compare(self, op, other)

    def rangevalues(self) -> RangeSet[float]:
        """``rangevalues``: the set of real values assumed, as a range."""
        out = []
        for u in self.units:
            mn, mx = u.range_on_interval()  # type: ignore[union-attr]
            out.append(Interval(mn, mx, True, True))
        return RangeSet.normalized(out)

    def integral(self) -> float:
        """The time integral of the moving real over its deftime."""
        return sum(u.integral() for u in self.units)  # type: ignore[union-attr]

    def time_weighted_average(self) -> float:
        """The average value, weighted by time (``avg`` of the abstract model)."""
        duration = float(self.deftime().total_length())
        if duration == 0.0:
            raise UndefinedValue("average of a moving real with zero duration")
        return self.integral() / duration


class MovingPoint(Mapping[Point]):
    """``moving(point)`` as ``mapping(upoint)``."""

    unit_type = UPoint

    @classmethod
    def from_waypoints(cls, waypoints: Sequence[tuple]) -> "MovingPoint":
        """Build from time-stamped positions ``[(t, (x, y)), ...]``.

        Consecutive samples are joined by linear units; the track is
        defined on the closed span ``[t0, tn]``.  Repeated positions
        produce stationary units.
        """
        wps = sorted(waypoints, key=lambda w: w[0])
        if len(wps) < 2:
            raise InvalidValue("a waypoint track needs at least two samples")
        units = []
        for k, ((t0, p0), (t1, p1)) in enumerate(zip(wps, wps[1:])):
            if t1 <= t0:
                raise InvalidValue("waypoint times must strictly increase")
            lc = k == 0
            units.append(
                UPoint.between(t0, tuple(p0), t1, tuple(p1), lc=lc, rc=True)
            )
        return cls.normalized(units)

    def trajectory(self) -> Line:
        """``trajectory``: the line swept in the plane (Section 2).

        Stationary units project to isolated points, which are not part
        of a ``line`` value and are dropped; overlapping passes are
        merged by ``merge-segs``.
        """
        segs = []
        for u in self.units:
            assert isinstance(u, UPoint)
            p0, p1 = u.start_point(), u.end_point()
            if p0 != p1:
                segs.append((p0, p1))
        return Line.from_unmerged(segs)

    def speed(self) -> MovingReal:
        """``speed``: the scalar speed as a moving real (piecewise constant)."""
        units = [
            UReal.constant(u.interval, u.speed)  # type: ignore[union-attr]
            for u in self.units
        ]
        return MovingReal(units, validate=False)

    def distance(self, other: "MovingPoint") -> MovingReal:
        """Lifted Euclidean ``distance`` to another moving point."""
        from repro.ops.distance import mpoint_distance

        return mpoint_distance(self, other)

    def bounding_cube(self) -> Cube:
        """Bounding cube over all units."""
        if not self.units:
            raise UndefinedValue("bounding cube of an empty moving point")
        cube = None
        for u in self.units:
            c = u.bounding_cube()  # type: ignore[union-attr]
            cube = c if cube is None else cube.union(c)
        assert cube is not None
        return cube

    def length(self) -> float:
        """Total travelled distance (sum of unit displacements)."""
        total = 0.0
        for u in self.units:
            assert isinstance(u, UPoint)
            total += u.speed * u.interval.length
        return total


class MovingPoints(Mapping[Points]):
    """``moving(points)`` as ``mapping(upoints)``."""

    unit_type = UPoints

    def count(self) -> "MovingInt":
        """Lifted ``count``: the cardinality over time as a moving int.

        Within a unit the point count is constant (moving points of one
        unit are pairwise distinct on the open interval), so the result
        is one const(int) unit per upoints unit, merged where possible.
        """
        units = [
            ConstUnit(u.interval, IntVal(len(u)))  # type: ignore[arg-type]
            for u in self.units
        ]
        return MovingInt.normalized(units)


class MovingLine(Mapping[Line]):
    """``moving(line)`` as ``mapping(uline)``."""

    unit_type = ULine

    def length(self) -> MovingReal:
        """Lifted ``length``: total line length over time as a moving real."""
        from repro.ops.numeric import mline_length

        return mline_length(self)


class MovingRegion(Mapping[Region]):
    """``moving(region)`` as ``mapping(uregion)``."""

    unit_type = URegion

    def at_instant_region(self, t: Union[Instant, float]) -> Region:
        """The ``atinstant`` algorithm of Section 5.1, returning a region."""
        from repro.ops.interaction import mregion_atinstant

        return mregion_atinstant(self, t)

    def area(self) -> MovingReal:
        """Lifted ``size``: area over time as a moving real."""
        from repro.ops.numeric import mregion_area

        return mregion_area(self)

    def perimeter(self) -> MovingReal:
        """Lifted ``perimeter`` as a moving real."""
        from repro.ops.numeric import mregion_perimeter

        return mregion_perimeter(self)

    def bounding_cube(self) -> Cube:
        """Bounding cube over all units."""
        if not self.units:
            raise UndefinedValue("bounding cube of an empty moving region")
        cube = None
        for u in self.units:
            c = u.bounding_cube()  # type: ignore[union-attr]
            cube = c if cube is None else cube.union(c)
        assert cube is not None
        return cube
