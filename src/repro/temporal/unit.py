"""The generic temporal unit (Section 3.2.4).

``Unit(S) = Interval(Instant) × S``: a unit couples a time interval with
a representation of a simple function of time.  Subclasses implement the
``ι`` evaluation function (here ``_iota``) and, where degeneracies can
occur at the interval end points (``uline``, ``uregion``), override the
end point evaluators ``_iota_start``/``_iota_end`` with the cleanup
described in Section 3.2.6.
"""

from __future__ import annotations

from typing import Any, Generic, Optional, Tuple, TypeVar, Union

from repro.base.instant import Instant, as_time
from repro.errors import InvalidValue
from repro.ranges.interval import Interval

V = TypeVar("V")

#: Time intervals are intervals over raw float time coordinates.
UnitInterval = Interval[float]


def as_interval(
    i: Union[UnitInterval, Tuple[float, float], Tuple[float, float, bool, bool]],
) -> UnitInterval:
    """Coerce tuples ``(s, e)`` / ``(s, e, lc, rc)`` into a time interval."""
    if isinstance(i, Interval):
        return i
    if len(i) == 2:
        return Interval(as_time(i[0]), as_time(i[1]), True, True)
    s, e, lc, rc = i
    return Interval(as_time(s), as_time(e), bool(lc), bool(rc))


class Unit(Generic[V]):
    """Base class of all temporal units."""

    __slots__ = ("_interval",)

    def __init__(self, interval) -> None:
        object.__setattr__(self, "_interval", as_interval(interval))

    def __setattr__(self, name, value):
        raise AttributeError("unit values are immutable")

    @property
    def interval(self) -> UnitInterval:
        """The unit interval."""
        return self._interval

    # -- evaluation ------------------------------------------------------

    def _iota(self, t: float) -> V:
        """Evaluate the unit function at ``t`` (no interval check)."""
        raise NotImplementedError

    def _iota_start(self, t: float) -> V:
        """ι_s: evaluation at the start instant, with degeneracy cleanup."""
        return self._iota(t)

    def _iota_end(self, t: float) -> V:
        """ι_e: evaluation at the end instant, with degeneracy cleanup."""
        return self._iota(t)

    def value_at(self, t: Union[Instant, float]) -> Optional[V]:
        """The temporal function of this unit applied at ``t``.

        Returns None outside the unit interval; applies the end point
        evaluators at the interval boundary, per the extended semantics
        definition of Section 3.2.6.
        """
        tt = as_time(t)
        iv = self._interval
        if not iv.contains(tt):
            return None
        if iv.is_degenerate:
            return self._iota_start(tt)
        if tt == iv.s:
            return self._iota_start(tt)
        if tt == iv.e:
            return self._iota_end(tt)
        return self._iota(tt)

    def defined_at(self, t: Union[Instant, float]) -> bool:
        """True iff ``t`` lies in the unit interval."""
        return self._interval.contains(as_time(t))

    # -- structure -------------------------------------------------------

    def unit_function(self) -> Any:
        """The second component of the unit pair (the raw function data)."""
        raise NotImplementedError

    def with_interval(self, interval) -> "Unit[V]":
        """A copy of this unit restricted/moved to another time interval.

        Subclasses must ensure the new interval keeps the unit valid;
        restriction to a sub-interval always does.
        """
        raise NotImplementedError

    def restricted(self, interval) -> Optional["Unit[V]"]:
        """Restrict this unit to the overlap with ``interval`` (or None)."""
        common = self._interval.intersection(as_interval(interval))
        if common is None:
            return None
        return self.with_interval(common)

    # -- comparisons -------------------------------------------------------

    def _function_key(self) -> tuple:
        """A hashable, orderable key of the unit function (for canonical order)."""
        raise NotImplementedError

    def sort_key(self) -> tuple:
        """Canonical order of units: by interval, then by function."""
        iv = self._interval
        return (iv.s, not iv.lc, iv.e, iv.rc) + self._function_key()

    def same_function(self, other: "Unit[V]") -> bool:
        """True iff the two units carry the same unit function."""
        return (
            type(self) is type(other)
            and self._function_key() == other._function_key()
        )

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return NotImplemented
        assert isinstance(other, Unit)
        return (
            self._interval == other._interval
            and self._function_key() == other._function_key()
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._interval, self._function_key()))

    def __lt__(self, other: "Unit[V]") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._interval.pretty()})"
