"""Temporal types: units and the sliced representation (Sections 3.2.4–3.2.6).

A *unit* pairs a time interval with a "simple" function describing the
value inside that interval; the ``mapping`` constructor assembles units
into a complete moving value.  Unit types:

==============  =======================================  ==================
unit type       unit function                            moving type
==============  =======================================  ==================
``const(α)``    a constant of α                          moving(int/string/bool)
``ureal``       (a,b,c,r): quadratic or its square root  moving(real)
``upoint``      a linearly moving point                  moving(point)
``upoints``     a set of linearly moving points          moving(points)
``uline``       a set of non-rotating moving segments    moving(line)
``uregion``     moving faces of non-rotating msegments   moving(region)
==============  =======================================  ==================
"""

from __future__ import annotations

from repro.temporal.unit import Unit, UnitInterval, as_interval
from repro.temporal.uconst import ConstUnit
from repro.temporal.ureal import UReal
from repro.temporal.mseg import MPoint, MSeg
from repro.temporal.upoint import UPoint
from repro.temporal.upoints import UPoints
from repro.temporal.uline import ULine
from repro.temporal.uregion import MCycle, MFace, URegion
from repro.temporal.mapping import (
    Mapping,
    MovingBool,
    MovingInt,
    MovingString,
    MovingReal,
    MovingPoint,
    MovingPoints,
    MovingLine,
    MovingRegion,
)
from repro.temporal.refinement import refinement_partition

__all__ = [
    "Unit",
    "UnitInterval",
    "as_interval",
    "ConstUnit",
    "UReal",
    "MPoint",
    "MSeg",
    "UPoint",
    "UPoints",
    "ULine",
    "URegion",
    "MCycle",
    "MFace",
    "Mapping",
    "MovingBool",
    "MovingInt",
    "MovingString",
    "MovingReal",
    "MovingPoint",
    "MovingPoints",
    "MovingLine",
    "MovingRegion",
    "refinement_partition",
]
