"""The ``uregion`` unit type: moving regions with moving holes.

``MCycle`` is a set of moving segments intended to form a cycle at every
instant of the open unit interval; ``MFace`` pairs an outer moving cycle
with hole cycles; a ``URegion`` is a set of moving faces that evaluates
to a valid ``region`` at every instant of the open interval
(Section 3.2.6, Figure 6).

At the closed interval end points the region may degenerate (faces
collapsing to segments or points, holes closing up); ``ι_s``/``ι_e``
apply the paper's cleanup: drop degenerated segments, then keep exactly
the odd-parity fragments of overlapping collinear groups, and rebuild
the structure with the ``close`` operation.

Validation levels:

* ``"fast"`` (default): structural checks plus full region validation at
  three interior sample instants.
* ``"full"``: additionally an exact pairwise moving-segment crossing
  analysis — two moving segments properly cross inside the open
  interval iff the four orientation quadratics admit a sign
  configuration ``o1·o2 < 0 ∧ o3·o4 < 0`` on some sub-interval, which is
  decided on the partition induced by their roots.
* ``"none"``: trust the caller (used internally for restrictions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import InvalidValue
from repro.geometry.mergesegs import parity_fragments
from repro.geometry.segment import Seg
from repro.spatial.bbox import Cube, Rect
from repro.spatial.line import Line
from repro.spatial.region import Cycle, Face, Region, close_region
from repro.temporal.mseg import MPoint, MSeg
from repro.temporal.quadratics import (
    Quad,
    eval_quad,
    is_zero_quad,
    roots_in_interval,
)
from repro.temporal.uline import orientation_quad
from repro.temporal.unit import Unit


@dataclass(frozen=True)
class MCycle:
    """A moving cycle: at least three moving segments."""

    msegs: Tuple[MSeg, ...]

    def __init__(self, msegs: Iterable[MSeg]):
        mseg_tuple = tuple(sorted(set(msegs), key=lambda m: m.sort_key()))
        if len(mseg_tuple) < 3:
            raise InvalidValue("a moving cycle needs at least three moving segments")
        object.__setattr__(self, "msegs", mseg_tuple)

    @classmethod
    def stationary(cls, cycle: Cycle) -> "MCycle":
        """A moving cycle that never moves."""
        return cls([MSeg.stationary(s) for s in cycle.segments])

    @classmethod
    def between_cycles(cls, t0: float, c0: Cycle, t1: float, c1: Cycle) -> "MCycle":
        """Interpolate two cycle snapshots with matched, parallel segments.

        Edges are matched by *walk order* (both rings oriented
        counter-clockwise, rotated to start at their lexicographically
        smallest vertex), which is stable under translation and positive
        scaling — matching by canonical segment sort would flip on
        floating point ties.
        """
        if len(c0.segments) != len(c1.segments):
            raise InvalidValue(
                "between_cycles needs snapshots with equal segment counts"
            )
        ring0 = _aligned_ring(c0)
        ring1 = _aligned_ring(c1)
        msegs = []
        n = len(ring0)
        for i in range(n):
            s0 = (ring0[i], ring0[(i + 1) % n])
            s1 = (ring1[i], ring1[(i + 1) % n])
            msegs.append(
                MSeg(
                    MPoint.linear_between(t0, s0[0], t1, s1[0]),
                    MPoint.linear_between(t0, s0[1], t1, s1[1]),
                )
            )
        return cls(msegs)

    def cycle_at(self, t: float) -> Cycle:
        """Evaluate to a (validated) cycle at an interior instant."""
        segs = []
        for m in self.msegs:
            s = m.seg_at(t)
            if s is None:
                raise InvalidValue(f"moving cycle degenerates at t={t}")
            segs.append(s)
        return Cycle(segs, validate=False)

    def segments_at(self, t: float) -> List[Seg]:
        """Proper segments at ``t`` (degenerated ones dropped)."""
        out = []
        for m in self.msegs:
            s = m.seg_at(t)
            if s is not None:
                out.append(s)
        return out

    def sort_key(self) -> tuple:
        return tuple(m.sort_key() for m in self.msegs)


def _aligned_ring(cycle: Cycle) -> List:
    """The cycle's vertex ring, CCW-oriented, starting at its minimal vertex."""
    from repro.geometry.primitives import polygon_area

    ring = list(cycle.vertices)
    if polygon_area(ring) < 0:
        ring.reverse()
    start = min(range(len(ring)), key=lambda i: ring[i])
    return ring[start:] + ring[:start]


@dataclass(frozen=True)
class MFace:
    """A moving face: outer moving cycle plus moving hole cycles."""

    outer: MCycle
    holes: Tuple[MCycle, ...]

    def __init__(self, outer: MCycle, holes: Iterable[MCycle] = ()):
        object.__setattr__(self, "outer", outer)
        object.__setattr__(
            self, "holes", tuple(sorted(holes, key=lambda c: c.sort_key()))
        )

    @classmethod
    def stationary(cls, face: Face) -> "MFace":
        """A moving face that never moves."""
        return cls(
            MCycle.stationary(face.outer),
            [MCycle.stationary(h) for h in face.holes],
        )

    @property
    def cycles(self) -> Tuple[MCycle, ...]:
        return (self.outer, *self.holes)

    def msegs(self) -> List[MSeg]:
        """All moving segments of the face."""
        out = list(self.outer.msegs)
        for h in self.holes:
            out.extend(h.msegs)
        return out

    def face_at(self, t: float) -> Face:
        """Evaluate to a face at an interior instant (no validation)."""
        return Face(
            self.outer.cycle_at(t),
            [h.cycle_at(t) for h in self.holes],
            validate=False,
        )

    def sort_key(self) -> tuple:
        return self.outer.sort_key()


class URegion(Unit[Region]):
    """A moving-region unit: interval × set of MFace under region constraints."""

    __slots__ = ("_faces", "_cube", "_area_summary", "_perimeter_summary")

    def __init__(
        self,
        interval,
        faces: Iterable[MFace],
        validate: str = "fast",
    ):
        super().__init__(interval)
        face_list = tuple(sorted(faces, key=lambda f: f.sort_key()))
        if not face_list:
            raise InvalidValue("a uregion unit needs at least one moving face")
        object.__setattr__(self, "_faces", face_list)
        object.__setattr__(self, "_cube", None)
        object.__setattr__(self, "_area_summary", None)
        object.__setattr__(self, "_perimeter_summary", None)
        if validate == "fast":
            self._check_sampled()
        elif validate == "full":
            self._check_sampled()
            self._check_crossings()
        elif validate != "none":
            raise InvalidValue(f"unknown validation level {validate!r}")

    # -- constructors ------------------------------------------------------

    @classmethod
    def stationary(cls, interval, region: Region) -> "URegion":
        """A unit holding a region value still."""
        return cls(
            interval,
            [MFace.stationary(f) for f in region.faces],
            validate="none",
        )

    @classmethod
    def between_regions(
        cls,
        t0: float,
        r0: Region,
        t1: float,
        r1: Region,
        validate: str = "fast",
    ) -> "URegion":
        """Interpolate two region snapshots with matched structure.

        Faces, cycles, and segments must correspond one-to-one in
        canonical order, with parallel matched segments (no rotation).
        Used by the translation/scaling workload generators; for free
        deformation between convex snapshots see
        :mod:`repro.temporal.interpolate`.
        """
        if len(r0.faces) != len(r1.faces):
            raise InvalidValue("snapshots must have equally many faces")
        mfaces = []
        for f0, f1 in zip(r0.faces, r1.faces):
            if len(f0.holes) != len(f1.holes):
                raise InvalidValue("snapshots must have matching hole counts")
            outer = MCycle.between_cycles(t0, f0.outer, t1, f1.outer)
            holes = [
                MCycle.between_cycles(t0, h0, t1, h1)
                for h0, h1 in zip(f0.holes, f1.holes)
            ]
            mfaces.append(MFace(outer, holes))
        from repro.ranges.interval import Interval

        return cls(Interval(float(t0), float(t1)), mfaces, validate=validate)

    # -- validation -----------------------------------------------------------

    def _sample_times(self) -> List[float]:
        iv = self.interval
        if iv.is_degenerate:
            return [iv.s]
        span = iv.e - iv.s
        delta = max(span * 1e-6, 1e-12)
        return [iv.s + delta, iv.midpoint(), iv.e - delta]

    def _check_sampled(self) -> None:
        """Validate the evaluated region at interior sample instants."""
        for t in self._sample_times():
            try:
                region = self._build_region(t, validate=True)
            except InvalidValue as exc:
                raise InvalidValue(
                    f"uregion does not evaluate to a valid region at t={t}: {exc}"
                ) from exc
            if not region:
                raise InvalidValue(f"uregion evaluates to the empty region at t={t}")

    def _check_crossings(self) -> None:
        """Exact pairwise crossing analysis of all moving segments."""
        iv = self.interval
        if iv.is_degenerate:
            return
        msegs = self.msegs()
        lo, hi = iv.s, iv.e
        for i, a in enumerate(msegs):
            for b in msegs[i + 1 :]:
                if _msegs_cross_inside(a, b, lo, hi):
                    raise InvalidValue(
                        "moving segments properly cross inside the open interval"
                    )

    # -- accessors --------------------------------------------------------------

    @property
    def faces(self) -> Sequence[MFace]:
        """The moving faces."""
        return self._faces

    def msegs(self) -> List[MSeg]:
        """All moving segments of all faces (the msegments subarray)."""
        out: List[MSeg] = []
        for f in self._faces:
            out.extend(f.msegs())
        return out

    def unit_function(self) -> Sequence[MFace]:
        return self._faces

    def _function_key(self) -> tuple:
        return tuple(f.sort_key() for f in self._faces)

    # -- evaluation ----------------------------------------------------------------

    def _build_region(self, t: float, validate: bool) -> Region:
        faces = []
        for mf in self._faces:
            outer = Cycle(mf.outer.segments_at(t), validate=validate)
            holes = [Cycle(h.segments_at(t), validate=validate) for h in mf.holes]
            faces.append(Face(outer, holes, validate=validate))
        return Region(faces, validate=validate)

    def _iota(self, t: float) -> Region:
        return self._build_region(t, validate=False)

    def _cleanup(self, t: float) -> Region:
        """ι_s/ι_e: degenerate-segment removal + odd-parity fragments + close."""
        raw: List[Seg] = []
        for m in self.msegs():
            s = m.seg_at(t)
            if s is not None:
                raw.append(s)
        cleaned = parity_fragments(raw)
        if len(cleaned) < 3:
            return Region([])
        try:
            return close_region(cleaned)
        except InvalidValue:
            # The remaining fragments do not bound an area (e.g. the whole
            # region collapsed onto a line): the region value is empty.
            return Region([])

    def _iota_start(self, t: float) -> Region:
        return self._cleanup(t)

    def _iota_end(self, t: float) -> Region:
        return self._cleanup(t)

    def with_interval(self, interval) -> "URegion":
        return URegion(interval, self._faces, validate="none")

    # -- summary quadruples (Section 4.2, closing remark) --------------------

    def area_summary(self):
        """The (a, b, c, r) quadruple of the time-dependent area.

        Section 4.2 suggests storing exactly this summary in the unit
        record; it is computed once (the area of linearly moving faces
        is a quadratic in t, recovered exactly by interpolation) and
        cached / serialized with the unit.
        """
        if self._area_summary is None:
            from repro.ops.numeric import _fit_quadratic

            u = _fit_quadratic(self.interval, lambda t: self._iota(t).area())
            object.__setattr__(self, "_area_summary", u.coefficients)
        return self._area_summary

    def perimeter_summary(self):
        """The (a, b, c, r) quadruple of the time-dependent perimeter.

        Linear in t within the unit (non-rotating segments have linear
        length); see :mod:`repro.ops.numeric`.
        """
        if self._perimeter_summary is None:
            from repro.ops.numeric import _fit_linear

            u = _fit_linear(self.interval, lambda t: self._iota(t).perimeter())
            object.__setattr__(self, "_perimeter_summary", u.coefficients)
        return self._perimeter_summary

    def _prime_summaries(self, area, perimeter) -> None:
        """Restore summaries from storage (codec use only)."""
        object.__setattr__(self, "_area_summary", area)
        object.__setattr__(self, "_perimeter_summary", perimeter)

    # -- geometry ---------------------------------------------------------------------

    def bounding_rect(self) -> Rect:
        """Spatial bounding box over the unit interval (vertices move linearly)."""
        pts = []
        for m in self.msegs():
            for t in (self.interval.s, self.interval.e):
                p, q = m.at(t)
                pts.extend((p, q))
        return Rect.around(pts)

    def bounding_cube(self) -> Cube:
        """The 3-D bounding cube of Section 4.2.

        Computed once and cached on the unit — exactly the role of the
        bounding-cube field in the unit record of the paper's data
        structure; the O(n + m) far-apart bound of the ``inside``
        algorithm depends on this being O(1) per lookup.
        """
        if self._cube is None:
            object.__setattr__(
                self,
                "_cube",
                Cube.from_rect(self.bounding_rect(), self.interval.s, self.interval.e),
            )
        return self._cube

    def __repr__(self) -> str:
        nsegs = len(self.msegs())
        return (
            f"URegion({self.interval.pretty()}, {len(self._faces)} mfaces, "
            f"{nsegs} msegs)"
        )


def _msegs_cross_inside(a: MSeg, b: MSeg, lo: float, hi: float) -> bool:
    """True iff segments ``a`` and ``b`` properly cross at some t in (lo, hi).

    The four orientation tests are quadratics in t; the crossing
    predicate ``o1·o2 < 0 ∧ o3·o4 < 0`` is piecewise constant between
    their roots, so testing each piece's midpoint decides it exactly.
    """
    quads: List[Quad] = [
        orientation_quad(a.s, a.e, b.s),
        orientation_quad(a.s, a.e, b.e),
        orientation_quad(b.s, b.e, a.s),
        orientation_quad(b.s, b.e, a.e),
    ]
    cuts = {lo, hi}
    for q in quads:
        if not is_zero_quad(q):
            cuts.update(roots_in_interval(q, lo, hi, open_ends=True))
    ordered = sorted(cuts)
    for x, y in zip(ordered, ordered[1:]):
        mid = (x + y) / 2.0
        o = [eval_quad(q, mid) for q in quads]
        if o[0] * o[1] < 0 and o[2] * o[3] < 0:
            return True
    return False
