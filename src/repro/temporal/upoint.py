"""The ``upoint`` unit type: a single linearly moving point (Section 3.2.6)."""

from __future__ import annotations

from typing import Tuple

from repro.geometry.primitives import Vec
from repro.spatial.bbox import Cube, Rect
from repro.spatial.point import Point
from repro.temporal.mseg import MPoint
from repro.temporal.unit import Unit


class UPoint(Unit[Point]):
    """A moving-point unit: ``Interval(Instant) × MPoint``."""

    __slots__ = ("_motion",)

    def __init__(self, interval, motion: MPoint):
        super().__init__(interval)
        object.__setattr__(self, "_motion", motion)

    @classmethod
    def between(cls, t0: float, p0: Vec, t1: float, p1: Vec, lc=True, rc=True) -> "UPoint":
        """The unit moving linearly from ``p0`` at ``t0`` to ``p1`` at ``t1``."""
        from repro.ranges.interval import Interval

        return cls(
            Interval(float(t0), float(t1), lc, rc),
            MPoint.linear_between(t0, p0, t1, p1),
        )

    @classmethod
    def stationary(cls, interval, p: Vec) -> "UPoint":
        """A unit holding the point still at ``p``."""
        return cls(interval, MPoint.stationary(p))

    @property
    def motion(self) -> MPoint:
        """The MPoint quadruple (the unit function)."""
        return self._motion

    @property
    def coefficients(self) -> Tuple[float, float, float, float]:
        """The raw quadruple ``(x0, x1, y0, y1)`` — the columnar unit fields."""
        m = self._motion
        return (m.x0, m.x1, m.y0, m.y1)

    def unit_function(self) -> MPoint:
        return self._motion

    def _iota(self, t: float) -> Point:
        return Point.from_vec(self._motion.at(t))

    def vec_at(self, t: float) -> Vec:
        """Raw coordinate evaluation (no interval check)."""
        return self._motion.at(t)

    def with_interval(self, interval) -> "UPoint":
        return UPoint(interval, self._motion)

    def _function_key(self) -> tuple:
        return self._motion.sort_key()

    # -- geometry -----------------------------------------------------------

    def start_point(self) -> Vec:
        """Position at the interval start."""
        return self._motion.at(self.interval.s)

    def end_point(self) -> Vec:
        """Position at the interval end."""
        return self._motion.at(self.interval.e)

    @property
    def speed(self) -> float:
        """The constant speed within the unit."""
        return self._motion.speed

    def bounding_rect(self) -> Rect:
        """Spatial bounding box of the swept trajectory piece."""
        return Rect.around([self.start_point(), self.end_point()])

    def bounding_cube(self) -> Cube:
        """The 3-D bounding cube of Section 4.2."""
        return Cube.from_rect(self.bounding_rect(), self.interval.s, self.interval.e)

    def __repr__(self) -> str:
        p0, p1 = self.start_point(), self.end_point()
        return (
            f"UPoint({self.interval.pretty()}, "
            f"({p0[0]:g},{p0[1]:g})→({p1[0]:g},{p1[1]:g}))"
        )
