"""The ``upoints`` unit type: a set of linearly moving points (Section 3.2.6).

The constraint is that the moving points are pairwise distinct at every
instant of the *open* unit interval (condition (i)), and — for a unit
defined at a single instant — distinct at that instant (condition (ii)).
Both are checked exactly: two linear trajectories coincide either
everywhere or at a single computable instant.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import InvalidValue
from repro.spatial.bbox import Cube, Rect
from repro.spatial.points import Points
from repro.temporal.mseg import MPoint
from repro.temporal.unit import Unit


class UPoints(Unit[Points]):
    """A moving-points unit: interval × set of MPoint, pairwise disjoint."""

    __slots__ = ("_motions", "_cube")

    def __init__(self, interval, motions: Iterable[MPoint], validate: bool = True):
        super().__init__(interval)
        motion_list = sorted(set(motions), key=lambda m: m.sort_key())
        if not motion_list:
            raise InvalidValue("a upoints unit needs at least one moving point")
        if validate:
            self._check_disjoint(motion_list)
        object.__setattr__(self, "_motions", tuple(motion_list))
        object.__setattr__(self, "_cube", None)

    def _check_disjoint(self, motions: Sequence[MPoint]) -> None:
        iv = self.interval
        for i, a in enumerate(motions):
            for b in motions[i + 1 :]:
                times = a.coincidence_times(b)
                if times is None:
                    raise InvalidValue(
                        "upoints unit contains two identical moving points"
                    )
                for t in times:
                    if iv.is_degenerate:
                        if t == iv.s:
                            raise InvalidValue(
                                "moving points coincide at the unit's single instant"
                            )
                    elif iv.s < t < iv.e:
                        raise InvalidValue(
                            f"moving points coincide at t={t} inside the open unit interval"
                        )

    @property
    def motions(self) -> Sequence[MPoint]:
        """The ordered MPoint tuple (lexicographic on quadruples, Sec. 4.2)."""
        return self._motions

    def unit_function(self) -> Sequence[MPoint]:
        return self._motions

    def _iota(self, t: float) -> Points:
        # ι distributes through sets; at the interval end points distinct
        # moving points may collapse — the set constructor deduplicates,
        # which is exactly the cleanup needed for points values.
        return Points([m.at(t) for m in self._motions])

    def with_interval(self, interval) -> "UPoints":
        return UPoints(interval, self._motions, validate=False)

    def _function_key(self) -> tuple:
        return tuple(m.sort_key() for m in self._motions)

    def __len__(self) -> int:
        return len(self._motions)

    # -- geometry ----------------------------------------------------------

    def bounding_rect(self) -> Rect:
        """Spatial bounding box over the whole unit interval."""
        pts = [m.at(self.interval.s) for m in self._motions]
        pts += [m.at(self.interval.e) for m in self._motions]
        return Rect.around(pts)

    def bounding_cube(self) -> Cube:
        """The 3-D bounding cube of Section 4.2 (computed once, cached)."""
        if self._cube is None:
            object.__setattr__(
                self,
                "_cube",
                Cube.from_rect(self.bounding_rect(), self.interval.s, self.interval.e),
            )
        return self._cube

    def __repr__(self) -> str:
        return f"UPoints({self.interval.pretty()}, {len(self._motions)} points)"
