"""Linearly moving points (``MPoint``) and moving segments (``MSeg``).

``MPoint`` is the quadruple ``(x0, x1, y0, y1)`` describing the 3-D line
``t ↦ (x0 + x1·t, y0 + y1·t)`` — the unlimited temporal evolution of a
2-D point (Section 3.2.6).  ``MSeg`` is a pair of distinct, *coplanar*
``MPoint`` values: the moving segment sweeps a planar trapezium (or
triangle, when the end points coincide at one instant) in (x, y, t)
space; coplanarity is exactly the paper's no-rotation constraint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.config import EPSILON, fzero
from repro.errors import InvalidValue
from repro.geometry.primitives import Vec, point_cmp
from repro.geometry.segment import Seg, make_seg
from repro.temporal.quadratics import Quad, mul_linear, sub_quad


@dataclass(frozen=True)
class MPoint:
    """A linearly moving point: ``ι((x0,x1,y0,y1), t) = (x0+x1·t, y0+y1·t)``."""

    x0: float
    x1: float
    y0: float
    y1: float

    def __post_init__(self):
        for v in (self.x0, self.x1, self.y0, self.y1):
            if not math.isfinite(v):
                raise InvalidValue("MPoint coefficients must be finite")

    @classmethod
    def linear_between(
        cls, t0: float, p0: Vec, t1: float, p1: Vec
    ) -> "MPoint":
        """The moving point at ``p0`` at time ``t0`` and ``p1`` at ``t1``."""
        if t1 == t0:
            if point_cmp(p0, p1) != 0:
                raise InvalidValue("cannot interpolate distinct points over zero time")
            return cls(p0[0], 0.0, p0[1], 0.0)
        vx = (p1[0] - p0[0]) / (t1 - t0)
        vy = (p1[1] - p0[1]) / (t1 - t0)
        return cls(p0[0] - vx * t0, vx, p0[1] - vy * t0, vy)

    @classmethod
    def stationary(cls, p: Vec) -> "MPoint":
        """A moving point that never moves."""
        return cls(p[0], 0.0, p[1], 0.0)

    def at(self, t: float) -> Vec:
        """Evaluate ι at time ``t``."""
        return (self.x0 + self.x1 * t, self.y0 + self.y1 * t)

    @property
    def velocity(self) -> Vec:
        """The constant velocity vector."""
        return (self.x1, self.y1)

    @property
    def speed(self) -> float:
        """The constant speed (magnitude of the velocity)."""
        return math.hypot(self.x1, self.y1)

    def is_stationary(self, eps: float = EPSILON) -> bool:
        """True iff the point does not move."""
        return fzero(self.x1, eps) and fzero(self.y1, eps)

    def coincidence_times(self, other: "MPoint") -> Optional[List[float]]:
        """Times at which the two moving points coincide.

        Returns None when they coincide at *all* times; otherwise a list
        with zero or one instants.  Coincidence requires both coordinate
        differences (each linear in t) to vanish simultaneously.
        """

        def linear_solution(c0: float, c1: float):
            """Solution set of ``c0 + c1·t == 0``: 'all', 'none', or a time."""
            if fzero(c1):
                return "all" if fzero(c0) else "none"
            return -c0 / c1

        sol_x = linear_solution(self.x0 - other.x0, self.x1 - other.x1)
        sol_y = linear_solution(self.y0 - other.y0, self.y1 - other.y1)
        if sol_x == "all" and sol_y == "all":
            return None
        if sol_x == "none" or sol_y == "none":
            return []
        if sol_x == "all":
            return [sol_y]
        if sol_y == "all":
            return [sol_x]
        scale = max(abs(sol_x), abs(sol_y), 1.0)
        if abs(sol_x - sol_y) <= 1e-7 * scale:
            return [(sol_x + sol_y) / 2.0]
        return []

    def distance_sq_quad(self, other: "MPoint") -> Quad:
        """The squared distance to ``other`` as a quadratic in t.

        This is the radicand of the lifted Euclidean ``distance``
        operation — exactly why ``ureal`` includes the square-root form.
        """
        dx = (self.x1 - other.x1, self.x0 - other.x0)  # (slope, intercept)
        dy = (self.y1 - other.y1, self.y0 - other.y0)
        return tuple(
            a + b for a, b in zip(mul_linear(dx, dx), mul_linear(dy, dy))
        )  # type: ignore[return-value]

    def sort_key(self) -> tuple:
        """Lexicographic order on the quadruple (Section 4.2)."""
        return (self.x0, self.x1, self.y0, self.y1)


@dataclass(frozen=True)
class MSeg:
    """A moving segment: two distinct coplanar moving points.

    Coplanarity of the two 3-D trajectories is the paper's no-rotation
    constraint: the swept surface is a planar trapezium or triangle.
    """

    s: MPoint
    e: MPoint

    def __post_init__(self):
        if self.s == self.e:
            raise InvalidValue("MSeg end points must be distinct moving points")
        if not self.coplanar(self.s, self.e):
            raise InvalidValue(
                "MSeg end point trajectories must be coplanar (segments may not rotate)"
            )

    @staticmethod
    def coplanar(s: MPoint, e: MPoint, eps: float = 1e-7) -> bool:
        """Check coplanarity of two 3-D trajectory lines.

        Lines ``a + d·t`` with anchors ``a = (x0, y0, 0)`` and directions
        ``d = (x1, y1, 1)`` are coplanar iff the scalar triple product
        ``(a_e − a_s) · (d_s × d_e)`` vanishes.
        """
        ax, ay, az = e.x0 - s.x0, e.y0 - s.y0, 0.0
        # d_s × d_e with d = (x1, y1, 1):
        cx = s.y1 * 1.0 - 1.0 * e.y1
        cy = 1.0 * e.x1 - s.x1 * 1.0
        cz = s.x1 * e.y1 - s.y1 * e.x1
        triple = ax * cx + ay * cy + az * cz
        scale = max(abs(ax), abs(ay), abs(cx), abs(cy), abs(cz), 1.0)
        return abs(triple) <= eps * scale * scale

    @classmethod
    def between_segments(
        cls, t0: float, seg0: Seg, t1: float, seg1: Seg
    ) -> "MSeg":
        """The moving segment interpolating ``seg0`` at ``t0`` to ``seg1`` at ``t1``.

        The two snapshots must be parallel (or one may be degenerate),
        otherwise the interpolation would rotate and violate the MSeg
        coplanarity constraint.
        """
        return cls(
            MPoint.linear_between(t0, seg0[0], t1, seg1[0]),
            MPoint.linear_between(t0, seg0[1], t1, seg1[1]),
        )

    @classmethod
    def stationary(cls, seg: Seg) -> "MSeg":
        """A moving segment that never moves."""
        return cls(MPoint.stationary(seg[0]), MPoint.stationary(seg[1]))

    def at(self, t: float) -> Tuple[Vec, Vec]:
        """Evaluate both end points at time ``t`` (may be degenerate)."""
        return (self.s.at(t), self.e.at(t))

    def seg_at(self, t: float) -> Optional[Seg]:
        """The proper segment at time ``t``, or None when degenerate."""
        p, q = self.at(t)
        if point_cmp(p, q) == 0:
            return None
        return make_seg(p, q)

    def degenerate_times(self) -> Optional[List[float]]:
        """Times at which the segment collapses to a point (None = always)."""
        return self.s.coincidence_times(self.e)

    def sort_key(self) -> tuple:
        """Lexicographic order on the component quadruples (Section 4.2)."""
        return self.s.sort_key() + self.e.sort_key()
