"""Shape interpolation between convex region snapshots.

``URegion.between_regions`` requires structurally matched snapshots with
parallel edges.  For *free* deformation between two convex snapshots we
use a geometric fact: the lateral facets of the 3-D convex hull of
(snapshot A placed at time t0) ∪ (snapshot B placed at t1) are planar
polygons, and each facet's boundary decomposes into coplanar moving
segments — triangles and trapezia, exactly the MSeg shapes the model
permits (Section 3.2.6 notes that MSeg members "can be triangles",
enabling flexible correspondences between snapshots).

The same construction underlies later snapshot-interpolation work for
moving regions (e.g. Tøssebro & Güting); here it serves as the library's
"free morph" constructor and as the generator of uregions with endpoint
degeneracies (interpolating to a point collapses the region).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.errors import InvalidValue
from repro.geometry.primitives import Vec, convex_hull, orientation
from repro.ranges.interval import Interval
from repro.spatial.region import Region
from repro.temporal.mseg import MPoint, MSeg
from repro.temporal.uregion import MCycle, MFace, URegion


def _convex_ring(region: Region) -> List[Vec]:
    """The CCW vertex ring of a one-face convex region (validated)."""
    if len(region.faces) != 1 or region.faces[0].holes:
        raise InvalidValue("interpolation needs a single convex face without holes")
    ring = list(region.faces[0].outer.vertices)
    hull = convex_hull(ring)
    if len(hull) != len(set(ring)):
        raise InvalidValue("interpolation needs a convex snapshot")
    return hull


def _edges_of(ring: Sequence[Vec]) -> List[Tuple[Vec, Vec]]:
    return [(ring[i], ring[(i + 1) % len(ring)]) for i in range(len(ring))]


def _angle(p: Vec, q: Vec) -> float:
    return math.atan2(q[1] - p[1], q[0] - p[0]) % (2.0 * math.pi)


def interpolate_convex(
    t0: float, r0: Region, t1: float, r1: Region
) -> URegion:
    """A uregion morphing convex snapshot ``r0`` (at t0) into ``r1`` (at t1).

    Implementation: a rotating-sweep merge of the two edge rings by edge
    direction (the standard construction of the lateral hull facets of
    two convex polygons in parallel planes).  Every edge of ``r0`` is
    matched with the vertex of ``r1`` lying between its neighbouring
    edge directions and vice versa, producing triangle MSegs; pairs of
    parallel edges produce trapezium MSegs.  All resulting moving
    segments are coplanar by construction.
    """
    if t1 <= t0:
        raise InvalidValue("interpolation needs t0 < t1")
    ring0 = _convex_ring(r0)
    ring1 = _convex_ring(r1)

    # Merge edges of both rings by direction angle (rotating sweep).
    # Sorting by raw angle makes the sweep start at the globally smallest
    # edge direction; within each ring the angular order of a convex CCW
    # polygon's edges equals its traversal order, so tracking a "current
    # vertex" per ring stays consistent.
    edges0 = _edges_of(ring0)
    edges1 = _edges_of(ring1)
    tagged = [(_angle(p, q), 0, (p, q)) for p, q in edges0]
    tagged += [(_angle(p, q), 1, (p, q)) for p, q in edges1]
    tagged.sort(key=lambda e: (e[0], e[1]))

    # Start vertices: the source of each ring's first edge in sweep order.
    first0 = next(e for e in tagged if e[1] == 0)
    first1 = next(e for e in tagged if e[1] == 1)

    msegs: List[MSeg] = []
    cur0 = first0[2][0]  # current vertex on ring0
    cur1 = first1[2][0]  # current vertex on ring1
    for _angle_v, which, (p, q) in tagged:
        if which == 0:
            # Edge advances on ring0; ring1 stays at cur1 → triangle.
            msegs.append(
                MSeg(
                    MPoint.linear_between(t0, p, t1, cur1),
                    MPoint.linear_between(t0, q, t1, cur1),
                )
            )
            cur0 = q
        else:
            msegs.append(
                MSeg(
                    MPoint.linear_between(t0, cur0, t1, p),
                    MPoint.linear_between(t0, cur0, t1, q),
                )
            )
            cur1 = q
    return URegion(
        Interval(t0, t1), [MFace(MCycle(msegs), [])], validate="fast"
    )


def collapse_to_point(
    t0: float, r0: Region, t1: float, target: Vec
) -> URegion:
    """A uregion shrinking a convex snapshot to a single point at ``t1``.

    The resulting unit is degenerate at its right end: ι_e evaluates to
    the empty region after cleanup — the canonical Figure-6 situation.
    """
    ring0 = _convex_ring(r0)
    msegs = [
        MSeg(
            MPoint.linear_between(t0, p, t1, target),
            MPoint.linear_between(t0, q, t1, target),
        )
        for p, q in _edges_of(ring0)
    ]
    return URegion(Interval(t0, t1), [MFace(MCycle(msegs), [])], validate="fast")
