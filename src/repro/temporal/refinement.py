"""The refinement partition of two unit sequences (Section 5.2, Figure 8).

Given two moving values in sliced representation, binary operations need
to pair up the pieces of both values that are valid at the same time.
The *refinement partition* of the time axis is the coarsest partition
such that within each piece both operands are described by (at most) one
unit each.  It is computed by a parallel scan over the two ordered unit
sequences in O(n + m) time.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro import obs
from repro.ranges.interval import Interval
from repro.temporal.unit import Unit, UnitInterval


def _boundaries(units_a: Sequence[Unit], units_b: Sequence[Unit]) -> List[Tuple[float, bool]]:
    """Collect all interval end points as (time, closed-at-that-side) cuts."""
    points = set()
    for u in list(units_a) + list(units_b):
        iv = u.interval
        points.add(iv.s)
        points.add(iv.e)
    return sorted(points)  # type: ignore[return-value]


def refinement_partition(
    a: Sequence[Unit], b: Sequence[Unit]
) -> Iterator[Tuple[UnitInterval, Optional[Unit], Optional[Unit]]]:
    """Yield ``(interval, unit_a, unit_b)`` triples of the refinement partition.

    The two inputs must be ordered by time interval (as mapping unit
    sequences are).  Every yielded interval is maximal such that the set
    of covering units on both sides is constant; ``unit_a``/``unit_b``
    is None where the respective value is undefined.  Intervals at which
    neither value is defined are skipped.

    The scan materializes each elementary interval of the merged end
    point grid, including the degenerate single-instant intervals at
    closed end points, so closure flags are honoured exactly.
    """
    cuts = _boundaries(a, b)
    if not cuts:
        return
    ia = ib = 0
    a = list(a)
    b = list(b)
    if obs.enabled:
        obs.counters.add("refinement.calls")
        obs.counters.add("refinement.unit_visits", len(a) + len(b))
        obs.counters.add("refinement.boundaries", len(cuts))

    def advance(units: List[Unit], idx: int, t: float) -> int:
        while idx < len(units) and (
            units[idx].interval.e < t
            or (units[idx].interval.e == t and not units[idx].interval.rc)
        ):
            idx += 1
        return idx

    def covering(units: List[Unit], idx: int, iv: Interval) -> Optional[Unit]:
        for k in (idx, idx + 1):
            if k < len(units) and units[k].interval.contains_interval(iv):
                return units[k]
        return None

    # Elementary intervals: degenerate [t, t] at every cut, open (t, t')
    # between consecutive cuts.
    elementary: List[Interval] = []
    for i, t in enumerate(cuts):
        elementary.append(Interval(t, t, True, True))
        if i + 1 < len(cuts):
            elementary.append(Interval(t, cuts[i + 1], False, False))

    pending: Optional[Tuple[Interval, Optional[Unit], Optional[Unit]]] = None
    for iv in elementary:
        if obs.enabled:
            # Each elementary interval is one O(1) step of the parallel
            # scan: the Section-5.2 O(n + m) refinement claim.
            obs.counters.add("refinement.visits")
        ia = advance(a, ia, iv.s)
        ib = advance(b, ib, iv.s)
        ua = covering(a, ia, iv)
        ub = covering(b, ib, iv)
        if ua is None and ub is None:
            if pending is not None:
                if obs.enabled:
                    obs.counters.add("refinement.pieces")
                yield pending
                pending = None
            continue
        if pending is not None and pending[1] is ua and pending[2] is ub:
            merged = pending[0].merge(iv)
            pending = (merged, ua, ub)
        else:
            if pending is not None:
                if obs.enabled:
                    obs.counters.add("refinement.pieces")
                yield pending
            pending = (iv, ua, ub)
    if pending is not None:
        if obs.enabled:
            obs.counters.add("refinement.pieces")
        yield pending
