"""The ``ureal`` unit type (Section 3.2.5).

The unit function is the quadruple ``(a, b, c, r)``:

* ``r = False`` — the polynomial ``a t² + b t + c``;
* ``r = True``  — the square root ``sqrt(a t² + b t + c)``.

This choice makes the lifted ``size``, ``perimeter``, and ``distance``
operations representable while keeping the algebra simple; the price is
that ``derivative`` is not closed (the derivative of a square-root form
is not of either shape), exactly as the paper notes.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.base.values import RealVal
from repro.config import EPSILON, fzero
from repro.errors import InvalidValue, NotClosed
from repro.temporal.quadratics import (
    Quad,
    add_quad,
    eval_quad,
    quad_extremum,
    quad_nonnegative_on,
    quad_range_on,
    roots_in_interval,
    scale_quad,
    solve_quadratic,
    sub_quad,
)
from repro.temporal.unit import Unit


class UReal(Unit[RealVal]):
    """A moving-real unit: quadratic or square-root-of-quadratic in time."""

    __slots__ = ("_a", "_b", "_c", "_r")

    def __init__(self, interval, a: float, b: float, c: float, r: bool = False):
        super().__init__(interval)
        a, b, c = float(a), float(b), float(c)
        if not all(math.isfinite(v) for v in (a, b, c)):
            raise InvalidValue("ureal coefficients must be finite")
        if r and not quad_nonnegative_on((a, b, c), self.interval.s, self.interval.e):
            raise InvalidValue(
                "square-root ureal requires a nonnegative radicand on its interval"
            )
        object.__setattr__(self, "_a", a)
        object.__setattr__(self, "_b", b)
        object.__setattr__(self, "_c", c)
        object.__setattr__(self, "_r", bool(r))

    # -- constructors -----------------------------------------------------

    @classmethod
    def constant(cls, interval, value: float) -> "UReal":
        """A constant real over the interval."""
        return cls(interval, 0.0, 0.0, value, False)

    @classmethod
    def linear_between(cls, interval, v0: float, v1: float) -> "UReal":
        """Linear interpolation from ``v0`` at interval start to ``v1`` at end."""
        from repro.temporal.unit import as_interval

        iv = as_interval(interval)
        if iv.e == iv.s:
            return cls(iv, 0.0, 0.0, float(v0), False)
        slope = (float(v1) - float(v0)) / (iv.e - iv.s)
        return cls(iv, 0.0, slope, float(v0) - slope * iv.s, False)

    # -- accessors ---------------------------------------------------------

    @property
    def coefficients(self) -> Tuple[float, float, float, bool]:
        """The quadruple ``(a, b, c, r)``."""
        return (self._a, self._b, self._c, self._r)

    @property
    def quad(self) -> Quad:
        """The radicand/polynomial coefficients ``(a, b, c)``."""
        return (self._a, self._b, self._c)

    @property
    def is_sqrt(self) -> bool:
        """True for the square-root form."""
        return self._r

    def unit_function(self):
        return self.coefficients

    def _function_key(self) -> tuple:
        return (self._a, self._b, self._c, self._r)

    def __repr__(self) -> str:
        body = f"{self._a:g}t²+{self._b:g}t+{self._c:g}"
        if self._r:
            body = f"sqrt({body})"
        return f"UReal({self.interval.pretty()}, {body})"

    # -- evaluation ------------------------------------------------------------

    def _checked_radicand(self, v: float, t: float) -> float:
        """Clamp a radicand to zero only within tolerance of zero.

        Rounding can push the radicand of a valid square-root unit a
        hair below zero near its roots; that noise is clamped.  A
        radicand *beyond* the tolerance is a genuinely invalid
        evaluation (e.g. ``eval`` outside the unit interval, where the
        constructor's nonnegativity check does not reach) and raises
        instead of fabricating a zero.  The tolerance is the same
        coefficient-scaled one the constructor's ``quad_nonnegative_on``
        check uses, so every constructible unit evaluates cleanly on its
        own interval.
        """
        if v >= 0.0:
            return v
        tol = 1e-7 * max(abs(self._a), abs(self._b), abs(self._c), 1.0)
        if v < -tol:
            raise InvalidValue(
                f"negative radicand {v:g} of square-root ureal at t={t:g} "
                "(beyond rounding tolerance)"
            )
        return 0.0

    def _iota(self, t: float) -> RealVal:
        v = eval_quad(self.quad, t)
        if self._r:
            v = math.sqrt(self._checked_radicand(v, t))
        return RealVal(v)

    def eval(self, t: float) -> float:
        """Raw float evaluation (no interval check).

        For the square-root form a radicand that is negative beyond
        rounding tolerance raises :class:`InvalidValue` rather than
        silently evaluating to zero.
        """
        v = eval_quad(self.quad, t)
        if self._r:
            v = math.sqrt(self._checked_radicand(v, t))
        return v

    def with_interval(self, interval) -> "UReal":
        return UReal(interval, self._a, self._b, self._c, self._r)

    # -- analysis -----------------------------------------------------------------

    def range_on_interval(self) -> Tuple[float, float]:
        """Minimum and maximum values taken over the unit interval."""
        mn, mx = quad_range_on(self.quad, self.interval.s, self.interval.e)
        if self._r:
            return (math.sqrt(max(mn, 0.0)), math.sqrt(max(mx, 0.0)))
        return (mn, mx)

    def minimum(self) -> float:
        """Smallest value over the unit interval."""
        return self.range_on_interval()[0]

    def maximum(self) -> float:
        """Largest value over the unit interval."""
        return self.range_on_interval()[1]

    def times_at_value(self, v: float) -> List[float]:
        """All instants within the unit interval where the function equals ``v``.

        When the function is constantly ``v`` the whole interval
        qualifies; that case is signalled with the two interval end
        points (callers interested in it should compare min == max
        first).
        """
        if self._r:
            if v < 0:
                return []
            target = sub_quad(self.quad, (0.0, 0.0, v * v))
        else:
            target = sub_quad(self.quad, (0.0, 0.0, v))
        lo, hi = self.interval.s, self.interval.e
        if fzero(target[0]) and fzero(target[1]) and fzero(target[2]):
            return [lo, hi]
        return roots_in_interval(target, lo, hi, open_ends=False)

    def argmin(self) -> float:
        """An instant at which the minimum is attained."""
        lo, hi = self.interval.s, self.interval.e
        best_t, best_v = lo, self.eval(lo)
        for t in (hi,):
            v = self.eval(t)
            if v < best_v:
                best_t, best_v = t, v
        vertex = quad_extremum(self.quad)
        if vertex is not None and lo <= vertex[0] <= hi:
            v = self.eval(vertex[0])
            if v < best_v:
                best_t, best_v = vertex[0], v
        return best_t

    def argmax(self) -> float:
        """An instant at which the maximum is attained."""
        lo, hi = self.interval.s, self.interval.e
        best_t, best_v = lo, self.eval(lo)
        for t in (hi,):
            v = self.eval(t)
            if v > best_v:
                best_t, best_v = t, v
        vertex = quad_extremum(self.quad)
        if vertex is not None and lo <= vertex[0] <= hi:
            v = self.eval(vertex[0])
            if v > best_v:
                best_t, best_v = vertex[0], v
        return best_t

    # -- arithmetic (closed cases only) ------------------------------------------------

    def __neg__(self) -> "UReal":
        if self._r:
            raise NotClosed("negation of a square-root ureal is not representable")
        return UReal(self.interval, -self._a, -self._b, -self._c, False)

    def add_constant(self, k: float) -> "UReal":
        """Add a constant; closed for the polynomial form only."""
        if self._r:
            raise NotClosed("adding a constant to a square-root ureal")
        return UReal(self.interval, self._a, self._b, self._c + k, False)

    def scaled(self, k: float) -> "UReal":
        """Multiply by a constant.

        For the square-root form the radicand is scaled by ``k²`` (so
        ``k`` must be nonnegative to preserve the value).
        """
        if self._r:
            if k < 0:
                raise NotClosed("negative scaling of a square-root ureal")
            q = scale_quad(self.quad, k * k)
            return UReal(self.interval, q[0], q[1], q[2], True)
        q = scale_quad(self.quad, k)
        return UReal(self.interval, q[0], q[1], q[2], False)

    def plus(self, other: "UReal") -> "UReal":
        """Pointwise sum; only polynomial + polynomial is closed.

        The intervals must be identical (use the refinement partition to
        align mappings first).
        """
        if self.interval != other.interval:
            raise InvalidValue("ureal arithmetic requires identical unit intervals")
        if self._r or other._r:
            raise NotClosed("sum involving a square-root ureal is not representable")
        q = add_quad(self.quad, other.quad)
        return UReal(self.interval, q[0], q[1], q[2], False)

    def minus(self, other: "UReal") -> "UReal":
        """Pointwise difference; only polynomial − polynomial is closed."""
        if self.interval != other.interval:
            raise InvalidValue("ureal arithmetic requires identical unit intervals")
        if self._r or other._r:
            raise NotClosed("difference involving a square-root ureal")
        q = sub_quad(self.quad, other.quad)
        return UReal(self.interval, q[0], q[1], q[2], False)

    def squared(self) -> "UReal":
        """Pointwise square.

        Closed for the square-root form (drop the root) and for *linear*
        polynomials; a proper quadratic squared has degree four.
        """
        if self._r:
            return UReal(self.interval, self._a, self._b, self._c, False)
        if not fzero(self._a):
            raise NotClosed("square of a proper quadratic exceeds degree two")
        return UReal(
            self.interval,
            self._b * self._b,
            2.0 * self._b * self._c,
            self._c * self._c,
            False,
        )

    def sqrt(self) -> "UReal":
        """Pointwise square root; closed for nonnegative polynomials."""
        if self._r:
            raise NotClosed("nested square roots are not representable")
        return UReal(self.interval, self._a, self._b, self._c, True)

    def derivative(self) -> "UReal":
        """The time derivative — *not closed* in general (Section 3.1).

        Provided for the polynomial form (derivative is linear); raises
        :class:`NotClosed` for the square-root form, which is the case
        the paper excludes.
        """
        if self._r:
            raise NotClosed("derivative of a square-root ureal is not representable")
        return UReal(self.interval, 0.0, 2.0 * self._a, self._b, False)

    def integral(self) -> float:
        """The integral of the unit function over the unit interval.

        Exact (antiderivative) for the polynomial form; composite
        Simpson quadrature for the square-root form — the radicand is a
        quadratic, so the integrand is smooth and Simpson converges at
        fourth order (refined until stable to ~1e-12 relative).
        """
        lo, hi = self.interval.s, self.interval.e
        if hi == lo:
            return 0.0
        if not self._r:
            a, b, c = self._a, self._b, self._c

            def anti(t: float) -> float:
                return ((a / 3.0 * t + b / 2.0) * t + c) * t

            return anti(hi) - anti(lo)
        # Simpson with interval doubling for sqrt(quadratic).
        prev = None
        n = 8
        while n <= 4096:
            h = (hi - lo) / n
            total = self.eval(lo) + self.eval(hi)
            for k in range(1, n):
                total += self.eval(lo + k * h) * (4.0 if k % 2 else 2.0)
            approx = total * h / 3.0
            if prev is not None and abs(approx - prev) <= 1e-12 * max(
                abs(approx), 1.0
            ):
                return approx
            prev = approx
            n *= 2
        return prev if prev is not None else 0.0

    def compare_times(self, other: "UReal") -> List[float]:
        """Instants within the common interval where the two functions are equal.

        Supports poly/poly (difference of quadratics) and sqrt/sqrt
        (difference of radicands), and poly/sqrt via squaring with a
        sign filter.
        """
        if self.interval != other.interval:
            raise InvalidValue("comparison requires identical unit intervals")
        lo, hi = self.interval.s, self.interval.e
        if self._r == other._r:
            diff = sub_quad(self.quad, other.quad)
            return roots_in_interval(diff, lo, hi, open_ends=False)
        poly, root = (self, other) if other._r else (other, self)
        # poly(t) == sqrt(rad(t))  requires poly >= 0 and poly² == rad.
        if not fzero(poly._a):
            raise NotClosed("comparing a proper quadratic with a square root")
        sq = poly.squared().quad
        diff = sub_quad(sq, root.quad)
        out = []
        for t in roots_in_interval(diff, lo, hi, open_ends=False):
            if poly.eval(t) >= -EPSILON:
                out.append(t)
        return out
