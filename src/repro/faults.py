"""Deterministic failpoint injection for the storage and query layers.

A *failpoint* is a named hook compiled into a hot path (page writes,
WAL syncs, FLOB chain writes, ...).  Disarmed — the default — every
site costs one module-attribute branch (``if faults.active:``), the
same discipline :mod:`repro.obs` uses.  Armed, the site consults its
*trigger policy* and either raises a typed error or performs a
site-specific corruption (a torn write, a flipped bit), letting the
crash-matrix tests prove that recovery and detection actually work.

Every failpoint name is a string literal registered in
:data:`FAILPOINT_NAMES`; ``repro-lint`` rule MOD006 cross-checks the
call sites against the registry in both directions (mirror of the
MOD004 obs-name rule).

Trigger policies (all deterministic)::

    once            fire on the first check, then disarm
    every:N         fire on every Nth check (N, 2N, ...)
    after:K         skip K checks, fire on check K+1, then disarm
    prob:P[:SEED]   fire with probability P per check, seeded RNG

Arming::

    faults.arm("wal.sync_crash")                    # programmatic
    faults.arm_spec("flob.write_crash=after:1")     # config/CLI --faults
    REPRO_FAULTS="pagefile.torn_write=once" ...     # environment

    with faults.injected("wal.append_crash"):       # test fixture
        ...

Injection sites call :func:`fail` (raise a typed error when the policy
fires) or :func:`should_fire` (site-specific behaviour, e.g. writing
half a page)::

    if faults.active:
        faults.fail("pagefile.read_transient", TransientIOError)
"""

from __future__ import annotations

import os
import random
from typing import Dict, FrozenSet, Iterator, Optional, Tuple, Type

from repro.errors import InvalidValue, SimulatedCrash

__all__ = [
    "FAILPOINT_NAMES",
    "FaultPolicy",
    "active",
    "arm",
    "arm_spec",
    "armed",
    "disarm",
    "fail",
    "fired",
    "injected",
    "parse_policy",
    "should_fire",
]

# ---------------------------------------------------------------------------
# Name registry (MOD006)
# ---------------------------------------------------------------------------
# Every failpoint name placed anywhere in repro must be declared here.
# ``repro-lint`` (rule MOD006) cross-checks the two directions
# statically: a ``fail``/``should_fire`` site using an unregistered name
# is a typo that can never be armed; a registered name with no site is
# dead weight.  Keep the literals AST-parseable (no comprehensions).

#: Every failpoint name in the codebase, with its site's semantics:
FAILPOINT_NAMES: FrozenSet[str] = frozenset({
    # page file (repro.storage.pages)
    "pagefile.write_crash",     # crash before a page write
    "pagefile.torn_write",      # write half the page slot, then crash
    "pagefile.read_transient",  # transient read error (retryable)
    "pagefile.read_bitflip",    # flip one bit of the raw slot pre-verify
    # FLOB chains (repro.storage.flob)
    "flob.write_crash",         # crash between pages of a chain write
    # write-ahead log (repro.storage.wal)
    "wal.append_crash",         # crash before buffering a record
    "wal.sync_crash",           # crash at the fsync barrier (tail lost)
    "wal.torn_tail",            # sync persists only half the tail
    # tuple store / catalog commit points
    "tuplestore.commit_crash",  # crash after durable commit, pre-apply
    "catalog.create_crash",     # crash before logging a catalog change
    # persistent column store (repro.vector.store)
    "colstore.write_crash",     # crash between column-file writes
    "colstore.manifest_crash",  # crash before the manifest update
    # shared-memory column packing (repro.parallel.shmcol)
    "shmcol.pack_crash",        # crash after segment creation, mid-copy
    # query service ingest path (repro.server.ingest)
    "wal.group_commit_crash",   # crash at the group-commit sync barrier
    "server.ingest_crash",      # crash after durable sync, pre-apply
    # live degradation (chaos matrix, repro.server.chaos)
    "server.conn_drop",         # drop the connection after the work,
                                # before the response reaches the wire
    "server.slow_client",       # stall one session's response writes
                                # (a peer that stops reading)
    "parallel.worker_kill",     # SIGKILL the fork worker handed the
                                # marked chunk, mid-query
    "ingest.dup_send",          # client re-sends an acked INGEST with
                                # the same sequence token
    "shard.evict_during_query", # evict every resident shard between
                                # per-shard kernel runs, mid-scatter
})

#: Fast-path guard: True iff at least one failpoint is armed.  Sites
#: check this module attribute before doing anything else.
active: bool = False


class FaultPolicy:
    """One armed failpoint's trigger policy and firing statistics."""

    __slots__ = ("spec", "_kind", "_n", "_checks", "_rng", "_p", "fired")

    def __init__(self, spec: str):
        self.spec = spec
        self.fired = 0
        self._checks = 0
        parts = spec.split(":")
        kind = parts[0]
        self._kind = kind
        self._n = 0
        self._p = 0.0
        self._rng: Optional[random.Random] = None
        try:
            if kind == "once":
                if len(parts) != 1:
                    raise ValueError
            elif kind in ("every", "after"):
                if len(parts) != 2:
                    raise ValueError
                self._n = int(parts[1])
                if self._n < (1 if kind == "every" else 0):
                    raise ValueError
            elif kind == "prob":
                if len(parts) not in (2, 3):
                    raise ValueError
                self._p = float(parts[1])
                if not 0.0 <= self._p <= 1.0:
                    raise ValueError
                seed = int(parts[2]) if len(parts) == 3 else 0
                self._rng = random.Random(seed)
            else:
                raise ValueError
        except ValueError:
            raise InvalidValue(
                f"bad failpoint policy {spec!r}; expected once, every:N, "
                "after:K, or prob:P[:SEED]"
            ) from None

    def check(self) -> Tuple[bool, bool]:
        """One policy consultation: ``(fires_now, stay_armed)``."""
        self._checks += 1
        if self._kind == "once":
            self.fired += 1
            return True, False
        if self._kind == "every":
            if self._checks % self._n == 0:
                self.fired += 1
                return True, True
            return False, True
        if self._kind == "after":
            if self._checks == self._n + 1:
                self.fired += 1
                return True, False
            return False, True
        assert self._rng is not None
        if self._rng.random() < self._p:
            self.fired += 1
            return True, True
        return False, True


_armed: Dict[str, FaultPolicy] = {}
#: Fire counts survive disarming, so tests can assert a failpoint fired.
_fired: Dict[str, int] = {}


def parse_policy(spec: str) -> FaultPolicy:
    """Validate and build a trigger policy from its spec string."""
    return FaultPolicy(spec)


def arm(name: str, policy: str = "once") -> None:
    """Arm one registered failpoint with a trigger policy."""
    global active
    if name not in FAILPOINT_NAMES:
        raise InvalidValue(
            f"unknown failpoint {name!r}; registered failpoints: "
            f"{', '.join(sorted(FAILPOINT_NAMES))}"
        )
    _armed[name] = parse_policy(policy)
    active = True


def disarm(name: Optional[str] = None) -> None:
    """Disarm one failpoint, or all of them when ``name`` is None."""
    global active
    if name is None:
        _armed.clear()
    else:
        _armed.pop(name, None)
    active = bool(_armed)


def armed() -> Dict[str, str]:
    """Currently armed failpoints: name → policy spec."""
    return {name: pol.spec for name, pol in _armed.items()}


def fired(name: str) -> int:
    """How many times ``name`` has fired since the last counter reset
    (counts survive auto-disarm, so post-crash assertions work)."""
    return _fired.get(name, 0)


def reset_fired() -> None:
    """Clear the firing statistics (not the armed set)."""
    _fired.clear()


def should_fire(name: str) -> bool:
    """Consult the policy for ``name``; True when the site must inject.

    Sites with bespoke behaviour (torn writes, bit flips) branch on
    this; plain crash sites use :func:`fail` instead.
    """
    global active
    pol = _armed.get(name)
    if pol is None:
        return False
    fires, stay = pol.check()
    if fires:
        _fired[name] = _fired.get(name, 0) + 1
    if not stay:
        _armed.pop(name, None)
        active = bool(_armed)
    return fires


def fail(name: str, exc: Type[BaseException] = SimulatedCrash) -> None:
    """Raise ``exc`` when the policy for ``name`` fires."""
    if should_fire(name):
        raise exc(f"failpoint {name} fired")


def arm_spec(spec: str) -> None:
    """Arm failpoints from a comma-separated spec string.

    ``"a=once,b=every:3,c"`` — a bare name defaults to ``once``.  This
    is the format of the CLI's ``--faults`` flag and the
    ``REPRO_FAULTS`` environment variable.
    """
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, policy = part.partition("=")
        arm(name.strip(), policy.strip() or "once")


class injected:
    """Context manager arming one failpoint for a block (test fixture).

    Disarms the failpoint on exit regardless of outcome; the firing
    count remains queryable via :func:`fired`.
    """

    __slots__ = ("name", "policy")

    def __init__(self, name: str, policy: str = "once"):
        self.name = name
        self.policy = policy

    def __enter__(self) -> "injected":
        arm(self.name, self.policy)
        return self

    def __exit__(self, *exc: object) -> None:
        disarm(self.name)

    def __iter__(self) -> Iterator[object]:  # pragma: no cover - guard
        raise TypeError("faults.injected is a context manager, not iterable")


# Environment arming: REPRO_FAULTS="name=policy,..." arms at import so
# subprocesses (benchmarks, CLI) inherit the fault plan.
_env_spec = os.environ.get("REPRO_FAULTS", "")
if _env_spec:
    arm_spec(_env_spec)
