"""Spatio-temporal indexing: a 3-D R-tree over unit bounding cubes.

The paper stores a bounding cube with every variable-size unit
(Section 4.2) precisely so that filter steps — like the bounding-box
test in the ``inside`` algorithm of Section 5.2 — are cheap.  This
package extends that idea to collections of moving objects: an R-tree
over (x, y, t) cubes, the indexing direction the CHOROCHRONOS project
explored [TSPM98].
"""

from __future__ import annotations

from repro.index.rtree import RTree3D
from repro.index.unitindex import MovingObjectIndex

__all__ = ["RTree3D", "MovingObjectIndex"]
