"""An index over the *units* of many moving objects.

Indexing whole trajectories by one large cube is wasteful — the cube of
a long trajectory covers far more space-time than the object does.
Indexing per unit (one cube per slice, exactly the bounding cubes the
Section 4.2 data structures already store) gives much tighter filters.
``MovingObjectIndex`` maintains a 3-D R-tree of per-unit cubes tagged
with the owning object's key.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Optional, Set, Tuple, Union

from repro.base.instant import Instant, as_time
from repro.spatial.bbox import Cube, Rect
from repro.index.rtree import RTree3D
from repro.temporal.mapping import MovingPoint, MovingRegion
from repro.temporal.upoint import UPoint
from repro.temporal.uregion import URegion


class MovingObjectIndex:
    """A per-unit spatio-temporal index over moving points/regions.

    Filtering can run through either backend: the R-tree descent
    (``scalar``) or a columnar sweep over the same per-unit cubes
    (``vector``, :class:`~repro.vector.columns.BBoxColumn`).  Both see
    identical cube sets, so their candidate sets are identical; the
    column is rebuilt lazily after every ``add``.
    """

    def __init__(self, max_entries: int = 8):
        self._tree = RTree3D(max_entries)
        self._count = 0
        self._entries: List[Tuple[Hashable, Cube]] = []
        self._column: Optional[Any] = None

    def __len__(self) -> int:
        """Number of indexed objects (not units)."""
        return self._count

    @property
    def unit_entries(self) -> int:
        """Number of indexed units."""
        return len(self._tree)

    def add(self, key: Hashable, moving: Union[MovingPoint, MovingRegion]) -> None:
        """Index every unit of ``moving`` under ``key``."""
        for u in moving.units:
            assert isinstance(u, (UPoint, URegion))
            cube = u.bounding_cube()
            self._tree.insert(cube, key)
            self._entries.append((key, cube))
        self._count += 1
        self._column = None  # stale: rebuilt on the next vector query

    def bulk_load(
        self,
        items: Iterable[Tuple[Hashable, Union[MovingPoint, MovingRegion]]],
    ) -> None:
        """Index many objects at once via one STR-packed tree build.

        Collects every unit cube of every object and rebuilds the R-tree
        with :meth:`RTree3D.bulk_load` over the existing *and* new
        entries — the candidate sets afterwards are exactly those of
        per-object :meth:`add` calls, at a fraction of the build cost.
        Later incremental :meth:`add` calls keep working on the packed
        tree.
        """
        added = 0
        for key, moving in items:
            for u in moving.units:
                assert isinstance(u, (UPoint, URegion))
                self._entries.append((key, u.bounding_cube()))
            added += 1
        self._tree = RTree3D.bulk_load(
            ((cube, key) for key, cube in self._entries),
            self._tree.max_entries,
        )
        self._count += added
        self._column = None  # stale: rebuilt on the next vector query

    def _unit_column(self):
        """The per-unit cube column (lazily built, invalidated by ``add``)."""
        if self._column is None:
            from repro.vector.columns import BBoxColumn

            self._column = BBoxColumn.from_cubes(self._entries)
        return self._column

    # -- queries -----------------------------------------------------------

    def candidates_in_cube(
        self, cube: Cube, backend: Optional[str] = None
    ) -> Set[Hashable]:
        """Keys of objects with at least one unit cube intersecting ``cube``."""
        from repro.vector.fleet import _resolve

        resolved = _resolve(backend)
        if resolved == "vector" or resolved == "parallel":
            return set(self._unit_column().candidates(cube))
        return set(self._tree.search(cube))

    def candidates_at(self, rect: Rect, t: Union[Instant, float]) -> Set[Hashable]:
        """Keys possibly intersecting ``rect`` at instant ``t`` (time slice)."""
        tt = as_time(t)
        return self.candidates_in_cube(
            Cube(rect.xmin, rect.ymin, tt, rect.xmax, rect.ymax, tt)
        )

    def candidates_window(
        self, rect: Rect, t0: Union[Instant, float], t1: Union[Instant, float]
    ) -> Set[Hashable]:
        """Keys possibly intersecting ``rect`` within the time window."""
        return self.candidates_in_cube(
            Cube(rect.xmin, rect.ymin, as_time(t0), rect.xmax, rect.ymax, as_time(t1))
        )

    def candidates_near(
        self, moving: MovingPoint, slack: float
    ) -> Set[Hashable]:
        """Keys whose unit cubes come within ``slack`` of any unit of ``moving``."""
        out: Set[Hashable] = set()
        for u in moving.units:
            assert isinstance(u, UPoint)
            c = u.bounding_cube()
            grown = Cube(
                c.xmin - slack,
                c.ymin - slack,
                c.tmin,
                c.xmax + slack,
                c.ymax + slack,
                c.tmax,
            )
            out.update(self._tree.search(grown))
        return out
