"""A 3-D R-tree over bounding cubes (x, y, t).

Classic Guttman R-tree with the quadratic split heuristic.  Entries are
``(cube, payload)`` pairs; searches return payloads of all entries whose
cube intersects the query cube.  Used by the spatio-temporal join
benchmarks as the filter step ablation.

Static entry sets can skip incremental insertion entirely:
:meth:`RTree3D.bulk_load` packs them with a 3-D sort-tile-recursive
(STR) pass — sort by x-center into slabs, by y-center into runs, by
t-center into full leaves, then pack the upper levels the same way.
Packed nodes are near-full and spatially tight, so searches visit no
more nodes than on the incrementally grown tree, and construction is one
O(n log n) sort cascade instead of n root-to-leaf descents.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Iterator, List, Optional, Tuple

from repro import obs
from repro.errors import InvalidValue
from repro.spatial.bbox import Cube


class _Node:
    __slots__ = ("leaf", "entries", "cube")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        # Leaf entries: (cube, payload); inner entries: (cube, child node).
        self.entries: List[Tuple[Cube, Any]] = []
        self.cube: Optional[Cube] = None

    def recompute_cube(self) -> None:
        cube = None
        for c, _ in self.entries:
            cube = c if cube is None else cube.union(c)
        self.cube = cube


class RTree3D:
    """An R-tree over 3-D cubes with configurable fan-out."""

    def __init__(self, max_entries: int = 8):
        if max_entries < 4:
            raise InvalidValue("R-tree needs max_entries >= 4")
        self._max = max_entries
        self._min = max(2, max_entries // 3)
        self._root = _Node(leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def max_entries(self) -> int:
        """The configured node fan-out."""
        return self._max

    # -- bulk loading (STR) -------------------------------------------------

    @classmethod
    def bulk_load(
        cls, entries: Iterable[Tuple[Cube, Any]], max_entries: int = 8
    ) -> "RTree3D":
        """Build a packed tree over a static entry set (STR packing).

        Accepts the same ``(cube, payload)`` pairs as :meth:`insert` and
        answers searches identically; later incremental inserts into the
        packed tree work as usual.  Counts the loaded entries under
        ``rtree.bulk_loaded``.
        """
        tree = cls(max_entries)
        items = list(entries)
        if not items:
            return tree
        nodes = [_packed_node(group, leaf=True)
                 for group in _str_tiles(items, max_entries)]
        while len(nodes) > 1:
            upper = [(node.cube, node) for node in nodes]
            nodes = [_packed_node(group, leaf=False)
                     for group in _str_tiles(upper, max_entries)]
        tree._root = nodes[0]
        tree._size = len(items)
        if obs.enabled:
            obs.counters.add("rtree.bulk_loaded", len(items))
        return tree

    # -- insertion ----------------------------------------------------------

    def insert(self, cube: Cube, payload: Any) -> None:
        """Insert one entry."""
        split = self._insert(self._root, cube, payload)
        if split is not None:
            # Root split: grow the tree by one level.
            old_root = self._root
            new_root = _Node(leaf=False)
            old_root.recompute_cube()
            split.recompute_cube()
            assert old_root.cube is not None and split.cube is not None
            new_root.entries = [(old_root.cube, old_root), (split.cube, split)]
            new_root.recompute_cube()
            self._root = new_root
        self._size += 1

    def _insert(self, node: _Node, cube: Cube, payload: Any) -> Optional[_Node]:
        if node.leaf:
            node.entries.append((cube, payload))
            node.recompute_cube()
            if len(node.entries) > self._max:
                return self._split(node)
            return None
        # Choose the subtree needing least volume enlargement.
        best_idx = 0
        best_cost = None
        for i, (c, _child) in enumerate(node.entries):
            cost = (c.enlargement(cube), c.volume)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_idx = i
        child_cube, child = node.entries[best_idx]
        split = self._insert(child, cube, payload)
        child.recompute_cube()
        assert child.cube is not None
        node.entries[best_idx] = (child.cube, child)
        if split is not None:
            split.recompute_cube()
            assert split.cube is not None
            node.entries.append((split.cube, split))
        node.recompute_cube()
        if len(node.entries) > self._max:
            return self._split(node)
        return None

    def _split(self, node: _Node) -> _Node:
        """Quadratic split: seed with the most wasteful pair."""
        entries = node.entries
        worst = None
        seeds = (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                waste = (
                    entries[i][0].union(entries[j][0]).volume
                    - entries[i][0].volume
                    - entries[j][0].volume
                )
                if worst is None or waste > worst:
                    worst = waste
                    seeds = (i, j)
        i, j = seeds
        group_a = [entries[i]]
        group_b = [entries[j]]
        cube_a = entries[i][0]
        cube_b = entries[j][0]
        rest = [e for k, e in enumerate(entries) if k not in (i, j)]
        for entry in rest:
            # Honour the minimum fill requirement.
            remaining = len(rest) - (len(group_a) + len(group_b) - 2)
            if len(group_a) + remaining <= self._min:
                group_a.append(entry)
                cube_a = cube_a.union(entry[0])
                continue
            if len(group_b) + remaining <= self._min:
                group_b.append(entry)
                cube_b = cube_b.union(entry[0])
                continue
            grow_a = cube_a.enlargement(entry[0])
            grow_b = cube_b.enlargement(entry[0])
            if (grow_a, cube_a.volume) <= (grow_b, cube_b.volume):
                group_a.append(entry)
                cube_a = cube_a.union(entry[0])
            else:
                group_b.append(entry)
                cube_b = cube_b.union(entry[0])
        node.entries = group_a
        node.recompute_cube()
        sibling = _Node(leaf=node.leaf)
        sibling.entries = group_b
        sibling.recompute_cube()
        return sibling

    # -- search ----------------------------------------------------------------

    def search(self, query: Cube) -> Iterator[Any]:
        """Yield payloads of all entries whose cube intersects ``query``."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if obs.enabled:
                obs.counters.add("rtree.nodes_visited")
            if node.cube is not None and not node.cube.intersects(query):
                continue
            for cube, item in node.entries:
                if not cube.intersects(query):
                    continue
                if node.leaf:
                    yield item
                else:
                    stack.append(item)

    def search_list(self, query: Cube) -> List[Any]:
        """Materialized :meth:`search`."""
        return list(self.search(query))

    # -- introspection ------------------------------------------------------------

    def height(self) -> int:
        """Tree height (1 = a single leaf)."""
        h = 1
        node = self._root
        while not node.leaf:
            node = node.entries[0][1]
            h += 1
        return h

    def node_count(self) -> int:
        """Total node count."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.leaf:
                stack.extend(child for _c, child in node.entries)
        return count


# -- STR packing helpers ------------------------------------------------------


def _center(cube: Cube) -> Tuple[float, float, float]:
    return (
        (cube.xmin + cube.xmax) / 2.0,
        (cube.ymin + cube.ymax) / 2.0,
        (cube.tmin + cube.tmax) / 2.0,
    )


def _str_tiles(
    entries: List[Tuple[Cube, Any]], max_entries: int
) -> List[List[Tuple[Cube, Any]]]:
    """Partition entries into node-sized groups by sort-tile-recursion.

    The 3-D generalization of the classic STR heuristic: with
    ``P = ceil(n / max_entries)`` target nodes, cut ``ceil(P^(1/3))``
    vertical slabs along the x centers, within each slab
    ``ceil(sqrt(slab nodes))`` runs along the y centers, and fill nodes
    along the t centers inside each run.
    """
    n = len(entries)
    if n <= max_entries:
        return [entries]
    target_nodes = math.ceil(n / max_entries)
    n_slabs = math.ceil(target_nodes ** (1.0 / 3.0))
    by_x = sorted(entries, key=lambda e: _center(e[0])[0])
    slab_size = math.ceil(n / n_slabs)
    groups: List[List[Tuple[Cube, Any]]] = []
    for si in range(0, n, slab_size):
        slab = sorted(
            by_x[si : si + slab_size], key=lambda e: _center(e[0])[1]
        )
        slab_nodes = math.ceil(len(slab) / max_entries)
        n_runs = math.ceil(math.sqrt(slab_nodes))
        run_size = math.ceil(len(slab) / n_runs)
        for ri in range(0, len(slab), run_size):
            run = sorted(
                slab[ri : ri + run_size], key=lambda e: _center(e[0])[2]
            )
            for ti in range(0, len(run), max_entries):
                groups.append(run[ti : ti + max_entries])
    return groups


def _packed_node(group: List[Tuple[Cube, Any]], leaf: bool) -> _Node:
    node = _Node(leaf=leaf)
    node.entries = group
    node.recompute_cube()
    return node
