"""Shared-memory packing of columnar fleets (zero-copy worker access).

A column is a handful of contiguous numpy arrays (:mod:`repro.vector.
columns`).  To hand a column to pool workers without pickling megabytes
per task, the arrays are copied **once** into a ``multiprocessing.
shared_memory`` segment; what crosses the process boundary afterwards is
a tiny *descriptor* — ``(kind, segment name, field layout)`` — from
which a worker reconstructs the column as numpy views over the mapped
segment.  Workers therefore read the exact bytes the parent packed:
zero copies, bit-identical kernel inputs.

Lifetime: the parent keeps a registry entry per packed column, tied to
the column's lifetime with ``weakref.finalize`` — when the column is
garbage collected (or the interpreter exits) the segment is closed and
unlinked.  Workers unregister their attachments from multiprocessing's
resource tracker: the *owner* unlinks, an attaching process must not.
"""

from __future__ import annotations

import multiprocessing
import weakref
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.errors import InvalidValue
from repro.vector.columns import BBoxColumn, UPointColumn, URealColumn

#: Per-kind field order: names of the arrays that make up each column.
FIELDS: Dict[str, Tuple[str, ...]] = {
    "upoint": ("offsets", "starts", "ends", "lc", "rc", "x0", "x1", "y0", "y1"),
    "ureal": ("offsets", "starts", "ends", "lc", "rc", "a", "b", "c", "r"),
    "bbox": ("xmin", "ymin", "tmin", "xmax", "ymax", "tmax"),
}

#: A picklable shared-column handle: (kind, segment name, field layout),
#: the layout being ``(field, dtype, length, byte offset)`` tuples.
Descriptor = Tuple[str, str, Tuple[Tuple[str, str, int, int], ...]]


def _kind_of(col: Any) -> str:
    if isinstance(col, UPointColumn):
        return "upoint"
    if isinstance(col, URealColumn):
        return "ureal"
    if isinstance(col, BBoxColumn):
        return "bbox"
    raise InvalidValue(f"cannot share a {type(col).__name__}")


def _align8(n: int) -> int:
    return (n + 7) & ~7


def pack(col: Any) -> Tuple[Descriptor, shared_memory.SharedMemory]:
    """Copy ``col``'s arrays into a fresh shared-memory segment.

    Returns the descriptor plus the owning segment handle; the caller is
    responsible for eventually ``close()`` + ``unlink()`` (see
    :func:`shared_descriptor` for the registry that automates this).
    """
    kind = _kind_of(col)
    layout: List[Tuple[str, str, int, int]] = []
    arrays: List[Tuple[int, np.ndarray]] = []
    offset = 0
    for field in FIELDS[kind]:
        arr = np.ascontiguousarray(getattr(col, field))
        offset = _align8(offset)
        layout.append((field, arr.dtype.str, len(arr), offset))
        arrays.append((offset, arr))
        offset += arr.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for off, arr in arrays:
        dst = np.frombuffer(shm.buf, dtype=arr.dtype, count=len(arr), offset=off)
        dst[:] = arr
    return (kind, shm.name, tuple(layout)), shm


class AttachedColumn:
    """A column whose arrays are views over an attached shared segment."""

    __slots__ = ("shm", "column")

    def __init__(self, shm: shared_memory.SharedMemory, column: Any):
        self.shm = shm
        self.column = column

    def close(self) -> None:
        try:
            self.shm.close()
        except OSError:
            pass


def attach(descriptor: Descriptor) -> AttachedColumn:
    """Open a packed column in this process (typically a pool worker)."""
    kind, name, layout = descriptor
    shm = shared_memory.SharedMemory(name=name)
    # Fork-context pool workers share the parent's resource tracker, so
    # the attach-side registration is an idempotent no-op there and the
    # segment stays owned (and eventually unlinked) by the packing
    # parent.  Under a spawn context each child has its own tracker,
    # which would unlink the parent's segment at child exit — drop the
    # child-side registration in that case only.
    if multiprocessing.get_start_method(allow_none=True) == "spawn":  # pragma: no cover
        try:
            resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:
            pass
    fields = {
        field: np.frombuffer(shm.buf, dtype=np.dtype(dt), count=n, offset=off)
        for field, dt, n, off in layout
    }
    if kind == "bbox":
        column: Any = BBoxColumn(
            list(range(len(fields["xmin"]))),
            **{f: fields[f] for f in FIELDS["bbox"]},
        )
    elif kind == "ureal":
        column = URealColumn(*(fields[f] for f in FIELDS["ureal"]))
    else:
        column = UPointColumn(*(fields[f] for f in FIELDS["upoint"]))
    return AttachedColumn(shm, column)


# ---------------------------------------------------------------------------
# Chunk views: the object/entry range a single worker operates on
# ---------------------------------------------------------------------------


def chunk_units(col: Any, lo: int, hi: int) -> Any:
    """Object-range ``[lo, hi)`` slice of a unit column, (nearly) zero-copy.

    The per-unit arrays are plain views; only the small per-object
    offsets array is rebased.  Works for ``UPointColumn`` and
    ``URealColumn`` alike.
    """
    kind = _kind_of(col)
    offsets = col.offsets
    u0, u1 = int(offsets[lo]), int(offsets[hi])
    rebased = offsets[lo : hi + 1] - u0
    fields = [getattr(col, f)[u0:u1] for f in FIELDS[kind][1:]]
    return type(col)(rebased, *fields)


def chunk_bbox(col: BBoxColumn, lo: int, hi: int) -> BBoxColumn:
    """Entry-range ``[lo, hi)`` slice of a bounding-box column."""
    return BBoxColumn(
        col.keys[lo:hi],
        *(getattr(col, f)[lo:hi] for f in FIELDS["bbox"]),
    )


# ---------------------------------------------------------------------------
# Parent-side registry: one segment per live column
# ---------------------------------------------------------------------------


class _Segment:
    __slots__ = ("descriptor", "ref", "finalizer")

    def __init__(
        self,
        descriptor: Descriptor,
        ref: "weakref.ref[Any]",
        finalizer: weakref.finalize,
    ):
        self.descriptor = descriptor
        self.ref = ref
        self.finalizer = finalizer


_SEGMENTS: Dict[int, _Segment] = {}


def _release(key: int, shm: shared_memory.SharedMemory) -> None:
    _SEGMENTS.pop(key, None)
    try:
        shm.close()
        shm.unlink()
    except OSError:
        pass


def shared_descriptor(col: Any) -> Descriptor:
    """The (cached) shared-memory descriptor of ``col``.

    Packs on first call; subsequent calls for the same live column reuse
    the segment.  The segment is released when the column is collected.
    """
    key = id(col)
    seg = _SEGMENTS.get(key)
    if seg is not None and seg.ref() is col:
        return seg.descriptor
    descriptor, shm = pack(col)
    finalizer = weakref.finalize(col, _release, key, shm)
    _SEGMENTS[key] = _Segment(descriptor, weakref.ref(col), finalizer)
    return descriptor


def release_all() -> None:
    """Unlink every registered segment now (tests, benchmarks)."""
    for seg in list(_SEGMENTS.values()):
        seg.finalizer()
    _SEGMENTS.clear()
