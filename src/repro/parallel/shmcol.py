"""Shared-memory packing of columnar fleets (zero-copy worker access).

A column is a handful of contiguous numpy arrays (:mod:`repro.vector.
columns`).  To hand a column to pool workers without pickling megabytes
per task, the arrays are copied **once** into a ``multiprocessing.
shared_memory`` segment; what crosses the process boundary afterwards is
a tiny *descriptor* — ``(kind, segment name, field layout)`` — from
which a worker reconstructs the column as numpy views over the mapped
segment.  Workers therefore read the exact bytes the parent packed:
zero copies, bit-identical kernel inputs.

Lifetime: the parent keeps a registry entry per packed column, tied to
the column's lifetime with ``weakref.finalize`` — when the column is
garbage collected (or the interpreter exits) the segment is closed and
unlinked.  Workers unregister their attachments from multiprocessing's
resource tracker: the *owner* unlinks, an attaching process must not.

Columns backed by the persistent store (:mod:`repro.vector.store`)
skip shared memory entirely: their descriptor carries an ``mmap://``
scheme naming the store directory and manifest generation, and each
worker memory-maps the same files the parent did (counted under
``colstore.mmap_direct``).  When the store on disk no longer matches
the column's generation the dispatch falls back to the shm copy path
(counted under ``colstore.mmap_fallback``) — same bytes, higher cost.
"""

from __future__ import annotations

import multiprocessing
import weakref
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro import faults, obs
from repro.errors import CorruptColumnError, InvalidValue
from repro.vector.columns import BBoxColumn, UPointColumn, URealColumn

#: Per-kind field order: names of the arrays that make up each column.
FIELDS: Dict[str, Tuple[str, ...]] = {
    "upoint": ("offsets", "starts", "ends", "lc", "rc", "x0", "x1", "y0", "y1"),
    "ureal": ("offsets", "starts", "ends", "lc", "rc", "a", "b", "c", "r"),
    "bbox": ("xmin", "ymin", "tmin", "xmax", "ymax", "tmax"),
}

#: A picklable shared-column handle: (kind, segment name, field layout),
#: the layout being ``(field, dtype, length, byte offset)`` tuples.
#: Persistent-store columns use the name ``mmap://<crc>:<root>`` with an
#: empty layout — workers reconstruct the column from the files, not
#: from a segment.
Descriptor = Tuple[str, str, Tuple[Tuple[str, str, int, int], ...]]

_MMAP_PREFIX = "mmap://"


def _scheme_of(name: str) -> str:
    """Transport scheme of a descriptor name: ``"mmap"`` or ``"shm"``."""
    return "mmap" if name.startswith(_MMAP_PREFIX) else "shm"


def _mmap_fallback(reason: str) -> None:
    """Count one mmap→shm dispatch downgrade (store stale or unreadable)."""
    if obs.enabled:
        obs.add("colstore.mmap_fallback")
        obs.add(f"colstore.mmap_fallback.{reason}")


def _kind_of(col: Any) -> str:
    if isinstance(col, UPointColumn):
        return "upoint"
    if isinstance(col, URealColumn):
        return "ureal"
    if isinstance(col, BBoxColumn):
        return "bbox"
    raise InvalidValue(f"cannot share a {type(col).__name__}")


def _align8(n: int) -> int:
    return (n + 7) & ~7


def pack(col: Any) -> Tuple[Descriptor, shared_memory.SharedMemory]:
    """Copy ``col``'s arrays into a fresh shared-memory segment.

    Returns the descriptor plus the owning segment handle; the caller is
    responsible for eventually ``close()`` + ``unlink()`` (see
    :func:`shared_descriptor` for the registry that automates this).
    """
    kind = _kind_of(col)
    layout: List[Tuple[str, str, int, int]] = []
    arrays: List[Tuple[int, np.ndarray]] = []
    offset = 0
    for field in FIELDS[kind]:
        arr = np.ascontiguousarray(getattr(col, field))
        offset = _align8(offset)
        layout.append((field, arr.dtype.str, len(arr), offset))
        arrays.append((offset, arr))
        offset += arr.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    # From here the segment exists in the OS namespace: if the copy loop
    # dies (a dtype surprise, an injected crash) before the caller gets
    # the handle, nobody would ever close()+unlink() it — a leak that
    # outlives the process.  Reclaim on *any* failure, then re-raise.
    try:
        for off, arr in arrays:
            if faults.active:
                faults.fail("shmcol.pack_crash")
            # memoryview slice assignment leaves no exported pointer
            # into the segment behind, so the reclaim path below can
            # still close() it.
            shm.buf[off : off + arr.nbytes] = arr.tobytes()
    except BaseException:
        if obs.enabled:
            obs.add("parallel.shm_reclaimed")
        try:
            shm.unlink()
        except OSError:  # pragma: no cover - best-effort reclaim
            pass
        try:
            shm.close()
        except (OSError, BufferError):  # pragma: no cover - best-effort
            pass
        raise
    return (kind, shm.name, tuple(layout)), shm


class AttachedColumn:
    """A column whose arrays are views over an attached shared segment,
    or over memory-mapped store files (``shm is None``)."""

    __slots__ = ("shm", "column")

    def __init__(self, shm: Optional[shared_memory.SharedMemory], column: Any):
        self.shm = shm
        self.column = column

    def close(self) -> None:
        if self.shm is None:
            return  # mmap-backed: the memmap closes with the column
        try:
            self.shm.close()
        except (OSError, BufferError):
            # BufferError: column views over the segment are still
            # referenced; the map is released when they are collected.
            pass


def _attach_mmap(kind: str, name: str) -> AttachedColumn:
    """Open an ``mmap://`` descriptor: map the store files directly.

    The descriptor pins the manifest generation (its CRC); if the store
    on disk was rebuilt since the parent dispatched, the generation no
    longer matches and this raises :class:`CorruptColumnError` rather
    than serving bytes from a different fleet.
    """
    from repro.vector.store import ColumnStore

    crc_text, _, root = name[len(_MMAP_PREFIX):].partition(":")
    try:
        crc = int(crc_text)
    except ValueError as exc:
        raise CorruptColumnError(f"malformed mmap descriptor {name!r}") from exc
    column = ColumnStore(root)._load(kind)
    if column.source is None or column.source.manifest_crc != crc:
        raise CorruptColumnError(
            f"column store at {root!r} is no longer generation {crc:#010x}"
        )
    return AttachedColumn(None, column)


def attach(descriptor: Descriptor) -> AttachedColumn:
    """Open a packed column in this process (typically a pool worker)."""
    kind, name, layout = descriptor
    if _scheme_of(name) == "mmap":
        return _attach_mmap(kind, name)
    shm = shared_memory.SharedMemory(name=name)
    # Fork-context pool workers share the parent's resource tracker, so
    # the attach-side registration is an idempotent no-op there and the
    # segment stays owned (and eventually unlinked) by the packing
    # parent.  Under a spawn context each child has its own tracker,
    # which would unlink the parent's segment at child exit — drop the
    # child-side registration in that case only.
    if multiprocessing.get_start_method(allow_none=True) == "spawn":  # pragma: no cover
        try:
            resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:
            pass
    fields = {
        field: np.frombuffer(shm.buf, dtype=np.dtype(dt), count=n, offset=off)
        for field, dt, n, off in layout
    }
    if kind == "bbox":
        column: Any = BBoxColumn(
            list(range(len(fields["xmin"]))),
            **{f: fields[f] for f in FIELDS["bbox"]},
        )
    elif kind == "ureal":
        column = URealColumn(*(fields[f] for f in FIELDS["ureal"]))
    else:
        column = UPointColumn(*(fields[f] for f in FIELDS["upoint"]))
    return AttachedColumn(shm, column)


# ---------------------------------------------------------------------------
# Chunk views: the object/entry range a single worker operates on
# ---------------------------------------------------------------------------


def chunk_units(col: Any, lo: int, hi: int) -> Any:
    """Object-range ``[lo, hi)`` slice of a unit column, (nearly) zero-copy.

    The per-unit arrays are plain views; only the small per-object
    offsets array is rebased.  Works for ``UPointColumn`` and
    ``URealColumn`` alike.
    """
    kind = _kind_of(col)
    offsets = col.offsets
    u0, u1 = int(offsets[lo]), int(offsets[hi])
    rebased = offsets[lo : hi + 1] - u0
    fields = [getattr(col, f)[u0:u1] for f in FIELDS[kind][1:]]
    return type(col)(rebased, *fields)


def chunk_bbox(col: BBoxColumn, lo: int, hi: int) -> BBoxColumn:
    """Entry-range ``[lo, hi)`` slice of a bounding-box column."""
    return BBoxColumn(
        col.keys[lo:hi],
        *(getattr(col, f)[lo:hi] for f in FIELDS["bbox"]),
    )


# ---------------------------------------------------------------------------
# Parent-side registry: one segment per live column
# ---------------------------------------------------------------------------


class _Segment:
    __slots__ = ("descriptor", "ref", "finalizer")

    def __init__(
        self,
        descriptor: Descriptor,
        ref: "weakref.ref[Any]",
        finalizer: weakref.finalize,
    ):
        self.descriptor = descriptor
        self.ref = ref
        self.finalizer = finalizer


_SEGMENTS: Dict[int, _Segment] = {}


def _release(key: int, shm: shared_memory.SharedMemory) -> None:
    _SEGMENTS.pop(key, None)
    try:
        shm.close()
        shm.unlink()
    except OSError:
        pass


def _mmap_descriptor(col: Any) -> Optional[Descriptor]:
    """An ``mmap://`` descriptor for a store-backed column, if still valid.

    Re-checks the store's manifest CRC against the column's generation:
    a store rebuilt on disk since this column was opened must not be
    dispatched (workers would map different bytes than the parent
    holds).  Returns None — after counting the downgrade — when the
    store cannot serve, and the caller packs to shared memory instead.
    """
    source = getattr(col, "source", None)
    if source is None:
        return None
    from repro.vector.store import ColumnStore

    try:
        _payload, crc = ColumnStore(source.root)._manifest()
    except CorruptColumnError:
        _mmap_fallback("manifest")
        return None
    if crc != source.manifest_crc:
        _mmap_fallback("stale")
        return None
    if obs.enabled:
        obs.add("colstore.mmap_direct")
    return (
        _kind_of(col),
        f"{_MMAP_PREFIX}{source.manifest_crc}:{source.root}",
        (),
    )


def shared_descriptor(col: Any) -> Descriptor:
    """The (cached) transport descriptor of ``col``.

    Store-backed columns get an ``mmap://`` descriptor — workers map
    the same files, no copy.  Everything else packs into shared memory
    on first call; subsequent calls for the same live column reuse the
    segment, which is released when the column is collected.
    """
    key = id(col)
    seg = _SEGMENTS.get(key)
    if seg is not None and seg.ref() is col:
        return seg.descriptor
    descriptor = _mmap_descriptor(col)
    if descriptor is not None:
        return descriptor
    descriptor, shm = pack(col)
    finalizer = weakref.finalize(col, _release, key, shm)
    _SEGMENTS[key] = _Segment(descriptor, weakref.ref(col), finalizer)
    return descriptor


def release_all() -> None:
    """Unlink every registered segment now (tests, benchmarks)."""
    for seg in list(_SEGMENTS.values()):
        seg.finalizer()
    _SEGMENTS.clear()
