"""Process-pool execution layer over the columnar backend.

The third fleet backend (``--backend parallel``): columns are packed
into ``multiprocessing.shared_memory`` segments once, pool workers run
the ordinary batch kernels zero-copy on unit-balanced chunks, and every
entry point degrades to a *counted* single-process fallback
(``parallel.fallback.*``) when the pool cannot help — small fleets,
one-worker configurations, or pool failures.  See DESIGN.md for how a
chunk maps back to a contiguous run of Section-4 stacked root records.
"""

from __future__ import annotations

from repro.parallel.exec import (
    chunk_bounds,
    group_intervals,
    parallel_atinstant,
    parallel_bbox_filter,
    parallel_count_inside,
    parallel_present,
    parallel_window_intervals,
)
from repro.parallel.pool import (
    effective_workers,
    get_workers,
    set_workers,
    shutdown,
)
from repro.parallel.shmcol import attach, pack, release_all, shared_descriptor

__all__ = [
    "attach",
    "chunk_bounds",
    "effective_workers",
    "get_workers",
    "group_intervals",
    "pack",
    "parallel_atinstant",
    "parallel_bbox_filter",
    "parallel_count_inside",
    "parallel_present",
    "parallel_window_intervals",
    "release_all",
    "set_workers",
    "shared_descriptor",
    "shutdown",
]
