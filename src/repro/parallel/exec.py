"""Chunked parallel execution of the columnar batch kernels.

Each public function here is the ``parallel``-backend twin of one
single-process kernel: the column is packed into shared memory once
(:mod:`repro.parallel.shmcol`), split into per-worker chunks balanced by
*unit* count (objects differ in unit count, so an even object split
would skew the work), and the ordinary :mod:`repro.vector.kernels`
batch kernel runs zero-copy on every chunk concurrently.

Fallback discipline (MOD005): every entry point degrades to the exact
single-process kernel — counted under ``parallel.fallback`` plus a
per-reason counter — when the resolved worker count is ≤ 1
(``.workers``), the fleet is below ``config.PARALLEL_MIN_OBJECTS``
(``.small_fleet``), the pool or segment cannot be created
(``.no_pool``), or a dispatched task fails for a non-library reason
(``.error``; library errors such as ``InvalidValue`` re-raise, matching
the single-process behaviour).  Results are therefore always exactly
the single-process results, chunked or not.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro import config, obs
from repro.errors import ReproError
from repro.parallel import pool, shmcol
from repro.spatial.bbox import Cube, Rect
from repro.spatial.region import Region
from repro.vector.columns import BBoxColumn, UPointColumn
from repro.vector.kernels import (
    atinstant_batch,
    bbox_filter_batch,
    inside_prefilter,
    locate_units,
    window_intervals_batch,
)


def _parallel_fallback(reason: str) -> None:
    """Count one degradation to single-process execution."""
    if obs.enabled:
        obs.counters.add("parallel.fallback")
        obs.counters.add(f"parallel.fallback.{reason}")


def chunk_bounds(
    offsets: Optional[np.ndarray], n_items: int, chunks: int
) -> List[Tuple[int, int]]:
    """Split ``n_items`` objects into ≤ ``chunks`` ranges, unit-balanced.

    With a CSR ``offsets`` array the cut points aim at equal *unit*
    counts per chunk (the kernels' real cost driver); without one the
    split is an even item split.  Empty ranges are dropped.
    """
    if chunks <= 1 or n_items <= 1:
        return [(0, n_items)] if n_items else []
    if offsets is not None and int(offsets[-1]) > 0:
        total = int(offsets[-1])
        targets = [round(i * total / chunks) for i in range(chunks + 1)]
        cuts = np.searchsorted(offsets, targets, side="left").tolist()
        cuts[0], cuts[-1] = 0, n_items
    else:
        cuts = [round(i * n_items / chunks) for i in range(chunks + 1)]
    return [(int(a), int(b)) for a, b in zip(cuts[:-1], cuts[1:]) if b > a]


def _dispatch(
    op: str,
    col: Any,
    n_items: int,
    offsets: Optional[np.ndarray],
    extra: Tuple[Any, ...],
    workers: Optional[int],
) -> Optional[List[Any]]:
    """Run ``op`` chunked over the pool; ``None`` = caller runs in-process.

    The common plumbing behind every ``parallel_*`` entry point:
    resolves the worker count, applies the counted fallback policy,
    packs/attaches the shared column, and merges worker counter
    snapshots when profiling.
    """
    n_workers = pool.effective_workers(workers)
    if n_workers <= 1:
        _parallel_fallback("workers")
        return None
    if n_items < config.PARALLEL_MIN_OBJECTS:
        _parallel_fallback("small_fleet")
        return None
    try:
        descriptor = shmcol.shared_descriptor(col)
        pool.get_pool(n_workers)
    except (OSError, ValueError):
        _parallel_fallback("no_pool")
        return None
    bounds = chunk_bounds(offsets, n_items, n_workers)
    payloads = [
        (op, descriptor, lo, hi, extra, obs.enabled) for lo, hi in bounds
    ]
    try:
        results = pool.run_tasks(n_workers, payloads)
    except ReproError:
        raise  # library errors behave exactly as in-process
    except pool.PoolBroken:
        # Workers kept dying after a full respawn: stop betting on the
        # pool and finish the query in-process (correct, just slower).
        _parallel_fallback("pool_broken")
        return None
    except Exception:
        pool.shutdown()  # the pool may be wedged; rebuild lazily
        _parallel_fallback("error")
        return None
    if obs.enabled:
        obs.counters.add("parallel.chunks", len(bounds))
        for _out, snap in results:
            if snap is not None:
                pool._merge_counters(snap)
    return [out for out, _snap in results]


# ---------------------------------------------------------------------------
# Public entry points: one per batch kernel
# ---------------------------------------------------------------------------


def parallel_atinstant(
    col: UPointColumn, t: float, workers: Optional[int] = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Chunked :func:`repro.vector.kernels.atinstant_batch`."""
    chunks = _dispatch(
        "atinstant", col, col.n_objects, col.offsets, (float(t),), workers
    )
    if chunks is None:
        return atinstant_batch(col, t)
    return (
        np.concatenate([c[0] for c in chunks]),
        np.concatenate([c[1] for c in chunks]),
        np.concatenate([c[2] for c in chunks]),
    )


def parallel_present(
    col: UPointColumn, t: float, workers: Optional[int] = None
) -> np.ndarray:
    """Chunked definedness test (:func:`locate_units`'s ``defined``)."""
    chunks = _dispatch(
        "present", col, col.n_objects, col.offsets, (float(t),), workers
    )
    if chunks is None:
        _unit, defined = locate_units(col, t)
        return defined
    return np.concatenate(chunks)


def parallel_bbox_filter(
    col: BBoxColumn, cube: Cube, workers: Optional[int] = None
) -> np.ndarray:
    """Chunked :func:`repro.vector.kernels.bbox_filter_batch`."""
    chunks = _dispatch("bbox", col, len(col), None, (cube,), workers)
    if chunks is None:
        return bbox_filter_batch(col, cube)
    return np.concatenate(chunks)


def parallel_window_intervals(
    col: UPointColumn,
    rect: Rect,
    t0: float,
    t1: float,
    workers: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Chunked :func:`repro.vector.kernels.window_intervals_batch`.

    Chunk boundaries fall *between* objects, and the merged runs of one
    object never span chunks, so concatenating the per-chunk results
    (owners rebased worker-side) is exactly the single-process output.
    """
    chunks = _dispatch(
        "window",
        col,
        col.n_objects,
        col.offsets,
        (rect, float(t0), float(t1)),
        workers,
    )
    if chunks is None:
        return window_intervals_batch(col, rect, t0, t1)
    return (
        np.concatenate([c[0] for c in chunks]),
        np.concatenate([c[1] for c in chunks]),
        np.concatenate([c[2] for c in chunks]),
        np.concatenate([c[3] for c in chunks]),
        np.concatenate([c[4] for c in chunks]),
    )


def parallel_count_inside(
    col: UPointColumn,
    region: Region,
    t: float,
    workers: Optional[int] = None,
) -> int:
    """Chunked snapshot count: atinstant + plumbline prefilter per chunk."""
    chunks = _dispatch(
        "count_inside",
        col,
        col.n_objects,
        col.offsets,
        (float(t), region),
        workers,
    )
    if chunks is None:
        x, y, defined = atinstant_batch(col, t)
        if not bool(defined.any()):
            return 0
        pts = np.column_stack([x[defined], y[defined]])
        return int(np.count_nonzero(inside_prefilter(pts, region)))
    return int(sum(chunks))


def group_intervals(
    owners: np.ndarray,
    s: np.ndarray,
    e: np.ndarray,
    lc: np.ndarray,
    rc: np.ndarray,
    keys: Sequence[Any],
) -> List[Tuple[Any, Any]]:
    """Assemble kernel interval rows into ``(key, RangeSet)`` results.

    Rows arrive grouped by owner in canonical time order (see
    ``window_intervals_batch``), so each owner's slice already satisfies
    the ``RangeSet`` ordering/disjointness invariants and goes straight
    through the validating constructor.
    """
    from repro.ranges.interval import Interval
    from repro.ranges.rangeset import RangeSet

    out: List[Tuple[Any, Any]] = []
    if len(owners) == 0:
        return out
    split_at = np.flatnonzero(owners[1:] != owners[:-1]) + 1
    starts = np.concatenate(([0], split_at))
    ends = np.concatenate((split_at, [len(owners)]))
    for a, b in zip(starts, ends):
        ivs = [
            Interval(float(s[j]), float(e[j]), bool(lc[j]), bool(rc[j]))
            for j in range(a, b)
        ]
        out.append((keys[int(owners[a])], RangeSet(ivs)))
    return out
