"""The worker pool of the ``parallel`` backend.

One lazily created ``fork``-context process pool per parent process.
Workers receive tiny payloads — a shared-column descriptor plus an
object range — attach the segment once (a small LRU of attachments is
kept per worker), take a zero-copy chunk view, and run the ordinary
batch kernels of :mod:`repro.vector.kernels` on it.

Observability crosses the process boundary explicitly: when the parent
is profiling, each task runs under ``obs.capture`` and ships its counter
snapshot back with the result; the parent merges the snapshots so
``vector.*`` kernel counters stay accurate under ``--backend parallel``.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from collections import OrderedDict
from typing import Any, Dict, Mapping, Optional, Tuple

from repro import config, obs
from repro.analysis import dynlock
from repro.errors import InvalidValue
from repro.parallel import shmcol

# ---------------------------------------------------------------------------
# Worker-count policy
# ---------------------------------------------------------------------------

_workers_override: Optional[int] = None


def set_workers(n: Optional[int]) -> None:
    """Set this process's default worker count (``None`` = use config).

    ``0`` means "one worker per CPU core".  The CLI's ``--workers`` flag
    lands here.
    """
    global _workers_override
    if n is not None:
        n = int(n)
        if n < 0:
            raise InvalidValue(f"workers must be >= 0, got {n}")
    _workers_override = n


def get_workers() -> Optional[int]:
    """The process-wide worker-count override, if any."""
    return _workers_override


def effective_workers(requested: Optional[int] = None) -> int:
    """Resolve a per-call ``workers=`` value to a concrete pool size."""
    n = requested if requested is not None else _workers_override
    if n is None:
        n = config.DEFAULT_WORKERS
    n = int(n)
    if n < 0:
        raise InvalidValue(f"workers must be >= 0, got {n}")
    if n == 0:
        n = os.cpu_count() or 1
    return n


# ---------------------------------------------------------------------------
# Pool lifecycle
# ---------------------------------------------------------------------------

_pool: Optional[Any] = None
_pool_size = 0

# Serializes pool (re)creation and shutdown.  The query service reaches
# get_pool() from several asyncio.to_thread workers at once; unguarded,
# two racing creators would each fork a pool and the loser's processes
# leak.  Safe across fork(): the lock is only ever held by the parent's
# control path — worker children never touch this module's lifecycle
# functions, and they exit via os._exit (no atexit), so a copy
# inherited held is inert.
# modlint: disable=MOD010 parent-side control lock, never held by worker code; a fork-inherited held copy is unreachable in the child
_POOL_LOCK = dynlock.rlock("parallel.pool")


def get_pool(n: int) -> Any:
    """The shared pool, (re)created to hold exactly ``n`` workers."""
    global _pool, _pool_size
    with _POOL_LOCK:
        if _pool is not None and _pool_size != n:
            shutdown()
        if _pool is None:
            if "fork" in multiprocessing.get_all_start_methods():
                ctx = multiprocessing.get_context("fork")
            else:  # pragma: no cover - non-POSIX fallback
                ctx = multiprocessing.get_context()
            _pool = ctx.Pool(processes=n)
            _pool_size = n
            if obs.enabled:
                obs.counters.high_water("parallel.workers", n)
        return _pool


def shutdown() -> None:
    """Terminate the pool (idempotent; re-created lazily on next use)."""
    global _pool, _pool_size
    with _POOL_LOCK:
        if _pool is not None:
            _pool.terminate()
            _pool.join()
        _pool = None
        _pool_size = 0


atexit.register(shutdown)


def _merge_counters(snapshot: Mapping[str, Any]) -> None:
    """Fold one worker's counter snapshot into this process's counters.

    The names are dynamic here by construction — they are whatever the
    worker-side kernels (whose own call sites the linter *does* check)
    recorded; counters are merged with ``add``, gauges with
    ``high_water``.
    """
    if not obs.enabled:
        return
    for name, value in snapshot.get("counters", {}).items():
        obs.counters.add(name, int(value))
    for name, value in snapshot.get("gauges", {}).items():
        obs.counters.high_water(name, float(value))


# ---------------------------------------------------------------------------
# Worker-side task entry points
# ---------------------------------------------------------------------------

#: Worker-local LRU of attached shared segments, keyed by segment name.
_ATTACHED: "OrderedDict[str, shmcol.AttachedColumn]" = OrderedDict()
_ATTACH_LIMIT = 16


def _attached_column(descriptor: shmcol.Descriptor) -> Any:
    name = descriptor[1]
    wrapper = _ATTACHED.get(name)
    if wrapper is None:
        wrapper = shmcol.attach(descriptor)
        _ATTACHED[name] = wrapper
        while len(_ATTACHED) > _ATTACH_LIMIT:
            _stale, old = _ATTACHED.popitem(last=False)
            old.close()
    else:
        _ATTACHED.move_to_end(name)
    return wrapper.column


def _op_atinstant(col: Any, lo: int, hi: int, extra: Tuple[Any, ...]) -> Any:
    from repro.vector.kernels import atinstant_batch

    (t,) = extra
    return atinstant_batch(shmcol.chunk_units(col, lo, hi), t)


def _op_present(col: Any, lo: int, hi: int, extra: Tuple[Any, ...]) -> Any:
    from repro.vector.kernels import locate_units

    (t,) = extra
    _unit, defined = locate_units(shmcol.chunk_units(col, lo, hi), t)
    return defined


def _op_bbox(col: Any, lo: int, hi: int, extra: Tuple[Any, ...]) -> Any:
    from repro.vector.kernels import bbox_filter_batch

    (cube,) = extra
    return bbox_filter_batch(shmcol.chunk_bbox(col, lo, hi), cube)


def _op_window(col: Any, lo: int, hi: int, extra: Tuple[Any, ...]) -> Any:
    from repro.vector.kernels import window_intervals_batch

    rect, t0, t1 = extra
    owner, s, e, lc, rc = window_intervals_batch(
        shmcol.chunk_units(col, lo, hi), rect, t0, t1
    )
    return owner + lo, s, e, lc, rc  # rebase owners to whole-fleet indices


def _op_count_inside(col: Any, lo: int, hi: int, extra: Tuple[Any, ...]) -> Any:
    import numpy as np

    from repro.vector.kernels import atinstant_batch, inside_prefilter

    t, region = extra
    x, y, defined = atinstant_batch(shmcol.chunk_units(col, lo, hi), t)
    if not defined.any():
        return 0
    pts = np.column_stack([x[defined], y[defined]])
    return int(np.count_nonzero(inside_prefilter(pts, region)))


_OPS = {
    "atinstant": _op_atinstant,
    "present": _op_present,
    "bbox": _op_bbox,
    "window": _op_window,
    "count_inside": _op_count_inside,
}


def run_task(
    payload: Tuple[str, shmcol.Descriptor, int, int, Tuple[Any, ...], bool]
) -> Tuple[Any, Optional[Dict[str, Any]]]:
    """Worker entry point: one op over one chunk of one shared column."""
    op, descriptor, lo, hi, extra, profiled = payload
    col = _attached_column(descriptor)
    if profiled:
        with obs.capture() as counters:
            out = _OPS[op](col, lo, hi, extra)
        snap = counters.snapshot()
        return out, {"counters": snap["counters"], "gauges": snap["gauges"]}
    return _OPS[op](col, lo, hi, extra), None
