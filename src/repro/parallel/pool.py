"""The worker pool of the ``parallel`` backend.

One lazily created ``fork``-context process pool per parent process.
Workers receive tiny payloads — a shared-column descriptor plus an
object range — attach the segment once (a small LRU of attachments is
kept per worker), take a zero-copy chunk view, and run the ordinary
batch kernels of :mod:`repro.vector.kernels` on it.

Observability crosses the process boundary explicitly: when the parent
is profiling, each task runs under ``obs.capture`` and ships its counter
snapshot back with the result; the parent merges the snapshots so
``vector.*`` kernel counters stay accurate under ``--backend parallel``.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import signal
from collections import OrderedDict
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro import config, faults, obs
from repro import deadline as deadline_mod
from repro.analysis import dynlock
from repro.errors import InvalidValue, ReproError
from repro.parallel import shmcol

# ---------------------------------------------------------------------------
# Worker-count policy
# ---------------------------------------------------------------------------

_workers_override: Optional[int] = None


def set_workers(n: Optional[int]) -> None:
    """Set this process's default worker count (``None`` = use config).

    ``0`` means "one worker per CPU core".  The CLI's ``--workers`` flag
    lands here.
    """
    global _workers_override
    if n is not None:
        n = int(n)
        if n < 0:
            raise InvalidValue(f"workers must be >= 0, got {n}")
    _workers_override = n


def get_workers() -> Optional[int]:
    """The process-wide worker-count override, if any."""
    return _workers_override


def effective_workers(requested: Optional[int] = None) -> int:
    """Resolve a per-call ``workers=`` value to a concrete pool size."""
    n = requested if requested is not None else _workers_override
    if n is None:
        n = config.DEFAULT_WORKERS
    n = int(n)
    if n < 0:
        raise InvalidValue(f"workers must be >= 0, got {n}")
    if n == 0:
        n = os.cpu_count() or 1
    return n


# ---------------------------------------------------------------------------
# Pool lifecycle
# ---------------------------------------------------------------------------

_pool: Optional[Any] = None
_pool_size = 0

# Serializes pool (re)creation and shutdown.  The query service reaches
# get_pool() from several asyncio.to_thread workers at once; unguarded,
# two racing creators would each fork a pool and the loser's processes
# leak.  Safe across fork(): the lock is only ever held by the parent's
# control path — worker children never touch this module's lifecycle
# functions, and they exit via os._exit (no atexit), so a copy
# inherited held is inert.
# modlint: disable=MOD010 parent-side control lock, never held by worker code; a fork-inherited held copy is unreachable in the child
_POOL_LOCK = dynlock.rlock("parallel.pool")


def _worker_reset_signals() -> None:
    """Restore default signal dispositions in freshly forked workers.

    Fork workers inherit the parent's Python-level handlers — and the
    CLI matrix commands install drain handlers that *catch* SIGTERM and
    merely set a flag.  A worker blocked on the shared task-queue
    semaphore would then "catch" ``Pool.terminate()``'s SIGTERM, return
    from the handler, and resume waiting: unkillable, hanging the
    terminate-side ``join()`` forever.  SIGTERM must kill a worker;
    SIGINT stays parent-side (the dispatcher drains and retries).
    """
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def get_pool(n: int) -> Any:
    """The shared pool, (re)created to hold exactly ``n`` workers."""
    global _pool, _pool_size
    with _POOL_LOCK:
        if _pool is not None and _pool_size != n:
            shutdown()
        if _pool is None:
            if "fork" in multiprocessing.get_all_start_methods():
                ctx = multiprocessing.get_context("fork")
            else:  # pragma: no cover - non-POSIX fallback
                ctx = multiprocessing.get_context()
            _pool = ctx.Pool(processes=n, initializer=_worker_reset_signals)
            _pool_size = n
            if obs.enabled:
                obs.counters.high_water("parallel.workers", n)
        return _pool


def shutdown() -> None:
    """Terminate the pool (idempotent; re-created lazily on next use)."""
    global _pool, _pool_size
    with _POOL_LOCK:
        if _pool is not None:
            _pool.terminate()
            _pool.join()
        _pool = None
        _pool_size = 0


atexit.register(shutdown)


class PoolBroken(Exception):
    """The pool lost workers twice dispatching one batch.

    An internal control signal for the dispatcher, deliberately *not* a
    :class:`~repro.errors.ReproError`: the executors re-raise library
    errors verbatim but must catch this one and fall back in-process,
    so it needs to be distinguishable from both.
    """


#: How long one ``AsyncResult`` wait runs before the dispatcher checks
#: worker liveness (and the active deadline).  A dead worker's chunk
#: never completes — ``multiprocessing.Pool`` silently repopulates the
#: pool but abandons the in-flight task — so this poll is the *only*
#: thing standing between a SIGKILL and an infinite hang.
_POLL_S = 0.05


def run_tasks(
    n_workers: int,
    payloads: Sequence[Tuple[Any, ...]],
    deadline: Optional[Any] = None,
) -> List[Any]:
    """Dispatch ``payloads`` to the pool, surviving worker deaths.

    The resilient replacement for a bare ``Pool.map``: each chunk is
    dispatched as its own ``AsyncResult`` and the dispatcher polls with
    a bounded wait, comparing the worker processes captured *at
    dispatch* against their exit codes.  A worker death (OOM-killed,
    SIGKILLed by the chaos matrix, segfaulted C extension) is detected
    within ``_POLL_S``; completed chunks are harvested, the pool is
    torn down and respawned once, and only the lost chunks re-run
    (``parallel.worker_deaths``/``parallel.chunk_retries``).  A second
    death raises :class:`PoolBroken` — the caller's cue to finish the
    query in-process rather than chase a dying machine.

    Results are returned in payload order.  ``deadline`` (or the
    thread-local active deadline) is checked at every poll, so an
    expired budget cancels the wait instead of riding it out.
    """
    if deadline is None:
        deadline = deadline_mod.current()
    payloads = list(payloads)
    results: Dict[int, Any] = {}
    pending: List[int] = list(range(len(payloads)))
    respawned = False
    while pending:
        worker_pool = get_pool(n_workers)
        # The liveness probe must watch *this* attempt's workers: Pool
        # quietly replaces dead processes, so a stale capture would see
        # a past generation's corpses and cry wolf forever.
        procs = list(getattr(worker_pool, "_pool", None) or [])
        kill_idx = -1
        if faults.active and should_kill_worker():
            kill_idx = pending[0]
        inflight = [
            (
                idx,
                worker_pool.apply_async(
                    run_task, (tuple(payloads[idx]) + ((idx == kill_idx),),)
                ),
            )
            for idx in pending
        ]
        died = False
        queue = list(inflight)
        while queue:
            idx, ar = queue[0]
            try:
                results[idx] = ar.get(timeout=_POLL_S)
                queue.pop(0)
                continue
            except multiprocessing.TimeoutError:
                pass
            except ReproError:
                raise  # library errors behave exactly as in-process
            if deadline is not None:
                deadline.check()
            if any(p.exitcode is not None for p in procs):
                died = True
                break
        if not died:
            return [results[i] for i in range(len(payloads))]
        # Harvest everything that finished before the death, then
        # retry only the chunks the dead worker took down with it.
        still_pending: List[int] = []
        for idx, ar in inflight:
            if idx in results:
                continue
            if ar.ready():
                try:
                    results[idx] = ar.get(timeout=0)
                    continue
                except ReproError:
                    raise
                except Exception:
                    pass
            still_pending.append(idx)
        dead = sum(1 for p in procs if p.exitcode is not None)
        if obs.enabled:
            obs.counters.add("parallel.worker_deaths", dead)
            obs.counters.add("parallel.chunk_retries", len(still_pending))
        shutdown()
        if respawned:
            raise PoolBroken(
                f"pool lost {dead} worker(s) twice dispatching one batch"
            )
        respawned = True
        pending = still_pending
    return [results[i] for i in range(len(payloads))]


def should_kill_worker() -> bool:
    """Parent-side consult of the ``parallel.worker_kill`` failpoint.

    The policy lives in the *parent*: forked workers inherit a copy of
    the armed state, so a worker-side consult of a ``once`` policy
    would fire once in **every** worker.  Instead the dispatcher asks
    here, per dispatch attempt, and marks exactly one chunk payload;
    the worker that receives the mark SIGKILLs itself.
    """
    return faults.should_fire("parallel.worker_kill")


def _merge_counters(snapshot: Mapping[str, Any]) -> None:
    """Fold one worker's counter snapshot into this process's counters.

    The names are dynamic here by construction — they are whatever the
    worker-side kernels (whose own call sites the linter *does* check)
    recorded; counters are merged with ``add``, gauges with
    ``high_water``.
    """
    if not obs.enabled:
        return
    for name, value in snapshot.get("counters", {}).items():
        obs.counters.add(name, int(value))
    for name, value in snapshot.get("gauges", {}).items():
        obs.counters.high_water(name, float(value))


# ---------------------------------------------------------------------------
# Worker-side task entry points
# ---------------------------------------------------------------------------

#: Worker-local LRU of attached shared segments, keyed by segment name.
_ATTACHED: "OrderedDict[str, shmcol.AttachedColumn]" = OrderedDict()
_ATTACH_LIMIT = 16


def _attached_column(descriptor: shmcol.Descriptor) -> Any:
    name = descriptor[1]
    wrapper = _ATTACHED.get(name)
    if wrapper is None:
        wrapper = shmcol.attach(descriptor)
        _ATTACHED[name] = wrapper
        while len(_ATTACHED) > _ATTACH_LIMIT:
            _stale, old = _ATTACHED.popitem(last=False)
            old.close()
    else:
        _ATTACHED.move_to_end(name)
    return wrapper.column


def _op_atinstant(col: Any, lo: int, hi: int, extra: Tuple[Any, ...]) -> Any:
    from repro.vector.kernels import atinstant_batch

    (t,) = extra
    return atinstant_batch(shmcol.chunk_units(col, lo, hi), t)


def _op_present(col: Any, lo: int, hi: int, extra: Tuple[Any, ...]) -> Any:
    from repro.vector.kernels import locate_units

    (t,) = extra
    _unit, defined = locate_units(shmcol.chunk_units(col, lo, hi), t)
    return defined


def _op_bbox(col: Any, lo: int, hi: int, extra: Tuple[Any, ...]) -> Any:
    from repro.vector.kernels import bbox_filter_batch

    (cube,) = extra
    return bbox_filter_batch(shmcol.chunk_bbox(col, lo, hi), cube)


def _op_window(col: Any, lo: int, hi: int, extra: Tuple[Any, ...]) -> Any:
    from repro.vector.kernels import window_intervals_batch

    rect, t0, t1 = extra
    owner, s, e, lc, rc = window_intervals_batch(
        shmcol.chunk_units(col, lo, hi), rect, t0, t1
    )
    return owner + lo, s, e, lc, rc  # rebase owners to whole-fleet indices


def _op_count_inside(col: Any, lo: int, hi: int, extra: Tuple[Any, ...]) -> Any:
    import numpy as np

    from repro.vector.kernels import atinstant_batch, inside_prefilter

    t, region = extra
    x, y, defined = atinstant_batch(shmcol.chunk_units(col, lo, hi), t)
    if not defined.any():
        return 0
    pts = np.column_stack([x[defined], y[defined]])
    return int(np.count_nonzero(inside_prefilter(pts, region)))


_OPS = {
    "atinstant": _op_atinstant,
    "present": _op_present,
    "bbox": _op_bbox,
    "window": _op_window,
    "count_inside": _op_count_inside,
}


def run_task(
    payload: Tuple[Any, ...]
) -> Tuple[Any, Optional[Dict[str, Any]]]:
    """Worker entry point: one op over one chunk of one shared column.

    The optional seventh payload element is the dispatcher's worker-kill
    mark (see :func:`should_kill_worker`): the marked worker dies by
    SIGKILL *before* touching the column, simulating an external kill —
    no cleanup, no exception, just a corpse for the dispatcher to find.
    """
    op, descriptor, lo, hi, extra, profiled = payload[:6]
    if len(payload) > 6 and payload[6]:
        os.kill(os.getpid(), signal.SIGKILL)
    col = _attached_column(descriptor)
    if profiled:
        with obs.capture() as counters:
            out = _OPS[op](col, lo, hi, extra)
        snap = counters.snapshot()
        return out, {"counters": snap["counters"], "gauges": snap["gauges"]}
    return _OPS[op](col, lo, hi, extra), None
