"""Byte-budgeted shard residency: CLOCK eviction over mapped columns.

A :class:`ShardManager` owns the physical side of a
:class:`~repro.shard.fleet.ShardedFleet`: one column-store directory
(``<root>/shard_NNN``), one column set, and one STR-bulk-loaded R-tree
per shard.  Columns are mapped lazily — a query maps only the shards
its window survives :meth:`prune` — and stay resident until the memory
budget forces them out.

Eviction is the buffer pool's CLOCK idiom (``repro.storage.buffer``):
every resident shard carries a reference bit, set on insertion and on
every hit; when the mapped bytes exceed the budget the hand sweeps the
residency ring, clearing set bits and evicting the first shard whose
bit is already clear.  Eviction drops *references* — the manager's and
the process column cache's — never bytes under a live reader: columns
are immutable, so a scatter that obtained a column before the eviction
keeps reading consistent data (the ``shard.evict_during_query`` chaos
scenario pins exactly this).

Recovery is per shard: each shard directory has its own CRC'd manifest,
so :meth:`verify_and_repair` rebuilds a corrupt shard alone
(``shard.rebuilds``) while its siblings' files are untouched.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro import config, obs
from repro.analysis import dynlock
from repro.errors import CorruptColumnError, InvalidValue, StorageError
from repro.index.rtree import RTree3D
from repro.shard.fleet import ShardedFleet
from repro.spatial.bbox import Cube
from repro.vector.cache import column_for_versioned, column_nbytes, evict_columns
from repro.vector.store import _BUILDERS, ColumnStore


class _Resident:
    """One shard's mapped state: columns by kind, byte total, CLOCK bit."""

    __slots__ = ("columns", "nbytes", "ref", "tree")

    def __init__(self) -> None:
        # kind -> (version vector entry, column)
        self.columns: Dict[str, Tuple[Any, Any]] = {}
        self.nbytes = 0
        self.ref = True  # second chance: set on insert and on every hit
        self.tree: Optional[RTree3D] = None


#: Rough per-entry heap cost charged for a resident R-tree (cube + node
#: bookkeeping); the trees are pure-python, this is an estimate, but an
#: estimate inside the budget beats an exact figure outside it.
_TREE_ENTRY_BYTES = 200


class ShardManager:
    """Residency, pruning, indexing, and recovery for one sharded fleet.

    ``root`` selects persistent per-shard column stores (None keeps
    everything in memory through the process column cache).  ``budget``
    bounds the resident bytes (None falls back to the process-wide
    ``repro.shard.get_memory_budget()``, itself defaulting to
    ``config.SHARD_MEMORY_BUDGET``); the high-water mark of the mapped
    bytes is the ``shard.resident_bytes`` gauge.
    """

    def __init__(
        self,
        fleet: ShardedFleet,
        root: Optional[str] = None,
        budget: Optional[int] = None,
        indexed: bool = True,
    ):
        self.fleet = fleet
        self.root = os.fspath(root) if root is not None else None
        self._budget = budget
        #: Whether callers should consult the per-shard R-trees for
        #: candidate pruning (the server's ``index=False`` opt-out).
        self.indexed = bool(indexed)
        self._lock = dynlock.rlock("shard.manager")
        self._resident: Dict[int, _Resident] = {}
        self._ring: List[int] = []  # clock order (insertion order)
        self._hand = 0  # persists across evictions — that is the point
        self._stores: Dict[int, ColumnStore] = {}

    # -- configuration ------------------------------------------------------

    def _effective_budget(self) -> Optional[int]:
        if self._budget is not None:
            return self._budget
        from repro import shard as shardmod

        return shardmod.get_memory_budget()

    def _store(self, s: int) -> Optional[ColumnStore]:
        if self.root is None:
            return None
        st = self._stores.get(s)
        if st is None:
            st = ColumnStore(os.path.join(self.root, f"shard_{s:03d}"))
            self._stores[s] = st
        return st

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return sum(r.nbytes for r in self._resident.values())

    def resident_shards(self) -> List[int]:
        with self._lock:
            return sorted(self._resident)

    # -- column residency ---------------------------------------------------

    def column(self, s: int, kind: str) -> Any:
        """The ``kind`` column of shard ``s``, mapping it if cold.

        Hits (``shard.hits``) set the CLOCK reference bit; misses map or
        build the column (``shard.maps``), charge its bytes, and evict
        cold shards until the budget fits again.
        """
        with self._lock:
            shard = self.fleet.shards[s]
            res = self._resident.get(s)
            if res is not None:
                held = res.columns.get(kind)
                if held is not None and held[0] == shard.version:
                    res.ref = True
                    if obs.enabled:
                        obs.counters.add("shard.hits")
                    return held[1]
            version, col = self._map_column(s, kind)
            if res is None:
                res = _Resident()
                self._resident[s] = res
                self._ring.append(s)
            old = res.columns.get(kind)
            if old is not None:
                res.nbytes -= column_nbytes(old[1])
            res.columns[kind] = (version, col)
            res.nbytes += column_nbytes(col)
            res.ref = True
            if obs.enabled:
                obs.counters.add("shard.maps")
            self._evict_over_budget()
            return col

    def bbox_keys(self, s: int) -> Tuple[Any, np.ndarray]:
        """``(bbox column, int64 key array)`` for shard ``s``.

        The array rides the column itself (:meth:`BBoxColumn.keys_int64`
        is a zero-copy record view for store-backed columns), so a cold
        scatter never pays an O(objects) key conversion.
        """
        with self._lock:
            col = self.column(s, "bbox")
        return col, col.keys_int64()

    def _map_column(self, s: int, kind: str) -> Tuple[Any, Any]:
        """``(version, column)`` for one shard, preferring its store.
        Caller holds the lock."""
        shard = self.fleet.shards[s]
        st = self._store(s)
        if st is not None:
            try:
                col = st.load_or_rebuild(
                    kind, shard, fleet_version=shard.version
                )
                return shard.version, col
            except (OSError, StorageError):
                pass  # store unusable: degrade to the in-memory build
        return column_for_versioned(shard, kind)

    def _evict_over_budget(self) -> None:
        """CLOCK sweep until the resident bytes fit the budget.  Caller
        holds the lock."""
        budget = self._effective_budget()
        total = sum(r.nbytes for r in self._resident.values())
        if budget is not None:
            # Two sweeps suffice: the first clears every set bit, the
            # second must then evict (mirrors BufferPool._evict).
            guard = 2 * len(self._ring) + 1
            while total > budget and self._ring and guard > 0:
                guard -= 1
                p = self._hand % len(self._ring)
                victim = self._ring[p]
                res = self._resident[victim]
                if res.ref:
                    res.ref = False  # second chance spent
                    self._hand = p + 1
                    continue
                total -= res.nbytes
                self._evict_one(victim, p)
        if obs.enabled:
            obs.counters.high_water("shard.resident_bytes", float(total))

    def _evict_one(self, s: int, ring_pos: int) -> None:
        """Drop shard ``s`` from residency (and from the process column
        cache, so its bytes actually leave).  Caller holds the lock."""
        del self._resident[s]
        self._ring.pop(ring_pos)
        if self._ring and self._hand >= len(self._ring):
            self._hand = 0
        evict_columns(self.fleet.shards[s])
        if obs.enabled:
            obs.counters.add("shard.evictions")

    def evict_all(self) -> int:
        """Evict every resident shard (chaos: ``shard.evict_during_query``).

        Returns how many shards were dropped.  Columns already handed to
        callers stay valid — eviction is reference-dropping only.
        """
        with self._lock:
            dropped = 0
            while self._ring:
                self._evict_one(self._ring[0], 0)
                dropped += 1
            if obs.enabled:
                obs.counters.high_water("shard.resident_bytes", 0.0)
            return dropped

    # -- pruning ------------------------------------------------------------

    def prune(self, cube: Cube) -> List[int]:
        """Shards that may intersect ``cube``, by shard-level bounds.

        Consults only the fleet's per-shard bounding cubes — O(shards),
        no column is mapped — and counts every shard it rules out
        (``shard.pruned``).  Empty shards are skipped for free; shards
        with unknowable bounds are always kept.
        """
        keep: List[int] = []
        ruled_out = 0
        for s in range(self.fleet.n_shards):
            if len(self.fleet.shards[s]) == 0:
                continue
            bound = self.fleet.bounds(s)
            if bound is not None and not bound.intersects(cube):
                ruled_out += 1
                continue
            keep.append(s)
        if obs.enabled and ruled_out:
            obs.counters.add("shard.pruned", ruled_out)
        return keep

    # -- per-shard R-trees --------------------------------------------------

    def rtree(self, s: int) -> RTree3D:
        """Shard ``s``'s unit R-tree, STR-bulk-loaded on first use.

        Entries are keyed by *global* object id, so candidate sets union
        across shards without translation.  The tree rides the shard's
        residency entry: evicting the shard drops it too.
        """
        with self._lock:
            res = self._resident.get(s)
            if res is not None and res.tree is not None:
                res.ref = True
                return res.tree
            gids = self.fleet.globals_of(s)
            shard = self.fleet.shards[s]
            entries = [
                (u.bounding_cube(), int(gids[j]))
                for j, m in enumerate(shard)
                for u in m.units
            ]
            tree = RTree3D.bulk_load(entries)
            if res is None:
                res = _Resident()
                self._resident[s] = res
                self._ring.append(s)
            res.tree = tree
            res.nbytes += _TREE_ENTRY_BYTES * len(entries)
            res.ref = True
            self._evict_over_budget()
            return tree

    def note_insert(self, s: int, cube: Cube, gid: int) -> None:
        """Keep a resident shard tree current after a unit ingest (cold
        trees pick the unit up when they are next bulk-loaded)."""
        with self._lock:
            res = self._resident.get(s)
            if res is not None and res.tree is not None:
                res.tree.insert(cube, gid)
                res.nbytes += _TREE_ENTRY_BYTES

    def window_candidates(self, cube: Cube) -> Set[int]:
        """Global ids of objects whose units may intersect ``cube``:
        shard-level pruning first, then each surviving shard's R-tree."""
        out: Set[int] = set()
        for s in self.prune(cube):
            for gid in self.rtree(s).search(cube):
                out.add(int(gid))
        return out

    # -- persistence & recovery ---------------------------------------------

    def persist(self, kinds: Tuple[str, ...] = ("upoint",)) -> None:
        """Write every shard's columns to its store directory (no-op
        without a root).  Used to stage a cold fleet for budgeted runs."""
        if self.root is None:
            return
        for s in range(self.fleet.n_shards):
            st = self._store(s)
            assert st is not None
            shard = self.fleet.shards[s]
            for kind in kinds:
                st.load_or_rebuild(kind, shard, fleet_version=shard.version)

    def verify_and_repair(self, kinds: Tuple[str, ...] = ("upoint",)) -> List[int]:
        """Verify every shard store's payload CRCs; rebuild corrupt ones.

        A shard that fails deep verification is rebuilt *alone* from its
        shard fleet (``shard.rebuilds``) — sibling directories are never
        touched, let alone invalidated.  Returns the rebuilt shard ids.
        """
        rebuilt: List[int] = []
        with self._lock:
            for s in range(self.fleet.n_shards):
                st = self._store(s)
                if st is None or not st.exists():
                    continue
                try:
                    st.verify()
                    continue
                except (CorruptColumnError, StorageError, OSError):
                    pass
                shard = self.fleet.shards[s]
                for kind in kinds:
                    st.save(
                        kind,
                        _BUILDERS[kind](shard),
                        fleet_version=shard.version,
                        n_objects=len(shard),
                    )
                # The rebuilt files replace whatever the resident entry
                # was mapped over; drop it so the next map is clean.
                if s in self._resident:
                    self._evict_one(s, self._ring.index(s))
                rebuilt.append(s)
                if obs.enabled:
                    obs.counters.add("shard.rebuilds")
        return rebuilt

    # -- introspection ------------------------------------------------------

    def total_column_bytes(self, kind: str = "upoint") -> int:
        """Bytes the full fleet's ``kind`` columns would occupy if every
        shard were mapped at once (the budget's comparison point)."""
        total = 0
        for s in range(self.fleet.n_shards):
            shard = self.fleet.shards[s]
            n_units = sum(len(m.units) for m in shard)
            if kind == "upoint":
                from repro.vector.columns import UPointColumn

                total += n_units * UPointColumn.UNIT_DTYPE.itemsize
                total += (len(shard) + 1) * 8  # CSR offsets
            else:
                version, col = column_for_versioned(shard, kind)
                total += column_nbytes(col)
        return total

    def globals_of(self, s: int) -> np.ndarray:
        return self.fleet.globals_of(s)
