"""Scatter-gather execution over hash-partitioned shards.

Each entry point scatters one operation across a
:class:`~repro.shard.manager.ShardManager`'s shards — running the
existing chunk kernels (:mod:`repro.parallel`, order-stable and
bit-identical per chunk) over each shard's column — and gathers the
per-shard outputs back into the exact arrays the unsharded kernel would
have produced:

* Owners come back as *local* positions; rebasing them through the
  shard's ascending global-id array and stably sorting the shard-order
  concatenation by owner restores the unsharded order exactly (each
  owner lives in exactly one shard, and within an owner the kernel's
  time order is already right).  The identity is permutation-free down
  to the bit level — NaN ⊥ lanes, open/closed boundary flags, float
  payloads — and pinned by the hypothesis property in
  ``tests/test_shard_properties.py``.
* Window scatters prune twice before touching unit data: shard-level
  bounding cubes first (:meth:`ShardManager.prune` — no column mapped
  at all), then the shard's bbox column selects candidate objects whose
  units are gathered into a compact sub-column for the kernel.  Both
  filters test against the query cube widened by ``EPSILON`` — the
  window kernel's slab tolerance — so dropped objects are exactly
  those the full kernel would emit no rows for.

Dispatch mirrors :mod:`repro.vector.fleet`: ``_resolve`` maps the
requested backend, batch arms are try-guarded, and failures degrade to
the per-object scalar reference loop under the counted
``shard.fallback.*`` wrapper.  The ``shard.evict_during_query``
failpoint fires between per-shard kernel runs, so the chaos matrix can
evict every resident shard mid-scatter and assert the gathered result
is still bit-identical (columns are immutable; eviction only drops
references).
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

import numpy as np

from repro import faults, obs
from repro.config import EPSILON
from repro.errors import InvalidValue, StorageError
from repro.ranges import Interval, RangeSet
from repro.shard.manager import ShardManager
from repro.spatial.bbox import Cube, Rect
from repro.spatial.region import Region
from repro.vector.columns import UPointColumn
from repro.vector.fleet import _resolve

IntervalRows = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def _shard_fallback(reason: str) -> None:
    if obs.enabled:
        obs.counters.add("shard.fallback")
        obs.counters.add(f"shard.fallback.{reason}")


def _evict_failpoint(manager: ShardManager) -> None:
    """Chaos hook: evict every resident shard mid-scatter when armed."""
    if faults.active and faults.should_fire("shard.evict_during_query"):
        manager.evict_all()


# ---------------------------------------------------------------------------
# Gather helpers
# ---------------------------------------------------------------------------


def _gather_candidates(col: UPointColumn, cand: np.ndarray) -> UPointColumn:
    """A compact sub-column holding ``cand``'s objects, units intact.

    ``cand`` is ascending local object positions; whole objects are
    copied with their unit order preserved, so every kernel run over the
    sub-column emits exactly the rows it would have emitted for those
    objects in the full column (run merging never crosses objects).
    """
    off = col.offsets
    lens = off[cand + 1] - off[cand]
    total = int(lens.sum())
    suboff = np.zeros(len(cand) + 1, dtype=np.int64)
    np.cumsum(lens, out=suboff[1:])
    if total == 0:
        idx = np.empty(0, dtype=np.int64)
    else:
        idx = np.repeat(off[cand] - suboff[:-1], lens) + np.arange(total)
    return UPointColumn(
        suboff,
        col.starts[idx], col.ends[idx], col.lc[idx], col.rc[idx],
        col.x0[idx], col.x1[idx], col.y0[idx], col.y1[idx],
    )


def _empty_interval_rows() -> IntervalRows:
    """Dtype-exact empty output of ``window_intervals_batch``."""
    return (
        np.empty(0, dtype=np.int64),
        np.empty(0), np.empty(0),
        np.empty(0, dtype=np.bool_), np.empty(0, dtype=np.bool_),
    )


def _gather_intervals(
    parts: List[Tuple[np.ndarray, IntervalRows]]
) -> IntervalRows:
    """Merge per-shard interval rows into global-owner order.

    ``parts`` holds ``(global ids of the owners' shard, local rows)``
    pairs in shard order.  Owners rebase through the ascending global-id
    arrays; a stable sort by owner then interleaves the shards without
    ever reordering two rows of the same owner — the unsharded kernel's
    grouping, reproduced exactly.
    """
    if not parts:
        return _empty_interval_rows()
    owner = np.concatenate([gids[rows[0]] for gids, rows in parts])
    s = np.concatenate([rows[1] for _gids, rows in parts])
    e = np.concatenate([rows[2] for _gids, rows in parts])
    lc = np.concatenate([rows[3] for _gids, rows in parts])
    rc = np.concatenate([rows[4] for _gids, rows in parts])
    order = np.argsort(owner, kind="stable")
    return (
        owner[order].astype(np.int64, copy=False),
        s[order], e[order], lc[order], rc[order],
    )


# ---------------------------------------------------------------------------
# Scatter-gather entry points
# ---------------------------------------------------------------------------


def sharded_atinstant(
    manager: ShardManager,
    t: float,
    workers: Optional[int] = None,
    backend: Optional[str] = "sharded",
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``atinstant`` over every shard, gathered into global lanes.

    Returns ``(x, y, defined)`` indexed by global object id — NaN in ⊥
    lanes, exactly as ``atinstant_batch`` over the unsharded column.
    """
    from repro.parallel import parallel_atinstant

    fleet = manager.fleet
    resolved = _resolve(backend)
    if resolved == "sharded" or resolved == "vector" or resolved == "parallel":
        n = len(fleet)
        x = np.full(n, np.nan)
        y = np.full(n, np.nan)
        defined = np.zeros(n, dtype=np.bool_)
        try:
            for s in range(fleet.n_shards):
                if len(fleet.shards[s]) == 0:
                    continue
                col = manager.column(s, "upoint")
                sx, sy, sd = parallel_atinstant(col, t, workers=workers)
                _evict_failpoint(manager)
                gids = fleet.globals_of(s)
                x[gids], y[gids], defined[gids] = sx, sy, sd
        except (InvalidValue, StorageError):
            _shard_fallback("column")
        else:
            if obs.enabled:
                obs.counters.add("shard.scatters")
            return x, y, defined
    xs: List[float] = []
    ys: List[float] = []
    ds: List[bool] = []
    for m in fleet:
        p = m.value_at(t)
        xs.append(np.nan if p is None else float(p.x))
        ys.append(np.nan if p is None else float(p.y))
        ds.append(p is not None)
    return (
        np.asarray(xs), np.asarray(ys), np.asarray(ds, dtype=np.bool_)
    )


def sharded_window_intervals(
    manager: ShardManager,
    rect: Rect,
    t0: float,
    t1: float,
    workers: Optional[int] = None,
    backend: Optional[str] = "sharded",
) -> IntervalRows:
    """Window-clipped in-rect intervals, scattered and gathered.

    Bit-identical to ``window_intervals_batch`` over the unsharded
    column: shard-level bounds and per-shard bbox candidates only ever
    drop objects that produce no rows, and the gather is a stable
    permutation back to global owner order.
    """
    from repro.parallel import parallel_window_intervals

    fleet = manager.fleet
    resolved = _resolve(backend)
    if resolved == "sharded" or resolved == "vector" or resolved == "parallel":
        cube = Cube.from_rect(rect, float(t0), float(t1))
        # The window kernel tolerates positions within EPSILON of the
        # slab, so the candidate prefilters must be at least that wide
        # or they drop objects whose rows the kernel would emit.  The
        # kernels themselves still get the exact rect/t0/t1.
        pad = Cube(
            cube.xmin - EPSILON, cube.ymin - EPSILON, cube.tmin - EPSILON,
            cube.xmax + EPSILON, cube.ymax + EPSILON, cube.tmax + EPSILON,
        )
        try:
            parts: List[Tuple[np.ndarray, IntervalRows]] = []
            for s in manager.prune(pad):
                bbox, keys = manager.bbox_keys(s)
                cand = keys[bbox.overlap_mask(pad)]
                _evict_failpoint(manager)
                if cand.size == 0:
                    continue
                col = manager.column(s, "upoint")
                if 2 * int((col.offsets[cand + 1] - col.offsets[cand]).sum()) >= col.n_units:
                    # Broad window: gathering would copy most of the
                    # column anyway — run the kernel over it whole.
                    rows = parallel_window_intervals(
                        col, rect, t0, t1, workers=workers
                    )
                    parts.append((fleet.globals_of(s), rows))
                else:
                    sub = _gather_candidates(col, cand)
                    rows = parallel_window_intervals(
                        sub, rect, t0, t1, workers=workers
                    )
                    parts.append((fleet.globals_of(s)[cand], rows))
                _evict_failpoint(manager)
        except (InvalidValue, StorageError):
            _shard_fallback("column")
        else:
            if obs.enabled:
                obs.counters.add("shard.scatters")
            return _gather_intervals(parts)
    return _scalar_window_intervals(fleet, rect, t0, t1)


def _scalar_window_intervals(
    fleet: Any, rect: Rect, t0: float, t1: float
) -> IntervalRows:
    """Per-object reference loop (the counted degradation path)."""
    from repro.ops.window import mpoint_within_rect_times

    window = RangeSet([Interval(float(t0), float(t1))])
    owners: List[int] = []
    rows: List[Tuple[float, float, bool, bool]] = []
    for i, m in enumerate(fleet):
        spans = mpoint_within_rect_times(m, rect).intersection(window)
        for iv in spans.intervals:
            owners.append(i)
            rows.append((iv.s, iv.e, iv.lc, iv.rc))
    if not rows:
        return _empty_interval_rows()
    arr = np.asarray(rows, dtype=np.float64)
    return (
        np.asarray(owners, dtype=np.int64),
        arr[:, 0], arr[:, 1],
        arr[:, 2].astype(np.bool_), arr[:, 3].astype(np.bool_),
    )


def sharded_count_inside(
    manager: ShardManager,
    region: Region,
    t: float,
    workers: Optional[int] = None,
    backend: Optional[str] = "sharded",
) -> int:
    """Snapshot count inside ``region`` at ``t``: per-shard counts sum
    (each object lives in exactly one shard)."""
    from repro.parallel import parallel_count_inside

    fleet = manager.fleet
    resolved = _resolve(backend)
    if resolved == "sharded" or resolved == "vector" or resolved == "parallel":
        try:
            total = 0
            for s in range(fleet.n_shards):
                if len(fleet.shards[s]) == 0:
                    continue
                col = manager.column(s, "upoint")
                total += int(
                    parallel_count_inside(col, region, t, workers=workers)
                )
                _evict_failpoint(manager)
        except (InvalidValue, StorageError):
            _shard_fallback("column")
        else:
            if obs.enabled:
                obs.counters.add("shard.scatters")
            return total
    count = 0
    for m in fleet:
        p = m.value_at(t)
        if p is not None and region.contains_point(p.vec):
            count += 1
    return count


def sharded_bbox_filter(
    manager: ShardManager,
    cube: Cube,
    workers: Optional[int] = None,
    backend: Optional[str] = "sharded",
) -> List[int]:
    """Global ids of objects whose bounding cube intersects ``cube``,
    ascending — the unsharded ``fleet_bbox_filter`` order."""
    from repro.parallel import parallel_bbox_filter

    fleet = manager.fleet
    resolved = _resolve(backend)
    if resolved == "sharded" or resolved == "vector" or resolved == "parallel":
        try:
            hits: List[np.ndarray] = []
            for s in manager.prune(cube):
                col, keys = manager.bbox_keys(s)
                mask = parallel_bbox_filter(col, cube, workers=workers)
                _evict_failpoint(manager)
                hits.append(fleet.globals_of(s)[keys[mask]])
        except (InvalidValue, StorageError):
            _shard_fallback("column")
        else:
            if obs.enabled:
                obs.counters.add("shard.scatters")
            if not hits:
                return []
            merged = np.concatenate(hits)
            merged.sort()
            return [int(g) for g in merged]
    return [
        i
        for i, m in enumerate(fleet)
        if m.units and m.bounding_cube().intersects(cube)
    ]
