"""Hash-partitioned fleets: Section-4 root records split by object id.

The paper's sliced representation keeps one *root record* per moving
object and an array of fixed-size unit records per slice; nothing in
that layout requires all root records to live in one array.  A
:class:`ShardedFleet` partitions them by a multiplicative hash of the
object id into ``n_shards`` independent :class:`repro.vector.cache.Fleet`
sequences — each with its own version stamp, its own columns, and (under
a :class:`repro.shard.manager.ShardManager`) its own column-store
directory and R-tree — while still presenting the global fleet as one
sequence in insertion order.

Two invariants make scatter-gather exact rather than approximate:

* **Stable global ids.**  An object's global id is its append position,
  forever; ``globals_of(s)`` maps a shard's local positions back to
  ascending global ids.  Because appends receive increasing ids, every
  shard's global-id array is sorted — so per-shard kernel output, owner
  columns rebased through ``globals_of``, concatenated in shard order
  and stably sorted by owner, is *identical* to the unsharded kernel's
  output (see :mod:`repro.shard.exec`).
* **Single-shard writes.**  ``append``/``__setitem__`` route to exactly
  one shard (counted: ``shard.ingest_routed``) and bump exactly one
  shard version, so the version *vector* (:attr:`version`) moves in one
  coordinate per ingest — the unit of snapshot isolation in the server.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.errors import InvalidValue
from repro.spatial.bbox import Cube
from repro.vector.cache import Fleet

#: Knuth's multiplicative constant (2^32 / φ): spreads consecutive ids
#: across shards while staying a pure function of the id alone.
_HASH_MULT = 2654435761


def shard_of(obj_id: int, n_shards: int) -> int:
    """Shard owning global object id ``obj_id`` (deterministic hash)."""
    if n_shards < 1:
        raise InvalidValue(f"shard count must be >= 1, got {n_shards}")
    return ((obj_id * _HASH_MULT) & 0xFFFFFFFF) % n_shards


class ShardedFleet:
    """A fleet of moving objects hash-partitioned into shard fleets.

    Sequence-like in *global* order (``len``/``[]``/iteration match the
    equivalent unsharded fleet member for member), with all storage held
    by the per-shard :class:`Fleet` instances in :attr:`shards`.  Shard
    membership is ``shard_of(global_id, n_shards)`` — never rebalanced,
    so a mapping's shard (and its position within it) is stable for the
    fleet's lifetime.
    """

    __slots__ = (
        "n_shards", "shards", "_locate", "_globals", "_garr", "_bounds",
        "_poisoned", "__weakref__",
    )

    def __init__(self, mappings: Iterable[Any] = (), n_shards: int = 2):
        if n_shards < 1:
            raise InvalidValue(f"shard count must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        self.shards: List[Fleet] = [Fleet() for _ in range(n_shards)]
        # global id -> (shard, local position)
        self._locate: List[Tuple[int, int]] = []
        # shard -> ascending global ids of its members
        self._globals: List[List[int]] = [[] for _ in range(n_shards)]
        self._garr: List[Optional[np.ndarray]] = [None] * n_shards
        # shard -> union of member bounding cubes (None until the first
        # bounded member arrives); a conservative superset, grown on
        # every write, consulted by ShardManager.prune *before* any
        # column of the shard is mapped.
        self._bounds: List[Optional[Cube]] = [None] * n_shards
        # Sticky: a member without a bounding cube makes its shard
        # un-prunable for good (later bounded appends must not revive
        # a bound that excludes the unbounded member).
        self._poisoned: List[bool] = [False] * n_shards
        for m in mappings:
            self.append(m)
        # Prebuild the global-id arrays: bulk construction would
        # otherwise defer an O(objects) list conversion into the first
        # query's (timed, cold) scatter.
        for s in range(n_shards):
            self.globals_of(s)

    # -- versioning ---------------------------------------------------------

    @property
    def version(self) -> Tuple[int, ...]:
        """The shard *vector* of version stamps.

        Equality of vectors means "nothing anywhere changed", exactly as
        an unsharded fleet's scalar stamp — but an ingest moves only its
        own shard's coordinate, so snapshots over sibling shards stay
        valid.
        """
        return tuple(f.version for f in self.shards)

    def invalidate(self) -> None:
        """Declare every shard's cached columns stale (member mutated in
        place; the fleet cannot observe which one)."""
        for f in self.shards:
            f.invalidate()

    # -- sequence protocol (global order) -----------------------------------

    def __len__(self) -> int:
        return len(self._locate)

    def __getitem__(self, i: int) -> Any:
        s, j = self._locate[i]
        return self.shards[s][j]

    def __setitem__(self, i: int, value: Any) -> None:
        s, j = self._locate[i]
        self.shards[s][j] = value
        self._grow_bounds(s, value)
        if obs.enabled:
            obs.counters.add("shard.ingest_routed")

    def append(self, value: Any) -> None:
        gid = len(self._locate)
        s = shard_of(gid, self.n_shards)
        shard = self.shards[s]
        shard.append(value)
        self._locate.append((s, len(shard) - 1))
        self._globals[s].append(gid)
        self._grow_bounds(s, value)
        if obs.enabled:
            obs.counters.add("shard.ingest_routed")

    def __iter__(self) -> Iterator[Any]:
        for s, j in self._locate:
            yield self.shards[s][j]

    def __repr__(self) -> str:
        return (
            f"ShardedFleet({len(self)} objects over {self.n_shards} shards, "
            f"version={self.version})"
        )

    # -- shard views --------------------------------------------------------

    def globals_of(self, s: int) -> np.ndarray:
        """Ascending global ids of shard ``s``'s members (int64)."""
        arr = self._garr[s]
        gids = self._globals[s]
        if arr is None:
            arr = np.asarray(gids, dtype=np.int64)
            self._garr[s] = arr
        elif len(arr) != len(gids):
            # Ids only ever append, so extend the cached array with the
            # tail instead of reconverting the whole shard.
            tail = np.asarray(gids[len(arr):], dtype=np.int64)
            arr = np.concatenate([arr, tail])
            self._garr[s] = arr
        return arr

    def bounds(self, s: int) -> Optional[Cube]:
        """Conservative bounding cube of shard ``s`` (None: unknown —
        the shard is empty or holds members without bounding cubes and
        must never be pruned)."""
        return self._bounds[s]

    def _grow_bounds(self, s: int, value: Any) -> None:
        if self._poisoned[s]:
            return
        try:
            cube = value.bounding_cube() if value.units else None
        except AttributeError:
            # Not a sliced mapping: no cube to grow by.  A bound that
            # excludes this member would prune rows it should produce,
            # so the shard becomes un-prunable for good.
            self._poisoned[s] = True
            self._bounds[s] = None
            return
        if cube is None:
            return
        current = self._bounds[s]
        self._bounds[s] = cube if current is None else current.union(cube)
