"""Sharded fleets: hash partitioning, scatter-gather, memory budget.

The Section-4 sliced representation was designed for *large* sets of
moving objects; this package is the scale step past one shared-memory
segment per fleet.  A :class:`ShardedFleet` hash-partitions the root
records by object id into independent per-shard fleets; a
:class:`ShardManager` gives each shard its own column-store directory,
column set, and STR-bulk-loaded R-tree under a byte-budgeted CLOCK
residency policy; and :mod:`repro.shard.exec` scatters the existing
chunk kernels across the shards and gathers bit-identical results.

Process-wide defaults (the CLI's ``--shards`` / ``--memory-budget``
flags land here): ``set_shards`` picks how many shards newly registered
fleets get (1 = unsharded, the default), ``set_memory_budget`` bounds
every manager that does not carry an explicit budget.
"""

from __future__ import annotations

from typing import Optional

from repro import config
from repro.errors import InvalidValue
from repro.shard.exec import (
    sharded_atinstant,
    sharded_bbox_filter,
    sharded_count_inside,
    sharded_window_intervals,
)
from repro.shard.fleet import ShardedFleet, shard_of
from repro.shard.manager import ShardManager

__all__ = [
    "ShardManager",
    "ShardedFleet",
    "get_memory_budget",
    "get_shards",
    "set_memory_budget",
    "set_shards",
    "shard_of",
    "sharded_atinstant",
    "sharded_bbox_filter",
    "sharded_count_inside",
    "sharded_window_intervals",
]

_shards: int = config.DEFAULT_SHARDS
_memory_budget: Optional[int] = config.SHARD_MEMORY_BUDGET


def set_shards(n: int) -> None:
    """Select the process-wide default shard count (1 = unsharded)."""
    global _shards
    if n < 1:
        raise InvalidValue(f"shard count must be >= 1, got {n}")
    _shards = int(n)


def get_shards() -> int:
    """The current process-wide default shard count."""
    return _shards


def set_memory_budget(nbytes: Optional[int]) -> None:
    """Select the process-wide shard memory budget (None = unbounded)."""
    global _memory_budget
    if nbytes is not None and nbytes < 1:
        raise InvalidValue(f"memory budget must be >= 1 byte, got {nbytes}")
    _memory_budget = None if nbytes is None else int(nbytes)


def get_memory_budget() -> Optional[int]:
    """The current process-wide shard memory budget (None = unbounded)."""
    return _memory_budget
