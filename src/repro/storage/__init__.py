"""The storage engine: Section 4 made concrete.

Attribute data types are stored as a *root record* (fixed size, always
inside the tuple) plus zero or more *database arrays* (variable size,
stored inline in the tuple when small, or in separate pages when large,
following Dieker & Güting [DG98]).  Pointers are integer indices into
companion arrays — never memory pointers.

Modules:

* :mod:`repro.storage.darray` — database arrays and subarrays;
* :mod:`repro.storage.pages` — the page file;
* :mod:`repro.storage.buffer` — the buffer pool (LRU, pin counts);
* :mod:`repro.storage.flob` — inline-or-paged large object placement;
* :mod:`repro.storage.records` — per-type codecs (pack/unpack);
* :mod:`repro.storage.tuplestore` — heap files of tuples with embedded
  attribute values;
* :mod:`repro.storage.wal` — write-ahead log and crash recovery;
* :mod:`repro.storage.crashmatrix` — the arm → crash → recover → verify
  harness run over every registered failpoint.
"""

from __future__ import annotations

from repro.storage.darray import DatabaseArray, SubArray
from repro.storage.pages import PageFile
from repro.storage.buffer import BufferPool
from repro.storage.flob import FlobStore, FlobRef
from repro.storage.records import (
    StoredValue,
    codec_for,
    pack_value,
    safe_unpack,
    unpack_value,
)
from repro.storage.tuplestore import TupleStore
from repro.storage.wal import Wal, WalRecord

__all__ = [
    "DatabaseArray",
    "SubArray",
    "PageFile",
    "BufferPool",
    "FlobStore",
    "FlobRef",
    "StoredValue",
    "codec_for",
    "pack_value",
    "safe_unpack",
    "unpack_value",
    "TupleStore",
    "Wal",
    "WalRecord",
]
