"""Write-ahead log: redo records, fsync barriers, torn-tail-safe replay.

Section 4 places values "under control of the DBMS" precisely so they
survive; this module supplies the durability half of that contract.
Mutations of the tuple store and catalog are logged *before* they touch
the in-memory structures: physical page images (redo for the FLOB
pages a tuple externalized), the serialized tuple bytes, and catalog
operations, bracketed by BEGIN/COMMIT.  Replay after a crash re-applies
exactly the committed transactions since the last CHECKPOINT.

On-disk framing, one record::

    length  I   bytes of scope + payload
    crc     I   CRC-32 over type + scope + payload
    type    B   record type (BEGIN..CATALOG)
    scope   H   scope length (scope names the logged store, "rel:ships")

The log is append-only and *prefix-valid*: a crash can tear or truncate
only its tail, and :meth:`Wal.records` stops at the first record whose
length runs past the end of the file or whose CRC fails — everything
before that point is trusted, everything after is discarded
(``wal.truncated_tails`` counts such stops).  ``append`` only buffers;
:meth:`Wal.sync` is the fsync barrier that makes the buffered records
durable, so a simulated crash before ``sync`` loses exactly the
unflushed suffix, the same failure model as a real ``fsync``.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from dataclasses import dataclass
from typing import BinaryIO, Iterator, List, Optional, Tuple

from repro import faults, obs
from repro.errors import SimulatedCrash, WalError

__all__ = [
    "BEGIN",
    "CATALOG",
    "CHECKPOINT",
    "COLSTORE",
    "COMMIT",
    "INGEST",
    "PAGE",
    "TUPLE",
    "Wal",
    "WalRecord",
]

# Record types.
BEGIN = 1       # start of a transaction (payload: empty)
PAGE = 2        # physical redo image (payload: <I page_no> + page payload)
TUPLE = 3       # logical tuple-directory append (payload: tuple bytes)
COMMIT = 4      # transaction end; replay applies BEGIN..COMMIT atomically
CHECKPOINT = 5  # consistent snapshot (payload: store-specific state)
CATALOG = 6     # catalog operation (payload: JSON document)
COLSTORE = 7    # column-store checkpoint: ties column files at a store
                # directory (and their manifest CRC) to this log position,
                # so recovery knows which persisted columns to validate
                # against which relation (payload: JSON document)
INGEST = 8      # one unit appended to a live fleet; scope "fleet:<name>",
                # payload a JSON document naming the object and the unit's
                # interval endpoints — replay re-appends the slice

_NAMES = {
    BEGIN: "BEGIN",
    PAGE: "PAGE",
    TUPLE: "TUPLE",
    COMMIT: "COMMIT",
    CHECKPOINT: "CHECKPOINT",
    CATALOG: "CATALOG",
    COLSTORE: "COLSTORE",
    INGEST: "INGEST",
}

_FRAME = struct.Struct("<IIBH")  # length, crc, type, scope_len


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record."""

    rec_type: int
    scope: str
    payload: bytes

    @property
    def type_name(self) -> str:
        return _NAMES.get(self.rec_type, f"?{self.rec_type}")


class Wal:
    """An append-only redo log over a file (or memory, for tests).

    ``append`` buffers records; ``sync`` writes and fsyncs them — the
    durability barrier.  A crash (simulated via :meth:`crash` or a
    failpoint) loses the unsynced buffer and possibly tears the last
    synced batch; :meth:`records` tolerates both.
    """

    def __init__(self, path: Optional[str] = None):
        self._path = path
        if path is None:
            self._file: BinaryIO = io.BytesIO()
        else:
            mode = "r+b" if os.path.exists(path) else "w+b"
            self._file = open(path, mode)
        self._pending: List[bytes] = []
        # Find the end of the valid prefix so reopening an existing log
        # appends after the last intact record, not after a torn tail.
        self._append_pos = self._scan_end()

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "Wal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- write path -------------------------------------------------------

    def append(self, rec_type: int, payload: bytes = b"", scope: str = "") -> None:
        """Buffer one record; durable only after the next :meth:`sync`."""
        if rec_type not in _NAMES:
            raise WalError(f"unknown WAL record type {rec_type}")
        if faults.active:
            faults.fail("wal.append_crash")
        raw_scope = scope.encode("utf-8")
        if len(raw_scope) > 0xFFFF:
            raise WalError(f"WAL scope {scope!r} too long")
        body = bytes([rec_type]) + raw_scope + payload
        crc = zlib.crc32(body) & 0xFFFFFFFF
        frame = _FRAME.pack(len(raw_scope) + len(payload), crc, rec_type,
                            len(raw_scope))
        self._pending.append(frame + raw_scope + payload)
        if obs.enabled:
            obs.counters.add("wal.records")
            if rec_type == COMMIT:
                obs.counters.add("wal.commits")
            elif rec_type == CHECKPOINT:
                obs.counters.add("wal.checkpoints")

    def sync(self) -> None:
        """Flush buffered records and fsync: the durability barrier."""
        if faults.active:
            # Crash *at* the barrier: nothing buffered reaches the disk.
            try:
                faults.fail("wal.sync_crash")
            except SimulatedCrash:
                self._pending.clear()
                raise
        data = b"".join(self._pending)
        self._file.seek(self._append_pos)
        if faults.active and faults.should_fire("wal.torn_tail"):
            # Power loss mid-flush: only half the tail hits the disk.
            torn = data[: len(data) // 2]
            self._file.write(torn)
            self._file.truncate(self._append_pos + len(torn))
            self._flush_os()
            self._pending.clear()
            self._append_pos += len(torn)
            raise SimulatedCrash("failpoint wal.torn_tail fired")
        self._file.write(data)
        self._flush_os()
        self._append_pos += len(data)
        self._pending.clear()
        if obs.enabled:
            obs.counters.add("wal.syncs")

    def _flush_os(self) -> None:
        self._file.flush()
        if self._path is not None:
            os.fsync(self._file.fileno())

    def crash(self) -> None:
        """Test helper: the process dies — unsynced records evaporate."""
        self._pending.clear()

    @property
    def pending_records(self) -> int:
        """Buffered records not yet made durable."""
        return len(self._pending)

    @property
    def durable_bytes(self) -> int:
        """Bytes of the valid, synced log prefix."""
        return self._append_pos

    # -- read path --------------------------------------------------------

    def records(self) -> Iterator[WalRecord]:
        """Replay the durable log prefix, stopping at the first tear.

        A record whose frame is short, whose declared length runs past
        the end of the file, or whose CRC fails marks the torn tail:
        iteration stops there (counted in ``wal.truncated_tails``) and
        everything after it is ignored.
        """
        self._file.seek(0, io.SEEK_END)
        end = self._file.tell()
        pos = 0
        while pos < end:
            rec = self._read_one(pos, end)
            if rec is None:
                if obs.enabled:
                    obs.counters.add("wal.truncated_tails")
                return
            record, pos = rec
            yield record

    def _read_one(
        self, pos: int, end: int
    ) -> Optional[Tuple[WalRecord, int]]:
        if pos + _FRAME.size > end:
            return None
        self._file.seek(pos)
        frame = self._file.read(_FRAME.size)
        length, crc, rec_type, scope_len = _FRAME.unpack(frame)
        if rec_type not in _NAMES or scope_len > length:
            return None
        if pos + _FRAME.size + length > end:
            return None
        body = self._file.read(length)
        if zlib.crc32(bytes([rec_type]) + body) & 0xFFFFFFFF != crc:
            return None
        scope = body[:scope_len].decode("utf-8", errors="replace")
        payload = body[scope_len:]
        return WalRecord(rec_type, scope, payload), pos + _FRAME.size + length

    def _scan_end(self) -> int:
        """Offset just past the last intact record (reopen support)."""
        self._file.seek(0, io.SEEK_END)
        end = self._file.tell()
        pos = 0
        while pos < end:
            rec = self._read_one(pos, end)
            if rec is None:
                break
            pos = rec[1]
        return pos
