"""The page file: fixed-size pages, file-backed or in memory.

The unit of transfer between secondary and main memory.  Representations
of attribute values must "consist of a small number of memory blocks
that can be moved efficiently" (Section 4); pages are those blocks.

Every on-disk page slot starts with a 16-byte header::

    magic   4s   b"MODB" — format identifier
    version B    on-disk format version (currently 1)
    flags   B    reserved (0)
    _pad    H    reserved (0)
    page_no I    the slot's own page number (detects misdirected writes)
    crc     I    CRC-32 over page_no + payload (detects torn writes/rot)

``read_page`` verifies the header and checksum and returns only the
``payload_size = page_size - 16`` payload bytes; a mismatch raises
:class:`repro.errors.CorruptPageError` instead of handing back garbage.
The checksum is ``zlib.crc32`` — the Castagnoli polynomial (CRC-32C) is
used instead when the optional ``crc32c`` package is importable; both
detect all single-bit and burst errors a torn page write produces.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from typing import BinaryIO, Callable, Optional

from repro import faults, obs
from repro.config import PAGE_SIZE
from repro.errors import CorruptPageError, StorageError, TransientIOError

# Prefer hardware-friendly CRC-32C when the optional package exists;
# fall back to zlib's CRC-32 (same error-detection class, stdlib-only).
try:  # pragma: no cover - depends on optional package
    from crc32c import crc32c as _crc  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - exercised in this container
    _crc: Callable[[bytes], int] = zlib.crc32

#: On-disk page header: magic, version, flags, reserved, page_no, crc.
PAGE_HEADER = struct.Struct("<4sBBHII")
PAGE_HEADER_SIZE = PAGE_HEADER.size
PAGE_MAGIC = b"MODB"
PAGE_FORMAT_VERSION = 1


class PageFile:
    """A sequence of fixed-size pages, addressed by page number.

    With ``path=None`` the file lives in memory (handy for tests and
    benchmarks); otherwise it is backed by a real file.  ``page_size``
    is the on-disk slot size; each slot carries a verification header,
    leaving :attr:`payload_size` bytes of caller data per page.
    """

    def __init__(self, path: Optional[str] = None, page_size: int = PAGE_SIZE):
        if page_size <= PAGE_HEADER_SIZE:
            raise StorageError(
                f"page size {page_size} does not fit the "
                f"{PAGE_HEADER_SIZE}-byte page header"
            )
        self.page_size = page_size
        self.payload_size = page_size - PAGE_HEADER_SIZE
        self._path = path
        if path is None:
            self._file: BinaryIO = io.BytesIO()
        else:
            mode = "r+b" if os.path.exists(path) else "w+b"
            self._file = open(path, mode)
        self._file.seek(0, io.SEEK_END)
        size = self._file.tell()
        if size % page_size != 0:
            raise StorageError("page file size is not a multiple of the page size")
        self._page_count = size // page_size
        self._reads = 0
        self._writes = 0

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Flush and close the underlying file."""
        self._file.close()

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- page operations -----------------------------------------------------

    @property
    def page_count(self) -> int:
        """Number of allocated pages."""
        return self._page_count

    @property
    def io_stats(self) -> tuple[int, int]:
        """(physical reads, physical writes) performed so far."""
        return (self._reads, self._writes)

    def _seal(self, page_no: int, payload: bytes) -> bytes:
        """Build the full on-disk slot: header + payload, checksummed."""
        crc = _crc(struct.pack("<I", page_no) + payload) & 0xFFFFFFFF
        header = PAGE_HEADER.pack(
            PAGE_MAGIC, PAGE_FORMAT_VERSION, 0, 0, page_no, crc
        )
        return header + payload

    def allocate(self) -> int:
        """Append a zeroed page; returns its page number."""
        page_no = self._page_count
        self._file.seek(page_no * self.page_size)
        self._file.write(self._seal(page_no, b"\0" * self.payload_size))
        self._page_count += 1
        self._writes += 1
        return page_no

    def read_page(self, page_no: int) -> bytes:
        """Read and verify one page; returns its payload bytes."""
        self._check(page_no)
        if faults.active:
            faults.fail("pagefile.read_transient", TransientIOError)
        self._file.seek(page_no * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) != self.page_size:
            raise CorruptPageError(f"short read on page {page_no}")
        if faults.active and faults.should_fire("pagefile.read_bitflip"):
            # Deterministic single-bit flip in the payload region.
            idx = PAGE_HEADER_SIZE + page_no % self.payload_size
            data = data[:idx] + bytes([data[idx] ^ 0x01]) + data[idx + 1 :]
        self._reads += 1
        if obs.enabled:
            obs.counters.add("storage.page_reads")
        return self._verify(page_no, data)

    def _verify(self, page_no: int, data: bytes) -> bytes:
        """Check a raw slot's header and checksum; return the payload."""
        magic, version, _flags, _pad, stored_no, crc = PAGE_HEADER.unpack_from(
            data, 0
        )
        payload = data[PAGE_HEADER_SIZE:]
        ok = (
            magic == PAGE_MAGIC
            and version == PAGE_FORMAT_VERSION
            and stored_no == page_no
            and crc == (_crc(struct.pack("<I", page_no) + payload) & 0xFFFFFFFF)
        )
        if not ok:
            if obs.enabled:
                obs.counters.add("storage.checksum_failures")
            if magic != PAGE_MAGIC or version != PAGE_FORMAT_VERSION:
                detail = f"bad header magic/version {magic!r}/{version}"
            elif stored_no != page_no:
                detail = f"header claims page {stored_no} (misdirected write)"
            else:
                detail = "checksum mismatch"
            raise CorruptPageError(f"page {page_no} failed verification: {detail}")
        return payload

    def write_page(self, page_no: int, data: bytes) -> None:
        """Seal and overwrite one page with ``data`` as its payload."""
        self._check(page_no)
        if len(data) > self.payload_size:
            raise StorageError(
                f"page payload of {len(data)} bytes exceeds page size "
                f"{self.payload_size}"
            )
        if len(data) < self.payload_size:
            data = data + b"\0" * (self.payload_size - len(data))
        if faults.active:
            faults.fail("pagefile.write_crash")
        slot = self._seal(page_no, data)
        self._file.seek(page_no * self.page_size)
        if faults.active and faults.should_fire("pagefile.torn_write"):
            # The process "dies" with only the first half of the slot on
            # disk: the stored CRC no longer matches the payload.
            self._file.write(slot[: self.page_size // 2])
            raise_crash = True
        else:
            self._file.write(slot)
            raise_crash = False
        self._writes += 1
        if obs.enabled:
            obs.counters.add("storage.page_writes")
        if raise_crash:
            from repro.errors import SimulatedCrash

            raise SimulatedCrash("failpoint pagefile.torn_write fired")

    def verify_all(self) -> int:
        """Verify every page's checksum; returns the number checked."""
        for page_no in range(self._page_count):
            self.read_page(page_no)
        return self._page_count

    def _check(self, page_no: int) -> None:
        if not 0 <= page_no < self._page_count:
            raise StorageError(
                f"page {page_no} out of range 0..{self._page_count - 1}"
            )
