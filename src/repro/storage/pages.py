"""The page file: fixed-size pages, file-backed or in memory.

The unit of transfer between secondary and main memory.  Representations
of attribute values must "consist of a small number of memory blocks
that can be moved efficiently" (Section 4); pages are those blocks.
"""

from __future__ import annotations

import io
import os
from typing import BinaryIO, Optional

from repro import obs
from repro.config import PAGE_SIZE
from repro.errors import StorageError


class PageFile:
    """A sequence of fixed-size pages, addressed by page number.

    With ``path=None`` the file lives in memory (handy for tests and
    benchmarks); otherwise it is backed by a real file.
    """

    def __init__(self, path: Optional[str] = None, page_size: int = PAGE_SIZE):
        self.page_size = page_size
        self._path = path
        if path is None:
            self._file: BinaryIO = io.BytesIO()
        else:
            mode = "r+b" if os.path.exists(path) else "w+b"
            self._file = open(path, mode)
        self._file.seek(0, io.SEEK_END)
        size = self._file.tell()
        if size % page_size != 0:
            raise StorageError("page file size is not a multiple of the page size")
        self._page_count = size // page_size
        self._reads = 0
        self._writes = 0

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Flush and close the underlying file."""
        self._file.close()

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- page operations -----------------------------------------------------

    @property
    def page_count(self) -> int:
        """Number of allocated pages."""
        return self._page_count

    @property
    def io_stats(self) -> tuple[int, int]:
        """(physical reads, physical writes) performed so far."""
        return (self._reads, self._writes)

    def allocate(self) -> int:
        """Append a zeroed page; returns its page number."""
        page_no = self._page_count
        self._file.seek(page_no * self.page_size)
        self._file.write(b"\0" * self.page_size)
        self._page_count += 1
        self._writes += 1
        return page_no

    def read_page(self, page_no: int) -> bytes:
        """Read one full page."""
        self._check(page_no)
        self._file.seek(page_no * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) != self.page_size:
            raise StorageError(f"short read on page {page_no}")
        self._reads += 1
        if obs.enabled:
            obs.counters.add("storage.page_reads")
        return data

    def write_page(self, page_no: int, data: bytes) -> None:
        """Overwrite one full page."""
        self._check(page_no)
        if len(data) > self.page_size:
            raise StorageError(
                f"page payload of {len(data)} bytes exceeds page size {self.page_size}"
            )
        if len(data) < self.page_size:
            data = data + b"\0" * (self.page_size - len(data))
        self._file.seek(page_no * self.page_size)
        self._file.write(data)
        self._writes += 1
        if obs.enabled:
            obs.counters.add("storage.page_writes")

    def _check(self, page_no: int) -> None:
        if not 0 <= page_no < self._page_count:
            raise StorageError(
                f"page {page_no} out of range 0..{self._page_count - 1}"
            )
