"""The crash matrix: arm → mutate → crash → recover → verify, per failpoint.

The acceptance property of the crash-safety work: for *every* failpoint
registered in :mod:`repro.faults`, injecting it mid-mutation and then
running recovery yields a store where

* every committed tuple is readable and equal to what was committed,
* an interrupted append is either fully absent or (when the crash hit
  after the durable COMMIT) fully present — never partial,
* every page in the page file passes checksum verification, and
* injected read-path corruption is *detected* (typed error), never
  silently returned.

Each scenario builds a small store whose ``mpoint`` attribute forces
external FLOB chains (tiny pages, tiny inline threshold), commits a
baseline, checkpoints part of it, then performs one more append with
the failpoint armed.  The simulated crash discards all in-memory state;
recovery gets only the surviving page file and WAL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro import faults
from repro.errors import (
    CorruptPageError,
    ReproError,
    SimulatedCrash,
    StorageError,
)
from repro.storage.pages import PageFile
from repro.storage.tuplestore import TupleStore
from repro.storage.wal import Wal
from repro.temporal.mapping import MovingPoint
from repro.temporal.upoint import UPoint

SCHEMA: List[Tuple[str, str]] = [("name", "string"), ("track", "mpoint")]

#: Store geometry chosen so every mpoint attribute externalizes into a
#: multi-page FLOB chain: small pages, tiny inline threshold.
PAGE_SIZE = 256
INLINE_THRESHOLD = 64
BUFFER_CAPACITY = 8

#: Baseline committed before the failpoint is armed; the checkpoint is
#: taken after the second tuple so replay exercises snapshot + redo.
BASELINE = 3
CHECKPOINT_AFTER = 2


@dataclass
class MatrixEntry:
    """Outcome of one failpoint's scenario."""

    failpoint: str
    fired: bool
    ok: bool
    detail: str


def _track(seed: int, idx: int) -> MovingPoint:
    """A deterministic multi-unit moving point (~ a few hundred bytes)."""
    units = []
    base = float(seed % 97) + idx * 10.0
    pos = (base, base + 1.0)
    for k in range(6):
        t0, t1 = k * 2.0, k * 2.0 + 1.5
        nxt = (pos[0] + 1.0 + (seed + idx + k) % 3, pos[1] + 0.5 + k % 2)
        units.append(UPoint.between(t0, pos, t1, nxt, rc=False))
        pos = nxt
    return MovingPoint(units)


def _fresh(seed: int) -> Tuple[TupleStore, PageFile, Wal]:
    pf = PageFile(page_size=PAGE_SIZE)
    wal = Wal()
    store = TupleStore(
        SCHEMA,
        pf,
        buffer_capacity=BUFFER_CAPACITY,
        inline_threshold=INLINE_THRESHOLD,
        wal=wal,
        wal_scope="rel:matrix",
    )
    for i in range(BASELINE):
        store.append([f"obj{i}", _track(seed, i)])
        if i + 1 == CHECKPOINT_AFTER:
            store.checkpoint()
    return store, pf, wal


def _rows(store: TupleStore) -> List[Tuple[str, int]]:
    """A comparable digest of every tuple: (name, unit count)."""
    return [(row[0].value, len(row[1].units)) for row in store.scan()]


def _verify_recovered(
    pf: PageFile, wal: Wal, seed: int, extra_expected: bool
) -> Tuple[bool, str]:
    """Recover and check the crash-matrix invariants."""
    recovered = TupleStore.recover(
        SCHEMA,
        pf,
        wal,
        wal_scope="rel:matrix",
        buffer_capacity=BUFFER_CAPACITY,
        inline_threshold=INLINE_THRESHOLD,
    )
    rows = _rows(recovered)
    expected = [(f"obj{i}", 6) for i in range(BASELINE)]
    if extra_expected:
        expected = expected + [("extra", 6)]
    if rows != expected:
        return False, f"recovered rows {rows!r} != committed {expected!r}"
    try:
        pf.verify_all()
    except StorageError as exc:
        return False, f"page failed post-recovery checksum sweep: {exc}"
    return True, f"{len(rows)} tuples intact, {pf.page_count} pages verify"


def _write_scenario(name: str, seed: int) -> MatrixEntry:
    """Arm a write/commit-path failpoint, crash one append, recover."""
    faults.disarm()
    store, pf, wal = _fresh(seed)
    faults.arm(name)
    crashed = False
    try:
        store.append(["extra", _track(seed, BASELINE)])
    except SimulatedCrash:
        crashed = True
    except StorageError as exc:
        return MatrixEntry(
            name, faults.fired(name) > 0, False,
            f"append died with {type(exc).__name__}: {exc}",
        )
    finally:
        faults.disarm()
    wal.crash()  # unsynced WAL buffer evaporates with the process
    fired = faults.fired(name) > 0
    # A policy whose site was never reached would make the scenario
    # vacuous — flag it instead of passing silently.
    if not fired:
        return MatrixEntry(name, False, False, "failpoint never fired")
    # Every write-path failpoint kills the append before its COMMIT is
    # durable except commit_crash, which fires after the barrier: there
    # recovery MUST resurrect the interrupted tuple.
    extra = crashed and name == "tuplestore.commit_crash"
    ok, detail = _verify_recovered(pf, wal, seed, extra_expected=extra)
    return MatrixEntry(name, fired, ok, detail)


def _read_retry_scenario(name: str, seed: int) -> MatrixEntry:
    """Arm the transient-read failpoint; the retry loop must absorb it."""
    faults.disarm()
    store, pf, wal = _fresh(seed)
    baseline = _rows(store)
    # Evict everything so the next scan performs physical reads.
    cold = TupleStore.recover(
        SCHEMA, pf, wal, wal_scope="rel:matrix",
        buffer_capacity=BUFFER_CAPACITY, inline_threshold=INLINE_THRESHOLD,
    )
    faults.arm(name, "once")
    try:
        rows = _rows(cold)
    except StorageError as exc:
        return MatrixEntry(
            name, faults.fired(name) > 0, False,
            f"transient fault escaped the retry loop: {exc}",
        )
    finally:
        faults.disarm()
    fired = faults.fired(name) > 0
    if not fired:
        return MatrixEntry(name, False, False, "failpoint never fired")
    if rows != baseline:
        return MatrixEntry(name, fired, False, "retry returned wrong rows")
    return MatrixEntry(name, fired, True, "transient fault retried")


def _read_bitflip_scenario(name: str, seed: int) -> MatrixEntry:
    """A flipped bit on a cold physical read must raise CorruptPageError."""
    faults.disarm()
    store, pf, wal = _fresh(seed)
    cold = TupleStore.recover(
        SCHEMA, pf, wal, wal_scope="rel:matrix",
        buffer_capacity=BUFFER_CAPACITY, inline_threshold=INLINE_THRESHOLD,
    )
    faults.arm(name, "every:1")
    try:
        _rows(cold)
    except CorruptPageError:
        return MatrixEntry(name, True, True, "bit flip detected (typed)")
    except StorageError as exc:
        return MatrixEntry(
            name, faults.fired(name) > 0, True,
            f"bit flip detected as {type(exc).__name__}",
        )
    finally:
        faults.disarm()
    fired = faults.fired(name) > 0
    if not fired:
        return MatrixEntry(name, False, False, "failpoint never fired")
    return MatrixEntry(name, fired, False, "flipped bit read back silently")


def _catalog_scenario(name: str, seed: int) -> MatrixEntry:
    """Crash a catalog create; recovery must not show the half-made DDL."""
    from repro.db.catalog import Database

    faults.disarm()
    wal = Wal()
    db = Database(wal=wal)
    db.create_relation("committed", SCHEMA, materialized=True,
                       inline_threshold=INLINE_THRESHOLD)
    db.relation("committed").insert([f"obj{seed % 10}", _track(seed, 0)])
    faults.arm(name)
    crashed = False
    try:
        db.create_relation("doomed", SCHEMA, materialized=True)
    except SimulatedCrash:
        crashed = True
    finally:
        faults.disarm()
    wal.crash()
    fired = faults.fired(name) > 0
    if not fired or not crashed:
        return MatrixEntry(name, fired, False, "failpoint never fired")
    recovered = Database.recover(wal)
    if "doomed" in recovered:
        return MatrixEntry(name, fired, False,
                           "uncommitted DDL visible after recovery")
    if "committed" not in recovered:
        return MatrixEntry(name, fired, False,
                           "committed relation lost in recovery")
    rows = recovered.relation("committed").rows()
    if len(rows) != 1 or len(rows[0]["track"].units) != 6:
        return MatrixEntry(name, fired, False,
                           "committed tuple damaged by recovery")
    return MatrixEntry(name, fired, True,
                       "DDL atomic: committed survives, doomed absent")


def _colstore_scenario(name: str, seed: int) -> MatrixEntry:
    """Crash a column-store save mid-generation: the prior generation
    must stay intact (or be *detectably* torn — never torn bytes served),
    and ``load_or_rebuild`` must repair to the new fleet."""
    import shutil
    import tempfile

    from repro.vector.store import ColumnStore, _BUILDERS

    faults.disarm()
    mappings = [_track(seed, i) for i in range(4)]
    grown = mappings + [_track(seed, 4)]
    root = tempfile.mkdtemp(prefix="crashmatrix_colstore_")
    try:
        store = ColumnStore(root)
        gen1 = _BUILDERS["upoint"](mappings)
        store.save("upoint", gen1, n_objects=len(mappings))
        faults.arm(name)
        crashed = False
        try:
            store.save("upoint", _BUILDERS["upoint"](grown),
                       n_objects=len(grown))
        except SimulatedCrash:
            crashed = True
        finally:
            faults.disarm()
        fired = faults.fired(name) > 0
        if not fired or not crashed:
            return MatrixEntry(name, fired, False, "failpoint never fired")
        # Atomicity: either the old generation still verifies and reads
        # back byte-identical, or the damage is typed — never silent.
        try:
            store.verify("upoint")
            reread = store.load("upoint")
            if reread.offsets.tobytes() != gen1.offsets.tobytes():
                return MatrixEntry(name, fired, False,
                                   "torn save served as clean bytes")
        except StorageError:
            pass  # detected — acceptable outcome
        repaired = store.load_or_rebuild("upoint", grown)
        if len(repaired.offsets) != len(grown) + 1:
            return MatrixEntry(name, fired, False,
                               "rebuild did not repair to the new fleet")
        store.verify("upoint")
        return MatrixEntry(name, fired, True,
                           "old generation safe; rebuild repaired store")
    finally:
        faults.disarm()
        shutil.rmtree(root, ignore_errors=True)


def _shmcol_scenario(name: str, seed: int) -> MatrixEntry:
    """Crash mid-``pack``: the shared-memory segment must be reclaimed
    from the OS namespace, not leaked, and a repack must serve
    identical bytes."""
    import os

    from repro.parallel import shmcol
    from repro.vector.store import _BUILDERS

    faults.disarm()
    col = _BUILDERS["upoint"]([_track(seed, i) for i in range(4)])
    try:
        before = set(os.listdir("/dev/shm"))
    except OSError:  # pragma: no cover - non-Linux fallback
        before = None
    faults.arm(name)
    crashed = False
    try:
        shmcol.pack(col)
    except SimulatedCrash:
        crashed = True
    finally:
        faults.disarm()
    fired = faults.fired(name) > 0
    if not fired or not crashed:
        return MatrixEntry(name, fired, False, "failpoint never fired")
    if shmcol._SEGMENTS:
        return MatrixEntry(name, fired, False,
                           "crashed pack left its segment in the registry")
    if before is not None:
        leaked = set(os.listdir("/dev/shm")) - before
        if leaked:
            return MatrixEntry(name, fired, False,
                               f"segment leaked into /dev/shm: {leaked}")
    desc = shmcol.shared_descriptor(col)
    attached = shmcol.attach(desc)
    try:
        same = attached.column.offsets.tobytes() == col.offsets.tobytes()
    finally:
        attached.close()
        shmcol.release_all()
    if not same:
        return MatrixEntry(name, fired, False, "repacked bytes differ")
    return MatrixEntry(name, fired, True,
                       "segment reclaimed; repack serves identical bytes")


def _ingest_scenario(name: str, seed: int) -> MatrixEntry:
    """Crash the query service's group-commit path, then recover.

    The two failpoints prove the two sides of the durability barrier:
    ``wal.group_commit_crash`` fires *before* the batched ``sync()``, so
    the crashed batch must be absent after replay; ``server.ingest_crash``
    fires *after* it (mid-apply), so replay must resurrect the batch —
    the ingest-path analog of ``tuplestore.commit_crash``.  Either way
    the columns served after recovery must match a from-scratch build:
    no torn columns."""
    import shutil
    import tempfile

    from repro.server.executor import FleetExecutor
    from repro.server.ingest import IngestRequest, commit, replay_ingest
    from repro.vector.cache import clear_cache, column_for_versioned
    from repro.vector.store import _BUILDERS, clear_store, set_store

    faults.disarm()
    baseline = [_track(seed, i) for i in range(4)]
    root = tempfile.mkdtemp(prefix="crashmatrix_ingest_")
    wal = Wal()
    try:
        clear_cache()
        set_store(root)
        ex = FleetExecutor()
        fleet = ex.register_fleet("fleet", baseline)
        column_for_versioned(fleet, "upoint")  # persist the baseline column
        first = IngestRequest("fleet", 0, (100.0, 0.0, 0.0, 101.5, 1.0, 1.0))
        commit(wal, ex, [first])
        column_for_versioned(fleet, "upoint")  # extend the stored column
        faults.arm(name)
        crashed = False
        second = IngestRequest("fleet", 1, (200.0, 5.0, 5.0, 201.5, 6.0, 6.0))
        try:
            commit(wal, ex, [second])
        except SimulatedCrash:
            crashed = True
        finally:
            faults.disarm()
        wal.crash()  # whatever was buffered dies with the process
        fired = faults.fired(name) > 0
        if not fired or not crashed:
            return MatrixEntry(name, fired, False, "failpoint never fired")
        # "Restart": drop every live object, rebind the store directory,
        # rebuild the boot-time fleet, and replay the durable WAL prefix.
        del ex, fleet
        clear_cache()
        set_store(root)
        ex2 = FleetExecutor()
        fleet2 = ex2.register_fleet("fleet", baseline)
        replayed = replay_ingest(wal, ex2)
        counts = [len(m.units) for m in fleet2]
        expected = [len(m.units) for m in baseline]
        expected[0] += 1  # the first batch was durable before the crash
        durable = name == "server.ingest_crash"
        if durable:
            expected[1] += 1  # synced pre-apply: replay must resurrect it
        if counts != expected:
            return MatrixEntry(
                name, fired, False,
                f"replayed unit counts {counts!r} != expected {expected!r}",
            )
        _, col = column_for_versioned(fleet2, "upoint")
        ref = _BUILDERS["upoint"](list(fleet2))
        if (col.offsets.tobytes() != ref.offsets.tobytes()
                or col.x0.tobytes() != ref.x0.tobytes()):
            return MatrixEntry(name, fired, False,
                               "post-recovery column differs from rebuild")
        detail = ("durable batch resurrected by replay" if durable
                  else "unsynced batch absent after replay")
        return MatrixEntry(name, fired, True,
                           f"{replayed} unit(s) replayed; {detail}")
    finally:
        faults.disarm()
        clear_store()
        clear_cache()
        wal.close()
        shutil.rmtree(root, ignore_errors=True)


def _chaos_scenario(name: str, seed: int) -> MatrixEntry:
    """Delegate a live-degradation failpoint to the chaos matrix.

    The four service failpoints need a running server (or a live fork
    pool), not a store-and-recover cycle; their scenarios live in
    :mod:`repro.server.chaos`.  The matrix still owns registry coverage
    — every registered failpoint must resolve to *some* scenario — so
    this shim runs the chaos scenario at smoke scale.
    """
    from repro.server.chaos import SCENARIOS as CHAOS_SCENARIOS

    return CHAOS_SCENARIOS[name](name, seed, True)


#: failpoint name → scenario runner; one entry per registered failpoint.
SCENARIOS: Dict[str, Callable[[str, int], MatrixEntry]] = {
    "pagefile.write_crash": _write_scenario,
    "pagefile.torn_write": _write_scenario,
    "pagefile.read_transient": _read_retry_scenario,
    "pagefile.read_bitflip": _read_bitflip_scenario,
    "flob.write_crash": _write_scenario,
    "wal.append_crash": _write_scenario,
    "wal.sync_crash": _write_scenario,
    "wal.torn_tail": _write_scenario,
    "tuplestore.commit_crash": _write_scenario,
    "catalog.create_crash": _catalog_scenario,
    "colstore.write_crash": _colstore_scenario,
    "colstore.manifest_crash": _colstore_scenario,
    "shmcol.pack_crash": _shmcol_scenario,
    "wal.group_commit_crash": _ingest_scenario,
    "server.ingest_crash": _ingest_scenario,
    "server.conn_drop": _chaos_scenario,
    "server.slow_client": _chaos_scenario,
    "parallel.worker_kill": _chaos_scenario,
    "ingest.dup_send": _chaos_scenario,
    "shard.evict_during_query": _chaos_scenario,
}


def run_crash_matrix(
    seed: int = 2000,
    only: Optional[str] = None,
    should_stop: Optional[Callable[[], bool]] = None,
) -> List[MatrixEntry]:
    """Run every registered failpoint's scenario; returns the outcomes.

    Raises :class:`ReproError` if a failpoint has no scenario (the
    matrix must cover the whole registry — MOD006 keeps the registry
    honest, this check keeps the matrix honest).  ``should_stop`` is
    polled *between* scenarios — a signal handler can set it to stop
    early at a clean boundary, with everything already run reported.
    """
    missing = faults.FAILPOINT_NAMES - set(SCENARIOS)
    if missing:
        raise ReproError(
            f"crash matrix has no scenario for: {', '.join(sorted(missing))}"
        )
    entries: List[MatrixEntry] = []
    prior = faults.armed()
    faults.disarm()
    try:
        for name in sorted(SCENARIOS):
            if should_stop is not None and should_stop():
                break
            if only is not None and name != only:
                continue
            entries.append(SCENARIOS[name](name, seed))
    finally:
        faults.disarm()
        for armed_name, policy in prior.items():
            faults.arm(armed_name, policy)
    return entries


def format_matrix(entries: List[MatrixEntry]) -> str:
    """Render the matrix outcomes as an aligned text table."""
    width = max(len(e.failpoint) for e in entries) if entries else 8
    lines = []
    for e in entries:
        status = "ok" if e.ok else "FAIL"
        lines.append(f"{e.failpoint.ljust(width)}  {status:<4}  {e.detail}")
    passed = sum(1 for e in entries if e.ok)
    lines.append(f"{passed}/{len(entries)} failpoints survived")
    return "\n".join(lines)
