"""Heap files of tuples with embedded attribute values.

A tuple is a sequence of attribute values; each value's root record is
stored inside the tuple, and each of its database arrays goes through
the FLOB placement decision (inline when small, separate pages when
large), following [DG98] as described in Section 4.

When a :class:`repro.storage.wal.Wal` is attached, every append is a
logged transaction — BEGIN, a physical redo image of every FLOB page
the tuple externalized, the serialized tuple bytes, COMMIT, then one
fsync barrier — and :meth:`TupleStore.recover` replays the committed
transactions since the last checkpoint after a crash.  The crash model:
the page file and the WAL survive; the in-memory tuple directory and
the buffer pool do not.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Sequence, Tuple

from repro import faults, obs
from repro.errors import CorruptRecordError, StorageError
from repro.storage import wal as walmod
from repro.storage.buffer import BufferPool
from repro.storage.darray import DatabaseArray
from repro.storage.flob import FlobRef, FlobStore
from repro.storage.pages import PageFile
from repro.storage.records import StoredValue, codec_for, pack_value, safe_unpack
from repro.storage.wal import Wal

_PAGE_IMG = struct.Struct("<I")  # page number prefix of a PAGE payload


class TupleStore:
    """An append-only heap of tuples, each a list of typed attribute values.

    Tuples are serialized as: per attribute, the type name, the root
    record, and per database array either the inline bytes or a FLOB
    reference.  The serialized tuples themselves are kept in an
    in-memory directory of byte strings plus the shared page file for
    externalized arrays — the aspect under study (Section 4) is the
    *value* representation, not the slotted-page tuple layout.  The
    attached WAL (optional) makes the directory itself recoverable.
    """

    def __init__(
        self,
        schema: Sequence[Tuple[str, str]],
        pagefile: Optional[PageFile] = None,
        buffer_capacity: int = 64,
        inline_threshold: Optional[int] = None,
        wal: Optional[Wal] = None,
        wal_scope: str = "",
    ):
        self.schema = list(schema)
        for _name, type_name in self.schema:
            codec_for(type_name)  # fail fast on unknown types
        self._pf = pagefile if pagefile is not None else PageFile()
        self._pool = BufferPool(self._pf, buffer_capacity)
        kwargs = {}
        if inline_threshold is not None:
            kwargs["inline_threshold"] = inline_threshold
        self._flobs = FlobStore(self._pool, **kwargs)
        self._tuples: List[bytes] = []
        self._wal = wal
        self._wal_scope = wal_scope
        self.inline_arrays = 0
        self.external_arrays = 0

    @property
    def buffer_pool(self) -> BufferPool:
        return self._pool

    @property
    def pagefile(self) -> PageFile:
        return self._pf

    @property
    def wal(self) -> Optional[Wal]:
        return self._wal

    def __len__(self) -> int:
        return len(self._tuples)

    # -- write path -----------------------------------------------------------

    def _serialize(self, values: Sequence) -> Tuple[bytes, List[int]]:
        """Pack one tuple; returns its bytes and the FLOB pages written."""
        out = bytearray()
        touched: List[int] = []
        for (_name, type_name), value in zip(self.schema, values):
            if isinstance(value, (bool, int, float, str)):
                from repro.base.values import wrap

                value = wrap(value)
            stored = pack_value(type_name, value)
            tname = stored.type_name.encode("ascii")
            out.extend(struct.pack("<H", len(tname)))
            out.extend(tname)
            out.extend(struct.pack("<I", len(stored.root)))
            out.extend(stored.root)
            out.extend(struct.pack("<H", len(stored.arrays)))
            for arr in stored.arrays:
                blob = arr.to_bytes()
                if len(blob) <= self._flobs.inline_threshold:
                    self.inline_arrays += 1
                    out.extend(struct.pack("<BI", 1, len(blob)))
                    out.extend(blob)
                else:
                    self.external_arrays += 1
                    ref, pages = self._flobs.write_chain(blob)
                    touched.extend(pages)
                    out.extend(
                        struct.pack("<Bqq", 0, ref.first_page, ref.length)
                    )
        return bytes(out), touched

    def append(self, values: Sequence) -> int:
        """Pack and append one tuple; returns its tuple id.

        With a WAL attached this is one durable transaction: the FLOB
        page images and tuple bytes are logged and synced *before* the
        tuple becomes visible in the directory, so a crash at any point
        either loses the whole tuple (no COMMIT durable) or recovery
        resurrects all of it (COMMIT durable).
        """
        if len(values) != len(self.schema):
            raise StorageError(
                f"tuple arity {len(values)} does not match schema "
                f"arity {len(self.schema)}"
            )
        data, touched = self._serialize(values)
        if self._wal is not None:
            self._wal.append(walmod.BEGIN, scope=self._wal_scope)
            # Physical redo: flush the chain pages, then log their images.
            self._pool.flush()
            for page_no in touched:
                img = self._pf.read_page(page_no)
                self._wal.append(
                    walmod.PAGE,
                    _PAGE_IMG.pack(page_no) + img,
                    scope=self._wal_scope,
                )
            self._wal.append(walmod.TUPLE, data, scope=self._wal_scope)
            self._wal.append(walmod.COMMIT, scope=self._wal_scope)
            self._wal.sync()
            if faults.active:
                # Crash after the commit is durable but before the
                # in-memory apply: recovery must resurrect this tuple.
                faults.fail("tuplestore.commit_crash")
        self._tuples.append(data)
        return len(self._tuples) - 1

    def checkpoint(self) -> None:
        """Flush all dirty pages and log a consistent directory snapshot.

        Replay after a crash starts from the latest durable checkpoint
        instead of the beginning of the log.
        """
        if self._wal is None:
            raise StorageError("checkpoint requires an attached WAL")
        self._pool.flush()
        snap = bytearray(struct.pack("<I", len(self._tuples)))
        for t in self._tuples:
            snap.extend(struct.pack("<I", len(t)))
            snap.extend(t)
        self._wal.append(walmod.CHECKPOINT, bytes(snap), scope=self._wal_scope)
        self._wal.sync()

    # -- recovery -------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        schema: Sequence[Tuple[str, str]],
        pagefile: PageFile,
        wal: Wal,
        wal_scope: str = "",
        buffer_capacity: int = 64,
        inline_threshold: Optional[int] = None,
    ) -> "TupleStore":
        """Rebuild a store from its surviving page file and WAL.

        Replays the durable log prefix for ``wal_scope``: the latest
        CHECKPOINT resets the tuple directory to its snapshot, then
        every BEGIN..COMMIT transaction after it re-applies its page
        images and directory appends.  Transactions without a durable
        COMMIT — including any torn tail — are discarded, so no partial
        write becomes visible.
        """
        store = cls(
            schema,
            pagefile,
            buffer_capacity=buffer_capacity,
            inline_threshold=inline_threshold,
            wal=wal,
            wal_scope=wal_scope,
        )
        directory: List[bytes] = []
        txn: Optional[List[walmod.WalRecord]] = None
        applied = 0
        for rec in wal.records():
            if rec.scope != wal_scope:
                continue
            if rec.rec_type == walmod.CHECKPOINT:
                directory = _decode_snapshot(rec.payload)
                txn = None
            elif rec.rec_type == walmod.BEGIN:
                txn = []
            elif rec.rec_type == walmod.COMMIT:
                if txn is not None:
                    for r in txn:
                        if r.rec_type == walmod.PAGE:
                            _apply_page_image(pagefile, r.payload)
                        elif r.rec_type == walmod.TUPLE:
                            directory.append(r.payload)
                    applied += 1
                txn = None
            elif txn is not None:
                txn.append(rec)
        # Scavenge: a page that fails verification now belonged to an
        # uncommitted transaction (every committed page write logged a
        # redo image, which the loop above already re-applied), so it is
        # provably garbage — re-seal it as a zero page rather than leave
        # a land mine for later reads.
        for page_no in range(pagefile.page_count):
            try:
                pagefile.read_page(page_no)
            except StorageError:
                pagefile.write_page(page_no, b"")
        store._tuples = directory
        if obs.enabled and applied:
            obs.counters.add("wal.recovered", applied)
        return store

    # -- read path ---------------------------------------------------------------

    def fetch(self, tuple_id: int) -> List:
        """Read one tuple back, unpacking every attribute value.

        Every length and offset is validated before slicing; a mangled
        tuple raises :class:`CorruptRecordError` naming the tuple,
        never a bare ``struct.error`` and never a silently short value.
        """
        if not 0 <= tuple_id < len(self._tuples):
            raise StorageError(f"tuple id {tuple_id} out of range")
        data = self._tuples[tuple_id]
        end = len(data)

        def need(off: int, n: int, what: str) -> None:
            if off + n > end:
                raise CorruptRecordError(
                    f"tuple {tuple_id}: truncated while reading {what} "
                    f"(need {n} bytes at offset {off} of {end})"
                )

        off = 0
        values = []
        for attr_name, _type in self.schema:
            need(off, 2, f"type tag of {attr_name!r}")
            (tname_len,) = struct.unpack_from("<H", data, off)
            off += 2
            need(off, tname_len, f"type name of {attr_name!r}")
            tname = data[off : off + tname_len].decode("ascii", errors="replace")
            off += tname_len
            need(off, 4, f"root length of {attr_name!r}")
            (root_len,) = struct.unpack_from("<I", data, off)
            off += 4
            need(off, root_len, f"root record of {attr_name!r}")
            root = data[off : off + root_len]
            off += root_len
            need(off, 2, f"array count of {attr_name!r}")
            (narrays,) = struct.unpack_from("<H", data, off)
            off += 2
            arrays = []
            for _ in range(narrays):
                need(off, 1, f"array placement flag of {attr_name!r}")
                (inline,) = struct.unpack_from("<B", data, off)
                if inline:
                    need(off + 1, 4, f"inline array length of {attr_name!r}")
                    (blob_len,) = struct.unpack_from("<I", data, off + 1)
                    off += 5
                    need(off, blob_len, f"inline array of {attr_name!r}")
                    blob = data[off : off + blob_len]
                    off += blob_len
                else:
                    need(off + 1, 16, f"FLOB reference of {attr_name!r}")
                    first_page, length = struct.unpack_from("<qq", data, off + 1)
                    off += 17
                    blob = self._flobs.read(FlobRef(first_page, length))
                arrays.append(DatabaseArray.from_bytes(blob))
            values.append(safe_unpack(StoredValue(tname, bytes(root), arrays)))
        return values

    def scan(self, strict: bool = True) -> Iterator[List]:
        """Iterate over all tuples in insertion order.

        With ``strict=False`` a tuple whose bytes, FLOB chain, or pages
        fail verification is *quarantined* — skipped and counted under
        ``storage.quarantined`` — instead of aborting the scan; with the
        default ``strict=True`` the :class:`StorageError` propagates.
        """
        for tid in range(len(self._tuples)):
            if strict:
                yield self.fetch(tid)
                continue
            try:
                row = self.fetch(tid)
            except StorageError:
                if obs.enabled:
                    obs.counters.add("storage.quarantined")
                continue
            yield row

    # -- statistics -----------------------------------------------------------------

    def storage_stats(self) -> dict:
        """Layout statistics: tuple bytes, placement counts, pool stats."""
        return {
            "tuples": len(self._tuples),
            "tuple_bytes": sum(len(t) for t in self._tuples),
            "inline_arrays": self.inline_arrays,
            "external_arrays": self.external_arrays,
            **self._pool.stats(),
        }


def _decode_snapshot(payload: bytes) -> List[bytes]:
    """Decode a CHECKPOINT directory snapshot."""
    if len(payload) < 4:
        raise CorruptRecordError("checkpoint snapshot shorter than its header")
    (count,) = struct.unpack_from("<I", payload, 0)
    off = 4
    out: List[bytes] = []
    for i in range(count):
        if off + 4 > len(payload):
            raise CorruptRecordError(
                f"checkpoint snapshot truncated at tuple {i} of {count}"
            )
        (n,) = struct.unpack_from("<I", payload, off)
        off += 4
        if off + n > len(payload):
            raise CorruptRecordError(
                f"checkpoint snapshot truncated inside tuple {i} of {count}"
            )
        out.append(payload[off : off + n])
        off += n
    return out


def _apply_page_image(pagefile: PageFile, payload: bytes) -> None:
    """Redo one PAGE record: write its image back into the page file."""
    if len(payload) < _PAGE_IMG.size:
        raise CorruptRecordError("PAGE record shorter than its header")
    (page_no,) = _PAGE_IMG.unpack_from(payload, 0)
    img = payload[_PAGE_IMG.size :]
    while pagefile.page_count <= page_no:
        pagefile.allocate()
    pagefile.write_page(page_no, img)
