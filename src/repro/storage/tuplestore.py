"""Heap files of tuples with embedded attribute values.

A tuple is a sequence of attribute values; each value's root record is
stored inside the tuple, and each of its database arrays goes through
the FLOB placement decision (inline when small, separate pages when
large), following [DG98] as described in Section 4.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.darray import DatabaseArray
from repro.storage.flob import FlobRef, FlobStore
from repro.storage.pages import PageFile
from repro.storage.records import StoredValue, codec_for, pack_value


class TupleStore:
    """An append-only heap of tuples, each a list of typed attribute values.

    Tuples are serialized as: per attribute, the type name, the root
    record, and per database array either the inline bytes or a FLOB
    reference.  The serialized tuples themselves are kept in an
    in-memory directory of byte strings plus the shared page file for
    externalized arrays — the aspect under study (Section 4) is the
    *value* representation, not the slotted-page tuple layout.
    """

    def __init__(
        self,
        schema: Sequence[Tuple[str, str]],
        pagefile: Optional[PageFile] = None,
        buffer_capacity: int = 64,
        inline_threshold: Optional[int] = None,
    ):
        self.schema = list(schema)
        for _name, type_name in self.schema:
            codec_for(type_name)  # fail fast on unknown types
        self._pf = pagefile if pagefile is not None else PageFile()
        self._pool = BufferPool(self._pf, buffer_capacity)
        kwargs = {}
        if inline_threshold is not None:
            kwargs["inline_threshold"] = inline_threshold
        self._flobs = FlobStore(self._pool, **kwargs)
        self._tuples: List[bytes] = []
        self.inline_arrays = 0
        self.external_arrays = 0

    @property
    def buffer_pool(self) -> BufferPool:
        return self._pool

    def __len__(self) -> int:
        return len(self._tuples)

    # -- write path -----------------------------------------------------------

    def append(self, values: Sequence) -> int:
        """Pack and append one tuple; returns its tuple id."""
        if len(values) != len(self.schema):
            raise StorageError(
                f"tuple arity {len(values)} does not match schema "
                f"arity {len(self.schema)}"
            )
        out = bytearray()
        for (name, type_name), value in zip(self.schema, values):
            if isinstance(value, (bool, int, float, str)):
                from repro.base.values import wrap

                value = wrap(value)
            stored = pack_value(type_name, value)
            tname = stored.type_name.encode("ascii")
            out.extend(struct.pack("<H", len(tname)))
            out.extend(tname)
            out.extend(struct.pack("<I", len(stored.root)))
            out.extend(stored.root)
            out.extend(struct.pack("<H", len(stored.arrays)))
            for arr in stored.arrays:
                blob = arr.to_bytes()
                inline, payload = self._flobs.place(blob)
                if inline:
                    self.inline_arrays += 1
                    out.extend(struct.pack("<BI", 1, len(blob)))
                    out.extend(blob)
                else:
                    self.external_arrays += 1
                    assert isinstance(payload, FlobRef)
                    out.extend(
                        struct.pack("<Bqq", 0, payload.first_page, payload.length)
                    )
        self._tuples.append(bytes(out))
        return len(self._tuples) - 1

    # -- read path ---------------------------------------------------------------

    def fetch(self, tuple_id: int) -> List:
        """Read one tuple back, unpacking every attribute value."""
        if not 0 <= tuple_id < len(self._tuples):
            raise StorageError(f"tuple id {tuple_id} out of range")
        data = self._tuples[tuple_id]
        off = 0
        values = []
        for _name, _type in self.schema:
            (tname_len,) = struct.unpack_from("<H", data, off)
            off += 2
            tname = data[off : off + tname_len].decode("ascii")
            off += tname_len
            (root_len,) = struct.unpack_from("<I", data, off)
            off += 4
            root = data[off : off + root_len]
            off += root_len
            (narrays,) = struct.unpack_from("<H", data, off)
            off += 2
            arrays = []
            for _ in range(narrays):
                (inline,) = struct.unpack_from("<B", data, off)
                if inline:
                    (blob_len,) = struct.unpack_from("<I", data, off + 1)
                    off += 5
                    blob = data[off : off + blob_len]
                    off += blob_len
                else:
                    first_page, length = struct.unpack_from("<qq", data, off + 1)
                    off += 17
                    blob = self._flobs.read(FlobRef(first_page, length))
                arrays.append(DatabaseArray.from_bytes(blob))
            codec = codec_for(tname)
            values.append(codec.unpack(StoredValue(tname, bytes(root), arrays)))
        return values

    def scan(self) -> Iterator[List]:
        """Iterate over all tuples in insertion order."""
        for tid in range(len(self._tuples)):
            yield self.fetch(tid)

    # -- statistics -----------------------------------------------------------------

    def storage_stats(self) -> dict:
        """Layout statistics: tuple bytes, placement counts, pool stats."""
        return {
            "tuples": len(self._tuples),
            "tuple_bytes": sum(len(t) for t in self._tuples),
            "inline_arrays": self.inline_arrays,
            "external_arrays": self.external_arrays,
            **self._pool.stats(),
        }
