"""FLOBs: inline-or-paged placement of variable-size byte strings.

Dieker & Güting [DG98] ("Efficient Handling of Tuples with Embedded
Large Objects", cited in Section 4) store a tuple's variable-size
components inline inside the tuple representation when they are small,
and in a separate list of pages when they are large.  The database
arrays of every attribute value go through this placement decision.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple

from repro import faults, obs
from repro.config import INLINE_THRESHOLD
from repro.errors import CorruptRecordError
from repro.storage.buffer import BufferPool


@dataclass(frozen=True)
class FlobRef:
    """Reference to an externally stored FLOB: its page chain and length."""

    first_page: int
    length: int


class FlobStore:
    """Stores large byte strings in chained pages via a buffer pool.

    Each page holds ``page_size - 8`` payload bytes plus a next-page
    pointer (−1 terminates the chain) — integer indices, no pointers,
    per the Section 4 ground rules.
    """

    _HEADER = struct.Struct("<q")  # next page number

    def __init__(self, pool: BufferPool, inline_threshold: int = INLINE_THRESHOLD):
        self._pool = pool
        self.inline_threshold = inline_threshold

    @property
    def payload_per_page(self) -> int:
        return self._pool.page_size - self._HEADER.size

    # -- placement decision ----------------------------------------------------

    def place(self, data: bytes) -> Tuple[bool, bytes | FlobRef]:
        """Decide inline vs external placement for ``data``.

        Returns ``(True, data)`` for inline placement or
        ``(False, FlobRef)`` after writing the bytes to pages.
        """
        if len(data) <= self.inline_threshold:
            return (True, data)
        return (False, self.write(data))

    def fetch(self, placed: Tuple[bool, bytes | FlobRef]) -> bytes:
        """Materialize a placement produced by :meth:`place`."""
        inline, payload = placed
        if inline:
            assert isinstance(payload, bytes)
            return payload
        assert isinstance(payload, FlobRef)
        return self.read(payload)

    # -- paged storage --------------------------------------------------------------

    def write(self, data: bytes) -> FlobRef:
        """Write ``data`` to a fresh page chain."""
        ref, _pages = self.write_chain(data)
        return ref

    def write_chain(self, data: bytes) -> Tuple[FlobRef, List[int]]:
        """Write ``data`` to a fresh page chain; also return its pages.

        The page list lets callers (the tuple store's WAL path) log
        physical redo images for every page the chain touched.
        """
        chunk = self.payload_per_page
        chunks = [data[i : i + chunk] for i in range(0, len(data), chunk)] or [b""]
        if obs.enabled:
            obs.counters.add("storage.flob_writes")
            obs.counters.add("storage.flob_pages_written", len(chunks))
        page_nos = [self._pool.new_page() for _ in chunks]
        for idx, (page_no, piece) in enumerate(zip(page_nos, chunks)):
            if faults.active:
                faults.fail("flob.write_crash")
            nxt = page_nos[idx + 1] if idx + 1 < len(page_nos) else -1
            frame = self._pool.pin(page_no)
            frame[: self._HEADER.size] = self._HEADER.pack(nxt)
            frame[self._HEADER.size : self._HEADER.size + len(piece)] = piece
            self._pool.unpin(page_no, dirty=True)
        return FlobRef(page_nos[0], len(data)), page_nos

    def read(self, ref: FlobRef) -> bytes:
        """Read a page chain back into one byte string.

        Validates the chain as it walks: the declared length must be
        non-negative, and every next-pointer must land inside the page
        file (−1 only once the length is satisfied).  A broken chain
        raises :class:`CorruptRecordError` carrying the FLOB and page
        context instead of a bare struct/index error.
        """
        if ref.length < 0:
            raise CorruptRecordError(
                f"FLOB at page {ref.first_page} declares negative length "
                f"{ref.length}"
            )
        out = bytearray()
        page_no = ref.first_page
        remaining = ref.length
        if obs.enabled:
            obs.counters.add("storage.flob_reads")
        while remaining > 0:
            if not 0 <= page_no < self._pool.page_count:
                raise CorruptRecordError(
                    f"FLOB starting at page {ref.first_page} chains to "
                    f"page {page_no} outside the file "
                    f"({remaining} of {ref.length} bytes unread)"
                )
            if obs.enabled:
                obs.counters.add("storage.flob_pages_read")
            frame = self._pool.pin(page_no)
            (nxt,) = self._HEADER.unpack(bytes(frame[: self._HEADER.size]))
            take = min(remaining, self.payload_per_page)
            out.extend(frame[self._HEADER.size : self._HEADER.size + take])
            self._pool.unpin(page_no)
            remaining -= take
            page_no = nxt
        return bytes(out)
