"""Per-type storage codecs: root records plus database arrays (Section 4).

Every attribute data type is represented by a fixed-size *root record*
(always stored within the tuple) and zero or more *database arrays*.
Set-valued types store their elements in a unique canonical order so
that two values are equal iff their array representations are equal.
All cross-references (cycle membership, face membership, subarrays) are
integer indices, never pointers.

The layouts follow the paper:

* ``line`` — an array of halfsegments in the [GdRS95] total order, with
  the dominating-point flag; the root record carries the count, the
  bounding box, and the total length (Section 4.1).
* ``region`` — the halfsegment array plus ``cycles`` and ``faces``
  arrays; left halfsegments of a cycle are linked in a ring through a
  ``next_in_cycle`` index; cycles of a face are chained through
  ``next_cycle``; the root record carries counts, bounding box, area
  and perimeter (Section 4.1).
* fixed-size units (``const``, ``ureal``, ``upoint``) — a record with an
  interval component and the unit function inline (Section 4.2).
* variable-size units (``upoints``, ``uline``, ``uregion``) — records
  whose function component is one or more *subarray* references (lo/hi
  indices) into arrays shared by the whole mapping, plus a bounding
  cube (Section 4.2).
* ``mapping`` — a ``units`` array ordered by time interval plus the k
  shared arrays of its unit type, all referenced from a single root
  record (Section 4.3 / Figure 7).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.base.instant import Instant
from repro.base.values import MAX_STRING, BoolVal, IntVal, RealVal, StringVal
from repro.errors import CorruptRecordError, StorageError
from repro.geometry.segment import HalfSegment, Seg, halfsegments_of
from repro.ranges.interval import Interval
from repro.ranges.intime import Intime
from repro.ranges.rangeset import RangeSet
from repro.spatial.line import Line
from repro.spatial.point import Point
from repro.spatial.points import Points
from repro.spatial.region import Cycle, Face, Region
from repro.storage.darray import DatabaseArray
from repro.temporal.mapping import (
    Mapping,
    MovingBool,
    MovingInt,
    MovingLine,
    MovingPoint,
    MovingPoints,
    MovingReal,
    MovingRegion,
    MovingString,
)
from repro.temporal.mseg import MPoint, MSeg
from repro.temporal.uconst import ConstUnit
from repro.temporal.uline import ULine
from repro.temporal.upoint import UPoint
from repro.temporal.upoints import UPoints
from repro.temporal.ureal import UReal
from repro.temporal.uregion import MCycle, MFace, URegion


@dataclass
class StoredValue:
    """The DBMS representation of one attribute value."""

    type_name: str
    root: bytes
    arrays: List[DatabaseArray] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        """Root record size plus all array payloads."""
        return len(self.root) + sum(a.nbytes for a in self.arrays)

    def to_bytes(self) -> bytes:
        """Flatten into a single self-describing byte string.

        The body is prefixed with a CRC-32 so :meth:`from_bytes` can
        detect any truncation or bit damage before decoding — a flipped
        coordinate byte would otherwise round-trip into a silently
        wrong value.
        """
        name = self.type_name.encode("ascii")
        out = bytearray()
        out.extend(struct.pack("<H", len(name)))
        out.extend(name)
        out.extend(struct.pack("<I", len(self.root)))
        out.extend(self.root)
        out.extend(struct.pack("<H", len(self.arrays)))
        for arr in self.arrays:
            blob = arr.to_bytes()
            out.extend(struct.pack("<I", len(blob)))
            out.extend(blob)
        crc = zlib.crc32(out) & 0xFFFFFFFF
        return struct.pack("<I", crc) + bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "StoredValue":
        """Inverse of :meth:`to_bytes`.

        Verifies the CRC prefix and validates every embedded length
        before slicing; damage raises :class:`CorruptRecordError`
        rather than a bare ``struct.error`` or a wrong value.
        """
        end = len(data)

        def need(off: int, n: int, what: str) -> None:
            if off + n > end:
                raise CorruptRecordError(
                    f"stored value truncated while reading {what} "
                    f"(need {n} bytes at offset {off} of {end})"
                )

        need(0, 4, "checksum")
        (crc,) = struct.unpack_from("<I", data, 0)
        body = data[4:]
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            if obs.enabled:
                obs.counters.add("storage.checksum_failures")
            raise CorruptRecordError("stored value failed its checksum")
        off = 4
        need(off, 2, "type-name length")
        (name_len,) = struct.unpack_from("<H", data, off)
        off += 2
        need(off, name_len, "type name")
        name = data[off : off + name_len].decode("ascii", errors="replace")
        off += name_len
        need(off, 4, "root length")
        (root_len,) = struct.unpack_from("<I", data, off)
        off += 4
        need(off, root_len, "root record")
        root = data[off : off + root_len]
        off += root_len
        need(off, 2, "array count")
        (narrays,) = struct.unpack_from("<H", data, off)
        off += 2
        arrays = []
        for i in range(narrays):
            need(off, 4, f"length of array {i}")
            (blob_len,) = struct.unpack_from("<I", data, off)
            off += 4
            need(off, blob_len, f"array {i}")
            arrays.append(DatabaseArray.from_bytes(data[off : off + blob_len]))
            off += blob_len
        return cls(name, bytes(root), arrays)


class Codec:
    """Base class: a bidirectional value ↔ StoredValue mapping."""

    type_name: str = ""

    def pack(self, value) -> StoredValue:
        raise NotImplementedError

    def unpack(self, stored: StoredValue):
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Base types and time
# ---------------------------------------------------------------------------

_INTERVAL = struct.Struct("<dd??")


def _pack_interval(iv: Interval) -> bytes:
    return _INTERVAL.pack(iv.s, iv.e, iv.lc, iv.rc)


def _unpack_interval(data: bytes, off: int = 0) -> Interval:
    s, e, lc, rc = _INTERVAL.unpack_from(data, off)
    return Interval(s, e, lc, rc)


class IntCodec(Codec):
    type_name = "int"
    _S = struct.Struct("<q?")

    def pack(self, value: IntVal) -> StoredValue:
        defined = value.defined
        return StoredValue(
            self.type_name, self._S.pack(value.value if defined else 0, defined)
        )

    def unpack(self, stored: StoredValue) -> IntVal:
        v, defined = self._S.unpack(stored.root)
        return IntVal(v) if defined else IntVal()


class RealCodec(Codec):
    type_name = "real"
    _S = struct.Struct("<d?")

    def pack(self, value: RealVal) -> StoredValue:
        defined = value.defined
        return StoredValue(
            self.type_name, self._S.pack(value.value if defined else 0.0, defined)
        )

    def unpack(self, stored: StoredValue) -> RealVal:
        v, defined = self._S.unpack(stored.root)
        return RealVal(v) if defined else RealVal()


class BoolCodec(Codec):
    type_name = "bool"
    _S = struct.Struct("<??")

    def pack(self, value: BoolVal) -> StoredValue:
        defined = value.defined
        return StoredValue(
            self.type_name, self._S.pack(value.value if defined else False, defined)
        )

    def unpack(self, stored: StoredValue) -> BoolVal:
        v, defined = self._S.unpack(stored.root)
        return BoolVal(v) if defined else BoolVal()


class StringCodec(Codec):
    """Fixed-length character array (footnote 3 of the paper)."""

    type_name = "string"
    _S = struct.Struct(f"<{MAX_STRING}sB?")

    def pack(self, value: StringVal) -> StoredValue:
        defined = value.defined
        raw = value.value.encode("utf-8") if defined else b""
        if len(raw) > MAX_STRING:
            raise StorageError("string too long for the fixed-size representation")
        return StoredValue(self.type_name, self._S.pack(raw, len(raw), defined))

    def unpack(self, stored: StoredValue) -> StringVal:
        raw, length, defined = self._S.unpack(stored.root)
        if not defined:
            return StringVal()
        return StringVal(raw[:length].decode("utf-8"))


class InstantCodec(Codec):
    type_name = "instant"
    _S = struct.Struct("<d?")

    def pack(self, value: Instant) -> StoredValue:
        defined = value.defined
        return StoredValue(
            self.type_name, self._S.pack(value.value if defined else 0.0, defined)
        )

    def unpack(self, stored: StoredValue) -> Instant:
        v, defined = self._S.unpack(stored.root)
        return Instant(v) if defined else Instant()


# ---------------------------------------------------------------------------
# Spatial types
# ---------------------------------------------------------------------------


class PointCodec(Codec):
    type_name = "point"
    _S = struct.Struct("<dd?")

    def pack(self, value: Point) -> StoredValue:
        if value.defined:
            return StoredValue(self.type_name, self._S.pack(value.x, value.y, True))
        return StoredValue(self.type_name, self._S.pack(0.0, 0.0, False))

    def unpack(self, stored: StoredValue) -> Point:
        x, y, defined = self._S.unpack(stored.root)
        return Point(x, y) if defined else Point()


class PointsCodec(Codec):
    type_name = "points"
    _ROOT = struct.Struct("<I")

    def pack(self, value: Points) -> StoredValue:
        arr = DatabaseArray("<dd")
        for x, y in value.vecs:  # already in lexicographic order
            arr.append(x, y)
        return StoredValue(self.type_name, self._ROOT.pack(len(arr)), [arr])

    def unpack(self, stored: StoredValue) -> Points:
        return Points(list(stored.arrays[0]))


_HS = struct.Struct("<dddd?")  # (x1, y1, x2, y2, left_dominating)


def _halfsegment_records(segs: Sequence[Seg]) -> List[tuple]:
    return [
        (h.seg[0][0], h.seg[0][1], h.seg[1][0], h.seg[1][1], h.left_dominating)
        for h in halfsegments_of(segs)
    ]


class LineCodec(Codec):
    type_name = "line"
    _ROOT = struct.Struct("<Iddddd")  # count, bbox, total length

    def pack(self, value: Line) -> StoredValue:
        arr = DatabaseArray(_HS.format)
        arr.extend(_halfsegment_records(value.segments))
        if value.segments:
            bbox = value.bbox()
            root = self._ROOT.pack(
                len(value.segments),
                bbox.xmin,
                bbox.ymin,
                bbox.xmax,
                bbox.ymax,
                value.length(),
            )
        else:
            root = self._ROOT.pack(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return StoredValue(self.type_name, root, [arr])

    def unpack(self, stored: StoredValue) -> Line:
        segs = []
        for x1, y1, x2, y2, left in stored.arrays[0]:
            if left:  # each segment appears once per halfsegment pair
                segs.append(((x1, y1), (x2, y2)))
        return Line(segs, validate=False)


class RegionCodec(Codec):
    """Region layout of Section 4.1: halfsegments + cycles + faces arrays."""

    type_name = "region"
    _ROOT = struct.Struct("<IIIdddddd")  # nfaces, ncycles, nsegs, bbox, area, perim
    _HSREC = struct.Struct("<dddd?q")  # halfsegment + next_in_cycle link
    _CYCREC = struct.Struct("<qq")  # first halfsegment, next cycle of face
    _FACEREC = struct.Struct("<q")  # first cycle

    def pack(self, value: Region) -> StoredValue:
        halves = halfsegments_of(value.segments())
        # Index of the *left* halfsegment of each segment.
        left_index: Dict[Seg, int] = {}
        for idx, h in enumerate(halves):
            if h.left_dominating:
                left_index[h.seg] = idx
        next_in_cycle = [-1] * len(halves)
        cycles_arr = DatabaseArray(self._CYCREC.format)
        faces_arr = DatabaseArray(self._FACEREC.format)
        for f in value.faces:
            cycle_ids = []
            for cyc in f.cycles:
                ring = [left_index[s] for s in cyc.segments]
                for a, b in zip(ring, ring[1:] + ring[:1]):
                    next_in_cycle[a] = b
                cycle_ids.append(cycles_arr.append(ring[0], -1))
            # Chain this face's cycles: outer first, then the holes.
            for a, b in zip(cycle_ids, cycle_ids[1:]):
                first, _ = cycles_arr.get(a)
                cycles_arr.set(a, first, b)
            faces_arr.append(cycle_ids[0])
        hs_arr = DatabaseArray(self._HSREC.format)
        for idx, h in enumerate(halves):
            hs_arr.append(
                h.seg[0][0],
                h.seg[0][1],
                h.seg[1][0],
                h.seg[1][1],
                h.left_dominating,
                next_in_cycle[idx],
            )
        if value.faces:
            bbox = value.bbox()
            root = self._ROOT.pack(
                len(value.faces),
                len(cycles_arr),
                len(halves) // 2,
                bbox.xmin,
                bbox.ymin,
                bbox.xmax,
                bbox.ymax,
                value.area(),
                value.perimeter(),
            )
        else:
            root = self._ROOT.pack(0, 0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return StoredValue(self.type_name, root, [hs_arr, cycles_arr, faces_arr])

    def unpack(self, stored: StoredValue) -> Region:
        hs_arr, cycles_arr, faces_arr = stored.arrays
        hs_records = list(hs_arr)

        def walk_cycle(first_hs: int) -> Cycle:
            segs = []
            idx = first_hs
            while True:
                x1, y1, x2, y2, _left, nxt = hs_records[idx]
                segs.append(((x1, y1), (x2, y2)))
                idx = nxt
                if idx == first_hs:
                    break
            return Cycle(segs, validate=False)

        faces = []
        for (first_cycle,) in faces_arr:
            cyc_idx = first_cycle
            cycles: List[Cycle] = []
            while cyc_idx != -1:
                first_hs, nxt_cycle = cycles_arr.get(cyc_idx)
                cycles.append(walk_cycle(first_hs))
                cyc_idx = nxt_cycle
            faces.append(Face(cycles[0], cycles[1:], validate=False))
        return Region(faces, validate=False)


# ---------------------------------------------------------------------------
# Range and intime types
# ---------------------------------------------------------------------------


class RangeSetCodec(Codec):
    """range(real) / range(instant): an ordered array of interval records."""

    type_name = "range"
    _ROOT = struct.Struct("<I")

    def pack(self, value: RangeSet) -> StoredValue:
        arr = DatabaseArray(_INTERVAL.format)
        for iv in value:
            arr.append(float(iv.s), float(iv.e), iv.lc, iv.rc)
        return StoredValue(self.type_name, self._ROOT.pack(len(arr)), [arr])

    def unpack(self, stored: StoredValue) -> RangeSet:
        return RangeSet(
            Interval(s, e, lc, rc) for s, e, lc, rc in stored.arrays[0]
        )


class IntimeCodec(Codec):
    """intime(α): an instant plus a nested attribute value."""

    def __init__(self, inner: Codec):
        self.inner = inner
        self.type_name = f"intime({inner.type_name})"

    _T = struct.Struct("<d")

    def pack(self, value: Intime) -> StoredValue:
        nested = self.inner.pack(value.val)
        root = self._T.pack(value.time) + struct.pack("<I", len(nested.root)) + nested.root
        return StoredValue(self.type_name, root, nested.arrays)

    def unpack(self, stored: StoredValue) -> Intime:
        (t,) = self._T.unpack_from(stored.root, 0)
        (root_len,) = struct.unpack_from("<I", stored.root, self._T.size)
        inner_root = stored.root[self._T.size + 4 : self._T.size + 4 + root_len]
        inner_value = self.inner.unpack(
            StoredValue(self.inner.type_name, inner_root, stored.arrays)
        )
        return Intime(t, inner_value)


# ---------------------------------------------------------------------------
# Mappings of fixed-size units (const, ureal, upoint)
# ---------------------------------------------------------------------------


class MovingBoolCodec(Codec):
    type_name = "mbool"
    _ROOT = struct.Struct("<I")
    _UNIT = struct.Struct("<dd???")  # interval + value

    def pack(self, value: MovingBool) -> StoredValue:
        arr = DatabaseArray(self._UNIT.format)
        for u in value.units:
            assert isinstance(u, ConstUnit)
            iv = u.interval
            arr.append(iv.s, iv.e, iv.lc, iv.rc, bool(u.value.value))
        return StoredValue(self.type_name, self._ROOT.pack(len(arr)), [arr])

    def unpack(self, stored: StoredValue) -> MovingBool:
        units = [
            ConstUnit(Interval(s, e, lc, rc), BoolVal(v))
            for s, e, lc, rc, v in stored.arrays[0]
        ]
        return MovingBool(units, validate=False)


class MovingIntCodec(Codec):
    type_name = "mint"
    _ROOT = struct.Struct("<I")
    _UNIT = struct.Struct("<dd??q")

    def pack(self, value: MovingInt) -> StoredValue:
        arr = DatabaseArray(self._UNIT.format)
        for u in value.units:
            assert isinstance(u, ConstUnit)
            iv = u.interval
            arr.append(iv.s, iv.e, iv.lc, iv.rc, int(u.value.value))
        return StoredValue(self.type_name, self._ROOT.pack(len(arr)), [arr])

    def unpack(self, stored: StoredValue) -> MovingInt:
        units = [
            ConstUnit(Interval(s, e, lc, rc), IntVal(v))
            for s, e, lc, rc, v in stored.arrays[0]
        ]
        return MovingInt(units, validate=False)


class MovingStringCodec(Codec):
    type_name = "mstring"
    _ROOT = struct.Struct("<I")
    _UNIT = struct.Struct(f"<dd??{MAX_STRING}sB")

    def pack(self, value: MovingString) -> StoredValue:
        arr = DatabaseArray(self._UNIT.format)
        for u in value.units:
            assert isinstance(u, ConstUnit)
            iv = u.interval
            raw = u.value.value.encode("utf-8")
            arr.append(iv.s, iv.e, iv.lc, iv.rc, raw, len(raw))
        return StoredValue(self.type_name, self._ROOT.pack(len(arr)), [arr])

    def unpack(self, stored: StoredValue) -> MovingString:
        units = []
        for s, e, lc, rc, raw, length in stored.arrays[0]:
            units.append(
                ConstUnit(
                    Interval(s, e, lc, rc), StringVal(raw[:length].decode("utf-8"))
                )
            )
        return MovingString(units, validate=False)


class MovingRealCodec(Codec):
    type_name = "mreal"
    _ROOT = struct.Struct("<I")
    _UNIT = struct.Struct("<dd??ddd?")  # interval + (a, b, c, r)

    def pack(self, value: MovingReal) -> StoredValue:
        arr = DatabaseArray(self._UNIT.format)
        for u in value.units:
            assert isinstance(u, UReal)
            iv = u.interval
            a, b, c, r = u.coefficients
            arr.append(iv.s, iv.e, iv.lc, iv.rc, a, b, c, r)
        return StoredValue(self.type_name, self._ROOT.pack(len(arr)), [arr])

    def unpack(self, stored: StoredValue) -> MovingReal:
        units = [
            UReal(Interval(s, e, lc, rc), a, b, c, r)
            for s, e, lc, rc, a, b, c, r in stored.arrays[0]
        ]
        return MovingReal(units, validate=False)


class MovingPointCodec(Codec):
    type_name = "mpoint"
    _ROOT = struct.Struct("<I")
    _UNIT = struct.Struct("<dd??dddd")  # interval + MPoint quadruple

    def pack(self, value: MovingPoint) -> StoredValue:
        arr = DatabaseArray(self._UNIT.format)
        for u in value.units:
            assert isinstance(u, UPoint)
            iv = u.interval
            m = u.motion
            arr.append(iv.s, iv.e, iv.lc, iv.rc, m.x0, m.x1, m.y0, m.y1)
        return StoredValue(self.type_name, self._ROOT.pack(len(arr)), [arr])

    def unpack(self, stored: StoredValue) -> MovingPoint:
        units = [
            UPoint(Interval(s, e, lc, rc), MPoint(x0, x1, y0, y1))
            for s, e, lc, rc, x0, x1, y0, y1 in stored.arrays[0]
        ]
        return MovingPoint(units, validate=False)


# ---------------------------------------------------------------------------
# Mappings of variable-size units: shared subarrays (Figure 7)
# ---------------------------------------------------------------------------

_CUBE = "dddddd"  # bounding cube fields


class MovingPointsCodec(Codec):
    """mapping(upoints): units array + one shared MPoint array."""

    type_name = "mpoints"
    _ROOT = struct.Struct("<I")
    _UNIT = struct.Struct(f"<dd??qq{_CUBE}")  # interval, subarray lo/hi, cube
    _ELEM = struct.Struct("<dddd")

    def pack(self, value: MovingPoints) -> StoredValue:
        units_arr = DatabaseArray(self._UNIT.format)
        elems = DatabaseArray(self._ELEM.format)
        for u in value.units:
            assert isinstance(u, UPoints)
            lo = len(elems)
            for m in u.motions:
                elems.append(m.x0, m.x1, m.y0, m.y1)
            iv = u.interval
            cube = u.bounding_cube()
            units_arr.append(
                iv.s, iv.e, iv.lc, iv.rc, lo, len(elems),
                cube.xmin, cube.ymin, cube.tmin, cube.xmax, cube.ymax, cube.tmax,
            )
        return StoredValue(
            self.type_name, self._ROOT.pack(len(units_arr)), [units_arr, elems]
        )

    def unpack(self, stored: StoredValue) -> MovingPoints:
        units_arr, elems = stored.arrays
        units = []
        for rec in units_arr:
            s, e, lc, rc, lo, hi = rec[:6]
            motions = [MPoint(*elems.get(i)) for i in range(lo, hi)]
            units.append(UPoints(Interval(s, e, lc, rc), motions, validate=False))
        return MovingPoints(units, validate=False)


class MovingLineCodec(Codec):
    """mapping(uline): units array + one shared MSeg array."""

    type_name = "mline"
    _ROOT = struct.Struct("<I")
    _UNIT = struct.Struct(f"<dd??qq{_CUBE}")
    _ELEM = struct.Struct("<dddddddd")  # two MPoint quadruples

    def pack(self, value: MovingLine) -> StoredValue:
        units_arr = DatabaseArray(self._UNIT.format)
        elems = DatabaseArray(self._ELEM.format)
        for u in value.units:
            assert isinstance(u, ULine)
            lo = len(elems)
            for m in u.msegs:
                elems.append(
                    m.s.x0, m.s.x1, m.s.y0, m.s.y1, m.e.x0, m.e.x1, m.e.y0, m.e.y1
                )
            iv = u.interval
            cube = u.bounding_cube()
            units_arr.append(
                iv.s, iv.e, iv.lc, iv.rc, lo, len(elems),
                cube.xmin, cube.ymin, cube.tmin, cube.xmax, cube.ymax, cube.tmax,
            )
        return StoredValue(
            self.type_name, self._ROOT.pack(len(units_arr)), [units_arr, elems]
        )

    def unpack(self, stored: StoredValue) -> MovingLine:
        units_arr, elems = stored.arrays
        units = []
        for rec in units_arr:
            s, e, lc, rc, lo, hi = rec[:6]
            msegs = []
            for i in range(lo, hi):
                f = elems.get(i)
                msegs.append(MSeg(MPoint(*f[:4]), MPoint(*f[4:])))
            units.append(ULine(Interval(s, e, lc, rc), msegs, validate=False))
        return MovingLine(units, validate=False)


class MovingRegionCodec(Codec):
    """mapping(uregion): units + shared msegments/mcycles/mfaces arrays.

    Every msegment record carries a ``next_in_cycle`` index linking the
    moving segments of one cycle into a ring; ``mcycles`` records point
    to the first msegment of the cycle and chain the cycles of a face;
    ``mfaces`` records point to the first cycle — mirroring the static
    region layout, as Section 4.2 describes.
    """

    type_name = "mregion"
    _ROOT = struct.Struct("<I")
    # interval, mseg lo/hi, mcycle lo/hi, mface lo/hi, bounding cube,
    # and the Section-4.2 summary quadruples for area and perimeter.
    _UNIT = struct.Struct(f"<dd??qqqqqq{_CUBE}ddd?ddd?")
    _MSEG = struct.Struct("<ddddddddq")  # 8 coefficients + next_in_cycle
    _MCYC = struct.Struct("<qq")  # first msegment, next cycle of face
    _MFACE = struct.Struct("<q")  # first cycle

    def pack(self, value: MovingRegion) -> StoredValue:
        units_arr = DatabaseArray(self._UNIT.format)
        msegs_arr = DatabaseArray(self._MSEG.format)
        mcycles_arr = DatabaseArray(self._MCYC.format)
        mfaces_arr = DatabaseArray(self._MFACE.format)
        for u in value.units:
            assert isinstance(u, URegion)
            mseg_lo = len(msegs_arr)
            mcyc_lo = len(mcycles_arr)
            mface_lo = len(mfaces_arr)
            for mface in u.faces:
                cycle_ids = []
                for mcycle in mface.cycles:
                    first = len(msegs_arr)
                    count = len(mcycle.msegs)
                    for k, m in enumerate(mcycle.msegs):
                        nxt = first + (k + 1) % count
                        msegs_arr.append(
                            m.s.x0, m.s.x1, m.s.y0, m.s.y1,
                            m.e.x0, m.e.x1, m.e.y0, m.e.y1,
                            nxt,
                        )
                    cycle_ids.append(mcycles_arr.append(first, -1))
                for a, b in zip(cycle_ids, cycle_ids[1:]):
                    first, _ = mcycles_arr.get(a)
                    mcycles_arr.set(a, first, b)
                mfaces_arr.append(cycle_ids[0])
            iv = u.interval
            cube = u.bounding_cube()
            area = u.area_summary()
            perim = u.perimeter_summary()
            units_arr.append(
                iv.s, iv.e, iv.lc, iv.rc,
                mseg_lo, len(msegs_arr),
                mcyc_lo, len(mcycles_arr),
                mface_lo, len(mfaces_arr),
                cube.xmin, cube.ymin, cube.tmin, cube.xmax, cube.ymax, cube.tmax,
                *area, *perim,
            )
        return StoredValue(
            self.type_name,
            self._ROOT.pack(len(units_arr)),
            [units_arr, msegs_arr, mcycles_arr, mfaces_arr],
        )

    def unpack(self, stored: StoredValue) -> MovingRegion:
        units_arr, msegs_arr, mcycles_arr, mfaces_arr = stored.arrays
        mseg_records = list(msegs_arr)

        def walk_mcycle(first: int) -> MCycle:
            out = []
            idx = first
            while True:
                f = mseg_records[idx]
                out.append(MSeg(MPoint(*f[:4]), MPoint(*f[4:8])))
                idx = f[8]
                if idx == first:
                    break
            return MCycle(out)

        units = []
        for rec in units_arr:
            s, e, lc, rc, _mlo, _mhi, _clo, _chi, flo, fhi = rec[:10]
            area = tuple(rec[16:20])
            perim = tuple(rec[20:24])
            mfaces = []
            for fi in range(flo, fhi):
                (first_cycle,) = mfaces_arr.get(fi)
                cyc_idx = first_cycle
                cycles: List[MCycle] = []
                while cyc_idx != -1:
                    first_mseg, nxt = mcycles_arr.get(cyc_idx)
                    cycles.append(walk_mcycle(first_mseg))
                    cyc_idx = nxt
                mfaces.append(MFace(cycles[0], cycles[1:]))
            unit = URegion(Interval(s, e, lc, rc), mfaces, validate="none")
            unit._prime_summaries(area, perim)
            units.append(unit)
        return MovingRegion(units, validate=False)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_CODECS: Dict[str, Codec] = {}


def _register(codec: Codec) -> None:
    _CODECS[codec.type_name] = codec


for _c in (
    IntCodec(),
    RealCodec(),
    BoolCodec(),
    StringCodec(),
    InstantCodec(),
    PointCodec(),
    PointsCodec(),
    LineCodec(),
    RegionCodec(),
    RangeSetCodec(),
    MovingBoolCodec(),
    MovingIntCodec(),
    MovingStringCodec(),
    MovingRealCodec(),
    MovingPointCodec(),
    MovingPointsCodec(),
    MovingLineCodec(),
    MovingRegionCodec(),
):
    _register(_c)

_register(IntimeCodec(RealCodec()))
_register(IntimeCodec(PointCodec()))

#: Aliases matching the formal type terms of Table 3.
_ALIASES = {
    "mapping(const(bool))": "mbool",
    "mapping(const(int))": "mint",
    "mapping(const(string))": "mstring",
    "mapping(ureal)": "mreal",
    "mapping(upoint)": "mpoint",
    "mapping(upoints)": "mpoints",
    "mapping(uline)": "mline",
    "mapping(uregion)": "mregion",
}


def codec_for(type_name: str) -> Codec:
    """Look up the codec for a type name (aliases of Table 3 accepted)."""
    name = _ALIASES.get(type_name, type_name)
    codec = _CODECS.get(name)
    if codec is None:
        raise StorageError(f"no storage codec registered for type {type_name!r}")
    return codec


def pack_value(type_name: str, value) -> StoredValue:
    """Pack ``value`` with the codec registered for ``type_name``."""
    return codec_for(type_name).pack(value)


def safe_unpack(stored: StoredValue):
    """Unpack a stored value, converting decode blowups to typed errors.

    Codecs assume well-formed input; on damaged bytes they raise bare
    ``struct.error``/``IndexError``/``UnicodeDecodeError``.  This
    wrapper is the boundary the storage read paths go through: any such
    failure (and any codec-raised :class:`StorageError`) surfaces as a
    :class:`CorruptRecordError` naming the value's type.
    """
    codec = codec_for(stored.type_name)
    try:
        return codec.unpack(stored)
    except CorruptRecordError:
        raise
    except (struct.error, IndexError, ValueError, UnicodeDecodeError) as exc:
        raise CorruptRecordError(
            f"value of type {stored.type_name!r} failed to decode: {exc}"
        ) from exc


def unpack_value(stored: StoredValue):
    """Unpack a stored value with the codec its type name designates."""
    return safe_unpack(stored)
