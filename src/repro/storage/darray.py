"""Database arrays (Section 4): the varying-size components of a value.

A :class:`DatabaseArray` is an array "with any desired field size and
number of fields" — a contiguous byte buffer of fixed-size records.  The
SECONDO concept the paper builds on stores such arrays inline in the
tuple when small and in a separate page list when large; that placement
decision is made by :mod:`repro.storage.flob`, this module only provides
the array itself.

A :class:`SubArray` (Section 4.2) is a reference to a range of fields
within a database array; all units of a ``mapping`` value share the
mapping's database arrays through subarray references.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

from repro import obs
from repro.errors import CorruptRecordError, StorageError


class DatabaseArray:
    """A growable array of fixed-size binary records."""

    __slots__ = ("_fmt", "_size", "_buf", "_count")

    def __init__(self, record_format: str):
        self._fmt = record_format
        self._size = struct.calcsize(record_format)
        self._buf = bytearray()
        self._count = 0

    @property
    def record_format(self) -> str:
        """The struct format of one record."""
        return self._fmt

    @property
    def record_size(self) -> int:
        """Bytes per record."""
        return self._size

    def __len__(self) -> int:
        return self._count

    @property
    def nbytes(self) -> int:
        """Total payload size in bytes."""
        return len(self._buf)

    @property
    def payload(self) -> bytes:
        """The raw record payload (``count × record_size`` bytes).

        This is the bulk-transfer face of the array: columnar views
        (:mod:`repro.vector.columns`) reinterpret it with a numpy dtype
        of identical layout instead of unpacking record by record.
        """
        return bytes(self._buf)

    def extend_packed(self, data: bytes, count: int) -> None:
        """Append ``count`` already-packed records in one buffer copy.

        ``data`` must be exactly ``count`` records in this array's
        struct layout (e.g. the ``tobytes()`` of a matching numpy record
        array) — the inverse of :attr:`payload`.
        """
        if len(data) != count * self._size:
            raise StorageError(
                f"packed payload is {len(data)} bytes, expected "
                f"{count} × {self._size}"
            )
        self._buf.extend(data)
        self._count += count

    def append(self, *fields) -> int:
        """Append one record; returns its index."""
        self._buf.extend(struct.pack(self._fmt, *fields))
        self._count += 1
        return self._count - 1

    def extend(self, records: Iterable[tuple]) -> None:
        """Append many records."""
        for rec in records:
            self.append(*rec)

    def get(self, index: int) -> tuple:
        """Read the record at ``index``."""
        if not 0 <= index < self._count:
            raise StorageError(f"array index {index} out of range 0..{self._count - 1}")
        if obs.enabled:
            obs.counters.add("storage.darray_reads")
        off = index * self._size
        return struct.unpack(self._fmt, bytes(self._buf[off : off + self._size]))

    def set(self, index: int, *fields) -> None:
        """Overwrite the record at ``index``."""
        if not 0 <= index < self._count:
            raise StorageError(f"array index {index} out of range 0..{self._count - 1}")
        off = index * self._size
        self._buf[off : off + self._size] = struct.pack(self._fmt, *fields)

    def __iter__(self) -> Iterator[tuple]:
        for i in range(self._count):
            yield self.get(i)

    def to_bytes(self) -> bytes:
        """Serialize: record format descriptor + count + payload."""
        fmt_bytes = self._fmt.encode("ascii")
        header = struct.pack("<HI", len(fmt_bytes), self._count)
        return header + fmt_bytes + bytes(self._buf)

    @classmethod
    def from_bytes(cls, data: bytes) -> "DatabaseArray":
        """Deserialize an array written by :meth:`to_bytes`.

        All damage — a truncated header, a record-format descriptor
        that is not a valid struct format, a payload shorter than the
        declared count — raises :class:`CorruptRecordError` (a
        :class:`StorageError`), never a bare ``struct.error``.
        """
        if len(data) < 6:
            raise CorruptRecordError("truncated database array")
        fmt_len, count = struct.unpack("<HI", data[:6])
        if 6 + fmt_len > len(data):
            raise CorruptRecordError(
                "database array format descriptor runs past the payload"
            )
        fmt = data[6 : 6 + fmt_len].decode("ascii", errors="replace")
        try:
            arr = cls(fmt)
        except struct.error as exc:
            raise CorruptRecordError(
                f"database array has invalid record format {fmt!r}"
            ) from exc
        payload = data[6 + fmt_len :]
        expected = count * arr.record_size
        if len(payload) < expected:
            raise CorruptRecordError(
                "database array payload shorter than its count"
            )
        arr._buf = bytearray(payload[:expected])
        arr._count = count
        return arr

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseArray):
            return NotImplemented
        return self._fmt == other._fmt and self._buf == other._buf

    def __repr__(self) -> str:
        return f"DatabaseArray({self._fmt!r}, {self._count} records)"


@dataclass(frozen=True)
class SubArray:
    """A reference to the field range ``[lo, hi)`` of a database array.

    ``array_id`` indexes the owning structure's array list; subarrays of
    all units in a mapping refer into the mapping's shared arrays
    (Section 4.2 / Figure 7).
    """

    array_id: int
    lo: int
    hi: int

    def __post_init__(self):
        if self.lo < 0 or self.hi < self.lo:
            raise StorageError(f"malformed subarray range [{self.lo}, {self.hi})")

    def __len__(self) -> int:
        return self.hi - self.lo

    def read(self, arrays: List[DatabaseArray]) -> List[tuple]:
        """Materialize the referenced records."""
        arr = arrays[self.array_id]
        return [arr.get(i) for i in range(self.lo, self.hi)]
