"""A buffer pool over a page file: CLOCK replacement with pin counts.

The DBMS "places values under control of the DBMS into memory"
(Section 4); this pool is that control point.  Replacement is
second-chance (CLOCK): every frame carries a reference bit, set on
insertion and on every hit; the eviction hand sweeps the frames in a
ring, clearing set bits and evicting the first unpinned frame whose bit
is already clear.  One sweep costs O(1) amortized (against LRU's
move-to-end per *hit*), approximates LRU closely, and — unlike strict
LRU — survives looping scans slightly larger than the pool without
evicting every page on every lap.

It exposes hit/miss statistics so the benchmarks can report logical vs
physical I/O.  Hit/miss bookkeeping is unified with :mod:`repro.obs`:
the pool's own ``hits``/``misses`` attributes stay authoritative (and
always on), and when the observability layer is enabled the same events
also land in the global counters (``buffer.hits`` / ``buffer.misses``)
so one ``--profile`` report covers kernels and I/O alike.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import obs
from repro.config import BUFFER_RETRY_BASE_DELAY, BUFFER_RETRY_LIMIT
from repro.errors import StorageError, TransientIOError
from repro.storage.pages import PageFile


@dataclass
class _Frame:
    page_no: int
    data: bytearray
    pin_count: int = 0
    dirty: bool = False
    ref: bool = True  # second chance: set on insert and on every hit


class BufferPool:
    """Caches up to ``capacity`` pages of a :class:`PageFile`."""

    def __init__(self, pagefile: PageFile, capacity: int = 64):
        if capacity < 1:
            raise StorageError("buffer pool needs capacity >= 1")
        self._pf = pagefile
        self._capacity = capacity
        self._frames: Dict[int, _Frame] = {}
        self._ring: List[_Frame] = []  # clock order (insertion order)
        self._hand = 0  # persists across evictions — that is the point
        self.hits = 0
        self.misses = 0

    @property
    def page_size(self) -> int:
        """Usable bytes per page (the page file's payload size)."""
        return self._pf.payload_size

    @property
    def page_count(self) -> int:
        """Number of pages in the underlying file."""
        return self._pf.page_count

    # -- pin/unpin protocol -------------------------------------------------

    def pin(self, page_no: int) -> bytearray:
        """Fetch a page into the pool and pin it; returns its mutable frame."""
        frame = self._frames.get(page_no)
        if frame is not None:
            self.hits += 1
            if obs.enabled:
                obs.counters.add("buffer.hits")
            frame.ref = True
        else:
            self.misses += 1
            if obs.enabled:
                obs.counters.add("buffer.misses")
            self._evict_if_needed()
            frame = _Frame(page_no, bytearray(self._read_with_retry(page_no)))
            self._frames[page_no] = frame
            self._ring.append(frame)
        frame.pin_count += 1
        return frame.data

    def _read_with_retry(self, page_no: int) -> bytes:
        """Read a page, retrying transient faults with bounded backoff.

        Only :class:`TransientIOError` is retried; corruption
        (:class:`CorruptPageError`) propagates immediately — rereading a
        torn page cannot un-tear it.  No frame entry exists while a read
        is in flight, so a concurrent eviction pass never sees a
        half-filled frame.
        """
        delay = BUFFER_RETRY_BASE_DELAY
        for attempt in range(BUFFER_RETRY_LIMIT + 1):
            try:
                return self._pf.read_page(page_no)
            except TransientIOError:
                if attempt == BUFFER_RETRY_LIMIT:
                    raise
                if obs.enabled:
                    obs.counters.add("buffer.retries")
                time.sleep(delay)
                delay *= 2
        raise AssertionError("unreachable")  # pragma: no cover

    def unpin(self, page_no: int, dirty: bool = False) -> None:
        """Release a pin; mark the frame dirty if the caller modified it."""
        frame = self._frames.get(page_no)
        if frame is None or frame.pin_count == 0:
            raise StorageError(f"unpin of page {page_no} that is not pinned")
        frame.pin_count -= 1
        if dirty:
            frame.dirty = True

    def new_page(self) -> int:
        """Allocate a fresh page in the file (not yet resident)."""
        return self._pf.allocate()

    # -- maintenance --------------------------------------------------------

    def _clock_victim_index(self) -> Optional[int]:
        """Sweep the ring: clear set reference bits, return the index of
        the first unpinned frame whose bit is already clear.

        Two full revolutions bound the sweep: the first may only be
        clearing bits, the second must then find any unpinned frame.
        Pinned frames are skipped (and keep their bits untouched — a
        pinned page is in use by definition).  On success the hand is
        left at the victim's slot, which the removal vacates, so the
        next sweep resumes with the frame that follows it.
        """
        n = len(self._ring)
        for _ in range(2 * n):
            p = self._hand % n
            frame = self._ring[p]
            if frame.pin_count > 0:
                self._hand = (p + 1) % n
                continue
            if frame.ref:
                frame.ref = False  # second chance spent
                self._hand = (p + 1) % n
                continue
            self._hand = p
            return p
        return None

    def _evict_if_needed(self) -> None:
        while len(self._frames) >= self._capacity:
            idx = self._clock_victim_index()
            if idx is None:
                raise StorageError("buffer pool exhausted: all frames pinned")
            victim = self._ring.pop(idx)
            if self._ring and self._hand >= len(self._ring):
                self._hand = 0
            del self._frames[victim.page_no]
            if victim.dirty:
                self._pf.write_page(victim.page_no, bytes(victim.data))

    def flush(self) -> None:
        """Write back all dirty frames (keeps them resident)."""
        for frame in self._ring:
            if frame.dirty:
                self._pf.write_page(frame.page_no, bytes(frame.data))
                frame.dirty = False

    @property
    def resident_pages(self) -> int:
        return len(self._frames)

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters plus the page file's physical I/O counts."""
        reads, writes = self._pf.io_stats
        return {
            "hits": self.hits,
            "misses": self.misses,
            "physical_reads": reads,
            "physical_writes": writes,
            "resident": len(self._frames),
        }
