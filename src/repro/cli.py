"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``              build the Section-2 ``planes`` relation and run
                      both example queries
``run <script.sql>``  execute a SQL script (CREATE TABLE / INSERT with
                      text-format values / SELECT / EXPLAIN)
``figures [dir]``     render the paper's value-space figures as SVG
``info``              version, type system, and operation inventory
``snapshot``          evaluate a generated fleet at one instant
                      (exercises the ``--backend`` switch fleet-wide)
``crash-matrix``      run every registered failpoint's crash/recovery
                      scenario (:mod:`repro.storage.crashmatrix`)
``chaos-matrix``      degrade a *live* query service — dropped
                      connections, stalled peers, SIGKILLed workers,
                      duplicate ingest — and verify it recovers
                      (:mod:`repro.server.chaos`)
``serve``             run the always-on query service
                      (:mod:`repro.server`) until SIGINT/SIGTERM

Global flags: ``--profile`` collects the :mod:`repro.obs` counters and
prints the report even when the command fails; ``--backend`` selects
the scalar reference loops or the columnar numpy kernels
(:mod:`repro.vector`); ``--faults`` arms failpoints
(:mod:`repro.faults`) for the command's duration.

Storage and decode failures (:class:`repro.errors.ReproError`) exit
non-zero with a one-line diagnostic on stderr; pass ``--debug`` to get
the full traceback instead.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, List, Optional


def _format_value(v: Any) -> str:
    from repro.base.instant import Instant
    from repro.base.values import BaseValue

    if isinstance(v, BaseValue):
        return str(v.value) if v.defined else "⊥"
    if isinstance(v, Instant):
        return f"{v.value:g}" if v.defined else "⊥"
    if isinstance(v, float):
        return f"{v:g}"
    return str(v)


def _print_rows(rows: List[dict]) -> None:
    if not rows:
        print("  (no rows)")
        return
    headers = list(rows[0])
    table = [[_format_value(r[h]) for h in headers] for r in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in table)) for i, h in enumerate(headers)
    ]
    print("  " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  " + "-+-".join("-" * w for w in widths))
    for row in table:
        print("  " + " | ".join(c.ljust(w) for c, w in zip(row, widths)))


def cmd_demo(_args: argparse.Namespace) -> int:
    """Build the Section-2 planes relation and run both example queries."""
    from repro.db import Database
    from repro.workloads.trajectories import FlightGenerator

    gen = FlightGenerator(seed=2000)
    db = Database()
    planes = db.create_relation(
        "planes", [("airline", "string"), ("id", "string"), ("flight", "mpoint")]
    )
    airlines = ["Lufthansa", "AirFrance", "KLM"]
    for i in range(18):
        planes.insert([airlines[i % 3], f"{airlines[i % 3][:2].upper()}{i:03d}",
                       gen.flight(legs=6)])
    q1 = ("SELECT airline, id FROM planes "
          "WHERE airline = 'Lufthansa' AND length(trajectory(flight)) > 5000")
    q2 = ("SELECT p.id AS a, q.id AS b FROM planes p, planes q "
          "WHERE p.id < q.id "
          "AND val(initial(atmin(distance(p.flight, q.flight)))) < 500")
    print("Q1:", q1)
    _print_rows(db.query(q1))
    print("\nQ2:", q2)
    _print_rows(db.query(q2))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Execute a SQL script file against a fresh database."""
    from repro.db import Database
    from repro.db.script import run_script

    with open(args.script, "r", encoding="utf-8") as f:
        text = f.read()
    db = Database()
    for result in run_script(db, text):
        first_line = result.statement.strip().splitlines()[0]
        print(f"> {first_line[:76]}")
        if result.rows is not None:
            _print_rows(result.rows)
        elif result.message:
            print(f"  {result.message}")
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    """Render the paper's value-space figures into a directory."""
    import math
    import os

    from repro.io.svg import render_film_strip, render_values
    from repro.spatial.line import Line
    from repro.spatial.region import Region
    from repro.temporal.interpolate import collapse_to_point
    from repro.temporal.mapping import MovingRegion
    from repro.workloads.regions import regular_polygon

    os.makedirs(args.dir, exist_ok=True)

    def write(name: str, svg: str) -> None:
        path = os.path.join(args.dir, name)
        with open(path, "w", encoding="utf-8") as f:
            f.write(svg)
        print(f"  {path}")

    def ring(cx, cy, r, n=10):
        return [
            (cx + r * math.cos(2 * math.pi * k / n),
             cy + r * math.sin(2 * math.pi * k / n))
            for k in range(n)
        ]

    # Figure 2: line values are just segment sets.
    curvy = Line.polyline([(0, 0), (2, 1.5), (4, 1), (6, 2.5), (8, 2)])
    loose = Line(
        [((1, 3), (3, 4)), ((5, 3.2), (6.5, 4.2)), ((2, 4.5), (2.5, 3.2))]
    )
    write("figure2_line.svg", render_values([curvy, loose]))

    # Figure 3: region with holes and an island inside a hole.
    big = Region.polygon(ring(0, 0, 10), holes=[ring(-3, 0, 2), ring(4, 0, 3)])
    island = Region.polygon(ring(4, 0, 1))
    write("figure3_region.svg", render_values([big, island]))

    # Figure 6: a moving region collapsing to a point.
    cone = collapse_to_point(
        0.0, regular_polygon((0, 0), 8, 7), 10.0, (12.0, 2.0)
    )
    write(
        "figure6_uregion.svg",
        render_film_strip(MovingRegion([cone]), frames=5),
    )
    return 0


def cmd_snapshot(args: argparse.Namespace) -> int:
    """Evaluate a generated fleet at one instant, fleet-wide.

    This is the columnar showcase: one ``atinstant`` over every object
    (and one batched point-in-region test) through whichever backend
    ``--backend`` selected.
    """
    from repro.vector.cache import Fleet
    from repro.vector.fleet import fleet_atinstant, fleet_count_inside, get_backend
    from repro.vector.store import get_store
    from repro.workloads.regions import regular_polygon
    from repro.workloads.trajectories import FlightGenerator

    gen = FlightGenerator(seed=args.seed)
    # A versioned Fleet (not a bare list) so the column cache — and the
    # persistent store behind --colstore — can serve repeated queries.
    fleet = Fleet(gen.flight(legs=4) for _ in range(args.objects))
    t0 = min(m.deftime().minimum for m in fleet)
    t1 = max(m.deftime().maximum for m in fleet)
    t = args.instant if args.instant is not None else 0.5 * (t0 + t1)

    positions = fleet_atinstant(fleet, t)
    defined = [p for p in positions if p is not None]
    xs = [p.x for p in defined]
    ys = [p.y for p in defined]
    print(f"backend: {get_backend()}")
    store = get_store()
    if store is not None:
        print(f"colstore: {store.root}")
    print(f"fleet: {len(fleet)} objects over [{t0:g}, {t1:g}]")
    print(f"snapshot at t={t:g}: {len(defined)} defined, "
          f"{len(fleet) - len(defined)} ⊥")
    if defined:
        cx, cy = sum(xs) / len(xs), sum(ys) / len(ys)
        print(f"centroid of defined positions: ({cx:g}, {cy:g})")
        region = regular_polygon((cx, cy), args.radius, sides=12)
        count, _mask = fleet_count_inside(fleet, t, region)
        print(f"inside {args.radius:g}-radius 12-gon around centroid: {count}")
    return 0


def cmd_crash_matrix(args: argparse.Namespace) -> int:
    """Run the arm → crash → recover → verify matrix over all failpoints.

    SIGINT/SIGTERM stop the run at the next scenario boundary (each
    scenario cleans up after itself), report what already ran, and exit
    0 — an interrupted sweep is an answered request, not a failure.
    """
    import signal

    from repro.storage.crashmatrix import format_matrix, run_crash_matrix

    stop_requested = {"flag": False}

    def _request_stop(_signum: int, _frame: object) -> None:
        stop_requested["flag"] = True

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, _request_stop)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    try:
        entries = run_crash_matrix(
            seed=args.seed,
            only=args.only,
            should_stop=lambda: stop_requested["flag"],
        )
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    print(format_matrix(entries))
    if stop_requested["flag"]:
        print(
            f"crash-matrix: interrupted — {len(entries)} scenario(s) "
            "completed, state cleaned up"
        )
        return 0
    return 0 if entries and all(e.ok for e in entries) else 1


def cmd_chaos_matrix(args: argparse.Namespace) -> int:
    """Run the live degradation matrix against a running query service.

    The live twin of ``crash-matrix``: concurrent query + ingest
    traffic over a real socket while connections drop, sessions stall,
    fork workers are SIGKILLed, and ingests are delivered twice.  Same
    interrupt contract: SIGINT/SIGTERM stop at the next scenario
    boundary and report what already ran.
    """
    import signal

    from repro.server.chaos import format_matrix, run_chaos_matrix

    stop_requested = {"flag": False}

    def _request_stop(_signum: int, _frame: object) -> None:
        stop_requested["flag"] = True

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, _request_stop)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    try:
        entries = run_chaos_matrix(
            seed=args.seed,
            quick=args.quick,
            only=args.only,
            should_stop=lambda: stop_requested["flag"],
        )
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    print(format_matrix(entries))
    if stop_requested["flag"]:
        print(
            f"chaos-matrix: interrupted — {len(entries)} scenario(s) "
            "completed, state cleaned up"
        )
        return 0
    return 0 if entries and all(e.ok for e in entries) else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the query service until SIGINT/SIGTERM, then drain and exit.

    Boots a generated fleet, replays any existing WAL (so ingest
    survives restarts), serves the line protocol, and on a termination
    signal drains in-flight requests, commits everything the group
    committer already queued, syncs the WAL, and exits 0 with a
    one-line summary.
    """
    import asyncio
    import signal

    from repro.server.executor import FleetExecutor
    from repro.server.ingest import replay_ingest
    from repro.server.session import QueryServer
    from repro.storage.wal import Wal
    from repro.workloads.trajectories import FlightGenerator

    gen = FlightGenerator(seed=args.seed)
    mappings = [gen.flight(legs=4) for _ in range(args.objects)]
    executor = FleetExecutor()
    executor.register_fleet(args.fleet, mappings)
    wal = Wal(args.wal) if args.wal else None
    replayed = replay_ingest(wal, executor) if wal is not None else 0

    async def _serve() -> None:
        server = QueryServer(
            executor, wal=wal, host=args.host, port=args.port
        )
        await server.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                signal.signal(sig, lambda *_: stop.set())
        boot = f"repro serve: listening on {args.host}:{server.port}, " \
               f"fleet {args.fleet!r} with {len(mappings)} objects"
        if replayed:
            boot += f" ({replayed} ingested unit(s) replayed from WAL)"
        print(boot, flush=True)
        await stop.wait()
        await server.stop()

    asyncio.run(_serve())
    stats = executor.stats()
    units = stats.get(f"fleet.{args.fleet}.units", 0)
    version = stats.get(f"fleet.{args.fleet}.version", 0)
    if wal is not None:
        wal.close()
    print(
        f"repro serve: drained cleanly — fleet {args.fleet!r} at "
        f"version {version} with {units} units"
        + (", WAL synced" if args.wal else "")
    )
    return 0


def cmd_info(_args: argparse.Namespace) -> int:
    """Print version, type-system, and operation inventories."""
    import repro
    from repro.ops.signatures import OPERATIONS
    from repro.typesystem import DISCRETE_SIGNATURE

    print(f"repro {repro.__version__} — moving objects databases (SIGMOD 2000)")
    types = DISCRETE_SIGNATURE.all_types(max_depth=3)
    print(f"\ndiscrete type system: {len(types)} types, e.g.:")
    for t in ("region", "ureal", "mapping(upoint)", "mapping(uregion)"):
        print(f"  {t}")
    print(f"\noperations: {len(OPERATIONS)} registered")
    for op in OPERATIONS[:8]:
        args = " × ".join(op.args)
        print(f"  {op.name}: {args} → {op.result}")
    print(f"  ... and {len(OPERATIONS) - 8} more (see repro.ops.signatures)")
    return 0


def _parse_bytes(spec: str) -> int:
    """A positive byte count, accepting k/m/g binary suffixes."""
    text = spec.strip().lower()
    mult = 1
    if text and text[-1] in "kmg":
        mult = {"k": 1024, "m": 1024 ** 2, "g": 1024 ** 3}[text[-1]]
        text = text[:-1]
    value = int(text) * mult
    if value < 1:
        raise ValueError(spec)
    return value


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description="moving objects databases (SIGMOD 2000 reproduction)"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="collect operation counters (repro.obs) and print a report "
        "after the command finishes (even when it fails)",
    )
    parser.add_argument(
        "--backend",
        choices=["scalar", "vector", "parallel", "sharded"],
        default=None,
        help="evaluation backend for fleet-level operations: scalar "
        "reference loops, columnar numpy kernels (repro.vector), "
        "those kernels chunked over a shared-memory process pool "
        "(repro.parallel), or hash-partitioned shards with "
        "scatter-gather execution (repro.shard)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool size for the parallel backend (N >= 1; the "
        "per-core default comes from repro.config.DEFAULT_WORKERS)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="hash-partition fleets into N shards by object id "
        "(N >= 1; 1 keeps fleets unsharded, the default); each shard "
        "owns its own columns, store directory, and R-tree",
    )
    parser.add_argument(
        "--memory-budget",
        default=None,
        metavar="BYTES",
        help="resident-byte budget for sharded column residency, with "
        "an optional k/m/g suffix (e.g. 64m); cold shards are "
        "CLOCK-evicted to stay under it (default: unbounded)",
    )
    parser.add_argument(
        "--colstore",
        default=None,
        metavar="DIR",
        help="persistent column store directory (repro.vector.store): "
        "fleet columns are memory-mapped from DIR instead of rebuilt "
        "from scratch on every process start; missing or corrupt files "
        "are rebuilt and re-persisted",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="arm failpoints for the command, e.g. "
        "'wal.sync_crash' or 'pagefile.torn_write=after:2' "
        "(comma-separated; see repro.faults)",
    )
    parser.add_argument(
        "--debug",
        action="store_true",
        help="let repro errors propagate with a full traceback instead "
        "of the one-line diagnostic",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("demo", help="run the Section-2 example queries").set_defaults(
        fn=cmd_demo
    )
    run_p = sub.add_parser("run", help="execute a SQL script")
    run_p.add_argument("script")
    run_p.set_defaults(fn=cmd_run)
    fig_p = sub.add_parser("figures", help="render the paper figures as SVG")
    fig_p.add_argument("dir", nargs="?", default="figures")
    fig_p.set_defaults(fn=cmd_figures)
    sub.add_parser("info", help="version and inventory").set_defaults(fn=cmd_info)
    snap_p = sub.add_parser(
        "snapshot", help="evaluate a generated fleet at one instant"
    )
    snap_p.add_argument("--objects", type=int, default=1000,
                        help="fleet size (default 1000)")
    snap_p.add_argument("--instant", type=float, default=None,
                        help="query instant (default: midpoint of the "
                        "fleet's combined lifetime)")
    snap_p.add_argument("--radius", type=float, default=2000.0,
                        help="radius of the counting region (default 2000)")
    snap_p.add_argument("--seed", type=int, default=2000,
                        help="fleet generator seed (default 2000)")
    snap_p.set_defaults(fn=cmd_snapshot)
    matrix_p = sub.add_parser(
        "crash-matrix",
        help="run every failpoint's crash/recovery scenario",
    )
    matrix_p.add_argument("--seed", type=int, default=2000,
                          help="workload seed (default 2000)")
    matrix_p.add_argument("--only", default=None, metavar="FAILPOINT",
                          help="run a single failpoint's scenario")
    matrix_p.set_defaults(fn=cmd_crash_matrix)
    chaos_p = sub.add_parser(
        "chaos-matrix",
        help="degrade a live query service and verify it recovers",
    )
    chaos_p.add_argument("--seed", type=int, default=2026,
                         help="workload seed (default 2026)")
    chaos_p.add_argument("--quick", action="store_true",
                         help="smoke scale: fewer clients and ops per "
                         "scenario (same assertions)")
    chaos_p.add_argument("--only", default=None, metavar="SCENARIO",
                         help="run a single scenario (failpoint name or "
                         "server.overload)")
    chaos_p.set_defaults(fn=cmd_chaos_matrix)
    serve_p = sub.add_parser(
        "serve", help="run the always-on query service"
    )
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="listen address (default 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=0,
                         help="listen port (default 0: OS-assigned, "
                         "printed at startup)")
    serve_p.add_argument("--objects", type=int, default=64,
                         help="boot-time fleet size (default 64)")
    serve_p.add_argument("--seed", type=int, default=2000,
                         help="fleet generator seed (default 2000)")
    serve_p.add_argument("--fleet", default="fleet",
                         help="name of the served fleet (default 'fleet')")
    serve_p.add_argument("--wal", default=None, metavar="PATH",
                         help="WAL file for durable ingest; replayed on "
                         "start, synced on shutdown (default: memory-only)")
    serve_p.set_defaults(fn=cmd_serve)
    args = parser.parse_args(argv)

    # Argument-level validation, kept to the CLI's one-line diagnostic
    # discipline.  The pool API reserves 0 for "one worker per core"
    # (repro.config.DEFAULT_WORKERS); on the command line an explicit
    # count must be a real count — 0 or a negative would previously fall
    # through to the pool instead of the counted fallback path.
    if args.workers is not None and args.workers < 1:
        print(
            f"repro: InvalidValue: --workers must be >= 1, got {args.workers}",
            file=sys.stderr,
        )
        return 2
    if args.shards is not None and args.shards < 1:
        print(
            f"repro: InvalidValue: --shards must be >= 1, got {args.shards}",
            file=sys.stderr,
        )
        return 2
    memory_budget = None
    if args.memory_budget is not None:
        try:
            memory_budget = _parse_bytes(args.memory_budget)
        except ValueError:
            print(
                "repro: InvalidValue: --memory-budget must be a positive "
                f"byte count (k/m/g suffix ok), got {args.memory_budget!r}",
                file=sys.stderr,
            )
            return 2
    args.memory_budget_bytes = memory_budget
    # Pre-dispatch flag validation: None (no --backend) must warn too,
    # so the raw argparse value is exactly what we want to inspect.
    # modlint: disable=MOD005 raw flag value inspected before dispatch, None handled explicitly
    if args.workers is not None and args.backend not in ("parallel", "sharded"):
        print(
            "repro: warning: --workers only affects --backend parallel; "
            f"the {args.backend or 'default'} backend ignores it",
            file=sys.stderr,
        )

    from repro.errors import ReproError

    try:
        return _dispatch(args)
    except ReproError as exc:
        # Storage corruption, decode failures, bad fault specs: a
        # one-line diagnostic and a non-zero exit, no traceback.
        # Genuine environment errors (missing files, ...) propagate.
        if args.debug:
            raise
        print(f"repro: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    """Arm flags and run the selected command (profiled or not)."""
    if args.faults:
        from repro import faults

        faults.arm_spec(args.faults)
    if args.backend is not None:
        from repro.vector.fleet import set_backend

        set_backend(args.backend)
    if args.workers is not None:
        from repro.parallel import set_workers

        set_workers(args.workers)
    if args.shards is not None:
        from repro import shard

        shard.set_shards(args.shards)
    if getattr(args, "memory_budget_bytes", None) is not None:
        from repro import shard

        shard.set_memory_budget(args.memory_budget_bytes)
    if args.colstore is not None:
        from repro.vector.store import set_store

        set_store(args.colstore)
    if not args.profile:
        return args.fn(args)
    from repro import obs

    obs.reset()
    obs.enable()
    try:
        return args.fn(args)
    finally:
        # The report must survive a failing command — that is the whole
        # point of profiling a crash — so it prints on the way out.
        obs.disable()
        print("\n== operation counters (--profile) ==")
        print(obs.report())


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
