"""Numeric configuration shared by the whole library.

All geometric and temporal predicates funnel through the comparison helpers
defined here so that a single, consistent floating point tolerance governs
the entire system.  The tolerance is deliberately absolute rather than
relative: the discrete model of the paper assumes coordinates of bounded
magnitude (map or airspace extents), for which an absolute epsilon gives
predictable, symmetric behaviour.
"""

from __future__ import annotations

import math

#: Absolute tolerance used by all floating point comparisons.
EPSILON: float = 1e-9

#: Default state of the operation-counting observability layer
#: (:mod:`repro.obs`).  Off by default: instrumented hot paths then cost
#: exactly one branch.  Flip at runtime with ``repro.obs.enable()``.
OBS_ENABLED: bool = False

#: Database arrays at most this many bytes are stored inline in the tuple;
#: larger ones are moved to a separate FLOB (large object) file, following
#: the placement strategy of Dieker & Gueting [DG98].
INLINE_THRESHOLD: int = 1024

#: Page size, in bytes, of the storage engine's page manager.  Each page
#: reserves :data:`repro.storage.pages.PAGE_HEADER_SIZE` bytes for the
#: format/version/checksum header; the rest is payload.
PAGE_SIZE: int = 4096

#: How many times the buffer pool retries a transient page-read fault
#: (:class:`repro.errors.TransientIOError`) before giving up.
BUFFER_RETRY_LIMIT: int = 3

#: Base delay, in seconds, of the buffer pool's exponential retry
#: backoff (delay doubles per attempt: base, 2·base, 4·base, ...).
BUFFER_RETRY_BASE_DELAY: float = 0.0005

#: Default evaluation backend for fleet-level operations: ``"scalar"``
#: (per-object reference loops), ``"vector"`` (columnar numpy kernels,
#: :mod:`repro.vector`), or ``"parallel"`` (those same kernels chunked
#: over a process pool with shared-memory columns, :mod:`repro.parallel`).
#: Flip at runtime with ``repro.vector.set_backend`` or the CLI's
#: ``--backend`` flag.
DEFAULT_BACKEND: str = "scalar"

#: Default worker count of the ``parallel`` backend's process pool.
#: ``0`` means "one worker per CPU core".  Override per call with the
#: ``workers=`` keyword, per process with ``repro.parallel.set_workers``,
#: or per invocation with the CLI's ``--workers`` flag.
DEFAULT_WORKERS: int = 0

#: Fleets with fewer objects than this run single-process even under the
#: ``parallel`` backend (a counted fallback, ``parallel.fallback.
#: small_fleet``): pool dispatch overhead would dominate the kernel.
#: Read at call time, so tests and benchmarks may lower it.
PARALLEL_MIN_OBJECTS: int = 1024

#: Capacity, in columns, of the fleet-identity column cache
#: (:mod:`repro.vector.cache`).  Least-recently-used entries beyond this
#: are dropped.
COLCACHE_CAPACITY: int = 16

#: Byte budget of the fleet-identity column cache: the resident bytes of
#: unpinned (heap-backed) cached columns are held at or under this, LRU
#: entries evicted first.  Memmap-pinned entries are exempt — their
#: pages belong to the OS, and re-opening a store column costs
#: validation, not memory.  High-water tracked as ``colcache.bytes``.
COLCACHE_BYTES: int = 256 * 1024 * 1024

#: Default shard count of :mod:`repro.shard` hash-partitioned fleets.
#: ``1`` means unsharded (every existing path unchanged); the CLI's
#: ``--shards`` flag and ``repro.shard.set_shards`` raise it.
DEFAULT_SHARDS: int = 1

#: Byte budget of a :class:`repro.shard.ShardManager`'s resident column
#: set (``--memory-budget``).  ``None`` means unbounded: shards stay
#: mapped once touched.  With a budget, cold shards are CLOCK-evicted
#: until the mapped bytes fit (high-water: ``shard.resident_bytes``).
SHARD_MEMORY_BUDGET: "int | None" = None


def feq(a: float, b: float, eps: float = EPSILON) -> bool:
    """Return True if ``a`` and ``b`` are equal within tolerance."""
    return abs(a - b) <= eps


def fle(a: float, b: float, eps: float = EPSILON) -> bool:
    """Return True if ``a`` is less than or equal to ``b`` within tolerance."""
    return a <= b + eps


def flt(a: float, b: float, eps: float = EPSILON) -> bool:
    """Return True if ``a`` is strictly less than ``b`` beyond tolerance."""
    return a < b - eps


def fge(a: float, b: float, eps: float = EPSILON) -> bool:
    """Return True if ``a`` is greater than or equal to ``b`` within tolerance."""
    return a >= b - eps


def fgt(a: float, b: float, eps: float = EPSILON) -> bool:
    """Return True if ``a`` is strictly greater than ``b`` beyond tolerance."""
    return a > b + eps


def fzero(a: float, eps: float = EPSILON) -> bool:
    """Return True if ``a`` is zero within tolerance."""
    return abs(a) <= eps


def fsign(a: float, eps: float = EPSILON) -> int:
    """Return the sign of ``a`` under tolerance: -1, 0, or +1."""
    if a > eps:
        return 1
    if a < -eps:
        return -1
    return 0


def is_finite(a: float) -> bool:
    """Return True if ``a`` is a finite real number (not NaN or infinity)."""
    return math.isfinite(a)
