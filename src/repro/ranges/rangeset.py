"""Finite sets of pairwise disjoint, non-adjacent intervals (Section 3.2.3).

``RangeSet`` realizes the ``range(α)`` type constructor: its value is a
canonical, minimal set of intervals — pairwise disjoint and never
adjacent, so every point set over the ordered domain has exactly one
representation.  Construction either *validates* a given interval set
(``RangeSet(intervals)``) or *normalizes* arbitrary input
(``RangeSet.normalized(intervals)``) by sorting and merging.

The type provides the full 1-D boolean algebra (union, intersection,
difference, complement within a frame), membership, and aggregates —
these back the ``deftime``/``atperiods``/``present`` operations of the
temporal algebra.
"""

from __future__ import annotations

from typing import Generic, Iterable, Iterator, List, Optional, Sequence, TypeVar

from repro.errors import InvalidValue
from repro.ranges.interval import Interval

T = TypeVar("T")


class RangeSet(Generic[T]):
    """A value of type ``range(α)``: ordered disjoint non-adjacent intervals."""

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Interval[T]] = ()):
        ivs = sorted(intervals, key=lambda i: (i.s, not i.lc, i.e, i.rc))
        for a, b in zip(ivs, ivs[1:]):
            if not a.disjoint(b):
                raise InvalidValue(f"intervals {a!r} and {b!r} overlap")
            if a.adjacent(b):
                raise InvalidValue(
                    f"intervals {a!r} and {b!r} are adjacent; merge them "
                    "for the canonical representation"
                )
        object.__setattr__(self, "_intervals", tuple(ivs))

    def __setattr__(self, name, value):
        raise AttributeError("RangeSet values are immutable")

    @classmethod
    def normalized(cls, intervals: Iterable[Interval[T]]) -> "RangeSet[T]":
        """Build a range set from arbitrary intervals, merging as needed."""
        ivs = sorted(intervals, key=lambda i: (i.s, not i.lc, i.e, i.rc))
        merged: List[Interval[T]] = []
        for iv in ivs:
            if merged and (not merged[-1].disjoint(iv) or merged[-1].adjacent(iv)):
                merged[-1] = merged[-1].merge(iv)
            else:
                merged.append(iv)
        return cls(merged)

    # -- container protocol ----------------------------------------------

    @property
    def intervals(self) -> Sequence[Interval[T]]:
        """The ordered interval tuple (the canonical array representation)."""
        return self._intervals

    def __iter__(self) -> Iterator[Interval[T]]:
        return iter(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RangeSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:
        inner = ", ".join(iv.pretty() for iv in self._intervals)
        return f"RangeSet({{{inner}}})"

    # -- queries -----------------------------------------------------------

    def contains(self, v: T) -> bool:
        """True iff the domain value ``v`` belongs to some interval.

        Binary search over the ordered interval array.
        """
        lo, hi = 0, len(self._intervals) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            iv = self._intervals[mid]
            if iv.contains(v):
                return True
            if v < iv.s or (v == iv.s and not iv.lc):
                hi = mid - 1
            else:
                lo = mid + 1
        return False

    def interval_containing(self, v: T) -> Optional[Interval[T]]:
        """Return the interval containing ``v``, or None."""
        lo, hi = 0, len(self._intervals) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            iv = self._intervals[mid]
            if iv.contains(v):
                return iv
            if v < iv.s or (v == iv.s and not iv.lc):
                hi = mid - 1
            else:
                lo = mid + 1
        return None

    @property
    def minimum(self) -> T:
        """The smallest value present; raises on the empty set."""
        if not self._intervals:
            raise InvalidValue("minimum of an empty range set")
        return self._intervals[0].s

    @property
    def maximum(self) -> T:
        """The largest value present; raises on the empty set."""
        if not self._intervals:
            raise InvalidValue("maximum of an empty range set")
        return self._intervals[-1].e

    def total_length(self):
        """Sum of interval extents (numeric domains)."""
        return sum(iv.length for iv in self._intervals)

    def span(self) -> Optional[Interval[T]]:
        """The smallest single interval covering the whole set, or None."""
        if not self._intervals:
            return None
        first, last = self._intervals[0], self._intervals[-1]
        return Interval(first.s, last.e, first.lc, last.rc)

    # -- boolean algebra ----------------------------------------------------

    def union(self, other: "RangeSet[T]") -> "RangeSet[T]":
        """Set union of the two ranges."""
        return RangeSet.normalized(list(self._intervals) + list(other._intervals))

    def intersection(self, other: "RangeSet[T]") -> "RangeSet[T]":
        """Set intersection, via an ordered merge scan."""
        out: List[Interval[T]] = []
        i = j = 0
        a, b = self._intervals, other._intervals
        while i < len(a) and j < len(b):
            common = a[i].intersection(b[j])
            if common is not None:
                out.append(common)
            # Advance whichever interval ends first.
            if (a[i].e, a[i].rc) <= (b[j].e, b[j].rc):
                i += 1
            else:
                j += 1
        return RangeSet.normalized(out)

    def difference(self, other: "RangeSet[T]") -> "RangeSet[T]":
        """Set difference ``self \\ other``."""
        out: List[Interval[T]] = []
        for iv in self._intervals:
            pieces = [iv]
            for cut in other._intervals:
                nxt: List[Interval[T]] = []
                for piece in pieces:
                    nxt.extend(_interval_minus(piece, cut))
                pieces = nxt
                if not pieces:
                    break
            out.extend(pieces)
        return RangeSet.normalized(out)

    def intersects(self, other: "RangeSet[T]") -> bool:
        """True iff the two ranges share any value."""
        i = j = 0
        a, b = self._intervals, other._intervals
        while i < len(a) and j < len(b):
            if a[i].intersects(b[j]):
                return True
            if (a[i].e, a[i].rc) <= (b[j].e, b[j].rc):
                i += 1
            else:
                j += 1
        return False


def _interval_minus(iv: Interval[T], cut: Interval[T]) -> List[Interval[T]]:
    """Subtract ``cut`` from ``iv``, yielding 0, 1, or 2 intervals."""
    if iv.disjoint(cut):
        return [iv]
    out: List[Interval[T]] = []
    # Left remainder: values of iv before cut starts.
    if iv.s < cut.s or (iv.s == cut.s and iv.lc and not cut.lc):
        if iv.s == cut.s:
            out.append(Interval(iv.s, iv.s, True, True))
        else:
            out.append(Interval(iv.s, cut.s, iv.lc, not cut.lc))
    # Right remainder: values of iv after cut ends.
    if iv.e > cut.e or (iv.e == cut.e and iv.rc and not cut.rc):
        if iv.e == cut.e:
            out.append(Interval(iv.e, iv.e, True, True))
        else:
            out.append(Interval(cut.e, iv.e, not cut.rc, iv.rc))
    # Drop malformed empties that the closure flags can produce.
    cleaned: List[Interval[T]] = []
    for piece in out:
        if piece.s == piece.e and not (piece.lc and piece.rc):
            continue
        cleaned.append(piece)
    return cleaned
