"""Interval and range types (Section 3.2.3) plus the ``intime`` pairs."""

from __future__ import annotations

from repro.ranges.interval import Interval, interval_at, closed, open_interval
from repro.ranges.rangeset import RangeSet
from repro.ranges.intime import Intime

__all__ = [
    "Interval",
    "interval_at",
    "closed",
    "open_interval",
    "RangeSet",
    "Intime",
]
