"""The ``intime(α)`` type constructor (Section 3.2.3).

A value of ``intime(α)`` pairs a time instant with a value of α; it is
the result type of operations such as ``initial`` and ``final`` and the
argument type of the projections ``inst`` and ``val``.
"""

from __future__ import annotations

from typing import Any, Generic, TypeVar, Union

from repro.base.instant import Instant, as_time

T = TypeVar("T")


class Intime(Generic[T]):
    """A timestamped value: the pair ``(instant, value)``."""

    __slots__ = ("_t", "_v")

    def __init__(self, t: Union[Instant, int, float], v: T):
        object.__setattr__(self, "_t", as_time(t))
        object.__setattr__(self, "_v", v)

    def __setattr__(self, name, value):
        raise AttributeError("Intime values are immutable")

    @property
    def inst(self) -> Instant:
        """The time component (operation ``inst`` of the abstract model)."""
        return Instant(self._t)

    @property
    def val(self) -> T:
        """The value component (operation ``val`` of the abstract model)."""
        return self._v

    @property
    def time(self) -> float:
        """The raw float time coordinate."""
        return self._t

    def __iter__(self):
        return iter((self.inst, self._v))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Intime):
            return NotImplemented
        return self._t == other._t and self._v == other._v

    def __hash__(self) -> int:
        try:
            return hash((self._t, self._v))
        except TypeError:
            return hash(self._t)

    def __repr__(self) -> str:
        return f"Intime(t={self._t:g}, {self._v!r})"
