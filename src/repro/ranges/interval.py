"""Intervals over a totally ordered domain (Section 3.2.3).

An interval is the quadruple ``(s, e, lc, rc)`` of its end points and two
closure flags, with ``s <= e`` and the convention that a degenerate
interval (``s == e``) is closed on both sides.  The module implements the
paper's ``disjoint`` and ``adjacent`` predicates verbatim, including the
discrete-domain clause of *r-adjacent* (``[1,3]`` and ``[4,6]`` are
adjacent over ``int`` because no integer lies strictly between 3 and 4).

Interval end points are raw Python comparables (floats for time, ints or
strings for the other range domains); wrapping them in value classes
would buy nothing at this level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generic, Iterator, Optional, TypeVar

from repro.errors import InvalidValue

T = TypeVar("T")


def _is_discrete(value: Any) -> bool:
    """True if the value lives in a discrete domain (int, str)."""
    return isinstance(value, int) and not isinstance(value, bool) or isinstance(
        value, str
    )


def _has_gap(a: Any, b: Any) -> bool:
    """True if some domain value lies strictly between ``a`` and ``b``.

    For dense domains (floats) any two distinct values have a gap.  For
    the integers, ``a`` and ``a + 1`` have none.  Strings form a dense
    order under the usual lexicographic comparison (between any two
    distinct strings another string exists), so they are treated as
    dense as well.
    """
    if isinstance(a, int) and not isinstance(a, bool):
        return b - a > 1
    return a != b


@dataclass(frozen=True)
class Interval(Generic[T]):
    """An interval ``(s, e, lc, rc)`` over a totally ordered domain."""

    s: T
    e: T
    lc: bool = True
    rc: bool = True

    def __post_init__(self):
        if self.s > self.e:
            raise InvalidValue(f"interval start {self.s!r} exceeds end {self.e!r}")
        if self.s == self.e and not (self.lc and self.rc):
            raise InvalidValue("a degenerate interval must be closed on both sides")

    # -- classification -------------------------------------------------

    @property
    def is_degenerate(self) -> bool:
        """True for a single-value interval ``[v, v]``."""
        return self.s == self.e

    def contains(self, v: T) -> bool:
        """True iff the domain value ``v`` belongs to this interval."""
        if v < self.s or v > self.e:
            return False
        if v == self.s and not self.lc:
            return False
        if v == self.e and not self.rc:
            return False
        return True

    def contains_open(self, v: T) -> bool:
        """True iff ``v`` lies in the open part of this interval.

        For a degenerate interval the open part is taken to be the single
        value itself (the paper treats point intervals separately; this
        convention keeps unit-constraint checks meaningful for them).
        """
        if self.is_degenerate:
            return v == self.s
        return self.s < v < self.e

    def contains_interval(self, other: "Interval[T]") -> bool:
        """True iff ``other`` is a subset of this interval."""
        if other.s < self.s or other.e > self.e:
            return False
        if other.s == self.s and other.lc and not self.lc:
            return False
        if other.e == self.e and other.rc and not self.rc:
            return False
        return True

    # -- the paper's predicates -----------------------------------------

    def r_disjoint(self, other: "Interval[T]") -> bool:
        """True iff this interval ends before ``other`` begins."""
        return self.e < other.s or (
            self.e == other.s and not (self.rc and other.lc)
        )

    def disjoint(self, other: "Interval[T]") -> bool:
        """True iff the two intervals share no domain value."""
        return self.r_disjoint(other) or other.r_disjoint(self)

    def r_adjacent(self, other: "Interval[T]") -> bool:
        """True iff ``other`` follows this interval with no gap between."""
        if not self.disjoint(other):
            return False
        if self.e == other.s and (self.rc or other.lc):
            return True
        # Discrete-domain clause: closed ends with no domain value between.
        if self.e < other.s and self.rc and other.lc and not _has_gap(self.e, other.s):
            return True
        return False

    def adjacent(self, other: "Interval[T]") -> bool:
        """True iff the intervals are disjoint but touch with no gap."""
        return self.r_adjacent(other) or other.r_adjacent(self)

    # -- constructive operations ----------------------------------------

    def intersects(self, other: "Interval[T]") -> bool:
        """True iff the intervals share at least one domain value."""
        return not self.disjoint(other)

    def intersection(self, other: "Interval[T]") -> Optional["Interval[T]"]:
        """Return the common sub-interval, or None when disjoint."""
        if self.disjoint(other):
            return None
        if self.s > other.s:
            s, lc = self.s, self.lc
        elif self.s < other.s:
            s, lc = other.s, other.lc
        else:
            s, lc = self.s, self.lc and other.lc
        if self.e < other.e:
            e, rc = self.e, self.rc
        elif self.e > other.e:
            e, rc = other.e, other.rc
        else:
            e, rc = self.e, self.rc and other.rc
        if s == e:
            return Interval(s, e, True, True)
        return Interval(s, e, lc, rc)

    def merge(self, other: "Interval[T]") -> "Interval[T]":
        """Return the single interval covering two overlapping/adjacent intervals.

        Raises :class:`InvalidValue` when the union is not an interval.
        """
        if self.disjoint(other) and not self.adjacent(other):
            raise InvalidValue("cannot merge intervals separated by a gap")
        if self.s < other.s:
            s, lc = self.s, self.lc
        elif self.s > other.s:
            s, lc = other.s, other.lc
        else:
            s, lc = self.s, self.lc or other.lc
        if self.e > other.e:
            e, rc = self.e, self.rc
        elif self.e < other.e:
            e, rc = other.e, other.rc
        else:
            e, rc = self.e, self.rc or other.rc
        return Interval(s, e, lc, rc)

    def before(self, other: "Interval[T]") -> bool:
        """Total order on disjoint intervals: this one entirely first."""
        return self.r_disjoint(other)

    # -- numeric helpers (time intervals) --------------------------------

    @property
    def length(self) -> Any:
        """The extent ``e - s`` (meaningful for numeric domains)."""
        return self.e - self.s

    def midpoint(self) -> Any:
        """The central value (numeric domains only)."""
        return self.s + (self.e - self.s) / 2

    def sample_inside(self) -> T:
        """A value guaranteed to lie in the open part of the interval."""
        if self.is_degenerate:
            return self.s
        return self.midpoint()

    def __repr__(self) -> str:
        lb = "[" if self.lc else "("
        rb = "]" if self.rc else ")"
        return f"{lb}{self.s!r}, {self.e!r}{rb}"

    def pretty(self) -> str:
        """Compact human-readable rendering with %g number formatting."""
        lb = "[" if self.lc else "("

        def fmt(v: Any) -> str:
            if isinstance(v, float):
                return f"{v:g}"
            return repr(v)

        rb = "]" if self.rc else ")"
        return f"{lb}{fmt(self.s)}, {fmt(self.e)}{rb}"


def interval_at(v: T) -> Interval[T]:
    """Return the degenerate closed interval ``[v, v]``."""
    return Interval(v, v, True, True)


def closed(s: T, e: T) -> Interval[T]:
    """Return the closed interval ``[s, e]``."""
    return Interval(s, e, True, True)


def open_interval(s: T, e: T) -> Interval[T]:
    """Return the open interval ``(s, e)``."""
    return Interval(s, e, False, False)
