"""repro: moving objects databases — discrete model and data structures.

A faithful, self-contained Python implementation of

    L. Forlizzi, R. H. Güting, E. Nardelli, M. Schneider:
    "A Data Model and Data Structures for Moving Objects Databases",
    SIGMOD 2000.

Packages
--------
``repro.base``       base types (int/real/string/bool, instant) with ⊥
``repro.ranges``     interval sets (range types) and intime pairs
``repro.spatial``    point, points, line, region (cycles/faces/close)
``repro.temporal``   unit types, the sliced representation (mapping)
``repro.ops``        the operation algebra incl. Section-5 algorithms
``repro.storage``    root records, database arrays, pages, FLOBs
``repro.db``         mini-DBMS: relations, SQL subset, executor
``repro.index``      3-D R-tree over unit bounding cubes
``repro.workloads``  synthetic flights, storms, road-network trips
``repro.typesystem`` executable signatures of Tables 1–3
``repro.obs``        operation counters/timers for the Section-5 claims
"""

from __future__ import annotations

from repro.base import BoolVal, Instant, IntVal, RealVal, StringVal
from repro.ranges import Interval, Intime, RangeSet
from repro.spatial import Cube, Cycle, Face, Line, Point, Points, Rect, Region
from repro.temporal import (
    ConstUnit,
    Mapping,
    MovingBool,
    MovingInt,
    MovingLine,
    MovingPoint,
    MovingPoints,
    MovingReal,
    MovingRegion,
    MovingString,
    MPoint,
    MSeg,
    ULine,
    UPoint,
    UPoints,
    UReal,
    URegion,
)
from repro import obs
from repro.errors import (
    CatalogError,
    InvalidValue,
    NotClosed,
    QueryError,
    ReproError,
    StorageError,
    TypeMismatch,
    UndefinedValue,
)

__version__ = "1.0.0"

__all__ = [
    "BoolVal",
    "Instant",
    "IntVal",
    "RealVal",
    "StringVal",
    "Interval",
    "Intime",
    "RangeSet",
    "Cube",
    "Cycle",
    "Face",
    "Line",
    "Point",
    "Points",
    "Rect",
    "Region",
    "ConstUnit",
    "Mapping",
    "MovingBool",
    "MovingInt",
    "MovingLine",
    "MovingPoint",
    "MovingPoints",
    "MovingReal",
    "MovingRegion",
    "MovingString",
    "MPoint",
    "MSeg",
    "ULine",
    "UPoint",
    "UPoints",
    "UReal",
    "URegion",
    "CatalogError",
    "InvalidValue",
    "NotClosed",
    "QueryError",
    "ReproError",
    "StorageError",
    "TypeMismatch",
    "UndefinedValue",
    "obs",
    "__version__",
]
