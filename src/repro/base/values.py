"""Discrete base types: ``int``, ``real``, ``string``, ``bool`` with bottom.

Section 3.2.1 defines the carrier sets of the base types as the
programming language types extended by the undefined value ⊥.  Each value
class here wraps a payload that may be ``None`` (meaning ⊥), and exposes
the total order the range and mapping constructors rely on.

Value classes are immutable, hashable, and ordered.  The undefined value
compares less than every defined value so that canonical orderings stay
total; arithmetic on undefined values propagates undefinedness, matching
the strictness convention of the abstract model.
"""

from __future__ import annotations

from typing import Any, ClassVar, Optional, Type

from repro.errors import TypeMismatch, UndefinedValue

#: Sentinel used in constructors to request the undefined value.
UNDEFINED = None

#: Maximum length of a string value; the storage codec uses a fixed-size
#: character array, per footnote 3 of the paper.
MAX_STRING = 48


class BaseValue:
    """Common behaviour of the four base types.

    Subclasses set ``payload_type`` (the Python type of defined payloads)
    and ``type_name`` (the name used in schemas and error messages).
    """

    __slots__ = ("_value",)
    payload_type: ClassVar[type] = object
    type_name: ClassVar[str] = "base"

    def __init__(self, value: Optional[Any] = UNDEFINED):
        # bool is a subclass of int in Python; only BoolVal may hold bools.
        wrong_bool = (
            value is not UNDEFINED
            and isinstance(value, bool)
            and self.payload_type is not bool
        )
        if value is not UNDEFINED and (
            wrong_bool or not isinstance(value, self.payload_type)
        ):
            coerced = self._coerce(value)
            if coerced is NotImplemented:
                raise TypeMismatch(
                    f"{self.type_name} cannot hold {value!r} "
                    f"of type {type(value).__name__}"
                )
            value = coerced
        object.__setattr__(self, "_value", value)

    @classmethod
    def _coerce(cls, value: Any) -> Any:
        """Attempt a safe payload coercion; NotImplemented if unsafe."""
        return NotImplemented

    @property
    def defined(self) -> bool:
        """True iff this value is not the undefined value ⊥."""
        return self._value is not UNDEFINED

    @property
    def value(self) -> Any:
        """The defined payload; raises :class:`UndefinedValue` on ⊥."""
        if self._value is UNDEFINED:
            raise UndefinedValue(f"{self.type_name} value is undefined")
        return self._value

    def value_or(self, default: Any) -> Any:
        """The payload, or ``default`` when undefined."""
        return default if self._value is UNDEFINED else self._value

    def __setattr__(self, name: str, value: Any):  # immutability
        raise AttributeError(f"{type(self).__name__} values are immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, type(self)):
            return NotImplemented
        return self._value == other._value

    def __hash__(self) -> int:
        return hash((self.type_name, self._value))

    def _order_key(self) -> tuple:
        # Undefined sorts before every defined value.
        if self._value is UNDEFINED:
            return (0,)
        return (1, self._value)

    def __lt__(self, other: "BaseValue") -> bool:
        if not isinstance(other, type(self)):
            return NotImplemented
        return self._order_key() < other._order_key()

    def __le__(self, other: "BaseValue") -> bool:
        if not isinstance(other, type(self)):
            return NotImplemented
        return self._order_key() <= other._order_key()

    def __gt__(self, other: "BaseValue") -> bool:
        if not isinstance(other, type(self)):
            return NotImplemented
        return self._order_key() > other._order_key()

    def __ge__(self, other: "BaseValue") -> bool:
        if not isinstance(other, type(self)):
            return NotImplemented
        return self._order_key() >= other._order_key()

    def __repr__(self) -> str:
        if self._value is UNDEFINED:
            return f"{type(self).__name__}(⊥)"
        return f"{type(self).__name__}({self._value!r})"


class IntVal(BaseValue):
    """The discrete ``int`` type: machine integers plus ⊥."""

    __slots__ = ()
    payload_type = int
    type_name = "int"

    @classmethod
    def _coerce(cls, value: Any) -> Any:
        # bool is a subclass of int in Python; reject it to keep the
        # type system honest.
        if isinstance(value, bool):
            return NotImplemented
        return NotImplemented


class RealVal(BaseValue):
    """The discrete ``real`` type: floating point numbers plus ⊥."""

    __slots__ = ()
    payload_type = float
    type_name = "real"

    @classmethod
    def _coerce(cls, value: Any) -> Any:
        if isinstance(value, int) and not isinstance(value, bool):
            return float(value)
        return NotImplemented


class StringVal(BaseValue):
    """The discrete ``string`` type: bounded-length strings plus ⊥."""

    __slots__ = ()
    payload_type = str
    type_name = "string"

    def __init__(self, value: Optional[str] = UNDEFINED):
        if value is not UNDEFINED and isinstance(value, str) and len(value) > MAX_STRING:
            raise TypeMismatch(
                f"string exceeds the fixed storage length of {MAX_STRING} characters"
            )
        super().__init__(value)


class BoolVal(BaseValue):
    """The discrete ``bool`` type: truth values plus ⊥."""

    __slots__ = ()
    payload_type = bool
    type_name = "bool"

    def __bool__(self) -> bool:
        return bool(self.value)


#: Convenience singletons.
TRUE = BoolVal(True)
FALSE = BoolVal(False)


def wrap(value: Any) -> BaseValue:
    """Wrap a plain Python scalar into the matching base value class."""
    if isinstance(value, BaseValue):
        return value
    if isinstance(value, bool):
        return BoolVal(value)
    if isinstance(value, int):
        return IntVal(value)
    if isinstance(value, float):
        return RealVal(value)
    if isinstance(value, str):
        return StringVal(value)
    raise TypeMismatch(f"no base type holds {value!r}")
