"""The ``instant`` time type (Section 3.2.1).

Time is isomorphic to the real numbers: ``Instant = real``.  The class is
a thin, ordered, immutable wrapper over a float that supports the handful
of arithmetic operations the temporal algebra needs (difference of
instants is a duration in model time units; instant ± duration shifts).
"""

from __future__ import annotations

import math
from typing import Any, Optional, Union

from repro.errors import TypeMismatch, UndefinedValue

#: Sentinel for the undefined instant.
UNDEFINED = None


class Instant:
    """A point on the time axis, or the undefined instant ⊥."""

    __slots__ = ("_t",)

    def __init__(self, t: Optional[Union[int, float]] = UNDEFINED):
        if t is not UNDEFINED:
            if isinstance(t, bool) or not isinstance(t, (int, float)):
                raise TypeMismatch(f"instant cannot hold {t!r}")
            t = float(t)
            if not math.isfinite(t):
                raise TypeMismatch("instant must be a finite real number")
        object.__setattr__(self, "_t", t)

    @property
    def defined(self) -> bool:
        """True iff this is not the undefined instant."""
        return self._t is not UNDEFINED

    @property
    def value(self) -> float:
        """The time coordinate; raises :class:`UndefinedValue` on ⊥."""
        if self._t is UNDEFINED:
            raise UndefinedValue("instant is undefined")
        return self._t

    def __setattr__(self, name: str, value: Any):
        raise AttributeError("Instant values are immutable")

    def __float__(self) -> float:
        return self.value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Instant):
            return self._t == other._t
        if isinstance(other, (int, float)) and not isinstance(other, bool):
            return self._t == float(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("instant", self._t))

    def _key(self) -> tuple:
        if self._t is UNDEFINED:
            return (0, 0.0)
        return (1, self._t)

    def __lt__(self, other: "Instant") -> bool:
        return self._key() < _as_instant(other)._key()

    def __le__(self, other: "Instant") -> bool:
        return self._key() <= _as_instant(other)._key()

    def __gt__(self, other: "Instant") -> bool:
        return self._key() > _as_instant(other)._key()

    def __ge__(self, other: "Instant") -> bool:
        return self._key() >= _as_instant(other)._key()

    def __add__(self, duration: Union[int, float]) -> "Instant":
        return Instant(self.value + float(duration))

    def __radd__(self, duration: Union[int, float]) -> "Instant":
        return self.__add__(duration)

    def __sub__(self, other: Union["Instant", int, float]) -> Union["Instant", float]:
        if isinstance(other, Instant):
            return self.value - other.value
        return Instant(self.value - float(other))

    def __repr__(self) -> str:
        if self._t is UNDEFINED:
            return "Instant(⊥)"
        return f"Instant({self._t:g})"


def _as_instant(x: Union[Instant, int, float]) -> Instant:
    """Coerce a number to an :class:`Instant` (identity on instants)."""
    if isinstance(x, Instant):
        return x
    return Instant(x)


def as_time(x: Union[Instant, int, float]) -> float:
    """Return the raw float time coordinate of ``x``."""
    if isinstance(x, Instant):
        return x.value
    if isinstance(x, bool) or not isinstance(x, (int, float)):
        raise TypeMismatch(f"not a time value: {x!r}")
    return float(x)
