"""Base data types of the discrete model (Section 3.2.1).

The carrier sets of ``int``, ``real``, ``string``, ``bool`` and the time
type ``instant`` are the corresponding programming language types extended
with an explicit *undefined* value (bottom).
"""

from __future__ import annotations

from repro.base.values import (
    BaseValue,
    IntVal,
    RealVal,
    StringVal,
    BoolVal,
    UNDEFINED,
)
from repro.base.instant import Instant

__all__ = [
    "BaseValue",
    "IntVal",
    "RealVal",
    "StringVal",
    "BoolVal",
    "UNDEFINED",
    "Instant",
]
