"""A WKT-flavored text format for the moving objects data types.

Every value round-trips through a single line of text, e.g.::

    POINT (1 2)
    POINTS ((1 2) (3 4))
    LINE ((0 0, 1 1) (2 2, 3 3))
    REGION (FACE ((0 0, 4 0, 4 4, 0 4) HOLE (1 1, 2 1, 2 2, 1 2)))
    RANGE ([1 2] (3 4])
    MBOOL ([0 5] true; (5 9] false)
    MREAL ([0 5] quad 0 1 0; (5 9] sqrt 0 0 4)
    MPOINT ([0 10) 0 1 0 0)                       # x0 x1 y0 y1
    MREGION ([0 10] FACE ((0 0.5 0 0 | 2 0.5 0 0 | ...)))

The grammar is deliberately small: parenthesized groups, interval
brackets, numbers, a handful of keywords.  ``to_text``/``from_text``
dispatch on the value's type / the leading keyword.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Tuple

from repro.base.values import BoolVal, IntVal, RealVal, StringVal
from repro.errors import ReproError
from repro.ranges.interval import Interval
from repro.ranges.rangeset import RangeSet
from repro.spatial.line import Line
from repro.spatial.point import Point
from repro.spatial.points import Points
from repro.spatial.region import Cycle, Face, Region
from repro.temporal.mapping import (
    MovingBool,
    MovingInt,
    MovingLine,
    MovingPoint,
    MovingPoints,
    MovingReal,
    MovingRegion,
    MovingString,
)
from repro.temporal.mseg import MPoint, MSeg
from repro.temporal.uconst import ConstUnit
from repro.temporal.uline import ULine
from repro.temporal.upoint import UPoint
from repro.temporal.upoints import UPoints
from repro.temporal.ureal import UReal
from repro.temporal.uregion import MCycle, MFace, URegion


class TextFormatError(ReproError):
    """Malformed text representation."""


def _num(v: float) -> str:
    return f"{v:.17g}"


def _interval_text(iv: Interval) -> str:
    lb = "[" if iv.lc else "("
    rb = "]" if iv.rc else ")"
    return f"{lb}{_num(iv.s)} {_num(iv.e)}{rb}"


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def _point_text(v: Point) -> str:
    if not v.defined:
        return "POINT EMPTY"
    return f"POINT ({_num(v.x)} {_num(v.y)})"


def _points_text(v: Points) -> str:
    if not v:
        return "POINTS EMPTY"
    inner = " ".join(f"({_num(x)} {_num(y)})" for x, y in v.vecs)
    return f"POINTS ({inner})"


def _line_text(v: Line) -> str:
    if not v:
        return "LINE EMPTY"
    inner = " ".join(
        f"({_num(p[0])} {_num(p[1])}, {_num(q[0])} {_num(q[1])})"
        for p, q in v.segments
    )
    return f"LINE ({inner})"


def _ring_text(cycle: Cycle) -> str:
    return ", ".join(f"{_num(x)} {_num(y)}" for x, y in cycle.vertices)


def _region_text(v: Region) -> str:
    if not v:
        return "REGION EMPTY"
    faces = []
    for f in v.faces:
        parts = [f"({_ring_text(f.outer)})"]
        parts.extend(f"HOLE ({_ring_text(h)})" for h in f.holes)
        faces.append(f"FACE ({' '.join(parts)})")
    return f"REGION ({' '.join(faces)})"


def _range_text(v: RangeSet) -> str:
    if not v:
        return "RANGE EMPTY"
    return f"RANGE ({' '.join(_interval_text(iv) for iv in v)})"


def _const_payload(value: Any) -> str:
    if isinstance(value, BoolVal):
        return "true" if value.value else "false"
    if isinstance(value, IntVal):
        return str(value.value)
    if isinstance(value, StringVal):
        return '"' + value.value.replace('"', '\\"') + '"'
    raise TextFormatError(f"unsupported const payload {value!r}")


def _mapping_text(keyword: str, units: List[str]) -> str:
    if not units:
        return f"{keyword} EMPTY"
    return f"{keyword} ({'; '.join(units)})"


def _mbool_like_text(keyword: str, v) -> str:
    return _mapping_text(
        keyword,
        [
            f"{_interval_text(u.interval)} {_const_payload(u.value)}"
            for u in v.units
        ],
    )


def _mreal_text(v: MovingReal) -> str:
    units = []
    for u in v.units:
        assert isinstance(u, UReal)
        a, b, c, r = u.coefficients
        form = "sqrt" if r else "quad"
        units.append(
            f"{_interval_text(u.interval)} {form} {_num(a)} {_num(b)} {_num(c)}"
        )
    return _mapping_text("MREAL", units)


def _mpoint_text(v: MovingPoint) -> str:
    units = []
    for u in v.units:
        assert isinstance(u, UPoint)
        m = u.motion
        units.append(
            f"{_interval_text(u.interval)} "
            f"{_num(m.x0)} {_num(m.x1)} {_num(m.y0)} {_num(m.y1)}"
        )
    return _mapping_text("MPOINT", units)


def _mpoints_text(v: MovingPoints) -> str:
    units = []
    for u in v.units:
        assert isinstance(u, UPoints)
        motions = " | ".join(
            f"{_num(m.x0)} {_num(m.x1)} {_num(m.y0)} {_num(m.y1)}"
            for m in u.motions
        )
        units.append(f"{_interval_text(u.interval)} ({motions})")
    return _mapping_text("MPOINTS", units)


def _mseg_nums(m: MSeg) -> str:
    return (
        f"{_num(m.s.x0)} {_num(m.s.x1)} {_num(m.s.y0)} {_num(m.s.y1)} "
        f"{_num(m.e.x0)} {_num(m.e.x1)} {_num(m.e.y0)} {_num(m.e.y1)}"
    )


def _mline_text(v: MovingLine) -> str:
    units = []
    for u in v.units:
        assert isinstance(u, ULine)
        msegs = " | ".join(_mseg_nums(m) for m in u.msegs)
        units.append(f"{_interval_text(u.interval)} ({msegs})")
    return _mapping_text("MLINE", units)


def _mregion_text(v: MovingRegion) -> str:
    units = []
    for u in v.units:
        assert isinstance(u, URegion)
        faces = []
        for mf in u.faces:
            rings = [f"({' | '.join(_mseg_nums(m) for m in mf.outer.msegs)})"]
            rings.extend(
                f"HOLE ({' | '.join(_mseg_nums(m) for m in h.msegs)})"
                for h in mf.holes
            )
            faces.append(f"FACE ({' '.join(rings)})")
        units.append(f"{_interval_text(u.interval)} {' '.join(faces)}")
    return _mapping_text("MREGION", units)


_SERIALIZERS: List[Tuple[type, Callable[[Any], str]]] = [
    (Point, _point_text),
    (Points, _points_text),
    (Line, _line_text),
    (Region, _region_text),
    (RangeSet, _range_text),
    (MovingBool, lambda v: _mbool_like_text("MBOOL", v)),
    (MovingInt, lambda v: _mbool_like_text("MINT", v)),
    (MovingString, lambda v: _mbool_like_text("MSTRING", v)),
    (MovingReal, _mreal_text),
    (MovingPoint, _mpoint_text),
    (MovingPoints, _mpoints_text),
    (MovingLine, _mline_text),
    (MovingRegion, _mregion_text),
]


def to_text(value: Any) -> str:
    """Serialize a value into the text format."""
    for cls, fn in _SERIALIZERS:
        if type(value) is cls:
            return fn(value)
    raise TextFormatError(f"no text form for {type(value).__name__}")


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

_TOKEN = re.compile(
    r"""
    (?P<num>-?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)
  | (?P<str>"(?:[^"\\]|\\.)*")
  | (?P<word>[A-Za-z_]+)
  | (?P<punct>[()\[\],;|])
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)


class _Scanner:
    def __init__(self, text: str):
        self.tokens: List[Tuple[str, str]] = []
        pos = 0
        while pos < len(text):
            m = _TOKEN.match(text, pos)
            if m is None:
                raise TextFormatError(f"bad token at: {text[pos:pos+15]!r}")
            pos = m.end()
            kind = m.lastgroup
            if kind != "ws":
                self.tokens.append((kind, m.group()))
        self.pos = 0

    def peek(self) -> Tuple[str, str]:
        if self.pos >= len(self.tokens):
            return ("eof", "")
        return self.tokens[self.pos]

    def next(self) -> Tuple[str, str]:
        tok = self.peek()
        self.pos += 1
        return tok

    def expect(self, text: str) -> None:
        kind, got = self.next()
        if got != text:
            raise TextFormatError(f"expected {text!r}, got {got!r}")

    def accept(self, text: str) -> bool:
        if self.peek()[1] == text:
            self.pos += 1
            return True
        return False

    def number(self) -> float:
        kind, got = self.next()
        if kind != "num":
            raise TextFormatError(f"expected a number, got {got!r}")
        return float(got)

    def numbers_until(self, stops: set) -> List[float]:
        out = []
        while self.peek()[1] not in stops and self.peek()[0] == "num":
            out.append(self.number())
        return out


def _parse_interval(sc: _Scanner) -> Interval:
    kind, tok = sc.next()
    if tok not in ("[", "("):
        raise TextFormatError(f"expected an interval, got {tok!r}")
    lc = tok == "["
    s = sc.number()
    e = sc.number()
    kind, tok = sc.next()
    if tok not in ("]", ")"):
        raise TextFormatError(f"malformed interval close {tok!r}")
    rc = tok == "]"
    return Interval(s, e, lc, rc)


def _parse_ring(sc: _Scanner) -> List[Tuple[float, float]]:
    sc.expect("(")
    ring = []
    while True:
        x = sc.number()
        y = sc.number()
        ring.append((x, y))
        if not sc.accept(","):
            break
    sc.expect(")")
    return ring


def _parse_point(sc: _Scanner) -> Point:
    if sc.accept("EMPTY"):
        return Point()
    sc.expect("(")
    x, y = sc.number(), sc.number()
    sc.expect(")")
    return Point(x, y)


def _parse_points(sc: _Scanner) -> Points:
    if sc.accept("EMPTY"):
        return Points()
    sc.expect("(")
    pts = []
    while sc.accept("("):
        pts.append((sc.number(), sc.number()))
        sc.expect(")")
    sc.expect(")")
    return Points(pts)


def _parse_line(sc: _Scanner) -> Line:
    if sc.accept("EMPTY"):
        return Line()
    sc.expect("(")
    segs = []
    while sc.accept("("):
        x1, y1 = sc.number(), sc.number()
        sc.expect(",")
        x2, y2 = sc.number(), sc.number()
        sc.expect(")")
        segs.append(((x1, y1), (x2, y2)))
    sc.expect(")")
    return Line(segs)


def _parse_region(sc: _Scanner) -> Region:
    if sc.accept("EMPTY"):
        return Region()
    sc.expect("(")
    faces = []
    while sc.accept("FACE"):
        sc.expect("(")
        outer = Cycle.from_vertices(_parse_ring(sc))
        holes = []
        while sc.accept("HOLE"):
            holes.append(Cycle.from_vertices(_parse_ring(sc)))
        sc.expect(")")
        faces.append(Face(outer, holes))
    sc.expect(")")
    return Region(faces)


def _parse_range(sc: _Scanner) -> RangeSet:
    if sc.accept("EMPTY"):
        return RangeSet()
    sc.expect("(")
    ivs = []
    while sc.peek()[1] in ("[", "("):
        # Disambiguate closing paren of the RANGE group from an opening
        # interval: an interval always starts with a number next.
        save = sc.pos
        tok = sc.next()[1]
        if sc.peek()[0] != "num":
            sc.pos = save
            break
        sc.pos = save
        ivs.append(_parse_interval(sc))
    sc.expect(")")
    return RangeSet(ivs)


def _parse_const_mapping(sc: _Scanner, cls, payload_parser):
    if sc.accept("EMPTY"):
        return cls()
    sc.expect("(")
    units = []
    while True:
        iv = _parse_interval(sc)
        units.append(ConstUnit(iv, payload_parser(sc)))
        if not sc.accept(";"):
            break
    sc.expect(")")
    return cls(units)


def _parse_bool_payload(sc: _Scanner) -> BoolVal:
    kind, tok = sc.next()
    if tok == "true":
        return BoolVal(True)
    if tok == "false":
        return BoolVal(False)
    raise TextFormatError(f"expected true/false, got {tok!r}")


def _parse_int_payload(sc: _Scanner) -> IntVal:
    return IntVal(int(sc.number()))


def _parse_string_payload(sc: _Scanner) -> StringVal:
    kind, tok = sc.next()
    if kind != "str":
        raise TextFormatError(f"expected a string literal, got {tok!r}")
    return StringVal(tok[1:-1].replace('\\"', '"'))


def _parse_mreal(sc: _Scanner) -> MovingReal:
    if sc.accept("EMPTY"):
        return MovingReal()
    sc.expect("(")
    units = []
    while True:
        iv = _parse_interval(sc)
        kind, form = sc.next()
        if form not in ("quad", "sqrt"):
            raise TextFormatError(f"expected quad/sqrt, got {form!r}")
        a, b, c = sc.number(), sc.number(), sc.number()
        units.append(UReal(iv, a, b, c, form == "sqrt"))
        if not sc.accept(";"):
            break
    sc.expect(")")
    return MovingReal(units)


def _parse_mpoint(sc: _Scanner) -> MovingPoint:
    if sc.accept("EMPTY"):
        return MovingPoint()
    sc.expect("(")
    units = []
    while True:
        iv = _parse_interval(sc)
        nums = [sc.number() for _ in range(4)]
        units.append(UPoint(iv, MPoint(*nums)))
        if not sc.accept(";"):
            break
    sc.expect(")")
    return MovingPoint(units)


def _parse_motion_group(sc: _Scanner, per_item: int) -> List[List[float]]:
    sc.expect("(")
    groups = []
    while True:
        groups.append([sc.number() for _ in range(per_item)])
        if not sc.accept("|"):
            break
    sc.expect(")")
    return groups


def _parse_mpoints(sc: _Scanner) -> MovingPoints:
    if sc.accept("EMPTY"):
        return MovingPoints()
    sc.expect("(")
    units = []
    while True:
        iv = _parse_interval(sc)
        motions = [MPoint(*g) for g in _parse_motion_group(sc, 4)]
        units.append(UPoints(iv, motions))
        if not sc.accept(";"):
            break
    sc.expect(")")
    return MovingPoints(units)


def _mseg_from(nums: List[float]) -> MSeg:
    return MSeg(MPoint(*nums[:4]), MPoint(*nums[4:]))


def _parse_mline(sc: _Scanner) -> MovingLine:
    if sc.accept("EMPTY"):
        return MovingLine()
    sc.expect("(")
    units = []
    while True:
        iv = _parse_interval(sc)
        msegs = [_mseg_from(g) for g in _parse_motion_group(sc, 8)]
        units.append(ULine(iv, msegs))
        if not sc.accept(";"):
            break
    sc.expect(")")
    return MovingLine(units)


def _parse_mregion(sc: _Scanner) -> MovingRegion:
    if sc.accept("EMPTY"):
        return MovingRegion()
    sc.expect("(")
    units = []
    while True:
        iv = _parse_interval(sc)
        faces = []
        while sc.accept("FACE"):
            sc.expect("(")
            outer = MCycle([_mseg_from(g) for g in _parse_motion_group(sc, 8)])
            holes = []
            while sc.accept("HOLE"):
                holes.append(
                    MCycle([_mseg_from(g) for g in _parse_motion_group(sc, 8)])
                )
            sc.expect(")")
            faces.append(MFace(outer, holes))
        units.append(URegion(iv, faces, validate="fast"))
        if not sc.accept(";"):
            break
    sc.expect(")")
    return MovingRegion(units)


_PARSERS: Dict[str, Callable[[_Scanner], Any]] = {
    "POINT": _parse_point,
    "POINTS": _parse_points,
    "LINE": _parse_line,
    "REGION": _parse_region,
    "RANGE": _parse_range,
    "MBOOL": lambda sc: _parse_const_mapping(sc, MovingBool, _parse_bool_payload),
    "MINT": lambda sc: _parse_const_mapping(sc, MovingInt, _parse_int_payload),
    "MSTRING": lambda sc: _parse_const_mapping(sc, MovingString, _parse_string_payload),
    "MREAL": _parse_mreal,
    "MPOINT": _parse_mpoint,
    "MPOINTS": _parse_mpoints,
    "MLINE": _parse_mline,
    "MREGION": _parse_mregion,
}


def from_text(text: str) -> Any:
    """Parse a value from its text form (dispatching on the keyword)."""
    sc = _Scanner(text.strip())
    kind, keyword = sc.next()
    parser = _PARSERS.get(keyword)
    if parser is None:
        raise TextFormatError(f"unknown type keyword {keyword!r}")
    value = parser(sc)
    if sc.peek()[0] != "eof":
        raise TextFormatError(f"trailing input after value: {sc.peek()[1]!r}")
    return value
