"""SVG rendering of spatial and spatio-temporal values.

Regenerates the paper's figures as actual images: line and region
values (Figures 2–3), trajectories, and moving-value "film strips"
(a row of snapshots, the standard way to show Figures 4–6 on paper).
Pure-stdlib string assembly — no plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.spatial.bbox import Rect
from repro.spatial.line import Line
from repro.spatial.point import Point
from repro.spatial.points import Points
from repro.spatial.region import Region
from repro.temporal.mapping import MovingPoint, MovingRegion

Drawable = Union[Point, Points, Line, Region]

_PALETTE = [
    "#4c72b0", "#dd8452", "#55a868", "#c44e52",
    "#8172b3", "#937860", "#da8bc3", "#8c8c8c",
]


class SvgCanvas:
    """A fixed-viewport SVG document builder with world→screen mapping."""

    def __init__(
        self,
        world: Rect,
        width: int = 480,
        height: int = 480,
        margin: int = 20,
    ):
        self.world = world
        self.width = width
        self.height = height
        self.margin = margin
        span_x = max(world.width, 1e-12)
        span_y = max(world.height, 1e-12)
        self._scale = min(
            (width - 2 * margin) / span_x, (height - 2 * margin) / span_y
        )
        self._elements: List[str] = []

    def _map(self, p: Tuple[float, float]) -> Tuple[float, float]:
        x = self.margin + (p[0] - self.world.xmin) * self._scale
        # SVG y grows downward; the plane's grows upward.
        y = self.height - self.margin - (p[1] - self.world.ymin) * self._scale
        return (x, y)

    def _pts(self, ring: Iterable[Tuple[float, float]]) -> str:
        return " ".join(f"{x:.2f},{y:.2f}" for x, y in (self._map(p) for p in ring))

    # -- drawing -----------------------------------------------------------

    def add_region(self, region: Region, color: str, opacity: float = 0.45) -> None:
        """Fill a region; holes use the SVG evenodd rule."""
        for face in region.faces:
            path_parts = []
            for cycle in face.cycles:
                ring = list(cycle.vertices)
                cmds = [f"M {self._pts(ring[:1])}"]
                cmds += [f"L {self._pts([v])}" for v in ring[1:]]
                cmds.append("Z")
                path_parts.append(" ".join(cmds))
            self._elements.append(
                f'<path d="{" ".join(path_parts)}" fill="{color}" '
                f'fill-opacity="{opacity}" fill-rule="evenodd" '
                f'stroke="{color}" stroke-width="1.5"/>'
            )

    def add_line(self, line: Line, color: str, width: float = 2.0) -> None:
        """Draw every segment of a line value."""
        for (p, q) in line.segments:
            (x1, y1), (x2, y2) = self._map(p), self._map(q)
            self._elements.append(
                f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" y2="{y2:.2f}" '
                f'stroke="{color}" stroke-width="{width}" stroke-linecap="round"/>'
            )

    def add_points(self, points: Union[Points, Sequence], color: str, r: float = 3.5) -> None:
        """Mark each point with a dot."""
        vecs = points.vecs if isinstance(points, Points) else points
        for v in vecs:
            x, y = self._map(tuple(v))
            self._elements.append(
                f'<circle cx="{x:.2f}" cy="{y:.2f}" r="{r}" fill="{color}"/>'
            )

    def add_label(self, text: str, at: Tuple[float, float], size: int = 12) -> None:
        """Place a text label at a world coordinate."""
        x, y = self._map(at)
        self._elements.append(
            f'<text x="{x:.2f}" y="{y:.2f}" font-size="{size}" '
            f'font-family="sans-serif" fill="#333">{text}</text>'
        )

    def to_svg(self) -> str:
        """The complete SVG document."""
        body = "\n  ".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n'
            f'  <rect width="100%" height="100%" fill="white"/>\n'
            f"  {body}\n</svg>\n"
        )

    def save(self, path: str) -> None:
        """Write the document to a file."""
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.to_svg())


def _world_of(drawables: Sequence[Drawable]) -> Rect:
    box: Optional[Rect] = None
    for d in drawables:
        if isinstance(d, Point) and d.defined:
            b = Rect(d.x, d.y, d.x, d.y)
        elif isinstance(d, (Points, Line, Region)) and d:
            b = d.bbox()
        else:
            continue
        box = b if box is None else box.union(b)
    if box is None:
        box = Rect(0, 0, 1, 1)
    pad_x = max(box.width, 1.0) * 0.05
    pad_y = max(box.height, 1.0) * 0.05
    return Rect(box.xmin - pad_x, box.ymin - pad_y, box.xmax + pad_x, box.ymax + pad_y)


def render_values(drawables: Sequence[Drawable], width: int = 480) -> str:
    """Render a collection of static values into one SVG document."""
    canvas = SvgCanvas(_world_of(drawables), width=width, height=width)
    for i, d in enumerate(drawables):
        color = _PALETTE[i % len(_PALETTE)]
        if isinstance(d, Region):
            canvas.add_region(d, color)
        elif isinstance(d, Line):
            canvas.add_line(d, color)
        elif isinstance(d, Points):
            canvas.add_points(d, color)
        elif isinstance(d, Point) and d.defined:
            canvas.add_points([d.vec], color)
    return canvas.to_svg()


def render_film_strip(
    moving: Union[MovingRegion, MovingPoint],
    frames: int = 5,
    width: int = 900,
    trajectory: bool = True,
) -> str:
    """Render a moving value as a row of time snapshots.

    For moving points the full trajectory is drawn behind the snapshot
    markers when ``trajectory`` is set.
    """
    t0 = moving.start_time()
    t1 = moving.end_time()
    times = [t0 + (t1 - t0) * k / max(frames - 1, 1) for k in range(frames)]

    snapshots = []
    for t in times:
        v = moving.value_at(t)
        if v is not None:
            snapshots.append((t, v))

    drawables: List[Drawable] = [v for _t, v in snapshots]
    if isinstance(moving, MovingPoint) and trajectory:
        drawables.append(moving.trajectory())
    world = _world_of(drawables)
    canvas = SvgCanvas(world, width=width, height=max(width // 2, 280))
    if isinstance(moving, MovingPoint) and trajectory:
        canvas.add_line(moving.trajectory(), "#cccccc", width=1.5)
    for i, (t, v) in enumerate(snapshots):
        color = _PALETTE[i % len(_PALETTE)]
        if isinstance(v, Region):
            canvas.add_region(v, color, opacity=0.35)
            if v.faces:
                canvas.add_label(f"t={t:g}", v.bbox().center)
        elif isinstance(v, Point) and v.defined:
            canvas.add_points([v.vec], color)
            canvas.add_label(f"t={t:g}", (v.x, v.y))
    return canvas.to_svg()
