"""Import/export of attribute values in a human-readable text format."""

from __future__ import annotations

from repro.io.text import to_text, from_text

__all__ = ["to_text", "from_text"]
