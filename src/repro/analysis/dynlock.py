"""Dynamic lock-order witness: catch inversions before they deadlock.

The static rules (MOD007) prove every access holds *its* lock; they say
nothing about the order locks nest in.  Two threads acquiring the same
two locks in opposite orders deadlock only under an unlucky
interleaving — the kind a test suite almost never hits but production
eventually does.  This module makes the order itself the observable:

* Production lock-creation sites call :func:`rlock(name)`.  Normally
  that returns a plain ``threading.RLock`` — zero overhead, nothing
  imported beyond this module.
* Under ``REPRO_DYNLOCK=1`` (or after :func:`enable`) it returns a
  :class:`TrackedRLock` instead, which records a *global* edge
  ``held → acquired`` for every nested acquisition and checks, before
  acquiring, whether the new edge closes a cycle in the recorded
  order graph.  A cycle means some interleaving of the witnessed call
  paths deadlocks; :class:`LockOrderError` is raised *without taking
  the lock*, so the failure is loud and the suite keeps running.

Edges are keyed by lock *name*, not instance, so every
``FleetExecutor`` contributes to one ``server.executor`` node — the
discipline is per-role, which is what a reviewer reasons about.
``scripts/check.sh`` runs the whole test suite with the witness armed;
zero cycles over the suite is the acceptance bar.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from repro import obs

__all__ = [
    "LockOrderError",
    "TrackedRLock",
    "active",
    "disable",
    "edges",
    "enable",
    "reset",
    "rlock",
]


class LockOrderError(AssertionError):
    """Two tracked locks were witnessed nesting in inconsistent orders."""


#: Guards the edge graph.  A plain leaf lock: it is held only for the
#: duration of a dict probe/insert and never while any tracked lock is
#: being acquired, so it can never participate in a cycle itself.
_GRAPH_LOCK = threading.Lock()

#: ``(held, acquired) → witnessing thread name`` — the order graph.
_EDGES: Dict[Tuple[str, str], str] = {}

#: Per-thread stack of tracked lock names currently held.
_HELD = threading.local()

#: Tri-state override: ``None`` defers to the environment.
_FORCED: Optional[bool] = None


def active() -> bool:
    """Whether new :func:`rlock` locks are tracked."""
    if _FORCED is not None:
        return _FORCED
    return os.environ.get("REPRO_DYNLOCK", "") not in ("", "0")


def enable() -> None:
    """Force tracking on (tests); :func:`disable` reverts to the env."""
    global _FORCED
    _FORCED = True


def disable() -> None:
    """Drop the :func:`enable` override; the env decides again."""
    global _FORCED
    _FORCED = None


def reset() -> None:
    """Forget all recorded edges and this thread's held stack."""
    with _GRAPH_LOCK:
        _EDGES.clear()
    _HELD.__dict__.pop("stack", None)


def edges() -> FrozenSet[Tuple[str, str]]:
    """The recorded acquisition-order edges, ``(held, acquired)``."""
    with _GRAPH_LOCK:
        return frozenset(_EDGES)


def rlock(name: str) -> Union["TrackedRLock", "threading.RLock"]:
    """A re-entrant lock for GUARDED_BY state.

    Tracked (order-witnessed) when the witness is :func:`active` at
    creation time, a plain ``threading.RLock`` otherwise.  Call it at
    every production lock-creation site so ``REPRO_DYNLOCK=1`` arms the
    whole process at once.
    """
    if active():
        return TrackedRLock(name)
    return threading.RLock()


def _stack() -> List[str]:
    st = getattr(_HELD, "stack", None)
    if st is None:
        st = []
        _HELD.stack = st
    return st


def _path(src: str, dst: str) -> Optional[List[str]]:
    """A path ``src → … → dst`` in the edge graph, or None.

    Caller holds ``_GRAPH_LOCK``.  Iterative DFS: the graph has one
    node per lock *role*, so it stays tiny.
    """
    adjacency: Dict[str, List[str]] = {}
    for a, b in _EDGES:
        adjacency.setdefault(a, []).append(b)
    stack: List[Tuple[str, List[str]]] = [(src, [src])]
    seen = set()
    while stack:
        node, path = stack.pop()
        if node == dst:
            return path
        if node in seen:
            continue
        seen.add(node)
        for nxt in adjacency.get(node, ()):
            stack.append((nxt, path + [nxt]))
    return None


class TrackedRLock:
    """A named re-entrant lock that witnesses acquisition order.

    Drop-in for the ``acquire``/``release``/context-manager surface of
    ``threading.RLock``.  Re-acquiring a lock already on this thread's
    held stack records no edge (re-entrancy is not nesting).  The cycle
    check runs *before* the underlying acquire, so a detected inversion
    raises with the lock untaken — no poisoned lock left behind.
    """

    __slots__ = ("name", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.RLock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        held = _stack()
        if self.name not in held:
            self._witness(held)
        got = self._lock.acquire(blocking, timeout)
        if got:
            held.append(self.name)
            if obs.enabled:
                obs.add("dynlock.acquisitions")
        return got

    def release(self) -> None:
        self._lock.release()
        held = _stack()
        for i in range(len(held) - 1, -1, -1):
            if held[i] == self.name:
                del held[i]
                break

    def __enter__(self) -> "TrackedRLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def _witness(self, held: List[str]) -> None:
        fresh = [
            (h, self.name)
            for h in dict.fromkeys(held)
            if h != self.name and (h, self.name) not in _EDGES
        ]
        if not fresh:
            return
        with _GRAPH_LOCK:
            for a, b in fresh:
                if (a, b) in _EDGES:
                    continue
                cycle = _path(b, a)
                if cycle is not None:
                    order = " -> ".join(cycle + [b])
                    raise LockOrderError(
                        f"lock-order inversion: acquiring {b!r} while "
                        f"holding {a!r}, but the recorded order already "
                        f"requires {order}; some interleaving of these "
                        "call paths deadlocks"
                    )
                _EDGES[(a, b)] = threading.current_thread().name
                if obs.enabled:
                    obs.add("dynlock.edges")
