"""Engine of ``repro-lint``: file discovery, suppressions, reporting.

The linter walks Python sources with the stdlib :mod:`ast` module only —
no third-party dependency — and applies the paper-specific rules of
:mod:`repro.analysis.rules`.  Everything here is rule-agnostic:

* :class:`Violation` — one finding, with a code and a fix-it message;
* :class:`SourceModule` — a parsed file plus its suppression comments;
* :class:`Project` — the full file set a run sees (rules that check
  cross-file invariants, e.g. scalar↔vector parity, read it);
* :func:`lint_paths` — collect files, run rules, filter suppressions.

Suppression syntax (the escape hatch)::

    risky_compare = a == b  # modlint: disable=MOD001 canonical ordering

The comment suppresses the listed codes on its own line (or, when the
comment stands alone on a line, on the following line).  The text after
the code list is the *justification* and is mandatory: a suppression
without one is itself reported as ``MOD000`` — the policy is that every
escape from a representation invariant names its reason in place.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Matches ``# modlint: disable=MOD001,MOD002 <justification...>``.
_SUPPRESS_RE = re.compile(
    r"#\s*modlint:\s*disable=([A-Za-z0-9_,]+)(?:\s+(.*\S))?\s*$"
)

#: Code used for suppression-policy violations (not a real rule).
POLICY_CODE = "MOD000"


@dataclass(frozen=True)
class Violation:
    """One linter finding."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)


@dataclass(frozen=True)
class Suppression:
    """A parsed ``modlint: disable`` comment."""

    line: int
    codes: frozenset
    justification: Optional[str]
    standalone: bool

    @property
    def justified(self) -> bool:
        return bool(self.justification)

    def applies_to(self, line: int, code: str) -> bool:
        if code == POLICY_CODE:
            return False  # the policy rule cannot be silenced
        if "all" not in self.codes and code not in self.codes:
            return False
        if line == self.line:
            return True
        return self.standalone and line == self.line + 1


@dataclass
class SourceModule:
    """One parsed Python file with its suppression table."""

    path: Path
    relpath: str
    text: str
    tree: ast.Module
    suppressions: List[Suppression] = field(default_factory=list)
    #: Parent links for every AST node (filled lazily, used by rules
    #: that need the enclosing statement/function of an expression).
    _parents: Optional[Dict[ast.AST, ast.AST]] = None

    @classmethod
    def parse(cls, path: Path, root: Path) -> "SourceModule":
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        mod = cls(path=path, relpath=rel, text=text, tree=tree)
        mod.suppressions = list(_parse_suppressions(text))
        return mod

    def suppressed(self, line: int, code: str) -> bool:
        return any(s.applies_to(line, code) for s in self.suppressions)

    def parents(self) -> Dict[ast.AST, ast.AST]:
        if self._parents is None:
            table: Dict[ast.AST, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    table[child] = parent
            self._parents = table
        return self._parents

    def enclosing(self, node: ast.AST, *kinds) -> Optional[ast.AST]:
        """Nearest ancestor of ``node`` that is an instance of ``kinds``."""
        table = self.parents()
        cur = table.get(node)
        while cur is not None:
            if isinstance(cur, kinds):
                return cur
            cur = table.get(cur)
        return None

    def violation(self, node: ast.AST, code: str, message: str) -> Violation:
        return Violation(
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
        )


def _parse_suppressions(text: str) -> Iterator[Suppression]:
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if m is None:
            continue
        codes = frozenset(
            c.strip() for c in m.group(1).split(",") if c.strip()
        )
        yield Suppression(
            line=lineno,
            codes=codes,
            justification=m.group(2),
            standalone=line.lstrip().startswith("#"),
        )


@dataclass
class Project:
    """Everything one lint run sees: the parsed modules plus the roots.

    ``root`` is the repository root (parent of ``src``) when it can be
    inferred, so cross-file rules can locate companion files such as
    ``tests/test_vector_properties.py`` even when only ``src`` was
    passed on the command line.
    """

    root: Path
    modules: List[SourceModule]

    def module(self, relpath_suffix: str) -> Optional[SourceModule]:
        """The module whose relative path ends with ``relpath_suffix``."""
        for mod in self.modules:
            if mod.relpath.endswith(relpath_suffix):
                return mod
        return None

    def companion(self, relative: str) -> Optional[Path]:
        """A repo file outside the linted set (e.g. a test module)."""
        candidate = self.root / relative
        return candidate if candidate.is_file() else None


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """All ``.py`` files under ``paths`` (files are taken verbatim)."""
    out: List[Path] = []
    for p in paths:
        if p.is_dir():
            out.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            out.append(p)
    # De-duplicate while preserving order.
    seen = set()
    unique = []
    for p in out:
        rp = p.resolve()
        if rp not in seen:
            seen.add(rp)
            unique.append(p)
    return unique


def _infer_root(paths: Sequence[Path]) -> Path:
    """The repository root: the parent of a ``src`` dir when present."""
    for p in paths:
        cur = p.resolve()
        if cur.is_file():
            cur = cur.parent
        while cur != cur.parent:
            if (cur / "src" / "repro").is_dir():
                return cur
            cur = cur.parent
    return Path.cwd()


def _policy_violations(mod: SourceModule) -> Iterator[Violation]:
    """MOD000: suppressions must carry a justification and known codes."""
    from repro.analysis.rules import KNOWN_CODES

    for s in mod.suppressions:
        if not s.justified:
            yield Violation(
                path=mod.relpath,
                line=s.line,
                col=1,
                code=POLICY_CODE,
                message=(
                    "suppression lacks a justification; append the "
                    "reason after the code list: "
                    "'modlint: disable=MODNNN <why this invariant does "
                    "not apply here>'"
                ),
            )
        unknown = s.codes - KNOWN_CODES - {"all"}
        if unknown:
            yield Violation(
                path=mod.relpath,
                line=s.line,
                col=1,
                code=POLICY_CODE,
                message=(
                    f"suppression names unknown rule(s) "
                    f"{sorted(unknown)}; known codes: "
                    f"{sorted(KNOWN_CODES)}"
                ),
            )


def lint_paths(
    paths: Sequence[Path], select: Optional[Iterable[str]] = None
) -> List[Violation]:
    """Run every rule over ``paths`` and return unsuppressed findings.

    ``select`` restricts the run to the given rule codes (the policy
    rule MOD000 always runs: an unjustified suppression is a finding
    regardless of which rules were selected).
    """
    from repro.analysis.rules import RULES

    root = _infer_root(paths)
    modules: List[SourceModule] = []
    violations: List[Violation] = []
    for path in collect_files(paths):
        try:
            modules.append(SourceModule.parse(path, root))
        except SyntaxError as exc:
            violations.append(
                Violation(
                    path=str(path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    code=POLICY_CODE,
                    message=f"file does not parse: {exc.msg}",
                )
            )
    project = Project(root=root, modules=modules)

    wanted = set(select) if select is not None else None
    for rule in RULES:
        if wanted is not None and rule.code not in wanted:
            continue
        for mod in modules:
            violations.extend(rule.check(mod, project))
        violations.extend(rule.check_project(project))
    for mod in modules:
        violations.extend(_policy_violations(mod))

    kept = []
    for v in violations:
        mod = next((m for m in modules if m.relpath == v.path), None)
        if mod is not None and mod.suppressed(v.line, v.code):
            continue
        kept.append(v)
    return sorted(set(kept), key=lambda v: v.sort_key())


def render_report(violations: Sequence[Violation]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [v.format() for v in violations]
    if violations:
        by_code: Dict[str, int] = {}
        for v in violations:
            by_code[v.code] = by_code.get(v.code, 0) + 1
        summary = ", ".join(f"{c}: {n}" for c, n in sorted(by_code.items()))
        lines.append(f"repro-lint: {len(violations)} finding(s) ({summary})")
    else:
        lines.append("repro-lint: clean")
    return "\n".join(lines)
