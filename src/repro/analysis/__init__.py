"""``repro-lint``: AST-based invariant checker for the sliced representation.

Run as ``python -m repro.analysis [paths...]`` (default: ``src``) or via
the ``repro-lint`` console script.  See :mod:`repro.analysis.rules` for
the rule catalogue (MOD001–MOD010) and :mod:`repro.analysis.core` for
the suppression policy.  :mod:`repro.analysis.dynlock` is the runtime
half of the concurrency rules: a lock-order witness armed by
``REPRO_DYNLOCK=1`` that fails the test suite on lock-order inversions.
"""

from __future__ import annotations

from repro.analysis.core import (
    Violation,
    collect_files,
    lint_paths,
    render_report,
)
from repro.analysis.rules import KNOWN_CODES, RULES

__all__ = [
    "KNOWN_CODES",
    "RULES",
    "Violation",
    "collect_files",
    "lint_paths",
    "main",
    "render_report",
]


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code (1 on findings)."""
    import argparse
    from pathlib import Path

    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="paper-specific invariant checker (stdlib ast only)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            doc = (rule.__doc__ or "").strip().splitlines()[0]
            print(f"{rule.code}  {rule.name:18s} {doc}")
        return 0

    select = (
        [c.strip() for c in args.select.split(",") if c.strip()]
        if args.select
        else None
    )
    violations = lint_paths([Path(p) for p in args.paths], select=select)
    print(render_report(violations))
    return 1 if violations else 0
