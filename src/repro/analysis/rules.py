"""The paper-specific lint rules (MOD001–MOD010).

Each rule enforces one *representation invariant* of the discrete model
(see DESIGN.md, "Static analysis"): these are properties the sliced
representation must hold structurally for the algebra's closure
arguments to go through, not style preferences.  MOD007–MOD010 extend
the family to the concurrency and durability invariants the query
service leans on: the snapshot-isolation story only works if guarded
state really is guarded, the event loop really never blocks, and
durable files really are replaced atomically.

=======  ==========================================================
code     invariant
=======  ==========================================================
MOD001   eps discipline: float comparisons on coordinates, instants
         and radicands go through ``repro.config``'s eps helpers
MOD002   unit/interval hygiene: no ``validate=False`` construction
         or private unit-array mutation outside the owning modules
MOD003   scalar↔vector parity: every batched kernel names its scalar
         twin in ``repro.vector.parity`` and has an equivalence
         property test
MOD004   obs-counter discipline: counter/timer/gauge names are
         literal and declared in the ``repro.obs`` registry
MOD005   backend-dispatch completeness: every ``--backend`` branch
         has a scalar arm and routes failures through the counted
         fallback
MOD006   failpoint discipline: fault-injection site names are
         literal and declared in the ``repro.faults`` registry, and
         every registered failpoint is placed somewhere
MOD007   lock discipline: attributes in the ``GUARDED_BY`` registry
         are only touched under their declared lock, by a registered
         owner method, or (for loop-confined state) from a coroutine
MOD008   asyncio hygiene: coroutine bodies in ``repro/server/`` never
         call blocking primitives (sleeps, sync file I/O, fsync
         barriers, lock-taking executor methods) directly
MOD009   atomic persistence: writable ``open()`` under the storage
         and column-store paths goes tmp+rename; in-place writes are
         reserved for the registered journal owners
MOD010   shm/fork lifecycle: every ``SharedMemory(create=True)``
         pairs with an unlink/finalize, and ``repro.parallel`` stays
         lock/thread-free below the fork boundary
=======  ==========================================================
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Project, SourceModule, Violation

KNOWN_CODES = frozenset(
    {
        "MOD001", "MOD002", "MOD003", "MOD004", "MOD005", "MOD006",
        "MOD007", "MOD008", "MOD009", "MOD010",
    }
)


class Rule:
    """Base class: per-module and whole-project check hooks."""

    code: str = ""
    name: str = ""

    def check(
        self, mod: SourceModule, project: Project
    ) -> Iterator[Violation]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Violation]:
        return iter(())


def _call_name(node: ast.Call) -> str:
    """The trailing identifier of a call's function expression."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _dotted(node: ast.AST) -> str:
    """``obs.counters.add`` → ``"obs.counters.add"`` (best effort)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _str_const(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


# ---------------------------------------------------------------------------
# MOD001 — eps discipline
# ---------------------------------------------------------------------------

#: Identifiers that mark a comparison as already eps-mediated.
_MEDIATORS = {
    "eps", "EPS", "epsilon", "EPSILON", "tol", "tolerance", "param_tol",
    "atol", "rtol", "delta",
}

#: Local names that (in the geometric kernels) denote coordinates,
#: instants, interpolation parameters, or radicands.
_COORD_NAMES = {
    "x", "y", "t", "tt", "a", "b",
    "x0", "x1", "y0", "y1", "t0", "t1", "ta", "tb",
    "px", "py", "qx", "qy", "vx", "vy", "ax", "ay", "bx", "by",
    "cx", "cy", "dx", "dy", "ux", "uy", "c0", "c1",
    "lam", "lam_v", "lam_slope", "lam_icept", "mid_lam",
    "rad", "radicand", "param", "prev_param", "dist", "d2",
}

#: Attribute names that denote coordinates or interval end points.
_COORD_ATTRS = {
    "x", "y", "s", "e", "x0", "x1", "y0", "y1",
    "xmin", "xmax", "ymin", "ymax", "tmin", "tmax",
}

#: Calls whose result is a continuous quantity.
_CONTINUOUS_FUNCS = {
    "sqrt", "hypot", "atan2", "fabs", "dist", "dist_sq", "norm",
    "cross", "dot", "eval_quad", "lam", "project_param", "at",
}

_CMP_OPS = (ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE)


def _is_continuous(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Name):
        return node.id in _COORD_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _COORD_ATTRS
    if isinstance(node, ast.BinOp):
        return _is_continuous(node.left) or _is_continuous(node.right)
    if isinstance(node, ast.UnaryOp):
        return _is_continuous(node.operand)
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if name == "abs":
            return any(_is_continuous(a) for a in node.args)
        return name in _CONTINUOUS_FUNCS
    return False


def _is_mediator(name: str) -> bool:
    return (
        name in _MEDIATORS
        or name.startswith(("tol", "eps"))
        or name.endswith("_tol")
    )


def _mentions_mediator(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and _is_mediator(sub.id):
            return True
        if isinstance(sub, ast.Attribute) and _is_mediator(sub.attr):
            return True
    return False


class EpsDiscipline(Rule):
    """MOD001: raw float comparisons on continuous quantities.

    Scope: the geometric kernels (``repro.ops``, ``repro.geometry``),
    where every coordinate/instant comparison must either go through the
    sanctioned helpers of :mod:`repro.config` (``feq``/``fle``/…) or
    mention an explicit tolerance.  ``repro.geometry.primitives``
    *defines* the sanctioned vocabulary and is exempt.
    """

    code = "MOD001"
    name = "eps-discipline"

    _SCOPE = ("repro/ops/", "repro/geometry/")
    _EXEMPT = ("repro/geometry/primitives.py",)

    def check(
        self, mod: SourceModule, project: Project
    ) -> Iterator[Violation]:
        if not any(p in mod.relpath for p in self._SCOPE):
            return
        if any(mod.relpath.endswith(e) for e in self._EXEMPT):
            return
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not all(isinstance(op, _CMP_OPS) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(isinstance(o, (ast.Tuple, ast.List)) for o in operands):
                continue
            if not any(_is_continuous(o) for o in operands):
                continue
            if _mentions_mediator(node):
                continue
            snippet = ast.unparse(node)
            if len(snippet) > 60:
                snippet = snippet[:57] + "..."
            yield mod.violation(
                node,
                self.code,
                f"raw float comparison `{snippet}` on a continuous "
                "quantity; route it through the eps helpers of "
                "repro.config (feq/fle/flt/fge/fgt/fzero) or name an "
                "explicit tolerance",
            )


# ---------------------------------------------------------------------------
# MOD002 — unit/interval hygiene
# ---------------------------------------------------------------------------


class UnitHygiene(Rule):
    """MOD002: validation bypass and private unit-state mutation.

    ``validate=False`` construction of sortedness-checked values and
    direct access to ``Mapping``'s private unit arrays are only legal in
    the modules that own the invariant (temporal/spatial constructors
    and the storage deserializers, which re-validate by construction).
    """

    code = "MOD002"
    name = "unit-hygiene"

    _VALIDATED_TYPES = {
        "Line", "Region", "Cycle", "Face", "Mapping", "MovingPoint",
        "MovingReal", "MovingBool", "MovingRegion", "MovingString",
        "ULine", "UPoints", "URegion",
    }
    _OWNERS = ("repro/temporal/", "repro/spatial/", "repro/storage/")
    _PRIVATE_ATTRS = {"_units", "_starts"}
    _PRIVATE_OWNER = "repro/temporal/mapping.py"

    def check(
        self, mod: SourceModule, project: Project
    ) -> Iterator[Violation]:
        if "repro/analysis/" in mod.relpath:
            return
        owner = any(p in mod.relpath for p in self._OWNERS)
        private_owner = mod.relpath.endswith(self._PRIVATE_OWNER)
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Call) and not owner:
                ctor = _call_name(node)
                is_type_self = (
                    isinstance(node.func, ast.Call)
                    and _call_name(node.func) == "type"
                )
                if ctor in self._VALIDATED_TYPES or is_type_self:
                    for kw in node.keywords:
                        if (
                            kw.arg == "validate"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is False
                        ):
                            # Anchor at the call so a suppression on the
                            # constructor line covers multi-line calls.
                            yield mod.violation(
                                node,
                                self.code,
                                f"`{ctor or 'type(...)'}(..., "
                                "validate=False)` bypasses the sorted/"
                                "disjoint unit invariant outside its "
                                "owning module; construct validated or "
                                "move the construction into repro."
                                "temporal/repro.spatial",
                            )
            if isinstance(node, ast.Attribute) and not private_owner:
                if node.attr in self._PRIVATE_ATTRS:
                    yield mod.violation(
                        node,
                        self.code,
                        f"direct access to Mapping private state "
                        f"`.{node.attr}` outside repro.temporal.mapping; "
                        "use the public `.units` view",
                    )
            if isinstance(node, ast.Call) and not private_owner:
                if _dotted(node.func) == "object.__setattr__" and any(
                    _str_const(a) in self._PRIVATE_ATTRS for a in node.args
                ):
                    yield mod.violation(
                        node,
                        self.code,
                        "object.__setattr__ on Mapping private unit state "
                        "outside repro.temporal.mapping bypasses "
                        "_check_invariants",
                    )


# ---------------------------------------------------------------------------
# MOD003 — scalar↔vector parity
# ---------------------------------------------------------------------------


class VectorParity(Rule):
    """MOD003: every batched kernel has a registered scalar twin + test.

    The parity registry is ``KERNEL_PARITY`` in
    :mod:`repro.vector.parity`; each public function of
    :mod:`repro.vector.kernels` must appear in it, naming the scalar
    algorithm it transcribes and an equivalence property test defined in
    ``tests/test_vector_properties.py``.
    """

    code = "MOD003"
    name = "vector-parity"

    _KERNELS = "repro/vector/kernels.py"
    _REGISTRY = "repro/vector/parity.py"
    _TESTS = "tests/test_vector_properties.py"

    def _registry_entries(
        self, mod: SourceModule
    ) -> Tuple[Dict[str, Tuple[str, str]], List[Violation]]:
        entries: Dict[str, Tuple[str, str]] = {}
        problems: List[Violation] = []
        for node in ast.walk(mod.tree):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "KERNEL_PARITY"
                for t in targets
            ):
                continue
            if not isinstance(value, ast.Dict):
                problems.append(mod.violation(
                    value, self.code,
                    "KERNEL_PARITY must be a literal dict so the parity "
                    "checker can read it statically",
                ))
                continue
            for key, val in zip(value.keys, value.values):
                kname = _str_const(key) if key is not None else None
                if kname is None:
                    problems.append(mod.violation(
                        key or value, self.code,
                        "KERNEL_PARITY keys must be literal kernel names",
                    ))
                    continue
                scalar = test = None
                if isinstance(val, ast.Call):
                    for kw in val.keywords:
                        if kw.arg == "scalar":
                            scalar = _str_const(kw.value)
                        elif kw.arg == "test":
                            test = _str_const(kw.value)
                if not scalar or not test:
                    problems.append(mod.violation(
                        val, self.code,
                        f"parity entry for `{kname}` must name literal "
                        "`scalar=` and `test=` strings",
                    ))
                    continue
                entries[kname] = (scalar, test)
        return entries, problems

    def check_project(self, project: Project) -> Iterator[Violation]:
        kernels_mod = project.module(self._KERNELS)
        if kernels_mod is None:
            return
        kernels = [
            stmt for stmt in kernels_mod.tree.body
            if isinstance(stmt, ast.FunctionDef)
            and not stmt.name.startswith("_")
        ]
        registry_mod = project.module(self._REGISTRY)
        if registry_mod is None:
            yield kernels_mod.violation(
                kernels_mod.tree, self.code,
                "repro.vector.parity (the KERNEL_PARITY registry) is "
                "missing; every batched kernel must name its scalar twin",
            )
            return
        entries, problems = self._registry_entries(registry_mod)
        for p in problems:
            yield p

        test_names: Optional[Set[str]] = None
        test_path = project.companion(self._TESTS)
        if test_path is not None:
            try:
                test_tree = ast.parse(
                    test_path.read_text(encoding="utf-8")
                )
            except SyntaxError:
                test_tree = None
            if test_tree is not None:
                test_names = {
                    n.name
                    for n in ast.walk(test_tree)
                    if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                }

        kernel_names = {k.name for k in kernels}
        for k in kernels:
            if k.name not in entries:
                yield kernels_mod.violation(
                    k, self.code,
                    f"batched kernel `{k.name}` has no entry in "
                    "repro.vector.parity.KERNEL_PARITY; register its "
                    "scalar twin and equivalence test",
                )
                continue
            _scalar, test = entries[k.name]
            if test_names is not None and test not in test_names:
                yield kernels_mod.violation(
                    k, self.code,
                    f"parity test `{test}` for kernel `{k.name}` is not "
                    f"defined in {self._TESTS}",
                )
        for name in sorted(set(entries) - kernel_names):
            yield registry_mod.violation(
                registry_mod.tree, self.code,
                f"KERNEL_PARITY entry `{name}` does not match any public "
                "kernel in repro.vector.kernels",
            )


# ---------------------------------------------------------------------------
# MOD004 — obs-counter discipline
# ---------------------------------------------------------------------------


class ObsDiscipline(Rule):
    """MOD004: every counter/timer/gauge name is literal and registered.

    The registries are ``COUNTER_NAMES`` / ``TIMER_NAMES`` /
    ``GAUGE_NAMES`` in :mod:`repro.obs`.  A few wrapper functions are
    allowed to build names dynamically (their call sites are resolved
    instead): ``_record_rows`` in the vector kernels, ``_fallback`` in
    the fleet dispatcher, ``_parallel_fallback`` in the parallel
    dispatcher, ``_mmap_fallback`` in the shared-column transport,
    ``_shard_fallback`` in the scatter-gather executor, and
    ``_merge_counters`` in the pool layer (which folds worker-captured
    snapshots whose names were validated when the workers wrote them).
    """

    code = "MOD004"
    name = "obs-discipline"

    _OBS = "repro/obs.py"
    _WRAPPER_BODIES = {
        ("repro/vector/kernels.py", "_record_rows"),
        ("repro/vector/fleet.py", "_fallback"),
        ("repro/parallel/exec.py", "_parallel_fallback"),
        ("repro/parallel/shmcol.py", "_mmap_fallback"),
        ("repro/parallel/pool.py", "_merge_counters"),
        ("repro/shard/exec.py", "_shard_fallback"),
    }

    def _registry(
        self, mod: SourceModule
    ) -> Optional[Dict[str, Set[str]]]:
        out: Dict[str, Set[str]] = {}
        for node in ast.walk(mod.tree):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            for t in targets:
                if not isinstance(t, ast.Name):
                    continue
                if t.id not in ("COUNTER_NAMES", "TIMER_NAMES", "GAUGE_NAMES"):
                    continue
                names: Set[str] = set()
                for sub in ast.walk(value):
                    s = _str_const(sub)
                    if s is not None:
                        names.add(s)
                out[t.id] = names
        if len(out) < 3:
            return None
        return out

    def _scope_prefixes(self, tree: ast.AST) -> Dict[ast.With, Dict[str, str]]:
        """Per-With mapping of as-variable → scope name prefix."""
        table: Dict[ast.With, Dict[str, str]] = {}
        for node in ast.walk(tree):
            if not isinstance(node, ast.With):
                continue
            for item in node.items:
                ctx = item.context_expr
                if not (isinstance(ctx, ast.Call) and _call_name(ctx) == "scope"):
                    continue
                if not (
                    isinstance(ctx.func, ast.Attribute)
                    or isinstance(ctx.func, ast.Name)
                ):
                    continue
                if isinstance(item.optional_vars, ast.Name):
                    name = _str_const(ctx.args[0]) if ctx.args else None
                    if name is not None:
                        table.setdefault(node, {})[
                            item.optional_vars.id
                        ] = name
        return table

    def check_project(self, project: Project) -> Iterator[Violation]:
        obs_mod = project.module(self._OBS)
        if obs_mod is None:
            return
        registry = self._registry(obs_mod)
        if registry is None:
            yield obs_mod.violation(
                obs_mod.tree, self.code,
                "repro.obs must declare COUNTER_NAMES, TIMER_NAMES and "
                "GAUGE_NAMES literal registries",
            )
            return
        counters, timers, gauges = (
            registry["COUNTER_NAMES"],
            registry["TIMER_NAMES"],
            registry["GAUGE_NAMES"],
        )

        written: Dict[str, Set[str]] = {
            "counter": set(), "timer": set(), "gauge": set(),
        }

        def record(
            mod: SourceModule, node: ast.AST, kind: str, name: Optional[str]
        ) -> Optional[Violation]:
            registry_for = {
                "counter": counters, "timer": timers, "gauge": gauges,
            }[kind]
            if name is None:
                return mod.violation(
                    node, self.code,
                    f"obs {kind} name must be a literal string (or go "
                    "through a registered wrapper) so the registry check "
                    "can see it",
                )
            written[kind].add(name)
            if name not in registry_for:
                return mod.violation(
                    node, self.code,
                    f"obs {kind} `{name}` is not declared in the "
                    f"repro.obs {kind.upper()}_NAMES registry",
                )
            return None

        src_mods = [
            m for m in project.modules
            if "repro/" in m.relpath
            and not m.relpath.endswith(self._OBS)
            and (
                "repro/analysis/" not in m.relpath
                # dynlock is production-adjacent instrumentation: its
                # counters are registered, so its write sites must be
                # visible to the never-written half of this check.
                or m.relpath.endswith("repro/analysis/dynlock.py")
            )
        ]
        for mod in src_mods:
            wrapper_bodies = {
                fn for (suffix, fn) in self._WRAPPER_BODIES
                if mod.relpath.endswith(suffix)
            }
            scope_table = self._scope_prefixes(mod.tree)
            scope_vars: Dict[str, str] = {}
            for per_with in scope_table.values():
                scope_vars.update(per_with)

            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.Call):
                    continue
                fn = mod.enclosing(
                    node, ast.FunctionDef, ast.AsyncFunctionDef
                )
                in_wrapper = (
                    fn is not None and fn.name in wrapper_bodies
                )
                dotted = _dotted(node.func)
                arg0 = _str_const(node.args[0]) if node.args else None

                # Wrapper call sites expand to their derived names.
                if isinstance(node.func, ast.Name):
                    if node.func.id == "_record_rows":
                        if arg0 is None:
                            v = record(mod, node, "counter", None)
                            if v:
                                yield v
                        else:
                            for derived in (
                                ("counter", f"vector.{arg0}.calls"),
                                ("counter", f"vector.{arg0}.rows"),
                                ("gauge", "vector.rows_per_call"),
                            ):
                                v = record(mod, node, *derived)
                                if v:
                                    yield v
                        continue
                    if node.func.id == "_fallback":
                        if arg0 is None:
                            v = record(mod, node, "counter", None)
                            if v:
                                yield v
                        else:
                            for name in (
                                "vector.fallback_to_scalar",
                                f"vector.fallback_to_scalar.{arg0}",
                            ):
                                v = record(mod, node, "counter", name)
                                if v:
                                    yield v
                        continue
                    if node.func.id == "_parallel_fallback":
                        if arg0 is None:
                            v = record(mod, node, "counter", None)
                            if v:
                                yield v
                        else:
                            for name in (
                                "parallel.fallback",
                                f"parallel.fallback.{arg0}",
                            ):
                                v = record(mod, node, "counter", name)
                                if v:
                                    yield v
                        continue
                    if node.func.id == "_shard_fallback":
                        if arg0 is None:
                            v = record(mod, node, "counter", None)
                            if v:
                                yield v
                        else:
                            for name in (
                                "shard.fallback",
                                f"shard.fallback.{arg0}",
                            ):
                                v = record(mod, node, "counter", name)
                                if v:
                                    yield v
                        continue
                    if node.func.id == "_mmap_fallback":
                        if arg0 is None:
                            v = record(mod, node, "counter", None)
                            if v:
                                yield v
                        else:
                            for name in (
                                "colstore.mmap_fallback",
                                f"colstore.mmap_fallback.{arg0}",
                            ):
                                v = record(mod, node, "counter", name)
                                if v:
                                    yield v
                        continue

                if in_wrapper:
                    continue  # dynamic names allowed inside the wrappers

                if dotted in ("obs.add", "obs.counters.add"):
                    v = record(mod, node, "counter", arg0)
                    if v:
                        yield v
                elif dotted in ("obs.high_water", "obs.counters.high_water"):
                    v = record(mod, node, "gauge", arg0)
                    if v:
                        yield v
                elif dotted in ("obs.add_time", "obs.counters.add_time"):
                    v = record(mod, node, "timer", arg0)
                    if v:
                        yield v
                elif _call_name(node) == "scope" and isinstance(
                    node.func, ast.Attribute
                ) and _dotted(node.func) == "obs.scope":
                    v = record(mod, node, "timer", arg0)
                    if v:
                        yield v
                elif (
                    isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in scope_vars
                    and node.func.attr in ("add", "high_water")
                ):
                    prefix = scope_vars[node.func.value.id]
                    kind = (
                        "counter" if node.func.attr == "add" else "gauge"
                    )
                    full = f"{prefix}.{arg0}" if arg0 is not None else None
                    v = record(mod, node, kind, full)
                    if v:
                        yield v

        # Registered-but-never-written names: only meaningful on a
        # full-source run (the write sites span the whole package).
        full_run = (
            project.module("repro/temporal/mapping.py") is not None
            and project.module("repro/vector/kernels.py") is not None
        )
        if full_run:
            for kind, declared in (
                ("counter", counters), ("timer", timers), ("gauge", gauges),
            ):
                for name in sorted(declared - written[kind]):
                    yield obs_mod.violation(
                        obs_mod.tree, self.code,
                        f"registered obs {kind} `{name}` is never "
                        "written anywhere in repro; delete it from the "
                        "registry or wire it up",
                    )


# ---------------------------------------------------------------------------
# MOD005 — backend-dispatch completeness
# ---------------------------------------------------------------------------


class BackendDispatch(Rule):
    """MOD005: backend branches are resolved, two-armed, and fall back.

    * comparisons against the backend literals go through
      ``_resolve``/``get_backend`` — directly, or via a local variable
      assigned from a resolver in the same function (never a raw
      parameter — a raw compare silently treats ``None`` as scalar);
    * an ``if backend == "vector":`` (or ``"parallel"`` /
      ``"sharded"``) must leave a scalar arm (an ``else`` or
      fall-through code);
    * exception handlers inside a vector/parallel/sharded arm must
      count the event via ``_fallback`` (or ``_parallel_fallback`` /
      ``_mmap_fallback`` / ``_shard_fallback``);
    * column construction (``*.from_mappings``) inside a vector/parallel
      arm must be guarded by try/except — it raises ``InvalidValue`` on
      inputs only the scalar path can evaluate.

    The same discipline covers the column *transport* dispatch in
    :mod:`repro.parallel`: descriptor-scheme literals (``"mmap"`` /
    ``"shm"``) must be compared through ``_scheme_of``, and an
    ``if scheme == "mmap":`` arm must leave the shm copy path as its
    fall-through — the mmap transport is an optimisation, never the
    only arm.
    """

    code = "MOD005"
    name = "backend-dispatch"

    _RESOLVERS = {"_resolve", "_resolve_backend", "get_backend"}
    _LITERALS = {"scalar", "vector", "parallel", "sharded"}
    #: Backend literals whose if-arms are the batched (non-scalar) path
    #: and therefore must satisfy the arm checks.
    _BATCH_LITERALS = {"vector", "parallel", "sharded"}
    #: Descriptor-scheme dispatch (mmap-vs-shm transport): same shape,
    #: scoped to the parallel package where descriptors live.
    _SCHEME_RESOLVERS = {"_scheme_of"}
    _SCHEME_LITERALS = {"mmap", "shm"}
    _SCHEME_FAST = {"mmap"}
    _SCHEME_SCOPE = "repro/parallel/"

    def _families(
        self, mod: SourceModule
    ) -> List[Tuple[Set[str], Set[str], Set[str], str]]:
        """(literals, resolvers, fast-arm literals, diagnostic) tuples
        applicable to ``mod``."""
        fams: List[Tuple[Set[str], Set[str], Set[str], str]] = [
            (
                self._LITERALS, self._RESOLVERS, self._BATCH_LITERALS,
                "backend literal compared without going through "
                "_resolve()/get_backend(); a raw parameter "
                "compare misreads backend=None",
            )
        ]
        if self._SCHEME_SCOPE in mod.relpath:
            fams.append(
                (
                    self._SCHEME_LITERALS, self._SCHEME_RESOLVERS,
                    self._SCHEME_FAST,
                    "descriptor scheme literal compared without going "
                    "through _scheme_of(); a raw prefix compare drifts "
                    "from the descriptor format",
                )
            )
        return fams

    def _family_compare(
        self, node: ast.AST, literals: Set[str]
    ) -> Optional[ast.Compare]:
        """The Compare against one of ``literals`` inside ``node``."""
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Compare):
                continue
            operands = [sub.left, *sub.comparators]
            if any(_str_const(o) in literals for o in operands):
                return sub
        return None

    def _resolver_names(self, scope: ast.AST, resolvers: Set[str]) -> Set[str]:
        """Names assigned from a resolver call anywhere in ``scope``."""
        names: Set[str] = set()
        for node in ast.walk(scope):
            if not (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and _call_name(node.value) in resolvers
            ):
                continue
            for t in node.targets:
                if isinstance(t, ast.Name):
                    names.add(t.id)
        return names

    def check(
        self, mod: SourceModule, project: Project
    ) -> Iterator[Violation]:
        if "repro/analysis/" in mod.relpath:
            return
        families = self._families(mod)
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Compare):
                for literals, resolvers, _fast, diagnostic in families:
                    operands = [node.left, *node.comparators]
                    literal = any(
                        _str_const(o) in literals for o in operands
                    )
                    if not literal:
                        continue
                    if not all(
                        isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
                    ):
                        continue
                    scope = mod.enclosing(
                        node, ast.FunctionDef, ast.AsyncFunctionDef
                    ) or mod.tree
                    if (
                        isinstance(scope, ast.FunctionDef)
                        and scope.name in resolvers
                    ):
                        continue  # the resolver's own body
                    resolved = any(
                        isinstance(o, ast.Call)
                        and _call_name(o) in resolvers
                        for o in operands
                    )
                    if not resolved:
                        # A Name operand is fine when it was assigned from
                        # a resolver call in the enclosing function.
                        local = self._resolver_names(scope, resolvers)
                        resolved = any(
                            isinstance(o, ast.Name) and o.id in local
                            for o in operands
                        )
                    if not resolved:
                        yield mod.violation(node, self.code, diagnostic)
            if isinstance(node, ast.If):
                for literals, _resolvers, fast, _diagnostic in families:
                    cmp_node = self._family_compare(node.test, literals)
                    if cmp_node is None:
                        continue
                    operands = [cmp_node.left, *cmp_node.comparators]
                    if not ({_str_const(o) for o in operands} & fast):
                        continue
                    yield from self._check_vector_arm(mod, node)

    def _check_vector_arm(
        self, mod: SourceModule, if_node: ast.If
    ) -> Iterator[Violation]:
        # A scalar arm must exist: an else branch or fall-through code.
        if not if_node.orelse:
            parent = mod.parents().get(if_node)
            trailing = False
            for attr in ("body", "orelse", "finalbody"):
                stmts = getattr(parent, attr, None)
                if isinstance(stmts, list) and if_node in stmts:
                    trailing = stmts.index(if_node) < len(stmts) - 1
                    break
            if not trailing:
                yield mod.violation(
                    if_node, self.code,
                    "vector-backend branch has no scalar arm (no else "
                    "and nothing after the if); every dispatch must "
                    "handle both backends",
                )

        for sub in ast.walk(if_node):
            if isinstance(sub, ast.ExceptHandler):
                calls_fallback = any(
                    isinstance(c, ast.Call)
                    and _call_name(c) in (
                        "_fallback", "_parallel_fallback", "_mmap_fallback",
                        "_shard_fallback",
                    )
                    for c in ast.walk(sub)
                )
                if not calls_fallback:
                    yield mod.violation(
                        sub, self.code,
                        "exception handler inside a vector-backend arm "
                        "must count the event via _fallback(reason) "
                        "before falling back to scalar",
                    )
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "from_mappings"
            ):
                guarded = mod.enclosing(sub, ast.Try) is not None
                if not guarded:
                    yield mod.violation(
                        sub, self.code,
                        "column construction inside a vector-backend arm "
                        "must be try/except-guarded with a counted "
                        "_fallback — from_mappings raises InvalidValue "
                        "on inputs only the scalar path can handle",
                    )


# ---------------------------------------------------------------------------
# MOD006 — failpoint discipline
# ---------------------------------------------------------------------------


class FailpointDiscipline(Rule):
    """MOD006: every failpoint name is literal and registered, both ways.

    The registry is ``FAILPOINT_NAMES`` in :mod:`repro.faults`.  An
    injection site (``faults.fail(...)`` / ``faults.should_fire(...)``)
    using a name outside the registry is a typo that can never be armed;
    a registered name with no site is dead weight that the crash matrix
    would still demand a scenario for.  Mirror of the MOD004 obs-name
    rule.
    """

    code = "MOD006"
    name = "failpoint-discipline"

    _FAULTS = "repro/faults.py"
    #: Module whose presence marks a full-source run (the injection
    #: sites span the storage package, so the never-placed direction is
    #: only meaningful when it is in scope).
    _SITES_ANCHOR = "repro/storage/pages.py"
    _SITE_CALLS = ("faults.fail", "faults.should_fire")

    def _registry(self, mod: SourceModule) -> Optional[Set[str]]:
        for node in ast.walk(mod.tree):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "FAILPOINT_NAMES"
                for t in targets
            ):
                continue
            names: Set[str] = set()
            for sub in ast.walk(value):
                s = _str_const(sub)
                if s is not None:
                    names.add(s)
            return names
        return None

    def check_project(self, project: Project) -> Iterator[Violation]:
        faults_mod = project.module(self._FAULTS)
        if faults_mod is None:
            return
        registry = self._registry(faults_mod)
        if registry is None:
            yield faults_mod.violation(
                faults_mod.tree, self.code,
                "repro.faults must declare the FAILPOINT_NAMES literal "
                "registry so the failpoint check can read it statically",
            )
            return

        placed: Set[str] = set()
        src_mods = [
            m for m in project.modules
            if "repro/" in m.relpath
            and not m.relpath.endswith(self._FAULTS)
            and "repro/analysis/" not in m.relpath
        ]
        for mod in src_mods:
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.Call):
                    continue
                if _dotted(node.func) not in self._SITE_CALLS:
                    continue
                name = _str_const(node.args[0]) if node.args else None
                if name is None:
                    yield mod.violation(
                        node, self.code,
                        "failpoint name must be a literal string so the "
                        "registry check can see it",
                    )
                    continue
                placed.add(name)
                if name not in registry:
                    yield mod.violation(
                        node, self.code,
                        f"failpoint `{name}` is not declared in the "
                        "repro.faults FAILPOINT_NAMES registry; arming "
                        "it would raise, so the site is dead",
                    )

        if project.module(self._SITES_ANCHOR) is not None:
            for name in sorted(registry - placed):
                yield faults_mod.violation(
                    faults_mod.tree, self.code,
                    f"registered failpoint `{name}` is never placed at "
                    "any fail()/should_fire() site in repro; delete it "
                    "from the registry or wire it up",
                )


# ---------------------------------------------------------------------------
# MOD007 — lock discipline (the GUARDED_BY registry)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Guard:
    """One guarded-state declaration: which lock covers which attrs.

    ``lock`` names the ``self.<lock>`` attribute that must be held
    (via ``with self.<lock>:``) around every access.  ``lock=None``
    declares the attributes *event-loop confined* — legal only from
    coroutine methods (which all run on the owning loop) or from the
    listed owners.  ``owners`` are methods allowed to touch the
    attributes bare: the constructor, and helpers whose documented
    contract is "caller holds the lock".
    """

    lock: Optional[str]
    attrs: Tuple[str, ...]
    owners: Tuple[str, ...]


#: The lock-discipline registry: ``(module suffix, class)`` → guards.
#: This is the source of truth MOD007 checks the tree against; adding
#: concurrent state without registering it here is itself the bug the
#: rule exists to catch, so keep the registry next to the rule.
GUARDED_BY: Dict[Tuple[str, str], Tuple[Guard, ...]] = {
    ("repro/server/executor.py", "FleetExecutor"): (
        Guard(
            lock="_lock",
            attrs=("_fleets", "_indexes", "_shards", "_dedup"),
            owners=(
                # _fleet/_apply_one/_append_unit/_pinned_column/
                # _pinned_shard_columns/_window_candidates document
                # "caller holds the lock" and are only reached from
                # public methods that take it.
                "__init__", "_fleet", "_apply_one", "_append_unit",
                "_pinned_column", "_pinned_shard_columns",
                "_window_candidates",
            ),
        ),
        Guard(lock="_lat_lock", attrs=("_latencies",), owners=("__init__",)),
    ),
    ("repro/vector/cache.py", "ColumnCache"): (
        Guard(
            lock="_lock",
            attrs=("_entries", "_bytes"),
            owners=(
                # _drop/_store_entry/_evict_over_budget are "caller
                # holds the lock" helpers of the locked get path.
                "__init__", "_get_versioned_locked", "_drop",
                "_store_entry", "_evict_over_budget",
            ),
        ),
    ),
    ("repro/shard/manager.py", "ShardManager"): (
        Guard(
            lock="_lock",
            attrs=("_resident", "_ring", "_hand"),
            owners=(
                # _map_column/_evict_over_budget/_evict_one document
                # "caller holds the lock".
                "__init__", "_map_column", "_evict_over_budget",
                "_evict_one",
            ),
        ),
    ),
    ("repro/server/ingest.py", "GroupCommitter"): (
        Guard(
            lock=None,
            attrs=("_task", "_queue"),
            # start() is sync so the server can call it before the
            # listener exists, but it only ever runs on the loop thread
            # (QueryServer.start / GroupCommitter.submit call it).
            # depth() is the admission controller's backlog read — sync,
            # but only reached from QueryServer._admit on the loop.
            owners=("__init__", "start", "depth"),
        ),
    ),
    ("repro/server/session.py", "QueryServer"): (
        Guard(
            lock=None,
            attrs=("_sessions", "_inflight", "_stopping"),
            # _admit is sync (raising Overloaded needs no await) but is
            # only reached from the _serve_line coroutine on the loop.
            owners=("__init__", "_admit"),
        ),
    ),
}

#: Guarded attribute names that are unambiguous across the whole tree:
#: an access through *any* receiver outside the owning module leaks
#: guarded state past its lock.  (Names like ``_entries`` or ``_lock``
#: recur in unrelated classes — the index package has its own
#: ``_entries`` — so those are only checked inside their own module.)
_CROSS_MODULE_ATTRS: Dict[str, str] = {
    "_fleets": "repro/server/executor.py",
    "_indexes": "repro/server/executor.py",
    "_latencies": "repro/server/executor.py",
    "_resident": "repro/shard/manager.py",
}


class LockDiscipline(Rule):
    """MOD007: guarded state is only touched under its declared lock.

    The check is deliberately syntactic: an access to a registered
    attribute counts as guarded only when it sits *lexically* inside a
    ``with self.<lock>:`` block of the same function, or the enclosing
    method is a registered owner.  That under-approximates dynamic
    reachability (a helper called under the lock must be registered,
    with its "caller holds the lock" contract written down), which is
    exactly the documentation the rule wants to force.
    """

    code = "MOD007"
    name = "lock-discipline"

    def check(
        self, mod: SourceModule, project: Project
    ) -> Iterator[Violation]:
        if "repro/analysis/" in mod.relpath:
            return
        yield from self._check_cross_module(mod)
        for (suffix, cls_name), guards in GUARDED_BY.items():
            if not mod.relpath.endswith(suffix):
                continue
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.ClassDef) and node.name == cls_name:
                    yield from self._check_class(mod, node, guards)

    def _check_cross_module(self, mod: SourceModule) -> Iterator[Violation]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Attribute):
                continue
            owner = _CROSS_MODULE_ATTRS.get(node.attr)
            if owner is None or mod.relpath.endswith(owner):
                continue
            yield mod.violation(
                node, self.code,
                f"`.{node.attr}` is guarded state of {owner} (see the "
                "GUARDED_BY registry); reaching it from another module "
                "bypasses its lock — go through the owning class's "
                "public methods",
            )

    def _check_class(
        self, mod: SourceModule, cls: ast.ClassDef, guards: Tuple[Guard, ...]
    ) -> Iterator[Violation]:
        guard_of: Dict[str, Guard] = {}
        for guard in guards:
            for attr in guard.attrs:
                guard_of[attr] = guard
        for node in ast.walk(cls):
            if not isinstance(node, ast.Attribute):
                continue
            if not (
                isinstance(node.value, ast.Name) and node.value.id == "self"
            ):
                continue
            guard = guard_of.get(node.attr)
            if guard is None:
                continue
            held, fn = self._held_locks(mod, node)
            method = fn.name if fn is not None else "<module>"
            if method in guard.owners:
                continue
            if guard.lock is not None:
                if guard.lock in held:
                    continue
                yield mod.violation(
                    node, self.code,
                    f"`self.{node.attr}` is guarded by `self.{guard.lock}` "
                    f"(GUARDED_BY) but `{method}` touches it outside a "
                    f"`with self.{guard.lock}:` block; hold the lock or "
                    "register the method as an owner with its contract "
                    "written down",
                )
            elif not isinstance(fn, ast.AsyncFunctionDef):
                yield mod.violation(
                    node, self.code,
                    f"`self.{node.attr}` is event-loop confined "
                    f"(GUARDED_BY) but `{method}` is a sync method; only "
                    "coroutines running on the owning loop (or registered "
                    "owners) may touch it",
                )

    @staticmethod
    def _held_locks(
        mod: SourceModule, node: ast.AST
    ) -> Tuple[Set[str], Optional[ast.AST]]:
        """(self-attr locks held via ``with`` at node, enclosing function).

        The climb stops at the nearest function boundary: a lock held
        by an *outer* function is not statically known to be held when
        a nested function body eventually runs.
        """
        held: Set[str] = set()
        parents = mod.parents()
        cur = parents.get(node)
        while cur is not None and not isinstance(
            cur, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            if isinstance(cur, ast.With):
                for item in cur.items:
                    ctx = item.context_expr
                    if (
                        isinstance(ctx, ast.Attribute)
                        and isinstance(ctx.value, ast.Name)
                        and ctx.value.id == "self"
                    ):
                        held.add(ctx.attr)
            cur = parents.get(cur)
        return held, cur


# ---------------------------------------------------------------------------
# MOD008 — asyncio hygiene
# ---------------------------------------------------------------------------


class AsyncioHygiene(Rule):
    """MOD008: coroutine bodies in ``repro/server/`` never block the loop.

    A blocking call in a coroutine stalls *every* session, not just the
    caller — the whole point of the group committer running ``commit``
    via ``asyncio.to_thread`` is that fsync never parks the loop.  The
    rule flags the blocking primitives this codebase actually has:
    sleeps, sync file I/O, fsync-class barriers (``wal.sync``), and the
    lock-taking ``FleetExecutor`` methods.  Passing a bound method *by
    reference* to ``asyncio.to_thread(...)`` is naturally clean — only
    direct calls are flagged.
    """

    code = "MOD008"
    name = "asyncio-hygiene"

    _SCOPE = "repro/server/"
    #: Dotted calls that block: sleeps and file-barrier syscalls.
    _BLOCKING_DOTTED = {
        "time.sleep", "os.fsync", "os.fdatasync", "os.replace",
        "os.rename", "shutil.rmtree", "socket.create_connection",
    }
    #: FleetExecutor methods that take the executor lock / do real
    #: work; called directly from a coroutine they stall the loop
    #: behind whatever ingest apply already holds the lock.
    #: (``record_latency`` is exempt: O(1) append under a dedicated
    #: micro-lock that is never held across real work.)
    _EXECUTOR_METHODS = {
        "query_sql", "explain_sql", "snapshot_rows", "snapshot", "stats",
        "apply_units", "register_fleet", "fleet", "fleet_names",
    }

    def check(
        self, mod: SourceModule, project: Project
    ) -> Iterator[Violation]:
        if self._SCOPE not in mod.relpath:
            return
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = mod.enclosing(node, ast.FunctionDef, ast.AsyncFunctionDef)
            if not isinstance(fn, ast.AsyncFunctionDef):
                continue
            reason = self._blocking_reason(node)
            if reason is not None:
                yield mod.violation(
                    node, self.code,
                    reason + "; route it through asyncio.to_thread / "
                    "run_in_executor so the event loop stays responsive",
                )

    def _blocking_reason(self, node: ast.Call) -> Optional[str]:
        func = node.func
        dotted = _dotted(func)
        if dotted in self._BLOCKING_DOTTED:
            return f"`{dotted}` blocks the event loop"
        if isinstance(func, ast.Name):
            if func.id == "open":
                return "sync file I/O (`open`) blocks the event loop"
            if func.id == "sleep":
                return "bare `sleep` (time.sleep) blocks the event loop"
        if isinstance(func, ast.Attribute):
            recv = _dotted(func.value)
            if func.attr == "sync" and "wal" in recv.lower():
                return f"`{recv}.sync()` is an fsync barrier"
            if (
                func.attr in self._EXECUTOR_METHODS
                and "executor" in recv.lower()
            ):
                return (
                    f"`{recv}.{func.attr}()` runs under the executor lock"
                )
        return None


# ---------------------------------------------------------------------------
# MOD009 — atomic-persistence discipline
# ---------------------------------------------------------------------------


class AtomicPersistence(Rule):
    """MOD009: durable paths are written tmp+rename, never in place.

    A crash mid-``write`` on the real file tears it; writing a ``.tmp``
    sibling and ``os.replace()``-ing it into place makes every save
    all-or-nothing (and keeps pinned memmap views of the old bytes
    valid — POSIX rename leaves open maps alone).  The WAL and the page
    file are the deliberate exceptions: they *are* the journal — their
    durability comes from CRC record framing and page checksums, not
    from atomic replacement — so their constructors are registered as
    journal owners below.
    """

    code = "MOD009"
    name = "atomic-persistence"

    _SCOPE = ("repro/storage/", "repro/vector/store.py")
    #: ``(module suffix, function)`` whose writable ``open`` *is* the
    #: journal; tmp+rename does not apply to an append-framed log.
    _JOURNAL_OWNERS = {
        ("repro/storage/wal.py", "__init__"),
        ("repro/storage/pages.py", "__init__"),
    }

    def check(
        self, mod: SourceModule, project: Project
    ) -> Iterator[Violation]:
        if not any(s in mod.relpath for s in self._SCOPE):
            return
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (
                isinstance(node.func, ast.Name) and node.func.id == "open"
            ):
                continue
            if not self._writable(node):
                continue
            fn = mod.enclosing(node, ast.FunctionDef, ast.AsyncFunctionDef)
            fn_name = fn.name if fn is not None else "<module>"
            if any(
                mod.relpath.endswith(suffix) and fn_name == owner
                for suffix, owner in self._JOURNAL_OWNERS
            ):
                continue
            if node.args and self._tmp_path(node.args[0]):
                continue
            yield mod.violation(
                node, self.code,
                "writable `open()` on a durable path writes in place — a "
                "crash mid-write tears the file; write a `.tmp` sibling "
                "and `os.replace()` it into place (see ColumnStore.save), "
                "register a journal owner, or justify the site",
            )

    @staticmethod
    def _writable(node: ast.Call) -> bool:
        mode: Optional[ast.AST] = None
        if len(node.args) >= 2:
            mode = node.args[1]
        for kw in node.keywords:
            if kw.arg == "mode":
                mode = kw.value
        if mode is None:
            return False  # defaults to "r"
        literal = _str_const(mode)
        if literal is None:
            return True  # computed mode: assume the worst
        return any(ch in literal for ch in "wa+x")

    @staticmethod
    def _tmp_path(path: ast.AST) -> bool:
        for sub in ast.walk(path):
            if isinstance(sub, ast.Name) and "tmp" in sub.id.lower():
                return True
            s = _str_const(sub)
            if s is not None and "tmp" in s.lower():
                return True
        return False


# ---------------------------------------------------------------------------
# MOD010 — shm/fork lifecycle
# ---------------------------------------------------------------------------


class ShmForkLifecycle(Rule):
    """MOD010: shm creates pair with unlink; the fork path stays lock-free.

    Two hazards with the same root (the fork boundary): a
    ``SharedMemory(create=True)`` whose name never reaches ``unlink``
    outlives every process that knew it (POSIX shm has kernel
    lifetime), and a lock created on the parent side of ``fork()`` is
    inherited *in its instantaneous state* — forked while held, it
    stays held in the child forever.  The unlink check is per-function:
    the creating function must contain an ``.unlink()`` call or a
    ``weakref.finalize`` registration on some path.
    """

    code = "MOD010"
    name = "shm-fork-lifecycle"

    _PARALLEL = "repro/parallel/"
    _THREAD_FACTORIES = {
        "threading.Thread", "threading.Lock", "threading.RLock",
        "threading.Condition", "threading.Semaphore",
        "threading.BoundedSemaphore", "threading.Event",
        "threading.Timer", "threading.Barrier", "dynlock.rlock",
    }

    def check(
        self, mod: SourceModule, project: Project
    ) -> Iterator[Violation]:
        if "repro/analysis/" in mod.relpath:
            return
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            if self._is_shm_create(node):
                scope = mod.enclosing(
                    node, ast.FunctionDef, ast.AsyncFunctionDef
                ) or mod.tree
                if not self._has_reclaim(scope):
                    yield mod.violation(
                        node, self.code,
                        "SharedMemory(create=True) with no `.unlink()` or "
                        "`weakref.finalize` on any path in this function "
                        "leaks the segment past process exit; pair every "
                        "create with an unlink (see shmcol.pack)",
                    )
            if (
                self._PARALLEL in mod.relpath
                and _dotted(node.func) in self._THREAD_FACTORIES
            ):
                yield mod.violation(
                    node, self.code,
                    f"`{_dotted(node.func)}` in repro.parallel creates "
                    "lock/thread state on the parent side of fork(); a "
                    "child forked while a lock is held inherits it held "
                    "forever — keep the pack path lock-free or justify "
                    "the site",
                )

    @staticmethod
    def _is_shm_create(node: ast.Call) -> bool:
        if _call_name(node) != "SharedMemory":
            return False
        for kw in node.keywords:
            if kw.arg == "create":
                val = kw.value
                return isinstance(val, ast.Constant) and val.value is True
        return False

    @staticmethod
    def _has_reclaim(scope: ast.AST) -> bool:
        for sub in ast.walk(scope):
            if isinstance(sub, ast.Attribute) and sub.attr == "unlink":
                return True
            if (
                isinstance(sub, ast.Call)
                and _dotted(sub.func) == "weakref.finalize"
            ):
                return True
        return False


RULES: List[Rule] = [
    EpsDiscipline(),
    UnitHygiene(),
    VectorParity(),
    ObsDiscipline(),
    BackendDispatch(),
    FailpointDiscipline(),
    LockDiscipline(),
    AsyncioHygiene(),
    AtomicPersistence(),
    ShmForkLifecycle(),
]
