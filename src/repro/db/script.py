"""SQL script execution: DDL + DML + queries against one database.

Extends the query subset with the statements a self-contained script
needs::

    CREATE TABLE planes (airline string, id string, flight mpoint);
    INSERT INTO planes VALUES ('LH', 'LH123', 'MPOINT ([0 10] 0 1 0 0)');
    SELECT id FROM planes WHERE length(trajectory(flight)) > 5;
    EXPLAIN SELECT ...;

Attribute values in ``INSERT`` are string literals holding either plain
scalars or the :mod:`repro.io.text` format for spatio-temporal types;
numbers may be written bare.  Statements are separated by semicolons;
``--`` starts a line comment.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.db.catalog import Database
from repro.db.sql import explain, run_query
from repro.errors import QueryError

_CREATE_RE = re.compile(
    r"^\s*create\s+table\s+(?P<name>[A-Za-z_]\w*)\s*\((?P<cols>.*)\)\s*$",
    re.IGNORECASE | re.DOTALL,
)
_INSERT_RE = re.compile(
    r"^\s*insert\s+into\s+(?P<name>[A-Za-z_]\w*)\s+values\s*\((?P<vals>.*)\)\s*$",
    re.IGNORECASE | re.DOTALL,
)
_DROP_RE = re.compile(
    r"^\s*drop\s+table\s+(?P<name>[A-Za-z_]\w*)\s*$", re.IGNORECASE
)
_EXPLAIN_RE = re.compile(r"^\s*explain\s+(?P<query>select\b.*)$", re.IGNORECASE | re.DOTALL)


@dataclass
class StatementResult:
    """Outcome of one statement: a message or result rows."""

    statement: str
    rows: Optional[List[dict]] = None
    message: str = ""


def split_statements(script: str) -> List[str]:
    """Split a script into statements on semicolons, honouring quotes."""
    statements: List[str] = []
    current: List[str] = []
    in_quote: Optional[str] = None
    for raw_line in script.splitlines():
        line = raw_line
        if in_quote is None:
            # Strip -- comments only outside quoted strings.
            cut = _comment_start(line)
            if cut is not None:
                line = line[:cut]
        for ch in line:
            if in_quote is not None:
                current.append(ch)
                if ch == in_quote:
                    in_quote = None
                continue
            if ch in ("'", '"'):
                in_quote = ch
                current.append(ch)
            elif ch == ";":
                stmt = "".join(current).strip()
                if stmt:
                    statements.append(stmt)
                current = []
            else:
                current.append(ch)
        current.append("\n")
    tail = "".join(current).strip()
    if tail:
        statements.append(tail)
    return statements


def _comment_start(line: str) -> Optional[int]:
    in_quote: Optional[str] = None
    i = 0
    while i < len(line) - 1:
        ch = line[i]
        if in_quote is not None:
            if ch == in_quote:
                in_quote = None
        elif ch in ("'", '"'):
            in_quote = ch
        elif ch == "-" and line[i + 1] == "-":
            return i
        i += 1
    return None


def _split_top_level(text: str, sep: str = ",") -> List[str]:
    """Split on ``sep`` outside parentheses and quotes."""
    parts: List[str] = []
    depth = 0
    in_quote: Optional[str] = None
    current: List[str] = []
    for ch in text:
        if in_quote is not None:
            current.append(ch)
            if ch == in_quote:
                in_quote = None
            continue
        if ch in ("'", '"'):
            in_quote = ch
            current.append(ch)
        elif ch == "(":
            depth += 1
            current.append(ch)
        elif ch == ")":
            depth -= 1
            current.append(ch)
        elif ch == sep and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    last = "".join(current).strip()
    if last:
        parts.append(last)
    return parts


def _parse_value_literal(text: str) -> str:
    text = text.strip()
    if len(text) >= 2 and text[0] == text[-1] and text[0] in ("'", '"'):
        return text[1:-1]
    return text


def execute_statement(db: Database, statement: str) -> StatementResult:
    """Execute one statement against ``db``."""
    m = _CREATE_RE.match(statement)
    if m:
        columns: List[Tuple[str, str]] = []
        for col in _split_top_level(m.group("cols")):
            pieces = col.split()
            if len(pieces) != 2:
                raise QueryError(f"bad column definition {col!r}")
            columns.append((pieces[0], pieces[1].lower()))
        db.create_relation(m.group("name"), columns)
        return StatementResult(statement, message=f"created {m.group('name')}")
    m = _INSERT_RE.match(statement)
    if m:
        rel = db.relation(m.group("name"))
        values = [_parse_value_literal(v) for v in _split_top_level(m.group("vals"))]
        rel.insert_text(values)
        return StatementResult(statement, message=f"inserted 1 row into {rel.name}")
    m = _DROP_RE.match(statement)
    if m:
        db.drop_relation(m.group("name"))
        return StatementResult(statement, message=f"dropped {m.group('name')}")
    m = _EXPLAIN_RE.match(statement)
    if m:
        return StatementResult(statement, message=explain(db, m.group("query")))
    if re.match(r"^\s*select\b", statement, re.IGNORECASE):
        return StatementResult(statement, rows=run_query(db, statement))
    raise QueryError(f"unrecognized statement: {statement[:60]!r}")


def run_script(db: Database, script: str) -> List[StatementResult]:
    """Execute every statement of a script in order."""
    return [execute_statement(db, stmt) for stmt in split_statements(script)]
