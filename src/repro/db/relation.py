"""Relations: schema-typed tuple collections over the storage engine.

A relation can run in two modes:

* ``materialized=False`` (default) — rows are kept as Python objects;
  fast, used for intermediate query results;
* ``materialized=True`` — every tuple round-trips through the
  :class:`~repro.storage.tuplestore.TupleStore`, i.e. through the root
  record / database array / FLOB machinery of Section 4, as a real DBMS
  attribute value would.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.base.values import BaseValue, wrap
from repro.errors import CatalogError
from repro.db.schema import Schema
from repro.storage.tuplestore import TupleStore
from repro.storage.wal import Wal


class Relation:
    """A named relation with a fixed schema.

    With a WAL attached (materialized relations only), tuple inserts
    are logged under the scope ``rel:<name>`` and survive a crash via
    :meth:`TupleStore.recover`.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        materialized: bool = False,
        inline_threshold: Optional[int] = None,
        wal: Optional[Wal] = None,
    ):
        self.name = name
        self.schema = schema
        self._materialized = materialized
        self._rows: List[List[Any]] = []
        self._store: Optional[TupleStore] = None
        if materialized:
            self._store = TupleStore(
                [(a.name, a.type_name) for a in schema],
                inline_threshold=inline_threshold,
                wal=wal,
                wal_scope=f"rel:{name}",
            )

    # -- write path -------------------------------------------------------

    def insert(self, values: Sequence[Any]) -> None:
        """Insert one tuple (positionally matching the schema)."""
        if len(values) != len(self.schema):
            raise CatalogError(
                f"tuple arity {len(values)} does not match schema of {self.name}"
            )
        coerced = [self._coerce(v, a.type_name) for v, a in zip(values, self.schema)]
        if self._store is not None:
            self._store.append(coerced)
        else:
            self._rows.append(list(coerced))

    def insert_dict(self, row: Dict[str, Any]) -> None:
        """Insert one tuple given as a name → value mapping."""
        self.insert([row[a.name] for a in self.schema])

    @staticmethod
    def _coerce(value: Any, type_name: str) -> Any:
        if type_name in ("int", "real", "string", "bool") and not isinstance(
            value, BaseValue
        ):
            return wrap(value)
        return value

    def insert_text(self, values: Sequence[str]) -> None:
        """Insert one tuple given as text-format strings.

        Scalar columns take plain literals (``42``, ``3.5``, ``hello``);
        spatio-temporal columns take the :mod:`repro.io.text` format
        (``MPOINT ([0 10] 0 1 0 0)``, ``REGION (FACE ((...)))``, ...).
        """
        from repro.io.text import from_text

        parsed = []
        for text, attr in zip(values, self.schema):
            if attr.type_name == "int":
                parsed.append(int(text))
            elif attr.type_name == "real":
                parsed.append(float(text))
            elif attr.type_name == "bool":
                parsed.append(text.strip().lower() == "true")
            elif attr.type_name == "string":
                parsed.append(text)
            else:
                parsed.append(from_text(text))
        self.insert(parsed)

    # -- read path ---------------------------------------------------------

    def __len__(self) -> int:
        if self._store is not None:
            return len(self._store)
        return len(self._rows)

    def scan(self, strict: bool = True) -> Iterator[Dict[str, Any]]:
        """Yield rows as name → value dicts.

        ``strict=False`` quarantines tuples whose storage representation
        fails verification (counted under ``storage.quarantined``)
        instead of raising; see :meth:`TupleStore.scan`.
        """
        names = self.schema.names
        if self._store is not None:
            for values in self._store.scan(strict=strict):
                yield dict(zip(names, values))
        else:
            for values in self._rows:
                yield dict(zip(names, values))

    def rows(self) -> List[Dict[str, Any]]:
        """Materialize all rows."""
        return list(self.scan())

    @property
    def materialized(self) -> bool:
        return self._materialized

    @property
    def store(self) -> Optional[TupleStore]:
        """The backing tuple store (materialized relations only)."""
        return self._store

    def storage_stats(self) -> Optional[dict]:
        """Storage-layer statistics (materialized relations only)."""
        if self._store is None:
            return None
        return self._store.storage_stats()

    def __repr__(self) -> str:
        mode = "materialized" if self._materialized else "in-memory"
        return f"Relation({self.name!r}, {len(self)} tuples, {mode})"
