"""A SQL subset: SELECT–FROM–WHERE plus joins, grouping, and ordering.

Grammar (case-insensitive keywords)::

    query      := SELECT [DISTINCT] select_list
                  FROM table [alias] ((',' table [alias]) | join)*
                  [WHERE expr]
                  [GROUP BY expr (',' expr)*]
                  [ORDER BY order_key (',' order_key)*]
                  [LIMIT n]
    join       := JOIN table [alias] ON expr
    select_list:= '*' | item (',' item)*
    item       := expr [AS name]
    order_key  := expr [ASC | DESC]
    expr       := or_expr
    or_expr    := and_expr (OR and_expr)*
    and_expr   := not_expr (AND not_expr)*
    not_expr   := NOT not_expr | comparison
    comparison := primary [cmp_op primary]
    primary    := number | string | TRUE | FALSE | COUNT '(' '*' ')'
                | name '(' args ')' | name ['.' name] | '(' expr ')'

Aggregates (``count/min/max/sum/avg``) in SELECT items trigger grouped
execution; equality join conditions plan as hash joins.  Sufficient to
run both Section-2 example queries verbatim (including the paper's
``Lufthansa''-style quoting).  ``explain`` renders the physical plan.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.db.catalog import Database
from repro.db.executor import (
    CrossProduct,
    Limit,
    Operator,
    Project,
    SeqScan,
    Select,
)
from repro.db.expressions import (
    And,
    Call,
    Column,
    Compare,
    Expr,
    Literal,
    Not,
    Or,
)
from repro.errors import QueryError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d*|\.\d+|\d+)
  | (?P<string>'(?:[^'])*'|"(?:[^"])*"|``(?:[^`])*''|`(?:[^`])*`)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|<>|!=|=|<|>)
  | (?P<punct>[(),.*])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "where", "as", "and", "or", "not", "limit",
    "true", "false", "group", "order", "by", "asc", "desc", "join", "on",
    "distinct",
}

#: Function names treated as aggregates when they appear in SELECT items.
_AGGREGATE_FUNCS = {"count", "min", "max", "sum", "avg"}


@dataclass
class _Token:
    kind: str
    text: str


def _tokenize(sql: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(sql):
        m = _TOKEN_RE.match(sql, pos)
        if m is None:
            raise QueryError(f"cannot tokenize query at: {sql[pos:pos+20]!r}")
        pos = m.end()
        kind = m.lastgroup
        assert kind is not None
        if kind == "ws":
            continue
        text = m.group()
        if kind == "name" and text.lower() in _KEYWORDS:
            kind = "keyword"
            text = text.lower()
        tokens.append(_Token(kind, text))
    tokens.append(_Token("eof", ""))
    return tokens


@dataclass
class SelectItem:
    expr: Expr
    alias: Optional[str]


@dataclass
class JoinClause:
    """An explicit ``JOIN table [alias] ON condition`` clause."""

    table: str
    alias: str
    condition: Expr


@dataclass
class ParsedQuery:
    items: Optional[List[SelectItem]]  # None means SELECT *
    distinct: bool
    tables: List[Tuple[str, str]]  # (relation, alias), comma-separated FROM
    joins: List[JoinClause]
    where: Optional[Expr]
    group_by: List[Expr]
    order_by: List[Tuple[Expr, bool]]  # (expression, descending)
    limit: Optional[int]


class _Parser:
    def __init__(self, tokens: List[_Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -----------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.pos]

    def advance(self) -> _Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, kind: str, text: Optional[str] = None) -> _Token:
        tok = self.peek()
        if tok.kind != kind or (text is not None and tok.text != text):
            raise QueryError(
                f"expected {text or kind}, got {tok.text!r} at token {self.pos}"
            )
        return self.advance()

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        tok = self.peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self.advance()
        return None

    # -- grammar ----------------------------------------------------------------

    def parse(self) -> ParsedQuery:
        self.expect("keyword", "select")
        distinct = self.accept("keyword", "distinct") is not None
        items = self.select_list()
        self.expect("keyword", "from")
        tables = [self.table_ref()]
        joins: List[JoinClause] = []
        while True:
            if self.accept("punct", ","):
                tables.append(self.table_ref())
            elif self.accept("keyword", "join"):
                name, alias = self.table_ref()
                self.expect("keyword", "on")
                joins.append(JoinClause(name, alias, self.expr()))
            else:
                break
        where = None
        if self.accept("keyword", "where"):
            where = self.expr()
        group_by: List[Expr] = []
        if self.accept("keyword", "group"):
            self.expect("keyword", "by")
            group_by.append(self.expr())
            while self.accept("punct", ","):
                group_by.append(self.expr())
        order_by: List[Tuple[Expr, bool]] = []
        if self.accept("keyword", "order"):
            self.expect("keyword", "by")
            order_by.append(self.order_key())
            while self.accept("punct", ","):
                order_by.append(self.order_key())
        limit = None
        if self.accept("keyword", "limit"):
            limit = int(self.expect("number").text)
        self.expect("eof")
        return ParsedQuery(items, distinct, tables, joins, where, group_by, order_by, limit)

    def order_key(self) -> Tuple[Expr, bool]:
        expr = self.expr()
        descending = False
        if self.accept("keyword", "desc"):
            descending = True
        else:
            self.accept("keyword", "asc")
        return (expr, descending)

    def select_list(self) -> Optional[List[SelectItem]]:
        if self.accept("punct", "*"):
            return None
        items = [self.select_item()]
        while self.accept("punct", ","):
            items.append(self.select_item())
        return items

    def select_item(self) -> SelectItem:
        expr = self.expr()
        alias = None
        if self.accept("keyword", "as"):
            alias = self.expect("name").text
        return SelectItem(expr, alias)

    def table_ref(self) -> Tuple[str, str]:
        name = self.expect("name").text
        alias = name
        tok = self.peek()
        if tok.kind == "name":
            alias = self.advance().text
        return (name, alias)

    def expr(self) -> Expr:
        return self.or_expr()

    def or_expr(self) -> Expr:
        left = self.and_expr()
        while self.accept("keyword", "or"):
            left = Or(left, self.and_expr())
        return left

    def and_expr(self) -> Expr:
        left = self.not_expr()
        while self.accept("keyword", "and"):
            left = And(left, self.not_expr())
        return left

    def not_expr(self) -> Expr:
        if self.accept("keyword", "not"):
            return Not(self.not_expr())
        return self.comparison()

    def comparison(self) -> Expr:
        left = self.primary()
        tok = self.peek()
        if tok.kind == "op":
            op = self.advance().text
            right = self.primary()
            return Compare(op, left, right)
        return left

    def primary(self) -> Expr:
        tok = self.peek()
        if tok.kind == "number":
            self.advance()
            text = tok.text
            return Literal(float(text) if "." in text else int(text))
        if tok.kind == "string":
            self.advance()
            text = tok.text
            if text.startswith("``") and text.endswith("''"):
                return Literal(text[2:-2])
            return Literal(text[1:-1])
        if tok.kind == "keyword" and tok.text in ("true", "false"):
            self.advance()
            return Literal(tok.text == "true")
        if self.accept("punct", "("):
            inner = self.expr()
            self.expect("punct", ")")
            return inner
        if tok.kind == "name":
            self.advance()
            if self.accept("punct", "("):
                # COUNT(*) is the one place a bare * is an argument.
                if tok.text.lower() == "count" and self.accept("punct", "*"):
                    self.expect("punct", ")")
                    return Call(tok.text, ())
                args: List[Expr] = []
                if not self.accept("punct", ")"):
                    args.append(self.expr())
                    while self.accept("punct", ","):
                        args.append(self.expr())
                    self.expect("punct", ")")
                return Call(tok.text, tuple(args))
            if self.accept("punct", "."):
                attr = self.expect("name").text
                return Column(f"{tok.text}.{attr}")
            return Column(tok.text)
        raise QueryError(f"unexpected token {tok.text!r}")


def parse_query(sql: str) -> ParsedQuery:
    """Parse a SQL string into its components."""
    return _Parser(_tokenize(sql)).parse()


def _output_name(item: SelectItem, index: int) -> str:
    if item.alias:
        return item.alias
    if isinstance(item.expr, Column):
        return item.expr.name
    if isinstance(item.expr, Call):
        return item.expr.func.lower()
    return f"col{index + 1}"


def _is_aggregate(expr: Expr) -> bool:
    return isinstance(expr, Call) and expr.func.lower() in _AGGREGATE_FUNCS


def _substitute_aliases(expr: Expr, aliases: dict) -> Expr:
    """Replace column references to select aliases by their expressions."""
    if isinstance(expr, Column) and expr.name in aliases:
        return aliases[expr.name]
    if isinstance(expr, Call):
        return Call(
            expr.func,
            tuple(_substitute_aliases(a, aliases) for a in expr.args),
        )
    if isinstance(expr, Compare):
        return Compare(
            expr.op,
            _substitute_aliases(expr.left, aliases),
            _substitute_aliases(expr.right, aliases),
        )
    if isinstance(expr, And):
        return And(
            _substitute_aliases(expr.left, aliases),
            _substitute_aliases(expr.right, aliases),
        )
    if isinstance(expr, Or):
        return Or(
            _substitute_aliases(expr.left, aliases),
            _substitute_aliases(expr.right, aliases),
        )
    if isinstance(expr, Not):
        return Not(_substitute_aliases(expr.inner, aliases))
    return expr


def _make_scan(
    db: Database, name: str, alias: Optional[str], strict: bool = True
) -> Operator:
    """Build the scan for one relation, honouring the backend switch.

    Under the ``vector`` backend, a relation with exactly one
    moving-point attribute is scanned by :class:`~repro.db.executor.
    VectorScan`, which exposes the attribute columnarly so a selection
    above it can run as one batch kernel; the ``parallel`` backend plans
    a :class:`~repro.db.executor.ParallelScan` (same rows, batch kernels
    chunked over the shared-memory pool); the ``sharded`` backend plans
    a :class:`~repro.db.executor.ShardedScan` (same rows, batch kernels
    scattered over hash-partitioned shards under a byte-budgeted shard
    manager).  Everything else stays a plain
    :class:`SeqScan` (VectorScan degrades to one when no batch path
    applies, so results never change).  ``strict=False`` lets the scan
    quarantine corrupt tuples instead of aborting.
    """
    relation = db.relation(name)
    from repro.vector.fleet import get_backend

    if (
        get_backend() == "vector"
        or get_backend() == "parallel"
        or get_backend() == "sharded"
    ):
        from repro.db.executor import (
            MmapScan, ParallelScan, ShardedScan, VectorScan,
        )
        from repro.storage.records import codec_for

        mpoint_attrs = [
            a.name
            for a in relation.schema
            if codec_for(a.type_name).type_name == "mpoint"
        ]
        if len(mpoint_attrs) == 1:
            if get_backend() == "sharded":
                # Hash-partitioned scan: batch predicates scatter over
                # the process-wide shard count under the process-wide
                # memory budget (the CLI's --shards/--memory-budget).
                from repro import shard as shardmod

                return ShardedScan(
                    relation, alias, attr=mpoint_attrs[0], strict=strict,
                    shards=shardmod.get_shards(),
                    memory_budget=shardmod.get_memory_budget(),
                )
            from repro.vector.store import get_store

            store = get_store()
            if store is not None:
                # Persistent column store configured (--colstore): plan
                # an MmapScan so the columns come from disk instead of a
                # cold per-process rebuild.  Each relation attribute
                # gets its own subdirectory (one manifest generation per
                # source, so two relations never interleave).
                import os

                root = os.path.join(
                    store.root, f"{relation.name}.{mpoint_attrs[0]}"
                )
                return MmapScan(
                    relation, alias, attr=mpoint_attrs[0], strict=strict,
                    store_root=root,
                    parallel=get_backend() == "parallel",
                )
            if get_backend() == "parallel":
                return ParallelScan(relation, alias, attr=mpoint_attrs[0],
                                    strict=strict)
            return VectorScan(relation, alias, attr=mpoint_attrs[0],
                              strict=strict)
    return SeqScan(relation, alias, strict=strict)


def _plan_join(
    plan: Operator, db: Database, join: JoinClause, strict: bool = True
) -> Operator:
    """Attach a JOIN clause: hash join for a simple column equality,
    otherwise a cross product plus a selection."""
    from repro.db.executor import HashJoin

    right = _make_scan(db, join.table, join.alias, strict=strict)
    cond = join.condition
    if (
        isinstance(cond, Compare)
        and cond.op == "="
        and isinstance(cond.left, Column)
        and isinstance(cond.right, Column)
    ):
        right_names = set(db.relation(join.table).schema.names)

        def belongs_right(col: Column) -> bool:
            if "." in col.name:
                return col.name.split(".", 1)[0] == join.alias
            return col.name in right_names

        left_key, right_key = cond.left, cond.right
        if belongs_right(left_key) and not belongs_right(right_key):
            left_key, right_key = right_key, left_key
        if belongs_right(right_key) and not belongs_right(left_key):
            return HashJoin(plan, right, left_key, right_key)
    return Select(CrossProduct(plan, right), cond)


def plan_query(
    db: Database, parsed: ParsedQuery, strict: bool = True
) -> Operator:
    """Build an executable plan for a parsed query.

    ``strict=False`` plans every scan in quarantine mode: tuples whose
    storage representation fails verification are skipped and counted
    (``storage.quarantined``) instead of aborting the query.
    """
    from repro.db.executor import Aggregate, Sort

    if not parsed.tables:
        raise QueryError("query needs at least one relation in FROM")
    plan: Operator = _make_scan(
        db, parsed.tables[0][0], parsed.tables[0][1], strict=strict
    )
    for name, alias in parsed.tables[1:]:
        plan = CrossProduct(plan, _make_scan(db, name, alias, strict=strict))
    for join in parsed.joins:
        plan = _plan_join(plan, db, join, strict=strict)
    if parsed.where is not None:
        plan = Select(plan, parsed.where)

    has_aggregates = parsed.items is not None and any(
        _is_aggregate(item.expr) for item in parsed.items
    )
    if has_aggregates or parsed.group_by:
        if parsed.items is None:
            raise QueryError("SELECT * cannot be combined with aggregation")
        groups: List[Tuple[str, Expr]] = []
        aggregates: List[Tuple[str, str, Optional[Expr]]] = []
        group_keys = {repr(g) for g in parsed.group_by}
        for i, item in enumerate(parsed.items):
            name = _output_name(item, i)
            if _is_aggregate(item.expr):
                call = item.expr
                assert isinstance(call, Call)
                arg = call.args[0] if call.args else None
                aggregates.append((name, call.func.lower(), arg))
            else:
                if parsed.group_by and repr(item.expr) not in group_keys:
                    raise QueryError(
                        f"non-aggregate output {name!r} must appear in GROUP BY"
                    )
                if not parsed.group_by:
                    raise QueryError(
                        f"non-aggregate output {name!r} in an aggregate query "
                        "without GROUP BY"
                    )
                groups.append((name, item.expr))
        # Group expressions not projected still partition the input.
        projected = {repr(g) for _n, g in groups}
        for g in parsed.group_by:
            if repr(g) not in projected:
                groups.append((f"_group{len(groups)}", g))
        plan = Aggregate(plan, groups, aggregates)
        # Aggregation replaces the row vocabulary: order over its output.
        if parsed.order_by:
            plan = Sort(plan, parsed.order_by)
    elif parsed.items is not None:
        # Order before projection so keys may use any base column; keys
        # naming a select alias are rewritten to the aliased expression.
        if parsed.order_by:
            aliases = {
                item.alias: item.expr
                for item in parsed.items
                if item.alias is not None
            }
            keys = [
                (_substitute_aliases(expr, aliases), desc)
                for expr, desc in parsed.order_by
            ]
            plan = Sort(plan, keys)
        outputs = [
            (_output_name(item, i), item.expr)
            for i, item in enumerate(parsed.items)
        ]
        plan = Project(plan, outputs)
    elif parsed.order_by:
        plan = Sort(plan, parsed.order_by)
    if parsed.distinct:
        from repro.db.executor import Distinct

        plan = Distinct(plan)
    if parsed.limit is not None:
        plan = Limit(plan, parsed.limit)
    return plan


def run_query(db: Database, sql: str, strict: bool = True) -> List[dict]:
    """Parse, plan, and execute a query; returns the result rows."""
    return plan_query(db, parse_query(sql), strict=strict).execute()


def explain(db: Database, sql: str) -> str:
    """Render the physical plan of a query as an indented tree."""
    plan = plan_query(db, parse_query(sql))
    lines: List[str] = []

    def describe(node) -> str:
        from repro.db.executor import (
            Aggregate,
            CrossProduct,
            HashJoin,
            IndexFilteredProduct,
            Limit,
            MmapScan,
            ParallelScan,
            Project,
            Select,
            SeqScan,
            ShardedScan,
            Sort,
            VectorScan,
        )

        if isinstance(node, ShardedScan):
            budget = node.memory_budget
            return (
                f"ShardedScan({node.relation.name} AS {node.alias}, "
                f"attr={node.attr}, shards={node.n_shards}, "
                f"budget={'unbounded' if budget is None else budget})"
            )
        if isinstance(node, MmapScan):
            mode = "parallel" if node.parallel else "vector"
            return (
                f"MmapScan({node.relation.name} AS {node.alias}, "
                f"attr={node.attr}, store={node.store_root}, mode={mode})"
            )
        if isinstance(node, ParallelScan):
            return (
                f"ParallelScan({node.relation.name} AS {node.alias}, "
                f"attr={node.attr}, workers={node.workers or 'auto'})"
            )
        if isinstance(node, VectorScan):
            return (
                f"VectorScan({node.relation.name} AS {node.alias}, "
                f"attr={node.attr})"
            )
        if isinstance(node, SeqScan):
            return f"SeqScan({node.relation.name} AS {node.alias})"
        if isinstance(node, CrossProduct):
            return "CrossProduct"
        if isinstance(node, HashJoin):
            return f"HashJoin({node.left_key!r} = {node.right_key!r})"
        if isinstance(node, IndexFilteredProduct):
            return (
                f"IndexFilteredProduct({node.left_attr} ~ {node.right_attr}, "
                f"slack={node.slack})"
            )
        if isinstance(node, Select):
            return f"Select({node.predicate!r})"
        if isinstance(node, Project):
            return f"Project({', '.join(n for n, _e in node.outputs)})"
        if isinstance(node, Aggregate):
            aggs = ", ".join(f"{f}({n})" for n, f, _a in node.aggregates)
            return f"Aggregate(groups={len(node.groups)}, {aggs})"
        if isinstance(node, Sort):
            return f"Sort({len(node.keys)} key(s))"
        if isinstance(node, Limit):
            return f"Limit({node.n})"
        return type(node).__name__

    def walk(node, depth: int) -> None:
        lines.append("  " * depth + describe(node))
        for attr in ("child", "left", "right"):
            sub = getattr(node, attr, None)
            if sub is not None:
                walk(sub, depth + 1)

    walk(plan, 0)
    return "\n".join(lines)
