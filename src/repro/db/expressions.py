"""Query expressions: columns, literals, calls into the operation algebra.

The function registry maps SQL-level names onto the operations of
:mod:`repro.ops`, dispatching on the runtime types of the arguments —
the query language sees one overloaded ``distance`` or ``length``, just
as the abstract model's generic operations do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.base.instant import Instant
from repro.base.values import BaseValue
from repro.errors import QueryError
from repro.ranges.intime import Intime
from repro.ranges.rangeset import RangeSet
from repro.spatial.line import Line
from repro.spatial.point import Point
from repro.spatial.region import Region
from repro.temporal.mapping import (
    Mapping,
    MovingBool,
    MovingPoint,
    MovingReal,
    MovingRegion,
)

Row = Dict[str, Any]


class Expr:
    """Base class of query expressions."""

    def eval(self, row: Row) -> Any:
        raise NotImplementedError

    def columns(self) -> List[str]:
        """All column references in the expression tree."""
        return []


@dataclass(frozen=True)
class Column(Expr):
    """A (possibly qualified) column reference."""

    name: str

    def eval(self, row: Row) -> Any:
        if self.name in row:
            return row[self.name]
        # Unqualified lookup over qualified keys (alias.column).
        matches = [k for k in row if k.endswith("." + self.name)]
        if len(matches) == 1:
            return row[matches[0]]
        if len(matches) > 1:
            raise QueryError(f"ambiguous column {self.name!r}: {sorted(matches)}")
        raise QueryError(f"unknown column {self.name!r}")

    def columns(self) -> List[str]:
        return [self.name]


@dataclass(frozen=True)
class Literal(Expr):
    """A constant (number, string, or boolean)."""

    value: Any

    def eval(self, row: Row) -> Any:
        return self.value


@dataclass(frozen=True)
class Call(Expr):
    """A function application ``f(e1, ..., ek)``."""

    func: str
    args: Tuple[Expr, ...]

    def eval(self, row: Row) -> Any:
        fn = _FUNCTIONS.get(self.func.lower())
        if fn is None:
            raise QueryError(f"unknown function {self.func!r}")
        values = [a.eval(row) for a in self.args]
        try:
            return fn(*values)
        except QueryError:
            raise
        except Exception as exc:
            raise QueryError(f"error evaluating {self.func}: {exc}") from exc

    def columns(self) -> List[str]:
        out: List[str] = []
        for a in self.args:
            out.extend(a.columns())
        return out


def _unwrap(v: Any) -> Any:
    """Strip base-value wrappers for scalar comparisons."""
    if isinstance(v, BaseValue):
        return v.value if v.defined else None
    if isinstance(v, Instant):
        return v.value if v.defined else None
    return v


@dataclass(frozen=True)
class Compare(Expr):
    """A scalar comparison ``left op right``."""

    op: str
    left: Expr
    right: Expr

    def eval(self, row: Row) -> bool:
        lhs = _unwrap(self.left.eval(row))
        rhs = _unwrap(self.right.eval(row))
        if lhs is None or rhs is None:
            return False  # comparisons with undefined are false
        if self.op == "=":
            return lhs == rhs
        if self.op in ("<>", "!="):
            return lhs != rhs
        if self.op == "<":
            return lhs < rhs
        if self.op == "<=":
            return lhs <= rhs
        if self.op == ">":
            return lhs > rhs
        if self.op == ">=":
            return lhs >= rhs
        raise QueryError(f"unknown comparison operator {self.op!r}")

    def columns(self) -> List[str]:
        return self.left.columns() + self.right.columns()


@dataclass(frozen=True)
class And(Expr):
    left: Expr
    right: Expr

    def eval(self, row: Row) -> bool:
        return bool(self.left.eval(row)) and bool(self.right.eval(row))

    def columns(self) -> List[str]:
        return self.left.columns() + self.right.columns()


@dataclass(frozen=True)
class Or(Expr):
    left: Expr
    right: Expr

    def eval(self, row: Row) -> bool:
        return bool(self.left.eval(row)) or bool(self.right.eval(row))

    def columns(self) -> List[str]:
        return self.left.columns() + self.right.columns()


@dataclass(frozen=True)
class Not(Expr):
    inner: Expr

    def eval(self, row: Row) -> bool:
        return not bool(self.inner.eval(row))

    def columns(self) -> List[str]:
        return self.inner.columns()


# ---------------------------------------------------------------------------
# Function registry: SQL names → operation algebra
# ---------------------------------------------------------------------------


def _fn_trajectory(mp: MovingPoint) -> Line:
    return mp.trajectory()


def _fn_length(arg: Any) -> float:
    if isinstance(arg, Line):
        return arg.length()
    if isinstance(arg, MovingPoint):
        return arg.length()
    raise QueryError(f"length() not applicable to {type(arg).__name__}")


def _fn_distance(a: Any, b: Any) -> Any:
    from repro.ops.distance import (
        mpoint_distance,
        mpoint_line_distance,
        mpoint_region_distance,
        mpoint_static_distance,
    )

    if isinstance(b, MovingPoint) and not isinstance(a, MovingPoint):
        a, b = b, a  # the operation is symmetric; normalize dispatch
    if isinstance(a, MovingPoint) and isinstance(b, MovingPoint):
        return mpoint_distance(a, b)
    if isinstance(a, MovingPoint) and isinstance(b, Point):
        return mpoint_static_distance(a, b)
    if isinstance(a, MovingPoint) and isinstance(b, Line):
        return mpoint_line_distance(a, b)
    if isinstance(a, MovingPoint) and isinstance(b, Region):
        return mpoint_region_distance(a, b)
    if isinstance(a, Point) and isinstance(b, Point):
        return a.distance(b)
    raise QueryError(
        f"distance() not applicable to "
        f"({type(a).__name__}, {type(b).__name__})"
    )


def _fn_atmin(m: MovingReal) -> MovingReal:
    return m.atmin()


def _fn_atmax(m: MovingReal) -> MovingReal:
    return m.atmax()


def _fn_initial(m: Mapping) -> Any:
    return m.initial()


def _fn_final(m: Mapping) -> Any:
    return m.final()


def _fn_val(p: Intime) -> Any:
    from repro.ops.aggregates import val

    return val(p)


def _fn_inst(p: Intime) -> Any:
    from repro.ops.aggregates import inst

    return inst(p)


def _fn_atinstant(m: Mapping, t: Any) -> Any:
    return m.at_instant(_unwrap_time(t))


def _unwrap_time(t: Any) -> float:
    if isinstance(t, Instant):
        return t.value
    if isinstance(t, BaseValue):
        return float(t.value)
    return float(t)


def _fn_present(m: Mapping, t: Any) -> bool:
    return m.present(_unwrap_time(t))


def _fn_inside(a: Any, b: Any) -> Any:
    from repro.ops.inside import inside
    from repro.temporal.uregion import URegion

    if isinstance(a, MovingPoint) and isinstance(b, MovingRegion):
        return inside(a, b)
    if isinstance(a, MovingPoint) and isinstance(b, Region):
        span = a.deftime().span()
        if span is None:
            return MovingBool([])
        return inside(a, MovingRegion([URegion.stationary(span, b)]))
    if isinstance(a, Point) and isinstance(b, Region):
        return b.contains_point(a)
    raise QueryError(
        f"inside() not applicable to ({type(a).__name__}, {type(b).__name__})"
    )


def _fn_passes(mp: MovingPoint, r: Region) -> bool:
    from repro.ops.interaction import passes

    return passes(mp, r)


def _fn_area(arg: Any) -> Any:
    if isinstance(arg, Region):
        return arg.area()
    if isinstance(arg, MovingRegion):
        return arg.area()
    raise QueryError(f"area() not applicable to {type(arg).__name__}")


def _fn_perimeter(arg: Any) -> Any:
    if isinstance(arg, Region):
        return arg.perimeter()
    if isinstance(arg, MovingRegion):
        return arg.perimeter()
    raise QueryError(f"perimeter() not applicable to {type(arg).__name__}")


def _fn_speed(mp: MovingPoint) -> MovingReal:
    return mp.speed()


def _fn_deftime(m: Mapping) -> RangeSet:
    return m.deftime()


def _fn_duration(r: RangeSet) -> float:
    return float(r.total_length())


def _fn_minimum(m: MovingReal) -> float:
    return m.minimum()


def _fn_maximum(m: MovingReal) -> float:
    return m.maximum()


def _fn_when(mb: MovingBool) -> RangeSet:
    return mb.when(True)


def _fn_sometimes(mb: MovingBool) -> bool:
    return bool(mb.when(True))


def _fn_always(mb: MovingBool) -> bool:
    return bool(mb) and not mb.when(False)


def _fn_ever_closer_than(a: MovingPoint, b: MovingPoint, d: Any) -> bool:
    """Bounding-cube-filtered "came closer than d" predicate.

    Cheap pre-filter before the exact minimum-distance computation —
    this is the predicate a spatio-temporal join accelerates with the
    R-tree of :mod:`repro.index`.
    """
    threshold = float(_unwrap(d))
    if not a.units or not b.units:
        return False
    ca, cb = a.bounding_cube(), b.bounding_cube()
    grown = type(ca)(
        ca.xmin - threshold,
        ca.ymin - threshold,
        ca.tmin,
        ca.xmax + threshold,
        ca.ymax + threshold,
        ca.tmax,
    )
    if not grown.intersects(cb):
        return False
    from repro.ops.distance import mpoint_distance

    dist = mpoint_distance(a, b)
    if not dist.units:
        return False
    return dist.minimum() < threshold


def _fn_mmin(a: MovingReal, b: MovingReal) -> MovingReal:
    from repro.ops.lifted import mreal_min

    return mreal_min(a, b)


def _fn_mmax(a: MovingReal, b: MovingReal) -> MovingReal:
    from repro.ops.lifted import mreal_max

    return mreal_max(a, b)


_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "trajectory": _fn_trajectory,
    "length": _fn_length,
    "distance": _fn_distance,
    "atmin": _fn_atmin,
    "atmax": _fn_atmax,
    "initial": _fn_initial,
    "final": _fn_final,
    "val": _fn_val,
    "inst": _fn_inst,
    "atinstant": _fn_atinstant,
    "present": _fn_present,
    "inside": _fn_inside,
    "passes": _fn_passes,
    "area": _fn_area,
    "perimeter": _fn_perimeter,
    "speed": _fn_speed,
    "deftime": _fn_deftime,
    "duration": _fn_duration,
    "minimum": _fn_minimum,
    "maximum": _fn_maximum,
    "when": _fn_when,
    "sometimes": _fn_sometimes,
    "always": _fn_always,
    "ever_closer_than": _fn_ever_closer_than,
    "integral": lambda m: m.integral(),
    "avg_value": lambda m: m.time_weighted_average(),
    "mmin": _fn_mmin,
    "mmax": _fn_mmax,
}


def register_function(name: str, fn: Callable[..., Any]) -> None:
    """Extend the query language with a new function."""
    _FUNCTIONS[name.lower()] = fn


def function_names() -> List[str]:
    """All registered function names."""
    return sorted(_FUNCTIONS)
