"""Query expressions: columns, literals, calls into the operation algebra.

The function registry maps SQL-level names onto the operations of
:mod:`repro.ops`, dispatching on the runtime types of the arguments —
the query language sees one overloaded ``distance`` or ``length``, just
as the abstract model's generic operations do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.base.instant import Instant
from repro.base.values import BaseValue
from repro.errors import QueryError
from repro.ranges.intime import Intime
from repro.ranges.rangeset import RangeSet
from repro.spatial.line import Line
from repro.spatial.point import Point
from repro.spatial.region import Region
from repro.temporal.mapping import (
    Mapping,
    MovingBool,
    MovingPoint,
    MovingReal,
    MovingRegion,
)

Row = Dict[str, Any]


class Expr:
    """Base class of query expressions."""

    def eval(self, row: Row) -> Any:
        raise NotImplementedError

    def columns(self) -> List[str]:
        """All column references in the expression tree."""
        return []


@dataclass(frozen=True)
class Column(Expr):
    """A (possibly qualified) column reference."""

    name: str

    def eval(self, row: Row) -> Any:
        if self.name in row:
            return row[self.name]
        # Unqualified lookup over qualified keys (alias.column).
        matches = [k for k in row if k.endswith("." + self.name)]
        if len(matches) == 1:
            return row[matches[0]]
        if len(matches) > 1:
            raise QueryError(f"ambiguous column {self.name!r}: {sorted(matches)}")
        raise QueryError(f"unknown column {self.name!r}")

    def columns(self) -> List[str]:
        return [self.name]


@dataclass(frozen=True)
class Literal(Expr):
    """A constant (number, string, or boolean)."""

    value: Any

    def eval(self, row: Row) -> Any:
        return self.value


@dataclass(frozen=True)
class Call(Expr):
    """A function application ``f(e1, ..., ek)``."""

    func: str
    args: Tuple[Expr, ...]

    def eval(self, row: Row) -> Any:
        fn = _FUNCTIONS.get(self.func.lower())
        if fn is None:
            raise QueryError(f"unknown function {self.func!r}")
        values = [a.eval(row) for a in self.args]
        try:
            return fn(*values)
        except QueryError:
            raise
        except Exception as exc:
            raise QueryError(f"error evaluating {self.func}: {exc}") from exc

    def columns(self) -> List[str]:
        out: List[str] = []
        for a in self.args:
            out.extend(a.columns())
        return out


def _unwrap(v: Any) -> Any:
    """Strip base-value wrappers for scalar comparisons."""
    if isinstance(v, BaseValue):
        return v.value if v.defined else None
    if isinstance(v, Instant):
        return v.value if v.defined else None
    return v


@dataclass(frozen=True)
class Compare(Expr):
    """A scalar comparison ``left op right``."""

    op: str
    left: Expr
    right: Expr

    def eval(self, row: Row) -> bool:
        lhs = _unwrap(self.left.eval(row))
        rhs = _unwrap(self.right.eval(row))
        if lhs is None or rhs is None:
            return False  # comparisons with undefined are false
        if self.op == "=":
            return lhs == rhs
        if self.op in ("<>", "!="):
            return lhs != rhs
        if self.op == "<":
            return lhs < rhs
        if self.op == "<=":
            return lhs <= rhs
        if self.op == ">":
            return lhs > rhs
        if self.op == ">=":
            return lhs >= rhs
        raise QueryError(f"unknown comparison operator {self.op!r}")

    def columns(self) -> List[str]:
        return self.left.columns() + self.right.columns()


@dataclass(frozen=True)
class And(Expr):
    left: Expr
    right: Expr

    def eval(self, row: Row) -> bool:
        return bool(self.left.eval(row)) and bool(self.right.eval(row))

    def columns(self) -> List[str]:
        return self.left.columns() + self.right.columns()


@dataclass(frozen=True)
class Or(Expr):
    left: Expr
    right: Expr

    def eval(self, row: Row) -> bool:
        return bool(self.left.eval(row)) or bool(self.right.eval(row))

    def columns(self) -> List[str]:
        return self.left.columns() + self.right.columns()


@dataclass(frozen=True)
class Not(Expr):
    inner: Expr

    def eval(self, row: Row) -> bool:
        return not bool(self.inner.eval(row))

    def columns(self) -> List[str]:
        return self.inner.columns()


# ---------------------------------------------------------------------------
# Function registry: SQL names → operation algebra
# ---------------------------------------------------------------------------


def _fn_trajectory(mp: MovingPoint) -> Line:
    return mp.trajectory()


def _fn_length(arg: Any) -> float:
    if isinstance(arg, Line):
        return arg.length()
    if isinstance(arg, MovingPoint):
        return arg.length()
    raise QueryError(f"length() not applicable to {type(arg).__name__}")


def _fn_distance(a: Any, b: Any) -> Any:
    from repro.ops.distance import (
        mpoint_distance,
        mpoint_line_distance,
        mpoint_region_distance,
        mpoint_static_distance,
    )

    if isinstance(b, MovingPoint) and not isinstance(a, MovingPoint):
        a, b = b, a  # the operation is symmetric; normalize dispatch
    if isinstance(a, MovingPoint) and isinstance(b, MovingPoint):
        return mpoint_distance(a, b)
    if isinstance(a, MovingPoint) and isinstance(b, Point):
        return mpoint_static_distance(a, b)
    if isinstance(a, MovingPoint) and isinstance(b, Line):
        return mpoint_line_distance(a, b)
    if isinstance(a, MovingPoint) and isinstance(b, Region):
        return mpoint_region_distance(a, b)
    if isinstance(a, Point) and isinstance(b, Point):
        return a.distance(b)
    raise QueryError(
        f"distance() not applicable to "
        f"({type(a).__name__}, {type(b).__name__})"
    )


def _fn_atmin(m: MovingReal) -> MovingReal:
    return m.atmin()


def _fn_atmax(m: MovingReal) -> MovingReal:
    return m.atmax()


def _fn_initial(m: Mapping) -> Any:
    return m.initial()


def _fn_final(m: Mapping) -> Any:
    return m.final()


def _fn_val(p: Intime) -> Any:
    from repro.ops.aggregates import val

    return val(p)


def _fn_inst(p: Intime) -> Any:
    from repro.ops.aggregates import inst

    return inst(p)


def _fn_atinstant(m: Mapping, t: Any) -> Any:
    return m.at_instant(_unwrap_time(t))


def _unwrap_time(t: Any) -> float:
    if isinstance(t, Instant):
        return t.value
    if isinstance(t, BaseValue):
        return float(t.value)
    return float(t)


def _fn_present(m: Mapping, t: Any) -> bool:
    return m.present(_unwrap_time(t))


def _fn_inside(a: Any, b: Any) -> Any:
    from repro.ops.inside import inside
    from repro.temporal.uregion import URegion

    if isinstance(a, MovingPoint) and isinstance(b, MovingRegion):
        return inside(a, b)
    if isinstance(a, MovingPoint) and isinstance(b, Region):
        span = a.deftime().span()
        if span is None:
            return MovingBool([])
        return inside(a, MovingRegion([URegion.stationary(span, b)]))
    if isinstance(a, Point) and isinstance(b, Region):
        return b.contains_point(a)
    raise QueryError(
        f"inside() not applicable to ({type(a).__name__}, {type(b).__name__})"
    )


def _fn_passes(mp: MovingPoint, r: Region) -> bool:
    from repro.ops.interaction import passes

    return passes(mp, r)


def _fn_area(arg: Any) -> Any:
    if isinstance(arg, Region):
        return arg.area()
    if isinstance(arg, MovingRegion):
        return arg.area()
    raise QueryError(f"area() not applicable to {type(arg).__name__}")


def _fn_perimeter(arg: Any) -> Any:
    if isinstance(arg, Region):
        return arg.perimeter()
    if isinstance(arg, MovingRegion):
        return arg.perimeter()
    raise QueryError(f"perimeter() not applicable to {type(arg).__name__}")


def _fn_speed(mp: MovingPoint) -> MovingReal:
    return mp.speed()


def _fn_deftime(m: Mapping) -> RangeSet:
    return m.deftime()


def _fn_duration(r: RangeSet) -> float:
    return float(r.total_length())


def _fn_minimum(m: MovingReal) -> float:
    return m.minimum()


def _fn_maximum(m: MovingReal) -> float:
    return m.maximum()


def _fn_when(mb: MovingBool) -> RangeSet:
    return mb.when(True)


def _fn_sometimes(mb: MovingBool) -> bool:
    return bool(mb.when(True))


def _fn_always(mb: MovingBool) -> bool:
    return bool(mb) and not mb.when(False)


def _fn_ever_closer_than(a: MovingPoint, b: MovingPoint, d: Any) -> bool:
    """Bounding-cube-filtered "came closer than d" predicate.

    Cheap pre-filter before the exact minimum-distance computation —
    this is the predicate a spatio-temporal join accelerates with the
    R-tree of :mod:`repro.index`.
    """
    threshold = float(_unwrap(d))
    if not a.units or not b.units:
        return False
    ca, cb = a.bounding_cube(), b.bounding_cube()
    grown = type(ca)(
        ca.xmin - threshold,
        ca.ymin - threshold,
        ca.tmin,
        ca.xmax + threshold,
        ca.ymax + threshold,
        ca.tmax,
    )
    if not grown.intersects(cb):
        return False
    from repro.ops.distance import mpoint_distance

    dist = mpoint_distance(a, b)
    if not dist.units:
        return False
    return dist.minimum() < threshold


def _fn_passes_window(
    mp: MovingPoint, xmin: Any, ymin: Any, xmax: Any, ymax: Any, t0: Any, t1: Any
) -> bool:
    """Was the moving point ever inside the rectangle during [t0, t1]?

    The classic spatio-temporal window predicate, exact (closed-form
    per-unit interval intersection, no sampling).  This scalar form is
    the reference; over a :class:`~repro.db.executor.VectorScan` the
    same call is recognized by :func:`compile_batch_predicate` and runs
    as a batched bounding-box filter plus per-candidate refinement.
    """
    from repro.ops.window import mpoint_within_rect_times
    from repro.ranges.rangeset import RangeSet
    from repro.ranges.interval import Interval
    from repro.spatial.bbox import Rect

    rect = Rect(
        float(_unwrap(xmin)), float(_unwrap(ymin)),
        float(_unwrap(xmax)), float(_unwrap(ymax)),
    )
    window = RangeSet([Interval(float(_unwrap(t0)), float(_unwrap(t1)))])
    times = mpoint_within_rect_times(mp, rect)
    return bool(times.intersection(window))


def _fn_mmin(a: MovingReal, b: MovingReal) -> MovingReal:
    from repro.ops.lifted import mreal_min

    return mreal_min(a, b)


def _fn_mmax(a: MovingReal, b: MovingReal) -> MovingReal:
    from repro.ops.lifted import mreal_max

    return mreal_max(a, b)


_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "trajectory": _fn_trajectory,
    "length": _fn_length,
    "distance": _fn_distance,
    "atmin": _fn_atmin,
    "atmax": _fn_atmax,
    "initial": _fn_initial,
    "final": _fn_final,
    "val": _fn_val,
    "inst": _fn_inst,
    "atinstant": _fn_atinstant,
    "present": _fn_present,
    "inside": _fn_inside,
    "passes": _fn_passes,
    "area": _fn_area,
    "perimeter": _fn_perimeter,
    "speed": _fn_speed,
    "deftime": _fn_deftime,
    "duration": _fn_duration,
    "minimum": _fn_minimum,
    "maximum": _fn_maximum,
    "when": _fn_when,
    "sometimes": _fn_sometimes,
    "always": _fn_always,
    "ever_closer_than": _fn_ever_closer_than,
    "passes_window": _fn_passes_window,
    "integral": lambda m: m.integral(),
    "avg_value": lambda m: m.time_weighted_average(),
    "mmin": _fn_mmin,
    "mmax": _fn_mmax,
}


def register_function(name: str, fn: Callable[..., Any]) -> None:
    """Extend the query language with a new function."""
    _FUNCTIONS[name.lower()] = fn


# ---------------------------------------------------------------------------
# Batch-expression path (the vector backend)
# ---------------------------------------------------------------------------
#
# A predicate over a VectorScan's moving-point attribute can sometimes be
# evaluated fleet-wide with one kernel call instead of once per row.  The
# compiler below recognizes those shapes and returns a callable mapping
# the scan to a boolean mask over its rows; ``None`` means "not
# vectorizable — run the scalar row loop" (a counted fallback).


def _literal_value(e: Expr) -> Any:
    if isinstance(e, Literal):
        return _unwrap(e.value)
    return None


def _refers_to(e: Expr, alias: str, attr: str) -> bool:
    return isinstance(e, Column) and e.name in (attr, f"{alias}.{attr}")


def compile_batch_predicate(
    expr: Expr, alias: str, attr: str
) -> Optional[Callable[[Any], Any]]:
    """Compile ``expr`` into a fleet-wide mask evaluator, if possible.

    Supported shapes (all arguments other than the scanned attribute
    must be literals):

    * ``present(attr, t)`` — one ``locate_units`` call;
    * ``passes_window(attr, xmin, ymin, xmax, ymax, t0, t1)`` — one
      ``bbox_filter_batch`` call, then exact per-candidate refinement;
    * ``AND`` of two supported shapes — conjunction of masks.

    The returned callable takes the :class:`~repro.db.executor.
    VectorScan` and returns a numpy boolean mask aligned with its rows.
    """
    if isinstance(expr, And):
        left = compile_batch_predicate(expr.left, alias, attr)
        right = compile_batch_predicate(expr.right, alias, attr)
        if left is None or right is None:
            return None
        return lambda scan: left(scan) & right(scan)

    if not isinstance(expr, Call):
        return None
    args = expr.args
    name = expr.func.lower()

    if name == "present" and len(args) == 2 and _refers_to(args[0], alias, attr):
        t = _literal_value(args[1])
        if t is None:
            return None
        t = float(t)

        def run_present(scan):
            if getattr(scan, "sharded", False):
                # Scatter-gather definedness over the scan's shards.
                return scan.present_mask(t)
            if getattr(scan, "parallel", False):
                from repro.parallel import parallel_present

                return parallel_present(scan.column(), t, workers=scan.workers)
            from repro.vector.kernels import locate_units

            _unit, defined = locate_units(scan.column(), t)
            return defined

        return run_present

    if (
        name == "passes_window"
        and len(args) == 7
        and _refers_to(args[0], alias, attr)
    ):
        bounds = [_literal_value(a) for a in args[1:]]
        if any(b is None for b in bounds):
            return None
        xmin, ymin, xmax, ymax, t0, t1 = (float(b) for b in bounds)

        def run_window(scan):
            import numpy as np

            if getattr(scan, "sharded", False):
                from repro.spatial.bbox import Rect

                # Shard-level bounds prune whole shards before any
                # column is mapped; the gathered owners are exactly the
                # unsharded kernel's.
                return scan.window_mask(Rect(xmin, ymin, xmax, ymax), t0, t1)
            if getattr(scan, "parallel", False):
                from repro.parallel import parallel_window_intervals
                from repro.spatial.bbox import Rect

                # Fully batched refinement: the chunked window kernel
                # returns exactly the nonempty clipped intervals, so an
                # object passes iff it owns at least one returned run.
                owners, _s, _e, _lc, _rc = parallel_window_intervals(
                    scan.column(), Rect(xmin, ymin, xmax, ymax), t0, t1,
                    workers=scan.workers,
                )
                mask = np.zeros(len(scan.mappings()), dtype=np.bool_)
                mask[owners] = True
                return mask

            from repro.ops.window import mpoint_within_rect_times
            from repro.ranges.interval import Interval
            from repro.ranges.rangeset import RangeSet
            from repro.spatial.bbox import Cube, Rect
            from repro.vector.kernels import bbox_filter_batch

            cube = Cube(xmin, ymin, t0, xmax, ymax, t1)
            bbcol = scan.bbox_column()
            coarse = bbox_filter_batch(bbcol, cube)
            mask = np.zeros(len(scan.mappings()), dtype=np.bool_)
            rect = Rect(xmin, ymin, xmax, ymax)
            window = RangeSet([Interval(t0, t1)])
            mappings = scan.mappings()
            # Exact refinement only for bbox survivors.
            for key, hit in zip(bbcol.keys, coarse):
                if not hit:
                    continue
                times = mpoint_within_rect_times(mappings[key], rect)
                mask[key] = bool(times.intersection(window))
            return mask

        return run_window

    return None


def function_names() -> List[str]:
    """All registered function names."""
    return sorted(_FUNCTIONS)
