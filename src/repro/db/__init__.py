"""A miniature relational DBMS with moving-object attribute types.

The paper's data types are designed to be plugged "as attribute types
into any DBMS data model" (Section 1).  This package supplies that
host: relations whose columns may hold ``mpoint``/``mregion``/... values
(stored through the Section-4 data structures), an expression evaluator
exposing the operation algebra, and a small SQL subset sufficient to run
the Section-2 example queries verbatim.
"""

from __future__ import annotations

from repro.db.schema import Schema
from repro.db.relation import Relation
from repro.db.catalog import Database
from repro.db.expressions import (
    Expr,
    Column,
    Literal,
    Call,
    Compare,
    And,
    Or,
    Not,
    register_function,
)
from repro.db.sql import parse_query, run_query

__all__ = [
    "Schema",
    "Relation",
    "Database",
    "Expr",
    "Column",
    "Literal",
    "Call",
    "Compare",
    "And",
    "Or",
    "Not",
    "register_function",
    "parse_query",
    "run_query",
]
