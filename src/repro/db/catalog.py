"""The database catalog: named relations.

With a :class:`repro.storage.wal.Wal` attached, catalog mutations
(create/drop of relations) are logged as CATALOG records under the
scope ``"catalog"`` and each materialized relation's tuple store logs
under ``rel:<name>`` — so :meth:`Database.recover` can rebuild the
whole database (schema *and* data) from the log after a crash.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro import faults
from repro.db.relation import Relation
from repro.db.schema import Schema
from repro.errors import (
    CatalogError,
    CorruptColumnError,
    CorruptRecordError,
    InvalidValue,
)
from repro.storage import wal as walmod
from repro.storage.tuplestore import TupleStore
from repro.storage.wal import Wal

_CATALOG_SCOPE = "catalog"
_COLSTORE_SCOPE = "colstore"


def _build_column(kind: str, mappings: Sequence):
    """Build one column kind from mappings (lazy import: the catalog
    must stay importable without pulling in numpy-backed modules)."""
    from repro.vector.store import _BUILDERS

    return _BUILDERS[kind](mappings)


class Database:
    """A collection of named relations plus query entry points."""

    def __init__(self, name: str = "modb", wal: Optional[Wal] = None):
        self.name = name
        self._relations: Dict[str, Relation] = {}
        self._wal = wal

    @property
    def wal(self) -> Optional[Wal]:
        return self._wal

    def create_relation(
        self,
        name: str,
        attributes: Sequence[Tuple[str, str]],
        materialized: bool = False,
        inline_threshold: Optional[int] = None,
    ) -> Relation:
        """Create and register a relation; raises on duplicate names.

        With a WAL attached, the DDL is durable before the relation
        becomes visible: a crash either loses the relation entirely or
        recovery re-creates it.
        """
        if name in self._relations:
            raise CatalogError(f"relation {name!r} already exists")
        if self._wal is not None:
            if faults.active:
                faults.fail("catalog.create_crash")
            self._log_op(
                {
                    "op": "create",
                    "name": name,
                    "attributes": [list(a) for a in attributes],
                    "materialized": materialized,
                    "inline_threshold": inline_threshold,
                }
            )
        rel = Relation(
            name,
            Schema(attributes),
            materialized,
            inline_threshold=inline_threshold,
            wal=self._wal,
        )
        self._relations[name] = rel
        return rel

    def drop_relation(self, name: str) -> None:
        """Remove a relation; raises on unknown names."""
        if name not in self._relations:
            raise CatalogError(f"no relation named {name!r}")
        if self._wal is not None:
            self._log_op({"op": "drop", "name": name})
        del self._relations[name]

    def _log_op(self, doc: dict) -> None:
        assert self._wal is not None
        self._wal.append(
            walmod.CATALOG,
            json.dumps(doc, sort_keys=True).encode("utf-8"),
            scope=_CATALOG_SCOPE,
        )
        self._wal.sync()

    def checkpoint_columns(
        self,
        root: str,
        relation: str,
        attribute: str,
        kinds: Sequence[str] = ("upoint", "bbox"),
    ):
        """Persist columns for one relation attribute and log a COLSTORE
        checkpoint tying the files to this WAL position.

        Builds the requested column kinds from the relation's current
        rows, writes them into the :class:`repro.vector.store.
        ColumnStore` at ``root``, then appends a durable COLSTORE record
        carrying the store root, the source relation/attribute, and the
        manifest CRC of the generation just written.  After a crash,
        :meth:`recover` re-validates exactly that generation and
        rebuilds it from the recovered relation when validation fails —
        the column files get the same detect/degrade/repair treatment
        PR 4 gave pages.

        Returns the :class:`ColumnStore`.
        """
        from repro.vector.store import ColumnStore

        rel = self.relation(relation)
        mappings = [row[attribute] for row in rel.scan()]
        store = ColumnStore(root)
        for kind in kinds:
            store.save(
                kind, _build_column(kind, mappings), n_objects=len(mappings)
            )
        doc = {
            "op": "checkpoint",
            "root": store.root,
            "relation": relation,
            "attribute": attribute,
            "kinds": list(kinds),
            "manifest_crc": store._manifest()[1],
        }
        if self._wal is not None:
            self._wal.append(
                walmod.COLSTORE,
                json.dumps(doc, sort_keys=True).encode("utf-8"),
                scope=_COLSTORE_SCOPE,
            )
            self._wal.sync()
        return store

    @classmethod
    def recover(cls, wal: Wal, name: str = "modb") -> "Database":
        """Rebuild a database — catalog and relation contents — from a WAL.

        Replays the durable CATALOG records to reconstruct the schema,
        then recovers each surviving materialized relation's tuple
        store from its ``rel:<name>`` records.  The recovered relations
        get fresh page files: every committed FLOB page was logged as a
        redo image, so replay rewrites them from the log alone.
        """
        db = cls(name, wal=None)  # silence logging while replaying DDL
        specs: Dict[str, dict] = {}
        colstores: Dict[str, dict] = {}  # store root → last COLSTORE doc
        for rec in wal.records():
            if rec.rec_type == walmod.COLSTORE and rec.scope == _COLSTORE_SCOPE:
                try:
                    doc = json.loads(rec.payload.decode("utf-8"))
                    colstores[doc["root"]] = doc
                except (ValueError, KeyError, UnicodeDecodeError) as exc:
                    raise CorruptRecordError(
                        f"undecodable COLSTORE record: {exc}"
                    ) from exc
                continue
            if rec.rec_type != walmod.CATALOG or rec.scope != _CATALOG_SCOPE:
                continue
            try:
                doc = json.loads(rec.payload.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                raise CorruptRecordError(
                    f"undecodable CATALOG record: {exc}"
                ) from exc
            if doc.get("op") == "create":
                specs[doc["name"]] = doc
            elif doc.get("op") == "drop":
                specs.pop(doc["name"], None)
        for rel_name, doc in specs.items():
            attrs = [tuple(a) for a in doc["attributes"]]
            rel = Relation(
                rel_name,
                Schema(attrs),
                doc["materialized"],
                inline_threshold=doc["inline_threshold"],
                wal=wal,
            )
            if rel._store is not None:
                # Replace the fresh store with one replayed from the
                # log; every committed FLOB page image lives in the WAL,
                # so the fresh page file is rebuilt from replay alone.
                rel._store = TupleStore.recover(
                    [(a.name, a.type_name) for a in rel.schema],
                    rel._store.pagefile,
                    wal,
                    wal_scope=f"rel:{rel_name}",
                    inline_threshold=doc["inline_threshold"],
                )
            db._relations[rel_name] = rel
        for doc in colstores.values():
            db._recover_colstore(doc)
        db._wal = wal
        return db

    def _recover_colstore(self, doc: dict) -> None:
        """Validate one checkpointed column store; rebuild when stale.

        The full-CRC :meth:`ColumnStore.verify` tier runs here (recovery
        is the one place a linear payload scan is worth its cost), plus
        a manifest-CRC comparison against the logged checkpoint — a
        manifest that verifies but is not the checkpointed generation is
        *stale* (written after the checkpoint, torn before its own
        COLSTORE record made it to the log) and rebuilt too.  Rebuilds
        come from the already-recovered relation (counted under
        ``colstore.rebuilds``); when the source relation did not survive
        or the rebuild itself fails, the store is left untouched and
        unused — degraded to tuple-store scans, never wrong bytes.
        """
        from repro import obs
        from repro.errors import StorageError
        from repro.vector.store import ColumnStore

        store = ColumnStore(doc["root"])
        try:
            store.verify()
            if store._manifest()[1] == doc.get("manifest_crc"):
                return  # checkpointed generation intact
        except CorruptColumnError:
            pass
        rel = self._relations.get(doc.get("relation", ""))
        if rel is None:
            return
        try:
            mappings = [row[doc["attribute"]] for row in rel.scan()]
            for kind in doc.get("kinds", ()):
                if obs.enabled:
                    obs.add("colstore.rebuilds")
                store.save(
                    kind, _build_column(kind, mappings), n_objects=len(mappings)
                )
        except (KeyError, StorageError, InvalidValue, OSError):
            return  # degraded: queries fall back to tuple-store scans

    def relation(self, name: str) -> Relation:
        """Look up a relation by name."""
        rel = self._relations.get(name)
        if rel is None:
            raise CatalogError(f"no relation named {name!r}")
        return rel

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def relation_names(self) -> List[str]:
        return sorted(self._relations)

    def query(self, sql: str, strict: bool = True) -> List[dict]:
        """Parse and execute a SQL query against this database.

        ``strict=False`` lets scans quarantine corrupt tuples (counted
        under ``storage.quarantined``) instead of aborting the query.
        """
        from repro.db.sql import run_query

        return run_query(self, sql, strict=strict)
