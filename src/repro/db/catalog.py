"""The database catalog: named relations."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.db.relation import Relation
from repro.db.schema import Schema
from repro.errors import CatalogError


class Database:
    """A collection of named relations plus query entry points."""

    def __init__(self, name: str = "modb"):
        self.name = name
        self._relations: Dict[str, Relation] = {}

    def create_relation(
        self,
        name: str,
        attributes: Sequence[Tuple[str, str]],
        materialized: bool = False,
        inline_threshold: Optional[int] = None,
    ) -> Relation:
        """Create and register a relation; raises on duplicate names."""
        if name in self._relations:
            raise CatalogError(f"relation {name!r} already exists")
        rel = Relation(
            name, Schema(attributes), materialized, inline_threshold=inline_threshold
        )
        self._relations[name] = rel
        return rel

    def drop_relation(self, name: str) -> None:
        """Remove a relation; raises on unknown names."""
        if name not in self._relations:
            raise CatalogError(f"no relation named {name!r}")
        del self._relations[name]

    def relation(self, name: str) -> Relation:
        """Look up a relation by name."""
        rel = self._relations.get(name)
        if rel is None:
            raise CatalogError(f"no relation named {name!r}")
        return rel

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def relation_names(self) -> List[str]:
        return sorted(self._relations)

    def query(self, sql: str) -> List[dict]:
        """Parse and execute a SQL query against this database."""
        from repro.db.sql import run_query

        return run_query(self, sql)
