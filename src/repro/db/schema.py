"""Relation schemas: attribute names bound to attribute data types."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.errors import CatalogError
from repro.storage.records import codec_for

#: Type names accepted in schemas — the storage codec registry is the
#: single source of truth for what can be a column type.
def _validate_type(type_name: str) -> str:
    try:
        codec_for(type_name)
    except Exception as exc:
        raise CatalogError(f"unknown attribute type {type_name!r}") from exc
    return type_name


@dataclass(frozen=True)
class Attribute:
    """One column: a name and an attribute data type."""

    name: str
    type_name: str


class Schema:
    """An ordered list of attributes with unique names."""

    def __init__(self, attributes: Sequence[Tuple[str, str]]):
        names = [n for n, _ in attributes]
        if len(set(names)) != len(names):
            raise CatalogError("duplicate attribute names in schema")
        self._attrs = [
            Attribute(name, _validate_type(type_name))
            for name, type_name in attributes
        ]

    @property
    def attributes(self) -> List[Attribute]:
        return list(self._attrs)

    @property
    def names(self) -> List[str]:
        return [a.name for a in self._attrs]

    def __len__(self) -> int:
        return len(self._attrs)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attrs)

    def index_of(self, name: str) -> int:
        """Position of the attribute ``name``; raises on unknown names."""
        for i, a in enumerate(self._attrs):
            if a.name == name:
                return i
        raise CatalogError(f"no attribute named {name!r}")

    def type_of(self, name: str) -> str:
        """The type name of the attribute ``name``."""
        return self._attrs[self.index_of(name)].type_name

    def __contains__(self, name: str) -> bool:
        return any(a.name == name for a in self._attrs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attrs == other._attrs

    def __repr__(self) -> str:
        inner = ", ".join(f"{a.name}: {a.type_name}" for a in self._attrs)
        return f"Schema({inner})"
