"""Pull-based query execution operators.

A tiny Volcano-style pipeline: every operator yields rows (dicts keyed
by possibly-qualified column names).  The planner in :mod:`repro.db.sql`
composes scans, a cross product for multi-relation FROM clauses, a
selection, and a projection — all the Section-2 queries need.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.db.expressions import Expr, Row
from repro.db.relation import Relation
from repro.errors import QueryError


class Operator:
    """Base class of executable plan nodes."""

    def rows(self) -> Iterator[Row]:
        raise NotImplementedError

    def execute(self) -> List[Row]:
        """Materialize the operator's output."""
        return list(self.rows())


class SeqScan(Operator):
    """Scan one relation, qualifying column names with the alias.

    ``strict=False`` quarantines tuples whose storage representation
    fails verification (skipped, counted under ``storage.quarantined``)
    instead of aborting the whole query.
    """

    def __init__(
        self,
        relation: Relation,
        alias: Optional[str] = None,
        strict: bool = True,
    ):
        self.relation = relation
        self.alias = alias or relation.name
        self.strict = strict

    def rows(self) -> Iterator[Row]:
        for row in self.relation.scan(strict=self.strict):
            yield {f"{self.alias}.{k}": v for k, v in row.items()}


class VectorScan(SeqScan):
    """A scan that additionally exposes its moving-point attribute as a
    columnar batch (Section-4 layout, :mod:`repro.vector.columns`).

    Behaves exactly like :class:`SeqScan` when iterated; on top of that
    it materializes the relation once and caches the attribute's
    :class:`~repro.vector.columns.UPointColumn` and per-mapping
    :class:`~repro.vector.columns.BBoxColumn`, so a parent
    :class:`Select` whose predicate compiles to a batch kernel can
    evaluate it fleet-wide in one call.
    """

    #: Whether batch predicates over this scan should dispatch through
    #: the chunked shared-memory pool (:mod:`repro.parallel`).
    parallel = False

    def __init__(self, relation: Relation, alias: Optional[str] = None,
                 attr: Optional[str] = None, strict: bool = True):
        super().__init__(relation, alias, strict)
        self.attr = attr
        self._rows: Optional[List[Row]] = None
        self._mappings: Optional[List[Any]] = None
        self._column: Any = None
        self._bbox_column: Any = None

    def materialized_rows(self) -> List[Row]:
        """The qualified rows, scanned once and cached."""
        if self._rows is None:
            self._rows = [
                {f"{self.alias}.{k}": v for k, v in row.items()}
                for row in self.relation.scan(strict=self.strict)
            ]
        return self._rows

    def mappings(self) -> List[Any]:
        """The moving-point attribute values, aligned with the rows."""
        if self._mappings is None:
            if self.attr is None:
                raise QueryError(f"VectorScan over {self.alias!r} has no "
                                 "moving-point attribute")
            key = f"{self.alias}.{self.attr}"
            self._mappings = [row[key] for row in self.materialized_rows()]
        return self._mappings

    def column(self):
        """The attribute's unit column (built lazily, cached)."""
        if self._column is None:
            from repro.vector.columns import UPointColumn

            self._column = UPointColumn.from_mappings(self.mappings())
        return self._column

    def bbox_column(self):
        """Per-mapping bounding cubes of the attribute (lazily, cached)."""
        if self._bbox_column is None:
            from repro.vector.columns import BBoxColumn

            self._bbox_column = BBoxColumn.from_mappings(self.mappings())
        return self._bbox_column

    def rows(self) -> Iterator[Row]:
        return iter(self.materialized_rows())


class ParallelScan(VectorScan):
    """A :class:`VectorScan` whose batch predicates run chunked over the
    shared-memory process pool (:mod:`repro.parallel`).

    Identical row output; only the batch-kernel dispatch differs, and it
    degrades to the single-process kernels (counted under
    ``parallel.fallback.*``) whenever the pool is unavailable or the
    fleet is too small to out-earn dispatch.
    """

    parallel = True

    def __init__(self, relation: Relation, alias: Optional[str] = None,
                 attr: Optional[str] = None, strict: bool = True,
                 workers: Optional[int] = None):
        super().__init__(relation, alias, attr, strict)
        self.workers = workers


class MmapScan(VectorScan):
    """A :class:`VectorScan` whose columns come from the persistent
    column store (:mod:`repro.vector.store`) instead of a per-process
    transcription of the tuple store.

    Row output is identical; only the column acquisition differs: an
    intact store generation is served as ``np.memmap`` views (the
    cold-start path this operator exists for, counted under
    ``colstore.hits``), a missing/corrupt/stale one is rebuilt from the
    scanned mappings and re-persisted (``colstore.rebuilds``).  With
    ``parallel=True`` batch predicates dispatch through the pool like a
    :class:`ParallelScan` — workers then map the same files
    (``colstore.mmap_direct``) rather than receiving a shm copy.
    """

    def __init__(self, relation: Relation, alias: Optional[str] = None,
                 attr: Optional[str] = None, strict: bool = True,
                 store_root: Optional[str] = None,
                 parallel: bool = False, workers: Optional[int] = None):
        super().__init__(relation, alias, attr, strict)
        self.store_root = store_root
        self.parallel = parallel
        self.workers = workers

    def _store_column(self, kind: str) -> Any:
        from repro.errors import CorruptColumnError, StorageError
        from repro.vector.store import ColumnStore

        if self.store_root is None:
            return None
        store = ColumnStore(self.store_root)
        # Serve straight from disk when the stored generation matches
        # the relation's cardinality — without materializing the rows,
        # which is the whole cold-start saving.  Any mismatch falls
        # through to the validating load-or-rebuild over the scanned
        # mappings.
        try:
            entry = store.manifest()["columns"].get(kind)
            if entry is not None and entry.get("n_objects") == len(self.relation):
                return store.load(kind)
        except CorruptColumnError:
            pass
        try:
            return store.load_or_rebuild(kind, self.mappings())
        except (OSError, StorageError):
            return None  # degraded: in-memory transcription below

    def column(self):
        if self._column is None:
            self._column = self._store_column("upoint")
        if self._column is None:
            return super().column()
        return self._column

    def bbox_column(self):
        if self._bbox_column is None:
            self._bbox_column = self._store_column("bbox")
        if self._bbox_column is None:
            return super().bbox_column()
        return self._bbox_column


class ShardedScan(VectorScan):
    """A :class:`VectorScan` hash-partitioned into fleet shards, batch
    predicates answered by scatter-gather (:mod:`repro.shard`).

    Row output is identical; the difference is physical: the attribute's
    mappings are partitioned by object id into ``n_shards`` shard
    fleets, each with its own columns held under a byte-budgeted
    :class:`~repro.shard.manager.ShardManager` — window predicates prune
    whole shards by their bounding cubes before any column is mapped,
    and the per-shard kernel outputs gather back bit-identical to the
    unsharded batch (the ``tests/test_shard_properties.py`` identity).
    """

    #: Batch predicates route through the scatter-gather executor.
    sharded = True

    def __init__(self, relation: Relation, alias: Optional[str] = None,
                 attr: Optional[str] = None, strict: bool = True,
                 shards: int = 2, workers: Optional[int] = None,
                 memory_budget: Optional[int] = None):
        super().__init__(relation, alias, attr, strict)
        self.n_shards = max(1, int(shards))
        self.workers = workers
        self.memory_budget = memory_budget
        self._manager: Any = None

    def manager(self):
        """The scan's shard manager (partitioned lazily, cached)."""
        if self._manager is None:
            from repro.shard.fleet import ShardedFleet
            from repro.shard.manager import ShardManager

            self._manager = ShardManager(
                ShardedFleet(self.mappings(), self.n_shards),
                budget=self.memory_budget,
            )
        return self._manager

    def present_mask(self, t: float) -> Any:
        """Definedness of every object at ``t``, scattered per shard."""
        from repro.shard.exec import sharded_atinstant

        _x, _y, defined = sharded_atinstant(
            self.manager(), t, workers=self.workers
        )
        return defined

    def window_mask(self, rect: Any, t0: float, t1: float) -> Any:
        """Objects inside ``rect`` during ``[t0, t1]``, via the pruned
        scatter-gather window kernel."""
        import numpy as np

        from repro.shard.exec import sharded_window_intervals

        owners = sharded_window_intervals(
            self.manager(), rect, t0, t1, workers=self.workers
        )[0]
        mask = np.zeros(len(self.mappings()), dtype=bool)
        mask[owners] = True
        return mask


class CrossProduct(Operator):
    """Nested-loop cross product of two inputs (the spatio-temporal join
    of Section 2 is a cross product plus a lifted selection)."""

    def __init__(self, left: Operator, right: Operator):
        self.left = left
        self.right = right

    def rows(self) -> Iterator[Row]:
        right_rows = self.right.execute()
        for lrow in self.left.rows():
            for rrow in right_rows:
                merged = dict(lrow)
                overlap = set(merged) & set(rrow)
                if overlap:
                    raise QueryError(f"ambiguous columns in join: {sorted(overlap)}")
                merged.update(rrow)
                yield merged


class HashJoin(Operator):
    """Equi-join: build a hash table on the right input's key expression."""

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_key: Expr,
        right_key: Expr,
    ):
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key

    def rows(self) -> Iterator[Row]:
        from repro.db.expressions import _unwrap

        table: Dict[Any, List[Row]] = {}
        for rrow in self.right.rows():
            key = _unwrap(self.right_key.eval(rrow))
            table.setdefault(key, []).append(rrow)
        for lrow in self.left.rows():
            key = _unwrap(self.left_key.eval(lrow))
            for rrow in table.get(key, ()):
                merged = dict(lrow)
                overlap = set(merged) & set(rrow)
                if overlap:
                    raise QueryError(
                        f"ambiguous columns in join: {sorted(overlap)}"
                    )
                merged.update(rrow)
                yield merged


class Select(Operator):
    """Filter rows by a boolean expression.

    When the child is a :class:`VectorScan` and the predicate compiles
    to a batch kernel (see ``compile_batch_predicate``), the filter runs
    fleet-wide in one mask evaluation instead of once per row; a
    non-compilable predicate over a VectorScan falls back to the scalar
    row loop and counts the event.
    """

    def __init__(self, child: Operator, predicate: Expr):
        self.child = child
        self.predicate = predicate

    def rows(self) -> Iterator[Row]:
        if isinstance(self.child, VectorScan) and self.child.attr is not None:
            from repro import obs
            from repro.db.expressions import compile_batch_predicate

            compiled = compile_batch_predicate(
                self.predicate, self.child.alias, self.child.attr
            )
            if compiled is not None:
                mask = compiled(self.child)
                if obs.enabled:
                    obs.counters.add("vector.batch_select.calls")
                    obs.counters.add("vector.batch_select.rows", len(mask))
                for row, hit in zip(self.child.materialized_rows(), mask):
                    if hit:
                        yield row
                return
            if obs.enabled:
                obs.counters.add("vector.fallback_to_scalar")
                obs.counters.add("vector.fallback_to_scalar.predicate")
        for row in self.child.rows():
            if self.predicate.eval(row):
                yield row


class Project(Operator):
    """Evaluate output expressions, producing named result columns."""

    def __init__(self, child: Operator, outputs: Sequence[Tuple[str, Expr]]):
        self.child = child
        self.outputs = list(outputs)

    def rows(self) -> Iterator[Row]:
        for row in self.child.rows():
            yield {name: expr.eval(row) for name, expr in self.outputs}


class Sort(Operator):
    """Sort rows by a list of (expression, descending) keys."""

    def __init__(self, child: Operator, keys: Sequence[Tuple[Expr, bool]]):
        self.child = child
        self.keys = list(keys)

    def rows(self) -> Iterator[Row]:
        materialized = self.child.execute()
        # Stable multi-key sort: apply keys last-to-first.
        from repro.db.expressions import _unwrap

        for expr, descending in reversed(self.keys):
            materialized.sort(
                key=lambda row: _unwrap(expr.eval(row)), reverse=descending
            )
        return iter(materialized)


_AGGREGATES = {
    "count": lambda vals: len(vals),
    "min": lambda vals: min(vals),
    "max": lambda vals: max(vals),
    "sum": lambda vals: sum(vals),
    "avg": lambda vals: sum(vals) / len(vals) if vals else None,
}


class Aggregate(Operator):
    """Grouped aggregation.

    ``groups`` are expressions whose values partition the input; each
    output column is either a group expression or an aggregate
    ``(name, func, argument-expression)``.  With no group expressions
    the whole input forms one group (global aggregates).
    """

    def __init__(
        self,
        child: Operator,
        groups: Sequence[Tuple[str, Expr]],
        aggregates: Sequence[Tuple[str, str, Optional[Expr]]],
    ):
        self.child = child
        self.groups = list(groups)
        self.aggregates = list(aggregates)

    def rows(self) -> Iterator[Row]:
        from repro.db.expressions import _unwrap

        buckets: Dict[tuple, List[Row]] = {}
        order: List[tuple] = []
        for row in self.child.rows():
            key = tuple(_unwrap(expr.eval(row)) for _name, expr in self.groups)
            if key not in buckets:
                buckets[key] = []
                order.append(key)
            buckets[key].append(row)
        if not self.groups and not buckets:
            buckets[()] = []
            order.append(())
        for key in order:
            members = buckets[key]
            out: Row = {
                name: value for (name, _e), value in zip(self.groups, key)
            }
            for name, func, arg in self.aggregates:
                fn = _AGGREGATES.get(func)
                if fn is None:
                    raise QueryError(f"unknown aggregate {func!r}")
                if func == "count" and arg is None:
                    out[name] = len(members)
                    continue
                if arg is None:
                    raise QueryError(f"aggregate {func} needs an argument")
                vals = [_unwrap(arg.eval(row)) for row in members]
                vals = [v for v in vals if v is not None]
                out[name] = fn(vals) if vals or func == "count" else None
            yield out


class Distinct(Operator):
    """Remove duplicate rows (SELECT DISTINCT)."""

    def __init__(self, child: Operator):
        self.child = child

    def rows(self) -> Iterator[Row]:
        seen: set = set()
        for row in self.child.rows():
            try:
                key = tuple(sorted((k, v) for k, v in row.items()))
                hash(key)
            except TypeError:
                key = tuple(sorted((k, repr(v)) for k, v in row.items()))
            if key in seen:
                continue
            seen.add(key)
            yield row


class Limit(Operator):
    """Stop after ``n`` rows."""

    def __init__(self, child: Operator, n: int):
        self.child = child
        self.n = n

    def rows(self) -> Iterator[Row]:
        count = 0
        for row in self.child.rows():
            if count >= self.n:
                return
            yield row
            count += 1


class IndexFilteredProduct(Operator):
    """Cross product pre-filtered by a 3-D R-tree over bounding cubes.

    For each left row, only the right rows whose moving-attribute
    bounding cubes come within ``slack`` of the left one's are paired —
    the candidate set a spatio-temporal join index produces.  The
    remaining predicate still runs afterwards, so results equal the
    plain cross product's (an ablation the benchmarks measure).
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_attr: str,
        right_attr: str,
        slack: float = 0.0,
    ):
        self.left = left
        self.right = right
        self.left_attr = left_attr
        self.right_attr = right_attr
        self.slack = slack

    def rows(self) -> Iterator[Row]:
        from repro.index.rtree import RTree3D
        from repro.spatial.bbox import Cube

        right_rows = self.right.execute()
        tree = RTree3D()
        for idx, rrow in enumerate(right_rows):
            mv = rrow[self.right_attr]
            if not mv:
                continue
            tree.insert(mv.bounding_cube(), idx)
        for lrow in self.left.rows():
            mv = lrow[self.left_attr]
            if not mv:
                continue
            c = mv.bounding_cube()
            probe = Cube(
                c.xmin - self.slack,
                c.ymin - self.slack,
                c.tmin,
                c.xmax + self.slack,
                c.ymax + self.slack,
                c.tmax,
            )
            for idx in tree.search(probe):
                merged = dict(lrow)
                merged.update(right_rows[idx])
                yield merged
