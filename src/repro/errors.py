"""Exception hierarchy for the moving objects database library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class InvalidValue(ReproError):
    """A finite representation violates the constraints of its data type.

    Raised by type constructors when the supplied components do not form a
    valid carrier-set element — e.g. a set of segments with collinear
    overlaps offered as a ``line`` value, or a ``mapping`` whose unit
    intervals overlap.
    """


class UndefinedValue(ReproError):
    """An operation was applied to the undefined value (bottom)."""


class TypeMismatch(ReproError):
    """An operation received arguments of the wrong data type."""


class StorageError(ReproError):
    """A failure in the storage engine (pages, arrays, codecs)."""


class CatalogError(ReproError):
    """A failure in the database catalog (unknown relation, duplicate name)."""


class QueryError(ReproError):
    """A failure while parsing, planning, or executing a query."""


class NotClosed(ReproError):
    """An operation of the abstract model is not closed in the discrete model.

    The paper notes that a few operations (notably ``derivative``) cannot be
    transferred to the discrete representation because the chosen unit
    functions are not closed under them.
    """
