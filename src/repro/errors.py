"""Exception hierarchy for the moving objects database library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class InvalidValue(ReproError):
    """A finite representation violates the constraints of its data type.

    Raised by type constructors when the supplied components do not form a
    valid carrier-set element — e.g. a set of segments with collinear
    overlaps offered as a ``line`` value, or a ``mapping`` whose unit
    intervals overlap.
    """


class UndefinedValue(ReproError):
    """An operation was applied to the undefined value (bottom)."""


class TypeMismatch(ReproError):
    """An operation received arguments of the wrong data type."""


class StorageError(ReproError):
    """A failure in the storage engine (pages, arrays, codecs)."""


class CorruptPageError(StorageError):
    """A page read back from disk failed verification.

    Raised by :meth:`repro.storage.pages.PageFile.read_page` when the
    page header's magic/version is wrong or the stored CRC does not
    match the payload — a torn write, a bit flip, or a misdirected
    write.  The message carries the page number; the page is never
    returned as data.
    """


class CorruptRecordError(StorageError):
    """A serialized value failed validation during decoding.

    Raised by the storage codecs (:mod:`repro.storage.records`), the
    database-array deserializer, and the tuple store when a byte string
    is shorter than its declared lengths, an embedded checksum does not
    match, or an offset/index points outside its array.  Decoders raise
    this instead of surfacing bare ``struct.error``/``IndexError`` — and
    never silently return a wrong value.
    """


class CorruptColumnError(StorageError):
    """A persistent column file failed validation when opened or verified.

    Raised by :mod:`repro.vector.store` when a column file's header
    magic/version is wrong, its record count disagrees with the
    CRC-checked manifest, the stored dtype hash does not match the
    in-memory struct layout, or a full-CRC verification pass finds the
    payload bytes corrupted.  The store never serves bytes from a file
    that failed validation; callers degrade to rebuilding the column
    from the tuple store (counted under ``colstore.rebuilds``).
    """


class TransientIOError(StorageError):
    """A read failed in a way that is worth retrying.

    The buffer pool retries these with bounded backoff
    (``buffer.retries``); only after the retry budget is exhausted does
    the error propagate.
    """


class WalError(StorageError):
    """Misuse of the write-ahead log (not a torn tail, which recovery
    tolerates by design)."""


class SimulatedCrash(ReproError):
    """A failpoint simulating the process dying mid-operation.

    Raised by armed :mod:`repro.faults` injection points.  Nothing in
    the library catches it (it is deliberately *not* a
    :class:`StorageError`, so quarantine/retry paths let it through);
    the crash-matrix harness catches it at the top, discards all
    in-memory state, and exercises recovery.
    """


class CatalogError(ReproError):
    """A failure in the database catalog (unknown relation, duplicate name)."""


class QueryError(ReproError):
    """A failure while parsing, planning, or executing a query."""


class DeadlineExceeded(ReproError):
    """A request's deadline expired before the work completed.

    Carried by :class:`repro.deadline.Deadline.check` when a budget set
    with the query service's ``DEADLINE=<ms>`` request attribute runs
    out.  Executors check at chunk boundaries, the parallel dispatcher
    checks between chunk polls, and the session layer enforces a
    wall-clock backstop — all three surface as this one type, answered
    on the wire as a single ``ERR DeadlineExceeded`` line and counted
    under ``server.timeouts``.
    """


class Overloaded(ReproError):
    """The query service shed a request instead of queueing it.

    Raised by the session layer's admission control when the number of
    in-flight requests is past its bound (or the ingest queue is past
    its watermark).  Carries ``retry_after_ms``, a backoff hint derived
    from the current latency window and queue excess; the hint is also
    embedded in the error text so it crosses the wire inside the
    ``ERR Overloaded`` line.
    """

    def __init__(self, message: str, retry_after_ms: int = 0):
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class ProtocolError(ReproError):
    """A malformed request on the query-service line protocol.

    Raised by :mod:`repro.server.protocol` when a request line names an
    unknown command or carries the wrong number / type of arguments.
    The session layer answers with a single ``ERR`` line and keeps the
    connection open; it never tears the session down for a bad request.
    """


class NotClosed(ReproError):
    """An operation of the abstract model is not closed in the discrete model.

    The paper notes that a few operations (notably ``derivative``) cannot be
    transferred to the discrete representation because the chosen unit
    functions are not closed under them.
    """
