"""Operation-counting observability for the Section-5 complexity claims.

The paper's only quantitative statements are asymptotic: ``atinstant``
locates its unit with O(log n) probes of the unit array (Section 5.1),
and ``inside`` scans the refinement partition in O(n + m) and answers
each plumbline test in O(segments) (Section 5.2).  Wall-clock timing
cannot distinguish a log-factor regression from interpreter jitter, so
this module counts the work the kernels actually do:

* **counters** — monotonically increasing operation counts
  (``mapping.unit_at.probes``, ``plumbline.segments``, ...);
* **timers** — total seconds and call counts per named scope;
* **high-water gauges** — the maximum value ever recorded for a name.

Everything funnels through one process-local :class:`Counters` registry.
Collection is *disabled by default* (``repro.config.OBS_ENABLED``); an
instrumented hot path pays exactly one module-attribute branch
(``if obs.enabled:``) when disabled.

Usage::

    from repro import obs

    obs.enable()
    with obs.scope("inside") as s:
        s.add("unit_pairs")        # counts inside.unit_pairs
        ...                        # scope exit records the elapsed time
    print(obs.report())

    with obs.capture() as counters:   # enable + reset, restore on exit
        mapping.unit_at(t)
        probes = counters.get("mapping.unit_at.probes")

The CLI exposes the same data via ``python -m repro --profile <cmd>``.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, Iterator, Optional, Tuple

from repro.config import OBS_ENABLED

__all__ = [
    "COUNTER_NAMES",
    "GAUGE_NAMES",
    "TIMER_NAMES",
    "Counters",
    "add",
    "capture",
    "counters",
    "disable",
    "enable",
    "enabled",
    "get",
    "high_water",
    "report",
    "reset",
    "scope",
    "snapshot",
]

#: Global collection switch.  Instrumented code guards every recording
#: with ``if obs.enabled:`` so the disabled fast path costs one branch.
enabled: bool = OBS_ENABLED

# ---------------------------------------------------------------------------
# Name registries (MOD004)
# ---------------------------------------------------------------------------
# Every counter/timer/gauge name written anywhere in repro must be
# declared here.  ``repro-lint`` (rule MOD004) cross-checks the two
# directions statically: a write site using an unregistered name is a
# typo'd write-only counter; a registered name never written is dead
# weight.  Keep the literals AST-parseable (no comprehensions, no
# concatenation).  Readers need no registration: ``report()`` and the
# CLI's ``--profile`` dump whatever was recorded.

#: Every monotone counter name in the codebase.
COUNTER_NAMES: FrozenSet[str] = frozenset({
    # temporal kernels (Section 5.1)
    "mapping.unit_at.calls",
    "mapping.unit_at.probes",
    "mapping.at_periods.calls",
    "mapping.at_periods.steps",
    "refinement.calls",
    "refinement.unit_visits",
    "refinement.boundaries",
    "refinement.visits",
    "refinement.pieces",
    # geometric kernels (Section 5.2)
    "plumbline.calls",
    "plumbline.segments",
    "plumbline.crossings",
    "plumbline.point_tests",
    "inside.unit_pairs",
    "inside.crossing_quads",
    "inside.crossings",
    "inside.plumbline_tests",
    "inside.bbox_fast_path",
    "atinstant.msegs_evaluated",
    # storage layer (Section 4)
    "storage.page_reads",
    "storage.page_writes",
    "storage.flob_writes",
    "storage.flob_pages_written",
    "storage.flob_reads",
    "storage.flob_pages_read",
    "storage.darray_reads",
    "storage.checksum_failures",
    "storage.quarantined",
    "buffer.hits",
    "buffer.misses",
    "buffer.retries",
    # write-ahead log (crash safety)
    "wal.records",
    "wal.syncs",
    "wal.commits",
    "wal.checkpoints",
    "wal.recovered",
    "wal.truncated_tails",
    "rtree.nodes_visited",
    # columnar backend (per-kernel calls/rows via _record_rows)
    "vector.locate_units.calls",
    "vector.locate_units.rows",
    "vector.locate_units.passes",
    "vector.atinstant_batch.calls",
    "vector.atinstant_batch.rows",
    "vector.ureal_atinstant_batch.calls",
    "vector.ureal_atinstant_batch.rows",
    "vector.bbox_filter.calls",
    "vector.bbox_filter.rows",
    "vector.bbox_filter.hits",
    "vector.plumbline.calls",
    "vector.plumbline.rows",
    "vector.plumbline.segments",
    "vector.on_boundary.calls",
    "vector.on_boundary.rows",
    "vector.inside_prefilter.calls",
    "vector.inside_prefilter.rows",
    "vector.batch_select.calls",
    "vector.batch_select.rows",
    "vector.window_times_batch.calls",
    "vector.window_times_batch.rows",
    "vector.window_intervals_batch.calls",
    "vector.window_intervals_batch.rows",
    # backend dispatch fallbacks (via _fallback(reason))
    "vector.fallback_to_scalar",
    "vector.fallback_to_scalar.upoint_column",
    "vector.fallback_to_scalar.ureal_column",
    "vector.fallback_to_scalar.bbox_column",
    "vector.fallback_to_scalar.predicate",
    "vector.fallback_to_scalar.window_column",
    # columnar cache (repro.vector.cache)
    "colcache.hits",
    "colcache.misses",
    "colcache.invalidations",
    # persistent column store (repro.vector.store)
    "colstore.hits",
    "colstore.rebuilds",
    "colstore.validations",
    "colstore.bytes_mapped",
    "colstore.mmap_direct",
    # mmap→shm downgrades (via _mmap_fallback(reason))
    "colstore.mmap_fallback",
    "colstore.mmap_fallback.manifest",
    "colstore.mmap_fallback.stale",
    # parallel execution (via _parallel_fallback(reason))
    "parallel.chunks",
    "parallel.fallback",
    "parallel.fallback.workers",
    "parallel.fallback.small_fleet",
    "parallel.fallback.no_pool",
    "parallel.fallback.error",
    "parallel.shm_reclaimed",
    # worker-failure recovery (repro.parallel.pool.run_tasks)
    "parallel.worker_deaths",
    "parallel.chunk_retries",
    "parallel.fallback.pool_broken",
    # STR bulk loading (RTree3D.bulk_load)
    "rtree.bulk_loaded",
    # incremental column maintenance (live ingest)
    "colcache.extended",
    "colstore.extends",
    "colstore.rewrites",
    # query service (repro.server)
    "server.sessions",
    "server.queries",
    "server.errors",
    "ingest.units",
    "ingest.group_commits",
    "ingest.replayed",
    # resilience: deadlines, admission control, idempotent retries
    "server.timeouts",
    "server.shed",
    "ingest.dedup_hits",
    "client.retries",
    "client.timeouts",
    # lock-order witness (repro.analysis.dynlock)
    "dynlock.acquisitions",
    "dynlock.edges",
    # sharded execution (repro.shard: scatter-gather + residency)
    "shard.scatters",
    "shard.hits",
    "shard.maps",
    "shard.evictions",
    "shard.pruned",
    "shard.rebuilds",
    "shard.ingest_routed",
    # sharded degradation (via _shard_fallback(reason))
    "shard.fallback",
    "shard.fallback.column",
})

#: Every timed-scope name (``obs.scope(name)`` / ``add_time``).
TIMER_NAMES: FrozenSet[str] = frozenset({
    "inside",
    "atinstant",
})

#: Every high-water gauge name.
GAUGE_NAMES: FrozenSet[str] = frozenset({
    "vector.rows_per_call",
    "parallel.workers",
    "server.query_p50_ms",
    "server.query_p99_ms",
    "server.inflight",
    # resident-byte high-water marks of the two byte-budgeted caches
    "colcache.bytes",
    "shard.resident_bytes",
})


class Counters:
    """A registry of named counters, timers, and high-water gauges."""

    __slots__ = ("_counts", "_timers", "_highs")

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}
        self._timers: Dict[str, Tuple[int, float]] = {}
        self._highs: Dict[str, float] = {}

    def reset(self) -> None:
        """Drop every recorded value."""
        self._counts.clear()
        self._timers.clear()
        self._highs.clear()

    # -- recording --------------------------------------------------------

    def add(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self._counts[name] = self._counts.get(name, 0) + n

    def add_time(self, name: str, seconds: float) -> None:
        """Record one timed call of ``seconds`` under ``name``."""
        calls, total = self._timers.get(name, (0, 0.0))
        self._timers[name] = (calls + 1, total + seconds)

    def high_water(self, name: str, value: float) -> None:
        """Raise gauge ``name`` to ``value`` if it exceeds the current mark."""
        if value > self._highs.get(name, float("-inf")):
            self._highs[name] = value

    # -- reading ----------------------------------------------------------

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0)

    def timer(self, name: str) -> Tuple[int, float]:
        """``(calls, total_seconds)`` of timer ``name``."""
        return self._timers.get(name, (0, 0.0))

    def gauge(self, name: str) -> Optional[float]:
        """High-water mark of gauge ``name``, or None if never set."""
        return self._highs.get(name)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All recorded values as plain dicts (counters/timers/gauges)."""
        return {
            "counters": dict(self._counts),
            "timers": dict(self._timers),
            "gauges": dict(self._highs),
        }

    def report(self) -> str:
        """A formatted table of everything recorded so far."""
        lines = []
        if self._counts:
            width = max(len(k) for k in self._counts)
            lines.append("-- counters " + "-" * max(1, width + 4))
            for name in sorted(self._counts):
                lines.append(f"{name.ljust(width)}  {self._counts[name]:>12}")
        if self._timers:
            width = max(len(k) for k in self._timers)
            lines.append("-- timers " + "-" * max(1, width + 6))
            for name in sorted(self._timers):
                calls, total = self._timers[name]
                avg_us = total / calls * 1e6 if calls else 0.0
                lines.append(
                    f"{name.ljust(width)}  {calls:>8} calls  "
                    f"{total * 1e3:>10.3f} ms  {avg_us:>10.1f} us/call"
                )
        if self._highs:
            width = max(len(k) for k in self._highs)
            lines.append("-- high-water " + "-" * max(1, width + 2))
            for name in sorted(self._highs):
                lines.append(f"{name.ljust(width)}  {self._highs[name]:>12g}")
        if not lines:
            return "(no observations recorded)"
        return "\n".join(lines)


#: The process-local registry all module-level helpers write to.
counters = Counters()


def enable() -> None:
    """Turn collection on."""
    global enabled
    enabled = True


def disable() -> None:
    """Turn collection off (instrumented paths cost one branch)."""
    global enabled
    enabled = False


def reset() -> None:
    """Clear the process-local registry."""
    counters.reset()


def add(name: str, n: int = 1) -> None:
    """Increment a counter when collection is enabled."""
    if enabled:
        counters.add(name, n)


def high_water(name: str, value: float) -> None:
    """Record a high-water gauge value when collection is enabled."""
    if enabled:
        counters.high_water(name, value)


def get(name: str) -> int:
    """Read a counter from the process-local registry."""
    return counters.get(name)


def snapshot() -> Dict[str, Dict[str, object]]:
    """Snapshot of the process-local registry."""
    return counters.snapshot()


def report() -> str:
    """Formatted table of the process-local registry."""
    return counters.report()


class scope:
    """Context manager timing a named scope and namespacing its counts.

    ``with obs.scope("inside") as s:`` records one timed call under
    ``inside`` on exit; ``s.add("unit_pairs")`` increments the counter
    ``inside.unit_pairs``.  When collection is disabled the scope is a
    no-op costing one branch on entry and one on exit.
    """

    __slots__ = ("name", "_t0")

    def __init__(self, name: str) -> None:
        self.name = name
        self._t0: Optional[float] = None

    def __enter__(self) -> "scope":
        if enabled:
            self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._t0 is not None:
            counters.add_time(self.name, time.perf_counter() - self._t0)
            self._t0 = None

    def add(self, suffix: str, n: int = 1) -> None:
        """Increment the counter ``<scope name>.<suffix>``."""
        if enabled:
            counters.add(f"{self.name}.{suffix}", n)

    def high_water(self, suffix: str, value: float) -> None:
        """Record the gauge ``<scope name>.<suffix>``."""
        if enabled:
            counters.high_water(f"{self.name}.{suffix}", value)


class capture:
    """Enable + reset collection for a block, restoring the prior state.

    Yields the process-local :class:`Counters` registry::

        with obs.capture() as c:
            m.unit_at(3.0)
        assert c.get("mapping.unit_at.calls") == 1

    The registry is reset on *entry* (so the block observes only its own
    work) but left intact on exit for post-mortem inspection.
    """

    __slots__ = ("_prev",)

    def __enter__(self) -> Counters:
        self._prev = enabled
        counters.reset()
        enable()
        return counters

    def __exit__(self, *exc) -> None:
        if not self._prev:
            disable()


def iter_counters() -> Iterator[Tuple[str, int]]:
    """Iterate ``(name, value)`` over all counters, sorted by name."""
    snap = counters.snapshot()["counters"]
    assert isinstance(snap, dict)
    for name in sorted(snap):
        yield name, snap[name]
