"""Request deadlines: monotone budgets that propagate across layers.

A :class:`Deadline` is an absolute expiry on the monotonic clock.  The
query service creates one per request from the wire-level
``DEADLINE=<ms>`` attribute; the executor checks it at chunk boundaries
(:meth:`Deadline.check` raises the typed
:class:`~repro.errors.DeadlineExceeded`), and the parallel dispatcher
polls it between chunk results so a kill reaches fork-pool work too.

Propagation is *monotone*: :meth:`Deadline.child` derives a sub-budget
that can never outlive its parent (``child(b).remaining_ms() <=
min(b, parent.remaining_ms())``), so a layer handing work downward can
only tighten the budget, never extend it.

The active deadline travels through layers that do not know about each
other (SQL executor → planner → parallel backend) via a thread-local:
the owning layer wraps its work in ``with deadline.active(dl):`` and
any nested dispatch reads :func:`current`.  Thread-local — not a
contextvar — because the query service runs executor work in
``asyncio.to_thread`` workers and the parallel dispatch happens on the
same thread; nothing awaits while a deadline is active.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.errors import DeadlineExceeded, InvalidValue

__all__ = ["Deadline", "active", "current"]


class Deadline:
    """An absolute expiry on the monotonic clock, held as a budget."""

    __slots__ = ("expires_at", "budget_ms")

    def __init__(self, expires_at: float, budget_ms: float):
        self.expires_at = expires_at
        self.budget_ms = budget_ms

    @classmethod
    def after(cls, budget_ms: float) -> "Deadline":
        """A deadline ``budget_ms`` milliseconds from now."""
        budget_ms = float(budget_ms)
        if budget_ms <= 0:
            raise InvalidValue(
                f"deadline budget must be > 0 ms, got {budget_ms!r}"
            )
        return cls(time.monotonic() + budget_ms / 1000.0, budget_ms)

    def remaining_s(self) -> float:
        """Seconds left; never negative (an expired deadline reads 0)."""
        return max(0.0, self.expires_at - time.monotonic())

    def remaining_ms(self) -> float:
        return self.remaining_s() * 1000.0

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self) -> None:
        """Raise :class:`DeadlineExceeded` when the budget has run out.

        The cooperative cancellation point: cheap enough to call at
        every chunk boundary (one clock read and a compare).
        """
        if self.expired():
            raise DeadlineExceeded(
                f"request deadline of {self.budget_ms:g}ms exceeded"
            )

    def child(self, budget_ms: float) -> "Deadline":
        """A sub-budget clamped to this deadline (monotone propagation).

        The child's expiry is ``min(parent expiry, now + budget_ms)``:
        a layer can tighten the budget for a downstream call but never
        extend it past what its own caller granted.
        """
        own = Deadline.after(budget_ms)
        if own.expires_at <= self.expires_at:
            return own
        return Deadline(self.expires_at, self.budget_ms)


_local = threading.local()


def current() -> Optional[Deadline]:
    """The deadline active on this thread, if any."""
    return getattr(_local, "deadline", None)


class active:
    """Bind a deadline to the current thread for a block.

    ``active(None)`` is a no-op so call sites need no branching; nesting
    restores the outer deadline on exit.  The inner deadline is bound
    as-is — callers that want the monotone clamp derive it with
    :meth:`Deadline.child` first.
    """

    __slots__ = ("_deadline", "_prev")

    def __init__(self, deadline: Optional[Deadline]):
        self._deadline = deadline
        self._prev: Optional[Deadline] = None

    def __enter__(self) -> Optional[Deadline]:
        self._prev = current()
        if self._deadline is not None:
            _local.deadline = self._deadline
        return self._deadline

    def __exit__(self, *exc: object) -> None:
        if self._deadline is not None:
            _local.deadline = self._prev
