"""Execution state of the query service: fleets, indexes, snapshots.

The executor owns everything the protocol layer must never touch
directly: the live :class:`~repro.vector.cache.Fleet` containers, their
STR-bulk-loaded R-tree indexes, the SQL database, and the mutation lock
that serializes ingest against column builds.  Sessions hand it parsed
requests and get plain Python values back.

Snapshot isolation
------------------
Every read pins a :class:`Snapshot` at start: the fleet's version stamp
plus an immutable tuple of its members.  Ingest never mutates a
``Mapping`` in place — it *replaces* the member with a new mapping that
shares the old unit slices (:meth:`repro.temporal.mapping.Mapping.
appended`) — so a pinned tuple keeps describing exactly the pre-ingest
fleet no matter how far the live fleet moves on.  Columns are pinned by
version: a cached column whose stamp equals the pin is served as-is;
otherwise the column is rebuilt from the pinned members, never from the
moved-on fleet.

Sharded fleets (``register_fleet(..., shards=N)`` or the process-wide
``--shards`` default) pin a shard *vector* of versions: the snapshot's
``version`` is the tuple of per-shard stamps, and an ingest bumps only
the one shard it routes to — so a pinned read over a 16-shard fleet
stays column-served on 15 shards while the 16th rebuilds.  Each sharded
fleet's columns and per-shard R-trees live under a byte-budgeted
:class:`~repro.shard.manager.ShardManager` held in ``_shards``.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro import deadline as deadline_mod
from repro import faults, obs
from repro.analysis import dynlock
from repro.deadline import Deadline
from repro.db.catalog import Database
from repro.db.script import StatementResult, run_script
from repro.errors import InvalidValue, QueryError, StorageError
from repro.index.rtree import RTree3D
from repro.shard.fleet import ShardedFleet, shard_of
from repro.shard.manager import ShardManager
from repro.spatial.bbox import Cube
from repro.temporal.mapping import MovingPoint
from repro.temporal.upoint import UPoint
from repro.vector.cache import _BUILDERS, Fleet, column_for_versioned
from repro.vector.kernels import atinstant_batch

__all__ = ["FleetExecutor", "Snapshot"]

#: Latency samples kept for the p50/p99 gauges (a sliding window).
_LATENCY_WINDOW = 512

#: Idempotency tokens remembered per executor.  Bounded FIFO: a token
#: older than the most recent 64k ingests can no longer collide with a
#: live retry (retries are bounded in time), so evicting it is safe.
_DEDUP_CAPACITY = 65536

#: Rows assembled between deadline checks in ``snapshot_rows``.
_DEADLINE_STRIDE = 4096


class Snapshot:
    """An immutable read view of one fleet, pinned at a version stamp.

    For a :class:`~repro.shard.fleet.ShardedFleet` the stamp is the
    shard *vector* of versions — ingest into one shard moves exactly
    one coordinate, leaving the pins of every sibling shard valid.
    """

    __slots__ = ("version", "items", "_columns")

    def __init__(self, fleet: Any):
        self.version = fleet.version
        self.items: Tuple[Any, ...] = tuple(fleet)
        self._columns: Dict[str, Any] = {}

    def __len__(self) -> int:
        return len(self.items)


class FleetExecutor:
    """Owns fleets, indexes, and the SQL database; executes requests.

    Thread-safe: sessions call in from worker threads while the ingest
    committer applies batches — every state access runs under one
    re-entrant lock, and the computed results (snapshots, columns,
    statement rows) are immutable once returned.  The lock discipline
    is declared in the ``GUARDED_BY`` registry (repro.analysis.rules)
    and enforced by lint rule MOD007; ``_latencies`` sits under its own
    micro-lock so recording a sample from the event loop never waits
    behind an ingest apply holding the main lock.
    """

    def __init__(self, db: Optional[Database] = None):
        self._lock = dynlock.rlock("server.executor")
        self._lat_lock = dynlock.rlock("server.executor.latency")
        self._fleets: Dict[str, Any] = {}
        self._indexes: Dict[str, RTree3D] = {}
        self._shards: Dict[str, ShardManager] = {}
        self._db = db if db is not None else Database("server")
        self._latencies: Deque[float] = deque(maxlen=_LATENCY_WINDOW)
        # Idempotency table: seq token -> the unit count the original
        # apply returned.  Replay repopulates it (tokens ride in the WAL
        # record), so dedup survives restarts.
        self._dedup: "OrderedDict[str, int]" = OrderedDict()

    @property
    def db(self) -> Database:
        return self._db

    # -- fleet registry ---------------------------------------------------

    def register_fleet(
        self,
        name: str,
        mappings: Sequence[MovingPoint],
        index: bool = True,
        shards: Optional[int] = None,
    ) -> Any:
        """Adopt ``mappings`` as the live fleet ``name``.

        Builds the per-unit R-tree via STR bulk loading (the cheap path
        for the initial load; later ingest maintains it with per-batch
        inserts).  Re-registering a name replaces the fleet.

        ``shards`` > 1 partitions the fleet (defaulting to the
        process-wide ``repro.shard.get_shards()``, itself 1 unless the
        CLI's ``--shards`` raised it): columns and per-shard R-trees
        then live under a :class:`ShardManager` with the process-wide
        memory budget, the R-trees STR-bulk-loaded lazily per shard.
        """
        from repro import shard as shardmod

        n_shards = shardmod.get_shards() if shards is None else int(shards)
        fleet: Any = (
            ShardedFleet(mappings, n_shards) if n_shards > 1
            else Fleet(mappings)
        )
        with self._lock:
            self._fleets[name] = fleet
            if isinstance(fleet, ShardedFleet):
                self._indexes.pop(name, None)
                self._shards[name] = ShardManager(
                    fleet,
                    budget=shardmod.get_memory_budget(),
                    indexed=index,
                )
                return fleet
            self._shards.pop(name, None)
            if index:
                entries = [
                    (u.bounding_cube(), i)
                    for i, m in enumerate(fleet)
                    for u in m.units
                ]
                self._indexes[name] = RTree3D.bulk_load(entries)
            else:
                self._indexes.pop(name, None)
        return fleet

    def fleet_names(self) -> List[str]:
        with self._lock:
            return sorted(self._fleets)

    def _fleet(self, name: str) -> Any:
        fleet = self._fleets.get(name)
        if fleet is None:
            raise QueryError(f"no fleet named {name!r}")
        return fleet

    def fleet(self, name: str) -> Any:
        with self._lock:
            return self._fleet(name)

    # -- snapshot-isolated reads ------------------------------------------

    def snapshot(self, name: str) -> Snapshot:
        """Pin an immutable view of fleet ``name`` at its current version."""
        with self._lock:
            return Snapshot(self._fleet(name))

    def _pinned_column(
        self, fleet: Fleet, snap: Snapshot, kind: str
    ) -> Optional[Any]:
        """The ``kind`` column describing exactly ``snap``, or None when
        only the scalar path can evaluate the pinned members.

        Must run under the lock: the shared column cache may build here,
        and a build that interleaved with an ingest apply could pair the
        pinned stamp with post-ingest bytes.
        """
        if kind in snap._columns:
            return snap._columns[kind]
        col: Optional[Any] = None
        try:
            version, candidate = column_for_versioned(fleet, kind)
            if version == snap.version:
                col = candidate
            else:
                # The fleet moved on past the pin: build from the pinned
                # members themselves (immutable, so always consistent).
                col = _BUILDERS[kind](snap.items)
        except (InvalidValue, StorageError):
            col = None
        snap._columns[kind] = col
        return col

    def snapshot_rows(
        self,
        name: str,
        t: float,
        window: Optional[Tuple[float, float, float, float]] = None,
        deadline: Optional[Deadline] = None,
    ) -> Tuple[Snapshot, List[Tuple[int, float, float]]]:
        """Defined positions of fleet ``name`` at instant ``t``.

        Returns ``(snapshot, rows)`` with one ``(object index, x, y)``
        row per member defined at ``t`` — filtered to ``window`` (an
        ``xmin ymin xmax ymax`` rectangle) when given, using the live
        R-tree as a candidate prefilter.  The rows describe the pinned
        snapshot exactly: ingest applied after the pin is invisible.

        ``deadline`` is checked before pinning and again every
        ``_DEADLINE_STRIDE`` rows of assembly, so an expired budget
        surfaces as :class:`~repro.errors.DeadlineExceeded` instead of
        a late answer.
        """
        if deadline is not None:
            deadline.check()
        with self._lock:
            fleet = self._fleet(name)
            snap = Snapshot(fleet)
            manager = self._shards.get(name)
            shard_cols = col = None
            if manager is not None:
                shard_cols = self._pinned_shard_columns(manager, snap)
            else:
                col = self._pinned_column(fleet, snap, "upoint")
            candidates = self._window_candidates(name, t, window, len(snap))
        rows: List[Tuple[int, float, float]] = []
        if shard_cols is not None:
            # Scatter: one kernel run per pinned shard column, global
            # ids mapped back through the shard's id array; gather is a
            # sort into global order (per-shard ids ascend, so this is a
            # merge of sorted runs).
            done = 0
            for gids, scol in shard_cols:
                xs, ys, defined = atinstant_batch(scol, t)
                for j in range(len(gids)):
                    if defined[j]:
                        rows.append(
                            (int(gids[j]), float(xs[j]), float(ys[j]))
                        )
                    done += 1
                    if deadline is not None and done % _DEADLINE_STRIDE == 0:
                        deadline.check()
            rows.sort()
        elif col is not None:
            xs, ys, defined = atinstant_batch(col, t)
            for i in range(len(snap)):
                if defined[i]:
                    rows.append((i, float(xs[i]), float(ys[i])))
                if deadline is not None and i % _DEADLINE_STRIDE == 0:
                    deadline.check()
        else:
            for i, m in enumerate(snap.items):
                p = m.value_at(t)
                if p is not None:
                    rows.append((i, p.x, p.y))
                if deadline is not None and i % _DEADLINE_STRIDE == 0:
                    deadline.check()
        if window is not None:
            xmin, ymin, xmax, ymax = window
            rows = [
                (i, x, y)
                for i, x, y in rows
                if (candidates is None or i in candidates)
                and xmin <= x <= xmax
                and ymin <= y <= ymax
            ]
        return snap, rows

    def _pinned_shard_columns(
        self, manager: ShardManager, snap: Snapshot
    ) -> Optional[List[Tuple[Any, Any]]]:
        """Per-shard ``(global ids, column)`` pairs pinned at ``snap``'s
        shard version vector, or None when only the scalar path can
        evaluate the pinned members.

        Must run under the lock for the same reason as
        :meth:`_pinned_column`; the lock also freezes the shard version
        vector, so every mapped column matches its pin coordinate.
        """
        out: List[Tuple[Any, Any]] = []
        fleet = manager.fleet
        for s in range(fleet.n_shards):
            if len(fleet.shards[s]) == 0:
                continue
            try:
                scol = manager.column(s, "upoint")
            except (InvalidValue, StorageError):
                return None
            if fleet.shards[s].version != snap.version[s]:
                return None  # cannot serve the pin from live columns
            out.append((fleet.globals_of(s), scol))
        return out

    def _window_candidates(
        self,
        name: str,
        t: float,
        window: Optional[Tuple[float, float, float, float]],
        n: int,
    ) -> Optional[set]:
        """Index candidates for a window query, or None (no prefilter).

        The live index is a *superset* of any pinned snapshot (units are
        only ever added), so pruning with it never drops a true hit;
        exactness comes from the per-position refinement above.  Sharded
        fleets prune shard-first through the manager's per-shard trees.
        """
        if window is None:
            return None
        xmin, ymin, xmax, ymax = window
        cube = Cube(xmin, ymin, t, xmax, ymax, t)
        tree = self._indexes.get(name)
        if tree is None:
            manager = self._shards.get(name)
            if manager is not None and manager.indexed:
                return {
                    k for k in manager.window_candidates(cube) if k < n
                }
            return None
        return {int(k) for k in tree.search(cube) if int(k) < n}

    # -- SQL --------------------------------------------------------------

    def query_sql(
        self, sql: str, deadline: Optional[Deadline] = None
    ) -> List[StatementResult]:
        """Run a SQL script against the server's database.

        When a ``deadline`` is given it is checked on entry and bound
        thread-locally for the duration, so nested layers (the planner's
        parallel dispatch in particular) inherit the budget without the
        SQL machinery growing a parameter.
        """
        if deadline is not None:
            deadline.check()
        with self._lock:
            with deadline_mod.active(deadline):
                return run_script(self._db, sql)

    def explain_sql(
        self, sql: str, deadline: Optional[Deadline] = None
    ) -> str:
        """The plan for a SELECT (EXPLAIN is prepended when missing)."""
        stmt = sql.strip()
        if not stmt.lower().startswith("explain"):
            stmt = f"EXPLAIN {stmt}"
        results = self.query_sql(stmt, deadline=deadline)
        return results[-1].message if results else ""

    # -- ingest apply ------------------------------------------------------

    def apply_units(self, requests: Sequence[Any]) -> List[Any]:
        """Apply one durable ingest batch to the live fleets, in order.

        Each element of ``requests`` is an
        :class:`repro.server.ingest.IngestRequest`; the result list
        carries, positionally, the appended object's new unit count or
        the :class:`InvalidValue` that rejected it (a rejection is
        deterministic, so recovery replay re-derives it).  The
        ``server.ingest_crash`` failpoint fires *inside* the apply loop
        — after the WAL barrier — so the crash matrix can prove that
        recovery resurrects a durable batch the process died applying.
        """
        out: List[Any] = []
        with self._lock:
            for req in requests:
                if faults.active:
                    faults.fail("server.ingest_crash")
                try:
                    out.append(self._apply_one(req))
                except InvalidValue as exc:
                    out.append(exc)
        return out

    def _apply_one(self, req: Any) -> int:
        seq = getattr(req, "seq", "")
        if seq:
            cached = self._dedup.get(seq)
            if cached is not None:
                # A retry of an ingest that already applied (the ack was
                # lost, or the WAL record replayed twice): answer from
                # the table instead of appending a duplicate slice.
                if obs.enabled:
                    obs.add("ingest.dedup_hits")
                return cached
        count = self._append_unit(req)
        if seq:
            self._dedup[seq] = count
            while len(self._dedup) > _DEDUP_CAPACITY:
                self._dedup.popitem(last=False)
        return count

    def _append_unit(self, req: Any) -> int:
        fleet = self._fleet(req.fleet)
        t0, x0, y0, t1, x1, y1 = req.unit
        obj = req.obj
        if obj > len(fleet):
            raise InvalidValue(
                f"object index {obj} past the end of fleet "
                f"{req.fleet!r} ({len(fleet)} objects)"
            )
        prior = fleet[obj] if obj < len(fleet) else None
        lc = True
        if prior is not None and prior.units:
            last = prior.units[-1].interval
            if last.rc and t0 <= last.e:
                # Streaming continuation: the previous slice owns the
                # shared boundary instant, so the new one opens left.
                lc = False
        unit = UPoint.between(t0, (x0, y0), t1, (x1, y1), lc=lc, rc=True)
        if prior is None:
            grown: MovingPoint = MovingPoint([unit])
            fleet.append(grown)
        else:
            grown = prior.appended(unit)
            fleet[obj] = grown
        tree = self._indexes.get(req.fleet)
        if tree is not None:
            tree.insert(unit.bounding_cube(), obj)
        manager = self._shards.get(req.fleet)
        if manager is not None:
            # Ingest touches exactly one shard: the object's home shard
            # gets the tree insert; every other shard's pin stays valid.
            manager.note_insert(
                shard_of(obj, manager.fleet.n_shards),
                unit.bounding_cube(),
                obj,
            )
        if obs.enabled:
            obs.add("ingest.units")
        return len(grown.units)

    # -- latency + stats ---------------------------------------------------

    def record_latency(self, ms: float) -> None:
        """Record one query's wall time (milliseconds).

        Cheap enough to call straight from the event loop: an O(1)
        append under a dedicated lock that is never held across real
        work.  (Bare ``deque.append`` + ``sorted(self._latencies)``
        happens to be safe on today's CPython only because both run as
        single C calls under the GIL with float elements — an
        implementation detail, not a contract; the lock makes the
        invariant explicit and survives free-threaded builds.)
        """
        with self._lat_lock:
            self._latencies.append(ms)

    def latency_percentiles(self) -> Tuple[float, float]:
        """``(p50, p99)`` over the sliding window, in milliseconds."""
        with self._lat_lock:
            lat = sorted(self._latencies)
        if not lat:
            return 0.0, 0.0
        p50 = lat[int(0.50 * (len(lat) - 1))]
        p99 = lat[int(0.99 * (len(lat) - 1))]
        if obs.enabled:
            obs.high_water("server.query_p50_ms", p50)
            obs.high_water("server.query_p99_ms", p99)
        return p50, p99

    def stats(self) -> Dict[str, object]:
        """A flat name → value map for the STATS response."""
        out: Dict[str, object] = {}
        with self._lock:
            for name in sorted(self._fleets):
                fleet = self._fleets[name]
                out[f"fleet.{name}.objects"] = len(fleet)
                out[f"fleet.{name}.units"] = sum(
                    len(m.units) for m in fleet
                )
                version = fleet.version
                if isinstance(version, tuple):
                    # Sharded: report the vector's sum (one ingest still
                    # moves it by exactly one) plus the shard count.
                    out[f"fleet.{name}.version"] = sum(version)
                    out[f"fleet.{name}.shards"] = fleet.n_shards
                else:
                    out[f"fleet.{name}.version"] = version
        p50, p99 = self.latency_percentiles()
        out["query_p50_ms"] = round(p50, 3)
        out["query_p99_ms"] = round(p99, 3)
        if obs.enabled:
            counts = obs.snapshot()["counters"]
            for key in sorted(counts):
                if key.startswith(("server.", "ingest.", "colcache.",
                                   "colstore.", "wal.", "parallel.",
                                   "shard.")):
                    out[key] = counts[key]
        return out
