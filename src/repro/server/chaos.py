"""The live chaos matrix: degrade a *running* query service, prove recovery.

The storage crash matrix (:mod:`repro.storage.crashmatrix`) kills a
process mid-mutation and checks what recovery finds on disk.  This
module is its live twin: a real :class:`QueryServer` on a real socket,
concurrent query + ingest traffic, and the degradation failpoints fired
*while the service runs* —

* ``server.conn_drop``     — responses vanish after the work is done,
* ``server.slow_client``   — one session's writes stall mid-response,
* ``parallel.worker_kill`` — a fork worker is SIGKILLed mid-query,
* ``ingest.dup_send``      — an acked INGEST is delivered twice,

plus an overload scenario that saturates admission control.  Every
scenario asserts the same resilience contract: client-visible failures
are absorbed by bounded retries, snapshot reads are never torn (a
pinned instant reads byte-identical before, during, and after the
chaos), ingest lands exactly once per sequence token, and the server
recovers to healthy ``STATS`` once the fault is disarmed.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Tuple

from repro import config, faults, obs
from repro.server.client import ServerClient
from repro.server.executor import FleetExecutor
from repro.server.session import RunningServer, serve_in_thread
from repro.storage.crashmatrix import MatrixEntry, format_matrix
from repro.temporal.mapping import MovingPoint
from repro.temporal.upoint import UPoint

__all__ = ["SCENARIOS", "format_matrix", "run_chaos_matrix"]

#: Fleet served during the chaos runs.
FLEET = "fleet"
N_OBJECTS = 48

#: The torn-read probe instant.  Chaos-time ingest appends units at
#: t >= INGEST_T0 only, so the fleet's state at PROBE_T is immutable
#: for the whole run — any two probes that differ are a torn read.
PROBE_T = 5.0
INGEST_T0 = 1.0e6


def _track(seed: int, idx: int) -> MovingPoint:
    """A deterministic moving point defined across ``PROBE_T``."""
    units = []
    pos = (float((seed + idx) % 89), float((seed * 7 + idx) % 53))
    for k in range(4):
        t0, t1 = k * 3.0, k * 3.0 + 2.5
        nxt = (pos[0] + 1.0 + (seed + idx + k) % 5, pos[1] + 0.5 + k % 3)
        units.append(UPoint.between(t0, pos, t1, nxt, rc=False))
        pos = nxt
    return MovingPoint(units)


def _serve(seed: int, **kwargs: object) -> Tuple[RunningServer, int]:
    """A running server over a fresh deterministic fleet.

    Returns ``(running, baseline_units)`` — the unit total before any
    chaos-time ingest, the anchor for the exactly-once assertion.
    """
    ex = FleetExecutor()
    mappings = [_track(seed, i) for i in range(N_OBJECTS)]
    ex.register_fleet(FLEET, mappings)
    running = serve_in_thread(ex, **kwargs)
    return running, sum(len(m.units) for m in mappings)


def _probe_digest(client: ServerClient) -> Tuple[Tuple[str, str, str], ...]:
    """The wire-level digest of the fleet at the probe instant."""
    reply = client.snapshot(FLEET, PROBE_T)
    return tuple(
        (row.get("obj", ""), row.get("x", ""), row.get("y", ""))
        for row in reply.rows
    )


class _Traffic:
    """Concurrent query + ingest clients hammering one server."""

    def __init__(
        self,
        port: int,
        baseline: Tuple[Tuple[str, str, str], ...],
        clients: int,
        ops: int,
        with_ingest: bool,
        max_retries: int = 10,
    ):
        self.port = port
        self.baseline = baseline
        self.clients = clients
        self.ops = ops
        self.with_ingest = with_ingest
        self.max_retries = max_retries
        self.torn = 0
        self.failures: List[str] = []
        self.ingested = 0
        self._lock = threading.Lock()

    def _client_loop(self, ci: int) -> None:
        torn = 0
        ingested = 0
        errors: List[str] = []
        try:
            client = ServerClient(
                "127.0.0.1", self.port,
                timeout=10.0, request_timeout=10.0,
                max_retries=self.max_retries,
                backoff_base_ms=5.0, backoff_cap_ms=200.0,
            )
        except OSError as exc:
            with self._lock:
                self.failures.append(f"client {ci} failed to connect: {exc}")
            return
        try:
            for k in range(self.ops):
                try:
                    if _probe_digest(client) != self.baseline:
                        torn += 1
                except Exception as exc:
                    errors.append(f"snapshot: {type(exc).__name__}: {exc}")
                if not self.with_ingest:
                    continue
                # Each client owns one object, with strictly increasing
                # times, so ingests never conflict across clients and
                # the per-object unit ordering is always valid.
                t0 = INGEST_T0 + ci * 1.0e4 + k * 10.0
                try:
                    client.ingest(
                        FLEET, ci,
                        (t0, 0.0, 0.0, t0 + 5.0, 1.0, 1.0),
                    )
                    ingested += 1
                except Exception as exc:
                    errors.append(f"ingest: {type(exc).__name__}: {exc}")
        finally:
            try:
                client.close()
            except Exception:
                pass
        with self._lock:
            self.torn += torn
            self.ingested += ingested
            self.failures.extend(errors)

    def run(self) -> None:
        threads = [
            threading.Thread(target=self._client_loop, args=(ci,))
            for ci in range(self.clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()


def _check_recovered(
    port: int, baseline: Tuple[Tuple[str, str, str], ...],
    baseline_units: int, ingested: int,
) -> Optional[str]:
    """Post-chaos health check; ``None`` when the server is healthy.

    All faults are disarmed by the caller; a fresh client must get a
    clean STATS, an untorn probe, and a unit total of exactly baseline
    plus one unit per *successful* ingest — a duplicate that slipped
    past dedup or a retry that double-applied shows up right here.
    """
    try:
        with ServerClient("127.0.0.1", port, timeout=10.0) as client:
            stats = client.stats()
            if _probe_digest(client) != baseline:
                return "post-recovery probe differs from baseline (torn)"
    except Exception as exc:
        return f"post-recovery STATS failed: {type(exc).__name__}: {exc}"
    units = stats.stat(f"fleet.{FLEET}.units")
    expected = baseline_units + ingested
    if units is None or int(units) != expected:
        return (
            f"unit total {units} != baseline {baseline_units} + "
            f"{ingested} acked ingests (lost or duplicated units)"
        )
    return None


#: (clients, ops) for full and ``--quick`` traffic.
_FULL = (4, 10)
_QUICK = (2, 4)


def _traffic_scale(quick: bool) -> Tuple[int, int]:
    return _QUICK if quick else _FULL


def _server_scenario(
    name: str,
    seed: int,
    policy: str,
    quick: bool,
    with_ingest: bool,
    detail_ok: str,
    server_kwargs: Optional[Dict[str, object]] = None,
    check_counters: Optional[Callable[[], Optional[str]]] = None,
) -> MatrixEntry:
    """The common arm → hammer → disarm → verify-recovery loop."""
    clients, ops = _traffic_scale(quick)
    faults.disarm()
    with obs.capture():
        running, baseline_units = _serve(seed, **(server_kwargs or {}))
        try:
            with ServerClient("127.0.0.1", running.port, timeout=10.0) as c:
                baseline = _probe_digest(c)
            if not baseline:
                return MatrixEntry(name, False, False, "empty baseline probe")
            if name in faults.FAILPOINT_NAMES:
                faults.arm(name, policy)
            traffic = _Traffic(
                running.port, baseline, clients, ops, with_ingest
            )
            try:
                traffic.run()
            finally:
                faults.disarm()
            fired = (
                faults.fired(name) > 0
                if name in faults.FAILPOINT_NAMES
                else True
            )
            if not fired:
                return MatrixEntry(name, False, False, "failpoint never fired")
            if traffic.torn:
                return MatrixEntry(
                    name, fired, False,
                    f"{traffic.torn} torn snapshot read(s)",
                )
            if traffic.failures:
                return MatrixEntry(
                    name, fired, False,
                    f"{len(traffic.failures)} unrecovered failure(s): "
                    + traffic.failures[0],
                )
            if check_counters is not None:
                problem = check_counters()
                if problem is not None:
                    return MatrixEntry(name, fired, False, problem)
            problem = _check_recovered(
                running.port, baseline, baseline_units, traffic.ingested
            )
            if problem is not None:
                return MatrixEntry(name, fired, False, problem)
            return MatrixEntry(
                name, fired, True,
                f"{detail_ok}; {clients * ops} probes untorn, "
                f"{traffic.ingested} ingests exactly-once, STATS healthy",
            )
        finally:
            faults.disarm()
            running.stop()


def _conn_drop_scenario(name: str, seed: int, quick: bool) -> MatrixEntry:
    """Responses dropped after the work: retries + dedup must absorb it."""
    return _server_scenario(
        name, seed, policy=f"prob:0.15:{seed}", quick=quick, with_ingest=True,
        detail_ok="dropped responses retried",
    )


def _slow_client_scenario(name: str, seed: int, quick: bool) -> MatrixEntry:
    """Stalled response writes park one session, never the server."""
    return _server_scenario(
        name, seed, policy="every:5", quick=quick, with_ingest=True,
        detail_ok="stalled sessions isolated",
    )


def _dup_send_scenario(name: str, seed: int, quick: bool) -> MatrixEntry:
    """Every other ingest delivered twice: dedup must land each once."""

    def dedup_counted() -> Optional[str]:
        if obs.get("ingest.dedup_hits") < 1:
            return "duplicates sent but ingest.dedup_hits never moved"
        return None

    return _server_scenario(
        name, seed, policy="every:2", quick=quick, with_ingest=True,
        detail_ok="duplicate sends deduplicated",
        check_counters=dedup_counted,
    )


def _overload_scenario(name: str, seed: int, quick: bool) -> MatrixEntry:
    """Admission control under saturation: shed, hint, retry, recover."""

    def shed_counted() -> Optional[str]:
        if obs.get("server.shed") < 1:
            return "server never shed under max_inflight=1 saturation"
        if obs.get("client.retries") < 1:
            return "clients never retried a shed request"
        return None

    return _server_scenario(
        name, seed, policy="", quick=quick, with_ingest=True,
        detail_ok="shed requests retried after backoff",
        server_kwargs={"max_inflight": 1},
        check_counters=shed_counted,
    )


def _worker_kill_scenario(name: str, seed: int, quick: bool) -> MatrixEntry:
    """SIGKILL a fork worker mid-query: the dispatcher must respawn the
    pool, retry the lost chunks, and return the bit-identical result."""
    import numpy as np

    from repro.parallel import parallel_window_intervals, pool, shmcol
    from repro.spatial.bbox import Rect
    from repro.vector.kernels import window_intervals_batch
    from repro.vector.store import _BUILDERS

    faults.disarm()
    n = max(config.PARALLEL_MIN_OBJECTS, 1024) + 64
    col = _BUILDERS["upoint"]([_track(seed, i) for i in range(n)])
    rect = Rect(0.0, 0.0, 60.0, 60.0)
    reference = window_intervals_batch(col, rect, 0.0, 12.0)
    pool.shutdown()
    shmcol.release_all()
    with obs.capture():
        faults.arm(name, "once")
        try:
            result = parallel_window_intervals(
                col, rect, 0.0, 12.0, workers=4
            )
        finally:
            faults.disarm()
            pool.shutdown()
            shmcol.release_all()
        fired = faults.fired(name) > 0
        if not fired:
            return MatrixEntry(name, False, False, "failpoint never fired")
        deaths = obs.get("parallel.worker_deaths")
        retries = obs.get("parallel.chunk_retries")
    if deaths < 1:
        return MatrixEntry(
            name, fired, False, "worker died but was never detected"
        )
    if retries < 1 and obs.get("parallel.fallback.pool_broken") < 1:
        return MatrixEntry(
            name, fired, False, "lost chunks were neither retried nor "
            "finished in-process"
        )
    for got, want in zip(result, reference):
        if not np.array_equal(got, want):
            return MatrixEntry(
                name, fired, False,
                "post-respawn result differs from the single-process kernel",
            )
    return MatrixEntry(
        name, fired, True,
        f"{deaths} death(s) detected, {retries} chunk(s) retried, "
        "result bit-identical",
    )


def _shard_evict_scenario(name: str, seed: int, quick: bool) -> MatrixEntry:
    """Evict every resident shard mid-scatter: columns already handed to
    the query must stay readable (eviction drops references, not bytes),
    so a budget-squeezed scatter is still bit-identical to the
    single-process kernel — zero torn reads."""
    import numpy as np

    from repro.shard import ShardManager, ShardedFleet, sharded_window_intervals
    from repro.spatial.bbox import Rect
    from repro.vector.kernels import window_intervals_batch
    from repro.vector.store import _BUILDERS

    faults.disarm()
    n = 96 if quick else 256
    mappings = [_track(seed, i) for i in range(n)]
    rect = Rect(0.0, 0.0, 60.0, 60.0)
    reference = window_intervals_batch(
        _BUILDERS["upoint"](mappings), rect, 0.0, 12.0
    )
    with obs.capture():
        fleet = ShardedFleet(mappings, 4)
        manager = ShardManager(fleet, budget=1)
        # every:2 → the hook between shard s and s+1 alternates, so the
        # scatter crosses live evictions several times per query.
        faults.arm(name, "every:2")
        try:
            first = sharded_window_intervals(manager, rect, 0.0, 12.0)
            second = sharded_window_intervals(manager, rect, 0.0, 12.0)
        finally:
            faults.disarm()
        fired = faults.fired(name) > 0
        if not fired:
            return MatrixEntry(name, False, False, "failpoint never fired")
        evictions = obs.get("shard.evictions")
        if evictions < 1:
            return MatrixEntry(
                name, fired, False,
                "failpoint fired but no shard was ever evicted",
            )
        torn = 0
        for result in (first, second):
            for got, want in zip(result, reference):
                if got.tobytes() != want.tobytes():
                    torn += 1
        if torn:
            return MatrixEntry(
                name, fired, False,
                f"{torn} result array(s) differ from the single-process "
                "kernel (torn read through a mid-scatter eviction)",
            )
    return MatrixEntry(
        name, fired, True,
        f"{evictions} mid-scatter eviction(s), 2 probes bit-identical "
        "to the unsharded kernel",
    )


#: scenario label → runner.  The four failpoint-keyed entries are what
#: the storage crash matrix delegates to for registry coverage; the
#: ``server.overload`` row is chaos-only (no failpoint — saturation is
#: reached with real traffic).
SCENARIOS: Dict[str, Callable[[str, int, bool], MatrixEntry]] = {
    "server.conn_drop": _conn_drop_scenario,
    "server.slow_client": _slow_client_scenario,
    "parallel.worker_kill": _worker_kill_scenario,
    "ingest.dup_send": _dup_send_scenario,
    "server.overload": _overload_scenario,
    "shard.evict_during_query": _shard_evict_scenario,
}


def run_chaos_matrix(
    seed: int = 2026,
    quick: bool = False,
    only: Optional[str] = None,
    should_stop: Optional[Callable[[], bool]] = None,
) -> List[MatrixEntry]:
    """Run the live degradation scenarios; returns the outcomes.

    ``quick`` shrinks the traffic (fewer clients, fewer ops) for smoke
    use in CI; the assertions are identical.  ``should_stop`` is polled
    between scenarios, mirroring the storage matrix.
    """
    entries: List[MatrixEntry] = []
    prior = faults.armed()
    faults.disarm()
    try:
        for name in sorted(SCENARIOS):
            if should_stop is not None and should_stop():
                break
            if only is not None and name != only:
                continue
            entries.append(SCENARIOS[name](name, seed, quick))
    finally:
        faults.disarm()
        for armed_name, policy in prior.items():
            faults.arm(armed_name, policy)
    return entries
