"""WAL-durable ingestion: group commit, recovery replay.

The write path of the query service in one place, shaped so the crash
matrix can drive it without a running event loop:

* :func:`commit` — the synchronous core.  Appends one ``INGEST`` WAL
  record per request, crosses the durability barrier with a *single*
  ``sync()`` for the whole batch (group commit), then applies the batch
  to the live fleets.  Two failpoints bracket the barrier:
  ``wal.group_commit_crash`` fires before the sync (the batch must be
  lost on recovery) and ``server.ingest_crash`` fires after it, inside
  the apply loop (the batch is durable, so recovery must resurrect it)
  — the same two-sided contract ``tuplestore.commit_crash`` proves for
  relation commits.
* :class:`GroupCommitter` — the asyncio wrapper sessions talk to.  One
  background task drains a queue, coalescing concurrent ``INGEST``
  requests into batches so N clients pay one fsync, not N.
* :func:`replay_ingest` — recovery: re-applies the durable ``INGEST``
  prefix in log order.  Application is deterministic (a pure function
  of fleet state and record), so units rejected live are re-rejected on
  replay and accepted ones land bit-identically.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro import faults, obs
from repro.errors import SimulatedCrash
from repro.storage import wal as walmod
from repro.storage.wal import Wal, WalRecord

__all__ = ["GroupCommitter", "IngestRequest", "commit", "replay_ingest"]

_SCOPE_PREFIX = "fleet:"


@dataclass(frozen=True)
class IngestRequest:
    """One unit slice bound for object ``obj`` of fleet ``fleet``.

    ``seq`` is the client's idempotency token (empty when the client
    did not supply one).  It rides in the WAL record, so the executor's
    dedup table is rebuilt by replay and a retry deduplicates across a
    restart just as it does live.
    """

    fleet: str
    obj: int
    unit: Tuple[float, float, float, float, float, float]  # t0 x0 y0 t1 x1 y1
    seq: str = ""


def encode_record(req: IngestRequest) -> Tuple[str, bytes]:
    """``(scope, payload)`` of the WAL record logging ``req``."""
    scope = _SCOPE_PREFIX + req.fleet
    doc = {"obj": req.obj, "unit": list(req.unit)}
    if req.seq:
        doc["seq"] = req.seq
    payload = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    return scope, payload


def decode_record(rec: WalRecord) -> IngestRequest:
    """Rebuild the request an ``INGEST`` record logged.

    The WAL's CRC framing already vouches for the bytes, so a payload
    that fails to decode here is a logic error, not corruption — it is
    allowed to raise.
    """
    doc = json.loads(rec.payload.decode("utf-8"))
    fleet = rec.scope[len(_SCOPE_PREFIX):] if rec.scope.startswith(
        _SCOPE_PREFIX
    ) else rec.scope
    t0, x0, y0, t1, x1, y1 = (float(v) for v in doc["unit"])
    return IngestRequest(
        fleet, int(doc["obj"]), (t0, x0, y0, t1, x1, y1),
        seq=str(doc.get("seq", "")),
    )


def commit(
    wal: Optional[Wal], executor: Any, requests: List[IngestRequest]
) -> List[Any]:
    """Durably commit and apply one ingest batch; the synchronous core.

    Returns one result per request, positionally: the object's new unit
    count, or the :class:`~repro.errors.InvalidValue` that rejected it.
    With a WAL, the whole batch becomes durable under a single fsync
    before any of it is applied; without one the server is memory-only
    and the batch applies directly.
    """
    if not requests:
        return []
    if wal is not None:
        for req in requests:
            scope, payload = encode_record(req)
            wal.append(walmod.INGEST, payload, scope=scope)
        if faults.active:
            try:
                faults.fail("wal.group_commit_crash")
            except SimulatedCrash:
                # Died before the barrier: the buffered batch evaporates
                # exactly as an un-fsynced page cache would.
                wal.crash()
                raise
        wal.sync()
    if obs.enabled:
        obs.add("ingest.group_commits")
    return executor.apply_units(requests)


def replay_ingest(wal: Wal, executor: Any) -> int:
    """Re-apply the durable ``INGEST`` prefix; recovery's ingest half.

    Returns the number of units that landed.  Records the live path
    rejected are re-rejected here (deterministically), so replay never
    invents state a client was told did not exist.
    """
    requests = [
        decode_record(rec)
        for rec in wal.records()
        if rec.rec_type == walmod.INGEST
    ]
    if not requests:
        return 0
    applied = 0
    for result in executor.apply_units(requests):
        if not isinstance(result, Exception):
            applied += 1
    if obs.enabled and applied:
        obs.add("ingest.replayed", applied)
    return applied


class GroupCommitter:
    """Coalesces concurrent ``INGEST`` requests into group commits.

    Sessions :meth:`submit` requests and await their individual result;
    one background task drains the queue, gathers up to ``max_batch``
    requests (waiting at most ``max_delay`` seconds for stragglers once
    the first arrives), and runs :func:`commit` in a worker thread so
    the event loop never blocks on fsync.
    """

    def __init__(
        self,
        wal: Optional[Wal],
        executor: Any,
        max_batch: int = 64,
        max_delay: float = 0.002,
    ):
        self._wal = wal
        self._executor = executor
        self._max_batch = max_batch
        self._max_delay = max_delay
        self._queue: asyncio.Queue = asyncio.Queue()
        self._task: Optional[asyncio.Task] = None

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    def depth(self) -> int:
        """Requests queued but not yet batched (the backlog gauge the
        admission controller reads; ``asyncio.Queue.qsize`` is a plain
        loop-confined read, safe to call synchronously)."""
        return self._queue.qsize()

    async def submit(self, request: IngestRequest) -> int:
        """Enqueue one request; resolves once its batch is durable and
        applied (with the unit count), or raises its rejection."""
        self.start()
        fut = asyncio.get_running_loop().create_future()
        await self._queue.put((request, fut))
        return await fut

    async def stop(self) -> None:
        """Drain everything already queued, then stop the batcher."""
        if self._task is None:
            return
        await self._queue.put(None)
        await self._task
        self._task = None

    async def _run(self) -> None:
        while True:
            item = await self._queue.get()
            if item is None:
                return
            batch = [item]
            stopping = False
            while len(batch) < self._max_batch:
                try:
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    if self._max_delay <= 0:
                        break
                    try:
                        nxt = await asyncio.wait_for(
                            self._queue.get(), self._max_delay
                        )
                    except asyncio.TimeoutError:
                        break
                if nxt is None:
                    stopping = True
                    break
                batch.append(nxt)
            await self._commit_batch(batch)
            if stopping:
                return

    async def _commit_batch(self, batch: List[Tuple[IngestRequest, Any]]) -> None:
        requests = [req for req, _ in batch]
        futures = [fut for _, fut in batch]
        try:
            results = await asyncio.to_thread(
                commit, self._wal, self._executor, requests
            )
        except BaseException as exc:  # includes SimulatedCrash
            for fut in futures:
                if not fut.done():
                    fut.set_exception(exc)
            return
        for fut, result in zip(futures, results):
            if fut.done():
                continue
            if isinstance(result, Exception):
                fut.set_exception(result)
            else:
                fut.set_result(result)
