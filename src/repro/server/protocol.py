"""The query-service line protocol: parsing and response framing.

One request per line, UTF-8, ``\\n``-terminated::

    QUERY <sql ...>                          run a SQL script statement(s)
    EXPLAIN <select ...>                     show the plan for a query
    INGEST <fleet> <obj> <t0> <x0> <y0> <t1> <x1> <y1>
                                             append one unit slice
    SNAPSHOT <fleet> <t> [<xmin> <ymin> <xmax> <ymax>]
                                             fleet positions at instant t,
                                             optionally window-filtered
    STATS                                    server + store counters
    CLOSE                                    end the session

Requests that do work (everything but STATS/CLOSE) accept *attributes*
— ``KEY=value`` tokens between the command and its arguments::

    DEADLINE=<ms>   per-request budget; past it the server answers a
                    typed ``ERR DeadlineExceeded`` (counted
                    ``server.timeouts``) instead of finishing late
    SEQ=<token>     INGEST only: a client-supplied idempotency token.
                    Retrying an INGEST with the same token is
                    exactly-once — a duplicate is answered from the
                    dedup table (``ingest.dedup_hits``), on live retry
                    and across WAL-replay restarts alike.

Responses are line-framed as well: a single ``OK key=value ...`` header,
zero or more data lines (``ROW``/``PLAN``/``MSG``/``STAT``), and a bare
``END`` terminator.  Errors are a single ``ERR <Type> <message>`` line
(no terminator — the line *is* the whole response) and never tear the
session down; ``CLOSE`` answers with a single ``BYE``.

This module is pure string work: it never touches fleets, sockets, or
execution state — the session layer feeds it lines and writes back
whatever it returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ProtocolError

__all__ = [
    "BYE",
    "END",
    "Request",
    "err_line",
    "ok_line",
    "parse_request",
    "row_line",
    "stat_line",
]

END = "END"
BYE = "BYE"

#: Commands and the argument counts ``parse_request`` enforces.
COMMANDS = ("QUERY", "EXPLAIN", "INGEST", "SNAPSHOT", "STATS", "CLOSE")


@dataclass(frozen=True)
class Request:
    """One parsed request line."""

    command: str
    sql: str = ""
    fleet: str = ""
    obj: int = -1
    unit: Tuple[float, float, float, float, float, float] = (
        0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
    )  # t0 x0 y0 t1 x1 y1
    t: float = 0.0
    window: Optional[Tuple[float, float, float, float]] = None
    deadline_ms: Optional[float] = None  # DEADLINE=<ms> attribute
    seq: str = ""                        # SEQ=<token> attribute (INGEST)


#: Attribute keys ``parse_request`` understands (KEY=value tokens
#: between the command and its arguments).
_ATTR_KEYS = ("DEADLINE", "SEQ")


def _split_attrs(rest: str) -> Tuple[Optional[float], str, str]:
    """Strip leading ``KEY=value`` attribute tokens off a request tail.

    Returns ``(deadline_ms, seq, remainder)``.  Only *leading* tokens
    are consumed, so attribute-shaped text inside a SQL statement is
    never touched.
    """
    deadline_ms: Optional[float] = None
    seq = ""
    while rest:
        head, _, tail = rest.partition(" ")
        key, eq, value = head.partition("=")
        if not eq or key.upper() not in _ATTR_KEYS:
            break
        if key.upper() == "DEADLINE":
            try:
                deadline_ms = float(value)
            except ValueError:
                raise ProtocolError(
                    f"DEADLINE: expected milliseconds, got {value!r}"
                ) from None
            if deadline_ms <= 0:
                raise ProtocolError("DEADLINE must be > 0 milliseconds")
        else:  # SEQ
            if not value:
                raise ProtocolError("SEQ token must be non-empty")
            seq = value
        rest = tail.strip()
    return deadline_ms, seq, rest


def _floats(parts: List[str], what: str) -> List[float]:
    out: List[float] = []
    for p in parts:
        try:
            out.append(float(p))
        except ValueError:
            raise ProtocolError(
                f"{what}: expected a number, got {p!r}"
            ) from None
    return out


def parse_request(line: str) -> Request:
    """Parse one request line; raises :class:`ProtocolError` on misuse."""
    stripped = line.strip()
    if not stripped:
        raise ProtocolError("empty request line")
    head, _, rest = stripped.partition(" ")
    command = head.upper()
    rest = rest.strip()
    if command not in COMMANDS:
        raise ProtocolError(
            f"unknown command {head!r}; expected one of {', '.join(COMMANDS)}"
        )
    if command in ("STATS", "CLOSE"):
        if rest:
            raise ProtocolError(f"{command} takes no arguments")
        return Request(command)
    deadline_ms, seq, rest = _split_attrs(rest)
    if seq and command != "INGEST":
        raise ProtocolError("SEQ only applies to INGEST")
    if command in ("QUERY", "EXPLAIN"):
        if not rest:
            raise ProtocolError(f"{command} needs a SQL statement")
        return Request(command, sql=rest, deadline_ms=deadline_ms)
    parts = rest.split()
    if command == "INGEST":
        if len(parts) != 8:
            raise ProtocolError(
                "INGEST needs <fleet> <obj> <t0> <x0> <y0> <t1> <x1> <y1>"
            )
        fleet = parts[0]
        try:
            obj = int(parts[1])
        except ValueError:
            raise ProtocolError(
                f"INGEST: object index must be an integer, got {parts[1]!r}"
            ) from None
        if obj < 0:
            raise ProtocolError("INGEST: object index must be >= 0")
        t0, x0, y0, t1, x1, y1 = _floats(parts[2:], "INGEST")
        return Request(
            "INGEST", fleet=fleet, obj=obj, unit=(t0, x0, y0, t1, x1, y1),
            deadline_ms=deadline_ms, seq=seq,
        )
    # SNAPSHOT <fleet> <t> [<xmin> <ymin> <xmax> <ymax>]
    if len(parts) not in (2, 6):
        raise ProtocolError(
            "SNAPSHOT needs <fleet> <t> [<xmin> <ymin> <xmax> <ymax>]"
        )
    fleet = parts[0]
    values = _floats(parts[1:], "SNAPSHOT")
    window: Optional[Tuple[float, float, float, float]] = None
    if len(values) == 5:
        xmin, ymin, xmax, ymax = values[1:]
        if xmin > xmax or ymin > ymax:
            raise ProtocolError("SNAPSHOT: malformed window rectangle")
        window = (xmin, ymin, xmax, ymax)
    return Request(
        "SNAPSHOT", fleet=fleet, t=values[0], window=window,
        deadline_ms=deadline_ms,
    )


def _clean(text: str) -> str:
    """One-line form of arbitrary message text (the framing is per-line)."""
    return " ".join(str(text).split())


def ok_line(**fields: object) -> str:
    """The ``OK key=value ...`` response header."""
    if not fields:
        return "OK"
    return "OK " + " ".join(f"{k}={_clean(str(v))}" for k, v in fields.items())


def err_line(exc: BaseException) -> str:
    """The single-line error response: ``ERR <Type> <message>``."""
    return f"ERR {type(exc).__name__} {_clean(str(exc)) or '(no detail)'}"


def row_line(**fields: object) -> str:
    """One ``ROW`` data line; fields are tab-separated ``key=value``."""
    return "ROW " + "\t".join(f"{k}={_clean(str(v))}" for k, v in fields.items())


def stat_line(name: str, value: object) -> str:
    """One ``STAT`` data line."""
    return f"STAT {name} {_clean(str(value))}"
