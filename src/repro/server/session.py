"""The asyncio session layer: sockets in, protocol lines out.

One task per connection reads request lines, parses them with
:mod:`repro.server.protocol`, and dispatches to the executor (reads run
in worker threads so the loop stays responsive) or the group committer
(ingest).  The session layer holds **no** execution state of its own —
a malformed or failing request answers with a single ``ERR`` line and
the session keeps going.

Graceful shutdown: :meth:`QueryServer.stop` closes the listener, lets
in-flight requests drain (bounded), cancels sessions idling in
``readline``, stops the committer (which commits everything already
queued), and syncs the WAL one last time.  Nothing durable is lost by a
polite shutdown; everything durable survives an impolite one.

Overload and deadlines
----------------------
The session layer is also the admission controller.  Requests that do
work are counted in-flight; past ``max_inflight`` (or past the ingest
queue watermark) the server answers ``ERR Overloaded`` with a
``retry_after_ms`` hint instead of queueing without bound — shedding
early keeps the p99 of admitted requests flat while clients back off.
A request carrying ``DEADLINE=<ms>`` gets a monotonic
:class:`~repro.deadline.Deadline`: the executor checks it at chunk
boundaries (cooperative) and the session wraps the await in
``asyncio.wait_for`` (wall-clock backstop), so the client always hears
``ERR DeadlineExceeded`` near the budget even when the work is stuck
somewhere non-cooperative.  STATS and CLOSE bypass admission so an
operator can always inspect an overloaded server.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any, Awaitable, Dict, List, Optional, TypeVar

from repro import faults, obs
from repro.deadline import Deadline
from repro.errors import DeadlineExceeded, Overloaded, ProtocolError, ReproError
from repro.server import protocol
from repro.server.executor import FleetExecutor
from repro.server.ingest import GroupCommitter, IngestRequest
from repro.storage.wal import Wal

_T = TypeVar("_T")

__all__ = ["QueryServer", "RunningServer", "serve_in_thread"]

#: How long ``stop()`` waits for in-flight requests before cancelling.
_DRAIN_DEADLINE = 5.0

#: Ceiling on the ``retry_after_ms`` backoff hint handed to shed
#: clients — the hint scales with observed latency and queue excess,
#: but a wild p99 sample must not park clients for seconds.
_RETRY_AFTER_CAP_MS = 2000

#: How long one ``server.slow_client`` firing stalls a response write
#: (seconds) — long enough to overlap concurrent traffic, short enough
#: to keep the chaos matrix quick.
_SLOW_CLIENT_STALL_S = 0.05


class QueryServer:
    """The always-on query service: one listener, many sessions."""

    def __init__(
        self,
        executor: FleetExecutor,
        wal: Optional[Wal] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 64,
        max_delay: float = 0.002,
        max_inflight: int = 64,
        ingest_watermark: int = 1024,
    ):
        self._executor = executor
        self._wal = wal
        self._host = host
        self._requested_port = port
        self._committer = GroupCommitter(wal, executor, max_batch, max_delay)
        self._server: Optional[asyncio.AbstractServer] = None
        self._sessions: set = set()
        # Loop-confined admission state: only event-loop callbacks read
        # or write these, so no lock is needed (or wanted — MOD008).
        self._inflight = 0
        self._max_inflight = max(1, int(max_inflight))
        self._ingest_watermark = max(1, int(ingest_watermark))
        self._stopping = False

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` — ask the OS)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def executor(self) -> FleetExecutor:
        return self._executor

    async def start(self) -> None:
        self._committer.start()
        self._server = await asyncio.start_server(
            self._handle_session, self._host, self._requested_port
        )

    async def stop(self) -> None:
        """Drain and shut down; durable state is synced, never torn."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + _DRAIN_DEADLINE
        while self._inflight and loop.time() < deadline:
            await asyncio.sleep(0.01)
        for task in list(self._sessions):
            task.cancel()
        if self._sessions:
            await asyncio.gather(*self._sessions, return_exceptions=True)
        await self._committer.stop()
        if self._wal is not None:
            # fsync is a blocking barrier; never run it on the loop.
            await asyncio.to_thread(self._wal.sync)

    # -- per-session loop --------------------------------------------------

    async def _handle_session(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if obs.enabled:
            obs.add("server.sessions")
        task = asyncio.current_task()
        if task is not None:
            self._sessions.add(task)
        try:
            while not self._stopping:
                raw = await reader.readline()
                if not raw:
                    break
                line = raw.decode("utf-8", "replace")
                self._inflight += 1
                if obs.enabled:
                    obs.high_water("server.inflight", float(self._inflight))
                try:
                    closing = await self._serve_line(line, writer)
                finally:
                    self._inflight -= 1
                if closing:
                    break
        except (asyncio.CancelledError, ConnectionResetError):
            pass
        finally:
            if task is not None:
                self._sessions.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    async def _serve_line(
        self, line: str, writer: asyncio.StreamWriter
    ) -> bool:
        """Answer one request line; True when the session should end."""
        try:
            request = protocol.parse_request(line)
            if request.command == "CLOSE":
                await _write(writer, [protocol.BYE])
                return True
            self._admit(request)
            deadline = (
                Deadline.after(request.deadline_ms)
                if request.deadline_ms is not None
                else None
            )
            lines = await self._dispatch(request, deadline)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # ERR answers; the session survives
            if obs.enabled:
                if isinstance(exc, DeadlineExceeded):
                    obs.add("server.timeouts")
                elif not isinstance(exc, Overloaded):
                    # shed requests were already counted by _admit
                    obs.add("server.errors")
            await _write(writer, [protocol.err_line(exc)])
            return False
        if faults.active and faults.should_fire("server.conn_drop"):
            # The degraded path the chaos matrix drives: the work is
            # done (an INGEST may already be durable) but the response
            # never reaches the wire.  A client retry of that INGEST is
            # what the seq-token dedup table must absorb.
            writer.close()
            return True
        await _write(writer, lines)
        return False

    def _admit(self, request: protocol.Request) -> None:
        """Admission control: shed instead of queueing without bound.

        ``_inflight`` already counts this request, so the comparison is
        against ``max_inflight`` admitted peers *plus* this one.  INGEST
        is additionally shed when the committer's backlog is past the
        watermark — queries and ingest saturate different resources.
        The ``retry_after_ms`` hint scales with the observed p50 and
        how far past the limit we are, so backoff tracks actual drain
        speed rather than a magic constant.
        """
        if request.command in ("STATS", "CLOSE"):
            return
        excess = self._inflight - self._max_inflight - 1
        if request.command == "INGEST":
            excess = max(
                excess, self._committer.depth() - self._ingest_watermark
            )
        if excess < 0:
            return
        if obs.enabled:
            obs.add("server.shed")
        p50, _ = self._executor.latency_percentiles()
        hint = min(
            _RETRY_AFTER_CAP_MS, max(1, int(max(p50, 1.0) * (excess + 1)))
        )
        raise Overloaded(
            f"server overloaded retry_after_ms={hint}", retry_after_ms=hint
        )

    async def _dispatch(
        self, request: protocol.Request, deadline: Optional[Deadline] = None
    ) -> List[str]:
        command = request.command
        if command == "INGEST":
            units = await _bounded(
                self._committer.submit(
                    IngestRequest(
                        request.fleet, request.obj, request.unit,
                        seq=request.seq,
                    )
                ),
                deadline,
            )
            return [protocol.ok_line(units=units), protocol.END]
        if command == "STATS":
            stats = await asyncio.to_thread(self._executor.stats)
            lines = [protocol.ok_line(stats=len(stats))]
            lines.extend(
                protocol.stat_line(name, stats[name]) for name in stats
            )
            lines.append(protocol.END)
            return lines
        # The read commands: timed, counted, snapshot-isolated.
        started = time.perf_counter()
        if command == "QUERY":
            results = await _bounded(
                asyncio.to_thread(
                    self._executor.query_sql, request.sql, deadline
                ),
                deadline,
            )
            lines = [protocol.ok_line(statements=len(results))]
            for res in results:
                if res.rows is None:
                    lines.append(f"MSG {protocol._clean(res.message)}")
                    continue
                for row in res.rows:
                    lines.append(protocol.row_line(
                        **{k: _format_field(v) for k, v in row.items()}
                    ))
        elif command == "EXPLAIN":
            plan = await _bounded(
                asyncio.to_thread(
                    self._executor.explain_sql, request.sql, deadline
                ),
                deadline,
            )
            lines = [protocol.ok_line()]
            lines.extend(f"PLAN {pl}" for pl in plan.splitlines() if pl)
        else:  # SNAPSHOT
            snap, rows = await _bounded(
                asyncio.to_thread(
                    self._executor.snapshot_rows,
                    request.fleet,
                    request.t,
                    request.window,
                    deadline,
                ),
                deadline,
            )
            lines = [
                protocol.ok_line(
                    version=snap.version, objects=len(snap), rows=len(rows)
                )
            ]
            lines.extend(
                protocol.row_line(obj=i, x=repr(x), y=repr(y))
                for i, x, y in rows
            )
        lines.append(protocol.END)
        self._executor.record_latency(
            (time.perf_counter() - started) * 1000.0
        )
        if obs.enabled:
            obs.add("server.queries")
        return lines


async def _bounded(aw: Awaitable[_T], deadline: Optional[Deadline]) -> _T:
    """Await ``aw`` under the request deadline (wall-clock backstop).

    The executor's cooperative checks normally fire first; this wrapper
    catches the cases they cannot — work parked in a queue, or stuck in
    a chunk between checks.  Cancelling a ``to_thread`` future does not
    stop the thread, but the abandoned work still holds a thread-local
    deadline that is already expired, so its own next check aborts it.
    """
    if deadline is None:
        return await aw
    try:
        return await asyncio.wait_for(aw, timeout=deadline.remaining_s())
    except asyncio.TimeoutError:
        raise DeadlineExceeded(
            f"request deadline of {deadline.budget_ms:g}ms exceeded"
        ) from None


def _format_field(value: object) -> str:
    """Unwrap query-result values the way the CLI's tables do."""
    from repro.base.instant import Instant
    from repro.base.values import BaseValue

    if isinstance(value, BaseValue):
        return str(value.value) if value.defined else "⊥"
    if isinstance(value, Instant):
        return f"{value.value:g}" if value.defined else "⊥"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


#: Response lines buffered between ``drain()`` calls.  Small enough
#: that a slow reader bounds the per-session buffer at a few KB, large
#: enough that short responses pay a single drain.
_WRITE_CHUNK = 256


async def _write(writer: asyncio.StreamWriter, lines: List[str]) -> None:
    """Write response lines with backpressure.

    ``StreamWriter.write`` only buffers; without ``drain()`` a client
    that stops reading lets a big SNAPSHOT/QUERY response grow the
    transport buffer without bound.  Draining every ``_WRITE_CHUNK``
    lines parks *this* session (and only this session) until the peer
    catches up.
    """
    for start in range(0, len(lines), _WRITE_CHUNK):
        if faults.active and faults.should_fire("server.slow_client"):
            # A peer that stops reading: park this session mid-response
            # the way a full transport buffer would.  Only this session
            # stalls — the chaos matrix asserts concurrent sessions
            # keep answering.
            await asyncio.sleep(_SLOW_CLIENT_STALL_S)
        chunk = lines[start:start + _WRITE_CHUNK]
        writer.write(("\n".join(chunk) + "\n").encode("utf-8"))
        await writer.drain()


# -- running the server off-thread (tests, benchmarks, the CLI) -----------


class RunningServer:
    """Handle on a :class:`QueryServer` running in a background thread."""

    def __init__(self, holder: Dict[str, Any], thread: threading.Thread):
        self._holder = holder
        self._thread = thread

    @property
    def port(self) -> int:
        return self._holder["server"].port

    @property
    def server(self) -> QueryServer:
        return self._holder["server"]

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful shutdown; returns once the thread has exited."""
        loop = self._holder.get("loop")
        stopper = self._holder.get("stopper")
        if loop is not None and stopper is not None and self._thread.is_alive():
            loop.call_soon_threadsafe(stopper.set)
        self._thread.join(timeout)


def serve_in_thread(
    executor: FleetExecutor,
    wal: Optional[Wal] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs: Any,
) -> RunningServer:
    """Start a :class:`QueryServer` on a daemon thread with its own loop.

    Blocks until the listener is bound, so ``.port`` is valid on return.
    Call :meth:`RunningServer.stop` for a graceful drain + shutdown.
    """
    holder: Dict[str, Any] = {}
    ready = threading.Event()

    def runner() -> None:
        async def main() -> None:
            server = QueryServer(
                executor, wal=wal, host=host, port=port, **kwargs
            )
            await server.start()
            holder["server"] = server
            holder["loop"] = asyncio.get_running_loop()
            holder["stopper"] = asyncio.Event()
            ready.set()
            await holder["stopper"].wait()
            await server.stop()

        try:
            asyncio.run(main())
        except BaseException as exc:
            holder["error"] = exc
        finally:
            ready.set()

    thread = threading.Thread(target=runner, name="repro-server", daemon=True)
    thread.start()
    ready.wait(10.0)
    if "error" in holder:
        raise holder["error"]
    if "server" not in holder:
        raise RuntimeError("query server failed to start within 10s")
    return RunningServer(holder, thread)
