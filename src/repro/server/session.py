"""The asyncio session layer: sockets in, protocol lines out.

One task per connection reads request lines, parses them with
:mod:`repro.server.protocol`, and dispatches to the executor (reads run
in worker threads so the loop stays responsive) or the group committer
(ingest).  The session layer holds **no** execution state of its own —
a malformed or failing request answers with a single ``ERR`` line and
the session keeps going.

Graceful shutdown: :meth:`QueryServer.stop` closes the listener, lets
in-flight requests drain (bounded), cancels sessions idling in
``readline``, stops the committer (which commits everything already
queued), and syncs the WAL one last time.  Nothing durable is lost by a
polite shutdown; everything durable survives an impolite one.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any, Dict, List, Optional

from repro import obs
from repro.errors import ProtocolError, ReproError
from repro.server import protocol
from repro.server.executor import FleetExecutor
from repro.server.ingest import GroupCommitter, IngestRequest
from repro.storage.wal import Wal

__all__ = ["QueryServer", "RunningServer", "serve_in_thread"]

#: How long ``stop()`` waits for in-flight requests before cancelling.
_DRAIN_DEADLINE = 5.0


class QueryServer:
    """The always-on query service: one listener, many sessions."""

    def __init__(
        self,
        executor: FleetExecutor,
        wal: Optional[Wal] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 64,
        max_delay: float = 0.002,
    ):
        self._executor = executor
        self._wal = wal
        self._host = host
        self._requested_port = port
        self._committer = GroupCommitter(wal, executor, max_batch, max_delay)
        self._server: Optional[asyncio.AbstractServer] = None
        self._sessions: set = set()
        self._inflight = 0
        self._stopping = False

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` — ask the OS)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def executor(self) -> FleetExecutor:
        return self._executor

    async def start(self) -> None:
        self._committer.start()
        self._server = await asyncio.start_server(
            self._handle_session, self._host, self._requested_port
        )

    async def stop(self) -> None:
        """Drain and shut down; durable state is synced, never torn."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + _DRAIN_DEADLINE
        while self._inflight and loop.time() < deadline:
            await asyncio.sleep(0.01)
        for task in list(self._sessions):
            task.cancel()
        if self._sessions:
            await asyncio.gather(*self._sessions, return_exceptions=True)
        await self._committer.stop()
        if self._wal is not None:
            # fsync is a blocking barrier; never run it on the loop.
            await asyncio.to_thread(self._wal.sync)

    # -- per-session loop --------------------------------------------------

    async def _handle_session(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if obs.enabled:
            obs.add("server.sessions")
        task = asyncio.current_task()
        if task is not None:
            self._sessions.add(task)
        try:
            while not self._stopping:
                raw = await reader.readline()
                if not raw:
                    break
                line = raw.decode("utf-8", "replace")
                self._inflight += 1
                try:
                    closing = await self._serve_line(line, writer)
                finally:
                    self._inflight -= 1
                if closing:
                    break
        except (asyncio.CancelledError, ConnectionResetError):
            pass
        finally:
            if task is not None:
                self._sessions.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    async def _serve_line(
        self, line: str, writer: asyncio.StreamWriter
    ) -> bool:
        """Answer one request line; True when the session should end."""
        try:
            request = protocol.parse_request(line)
            if request.command == "CLOSE":
                await _write(writer, [protocol.BYE])
                return True
            lines = await self._dispatch(request)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # ERR answers; the session survives
            if obs.enabled:
                obs.add("server.errors")
            await _write(writer, [protocol.err_line(exc)])
            return False
        await _write(writer, lines)
        return False

    async def _dispatch(self, request: protocol.Request) -> List[str]:
        command = request.command
        if command == "INGEST":
            units = await self._committer.submit(
                IngestRequest(request.fleet, request.obj, request.unit)
            )
            return [protocol.ok_line(units=units), protocol.END]
        if command == "STATS":
            stats = await asyncio.to_thread(self._executor.stats)
            lines = [protocol.ok_line(stats=len(stats))]
            lines.extend(
                protocol.stat_line(name, stats[name]) for name in stats
            )
            lines.append(protocol.END)
            return lines
        # The read commands: timed, counted, snapshot-isolated.
        started = time.perf_counter()
        if command == "QUERY":
            results = await asyncio.to_thread(
                self._executor.query_sql, request.sql
            )
            lines = [protocol.ok_line(statements=len(results))]
            for res in results:
                if res.rows is None:
                    lines.append(f"MSG {protocol._clean(res.message)}")
                    continue
                for row in res.rows:
                    lines.append(protocol.row_line(
                        **{k: _format_field(v) for k, v in row.items()}
                    ))
        elif command == "EXPLAIN":
            plan = await asyncio.to_thread(
                self._executor.explain_sql, request.sql
            )
            lines = [protocol.ok_line()]
            lines.extend(f"PLAN {pl}" for pl in plan.splitlines() if pl)
        else:  # SNAPSHOT
            snap, rows = await asyncio.to_thread(
                self._executor.snapshot_rows,
                request.fleet,
                request.t,
                request.window,
            )
            lines = [
                protocol.ok_line(
                    version=snap.version, objects=len(snap), rows=len(rows)
                )
            ]
            lines.extend(
                protocol.row_line(obj=i, x=repr(x), y=repr(y))
                for i, x, y in rows
            )
        lines.append(protocol.END)
        self._executor.record_latency(
            (time.perf_counter() - started) * 1000.0
        )
        if obs.enabled:
            obs.add("server.queries")
        return lines


def _format_field(value: object) -> str:
    """Unwrap query-result values the way the CLI's tables do."""
    from repro.base.instant import Instant
    from repro.base.values import BaseValue

    if isinstance(value, BaseValue):
        return str(value.value) if value.defined else "⊥"
    if isinstance(value, Instant):
        return f"{value.value:g}" if value.defined else "⊥"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


#: Response lines buffered between ``drain()`` calls.  Small enough
#: that a slow reader bounds the per-session buffer at a few KB, large
#: enough that short responses pay a single drain.
_WRITE_CHUNK = 256


async def _write(writer: asyncio.StreamWriter, lines: List[str]) -> None:
    """Write response lines with backpressure.

    ``StreamWriter.write`` only buffers; without ``drain()`` a client
    that stops reading lets a big SNAPSHOT/QUERY response grow the
    transport buffer without bound.  Draining every ``_WRITE_CHUNK``
    lines parks *this* session (and only this session) until the peer
    catches up.
    """
    for start in range(0, len(lines), _WRITE_CHUNK):
        chunk = lines[start:start + _WRITE_CHUNK]
        writer.write(("\n".join(chunk) + "\n").encode("utf-8"))
        await writer.drain()


# -- running the server off-thread (tests, benchmarks, the CLI) -----------


class RunningServer:
    """Handle on a :class:`QueryServer` running in a background thread."""

    def __init__(self, holder: Dict[str, Any], thread: threading.Thread):
        self._holder = holder
        self._thread = thread

    @property
    def port(self) -> int:
        return self._holder["server"].port

    @property
    def server(self) -> QueryServer:
        return self._holder["server"]

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful shutdown; returns once the thread has exited."""
        loop = self._holder.get("loop")
        stopper = self._holder.get("stopper")
        if loop is not None and stopper is not None and self._thread.is_alive():
            loop.call_soon_threadsafe(stopper.set)
        self._thread.join(timeout)


def serve_in_thread(
    executor: FleetExecutor,
    wal: Optional[Wal] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs: Any,
) -> RunningServer:
    """Start a :class:`QueryServer` on a daemon thread with its own loop.

    Blocks until the listener is bound, so ``.port`` is valid on return.
    Call :meth:`RunningServer.stop` for a graceful drain + shutdown.
    """
    holder: Dict[str, Any] = {}
    ready = threading.Event()

    def runner() -> None:
        async def main() -> None:
            server = QueryServer(
                executor, wal=wal, host=host, port=port, **kwargs
            )
            await server.start()
            holder["server"] = server
            holder["loop"] = asyncio.get_running_loop()
            holder["stopper"] = asyncio.Event()
            ready.set()
            await holder["stopper"].wait()
            await server.stop()

        try:
            asyncio.run(main())
        except BaseException as exc:
            holder["error"] = exc
        finally:
            ready.set()

    thread = threading.Thread(target=runner, name="repro-server", daemon=True)
    thread.start()
    ready.wait(10.0)
    if "error" in holder:
        raise holder["error"]
    if "server" not in holder:
        raise RuntimeError("query server failed to start within 10s")
    return RunningServer(holder, thread)
