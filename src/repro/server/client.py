"""A small blocking client for the query-service line protocol.

For tests, benchmarks, and shell scripting — one socket, synchronous
request/response, responses returned as parsed :class:`Reply` values.
Not an ORM: rows come back as the ``key=value`` dictionaries the wire
carries.

Resilience
----------
The client owns the retry half of the service's overload contract:

* Every read is bounded by a per-request socket deadline; a server
  that stops answering surfaces as the typed :class:`ClientTimeout`
  (counted ``client.timeouts``) rather than a hang.
* ``ERR Overloaded`` answers carry a ``retry_after_ms`` hint; the
  client honours it, padded with capped jittered exponential backoff
  (:func:`jittered_backoff`) so a thundering herd decorrelates.
  Shed requests did no work, so they retry unconditionally.
* Timeouts and dropped connections are retried only for *idempotent*
  requests.  :meth:`ingest` is always idempotent: the client stamps
  each unit with a ``SEQ=<client_id>:<n>`` token, and the server's
  dedup table makes a retry of an applied-but-unacked ingest
  exactly-once.
"""

from __future__ import annotations

import itertools
import os
import socket
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import faults, obs
from repro.errors import ProtocolError, ReproError

__all__ = [
    "ClientTimeout",
    "ConnectionLost",
    "Reply",
    "ServerClient",
    "ServerError",
    "jittered_backoff",
]


class ServerError(ReproError):
    """The server answered ``ERR``; carries the remote type and text."""

    def __init__(self, remote_type: str, message: str):
        super().__init__(message)
        self.remote_type = remote_type

    def retry_after_ms(self) -> Optional[int]:
        """The backoff hint of an ``Overloaded`` answer, if present."""
        for part in str(self).split():
            if part.startswith("retry_after_ms="):
                try:
                    return int(part.partition("=")[2])
                except ValueError:
                    return None
        return None


class ClientTimeout(ReproError):
    """The per-request socket deadline expired waiting on the server."""


class ConnectionLost(ProtocolError):
    """The connection died mid-response (EOF or reset)."""


def jittered_backoff(
    attempt: int,
    base_ms: float = 25.0,
    cap_ms: float = 1000.0,
    factor: float = 0.5,
    u: float = 0.5,
) -> float:
    """The capped, jittered exponential backoff for retry ``attempt``.

    Pure so the property tests can pin it down: with ``ideal =
    min(cap_ms, base_ms * 2**attempt)`` the result lies in
    ``[ideal * (1 - factor), min(cap_ms, ideal * (1 + factor))]`` —
    never past the cap, never more than ``factor`` away from the ideal
    curve.  ``u`` is the caller's uniform sample in ``[0, 1)``.
    """
    ideal = min(cap_ms, base_ms * (2.0 ** attempt))
    jittered = ideal * (1.0 - factor + 2.0 * factor * u)
    return min(cap_ms, jittered)


@dataclass
class Reply:
    """One parsed response: the OK header fields plus the data lines."""

    fields: Dict[str, str] = field(default_factory=dict)
    rows: List[Dict[str, str]] = field(default_factory=list)
    lines: List[str] = field(default_factory=list)  # PLAN / MSG / STAT text

    def stat(self, name: str) -> Optional[str]:
        """The value of a ``STAT <name> <value>`` line, if present."""
        prefix = f"STAT {name} "
        for line in self.lines:
            if line.startswith(prefix):
                return line[len(prefix):]
        return None


def _parse_kv(text: str, sep: str) -> Dict[str, str]:
    out: Dict[str, str] = {}
    for part in text.split(sep):
        key, eq, value = part.partition("=")
        if eq:
            out[key] = value
    return out


#: Distinguishes clients within a process for seq-token namespacing.
_CLIENT_IDS = itertools.count(1)


class ServerClient:
    """A synchronous connection to a running :class:`QueryServer`.

    ``timeout`` bounds the initial connect *and* is the default
    per-request read deadline; ``request_timeout`` overrides the latter.
    ``max_retries`` bounds the retry loop (0 disables retrying).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 10.0,
        request_timeout: Optional[float] = None,
        max_retries: int = 5,
        backoff_base_ms: float = 25.0,
        backoff_cap_ms: float = 1000.0,
        client_id: Optional[str] = None,
    ):
        self._host = host
        self._port = port
        self._connect_timeout = timeout
        self._request_timeout = (
            request_timeout if request_timeout is not None else timeout
        )
        self._max_retries = max(0, int(max_retries))
        self._backoff_base_ms = backoff_base_ms
        self._backoff_cap_ms = backoff_cap_ms
        # Seq tokens must be unique per logical client across its own
        # reconnects, so the namespace is pid + client ordinal, not the
        # socket.
        self.client_id = (
            client_id
            if client_id is not None
            else f"c{os.getpid()}-{next(_CLIENT_IDS)}"
        )
        self._seq_n = itertools.count(1)
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._connect_timeout
        )
        self._file = self._sock.makefile("rwb")

    def _reconnect(self) -> None:
        try:
            self._file.close()
            self._sock.close()
        except OSError:
            pass
        self._connect()

    def close(self) -> None:
        """End the session politely (``CLOSE`` → ``BYE``), then hang up."""
        try:
            self._file.write(b"CLOSE\n")
            self._file.flush()
            self._file.readline()  # BYE
        except (OSError, ValueError):
            pass
        finally:
            self._file.close()
            self._sock.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- the wire ----------------------------------------------------------

    def request(
        self,
        line: str,
        idempotent: bool = False,
        timeout: Optional[float] = None,
    ) -> Reply:
        """Send one request line with retries; read one framed response.

        Raises :class:`ServerError` for ``ERR`` responses the retry
        budget cannot absorb, :class:`ClientTimeout` when the read
        deadline expires, and :class:`ConnectionLost` /
        :class:`ProtocolError` when the framing dies.  ``Overloaded``
        answers always retry (the server did no work); timeouts and
        lost connections retry only when ``idempotent`` — a non-
        idempotent request that may already have applied must surface
        to the caller instead of silently applying twice.
        """
        attempt = 0
        while True:
            try:
                return self._request_once(line, timeout)
            except ServerError as exc:
                if (
                    exc.remote_type != "Overloaded"
                    or attempt >= self._max_retries
                ):
                    raise
                hint_ms = exc.retry_after_ms() or 0
                delay_ms = max(hint_ms, self._backoff_ms(attempt))
            except (ClientTimeout, ConnectionLost) as exc:
                if not idempotent or attempt >= self._max_retries:
                    raise
                delay_ms = self._backoff_ms(attempt)
                try:
                    self._reconnect()
                except OSError:
                    raise exc from None
            if obs.enabled:
                obs.add("client.retries")
            time.sleep(delay_ms / 1000.0)
            attempt += 1

    def _backoff_ms(self, attempt: int) -> float:
        # int.from_bytes(os.urandom) rather than the random module: the
        # decorrelation must survive forked benchmark workers that
        # inherit identical RNG state.
        u = int.from_bytes(os.urandom(4), "big") / 2.0 ** 32
        return jittered_backoff(
            attempt, self._backoff_base_ms, self._backoff_cap_ms, u=u
        )

    def _request_once(self, line: str, timeout: Optional[float]) -> Reply:
        self._sock.settimeout(
            timeout if timeout is not None else self._request_timeout
        )
        try:
            self._file.write(line.rstrip("\n").encode("utf-8") + b"\n")
            self._file.flush()
            return self._read_reply()
        except socket.timeout:
            if obs.enabled:
                obs.add("client.timeouts")
            raise ClientTimeout(
                f"no response within the read deadline for {line.split()[0]}"
            ) from None
        except (ConnectionResetError, BrokenPipeError) as exc:
            raise ConnectionLost(f"connection lost mid-request: {exc}") from None

    def _read_reply(self) -> Reply:
        reply = Reply()
        first = True
        while True:
            raw = self._file.readline()
            if not raw:
                raise ConnectionLost("connection closed mid-response")
            text = raw.decode("utf-8").rstrip("\n")
            if first:
                first = False
                if text.startswith("ERR "):
                    _, _, detail = text.partition(" ")
                    rtype, _, message = detail.partition(" ")
                    raise ServerError(rtype, message)
                if text == "BYE":
                    reply.lines.append(text)
                    return reply
                if text == "OK" or text.startswith("OK "):
                    reply.fields = _parse_kv(text[3:], " ")
                    continue
                raise ProtocolError(f"unexpected response header {text!r}")
            if text == "END":
                return reply
            if text.startswith("ROW "):
                reply.rows.append(_parse_kv(text[4:], "\t"))
            else:
                reply.lines.append(text)

    # -- command helpers ---------------------------------------------------

    @staticmethod
    def _attrs(deadline_ms: Optional[float], seq: str = "") -> str:
        parts = []
        if deadline_ms is not None:
            parts.append(f"DEADLINE={deadline_ms:g}")
        if seq:
            parts.append(f"SEQ={seq}")
        return (" ".join(parts) + " ") if parts else ""

    def query(self, sql: str, deadline_ms: Optional[float] = None) -> Reply:
        return self.request(
            f"QUERY {self._attrs(deadline_ms)}{sql}", idempotent=True
        )

    def explain(self, sql: str, deadline_ms: Optional[float] = None) -> Reply:
        return self.request(
            f"EXPLAIN {self._attrs(deadline_ms)}{sql}", idempotent=True
        )

    def ingest(
        self,
        fleet: str,
        obj: int,
        unit: Tuple[float, float, float, float, float, float],
        deadline_ms: Optional[float] = None,
        seq: Optional[str] = None,
    ) -> int:
        """Append one unit slice; returns the object's new unit count.

        Idempotent: each call is stamped with a fresh
        ``<client_id>:<n>`` sequence token (or the caller's ``seq``),
        so a retry after a lost ack lands exactly once.
        """
        if seq is None:
            seq = f"{self.client_id}:{next(self._seq_n)}"
        t0, x0, y0, t1, x1, y1 = unit
        line = (
            f"INGEST {self._attrs(deadline_ms, seq)}{fleet} {obj} "
            f"{t0!r} {x0!r} {y0!r} {t1!r} {x1!r} {y1!r}"
        )
        reply = self.request(line, idempotent=True)
        if faults.active and faults.should_fire("ingest.dup_send"):
            # The chaos matrix's duplicate-delivery fault: re-send the
            # acked request verbatim.  The dedup table must answer the
            # copy without appending a second slice.
            reply = self.request(line, idempotent=True)
        return int(reply.fields.get("units", "0"))

    def snapshot(
        self,
        fleet: str,
        t: float,
        window: Optional[Tuple[float, float, float, float]] = None,
        deadline_ms: Optional[float] = None,
    ) -> Reply:
        line = f"SNAPSHOT {self._attrs(deadline_ms)}{fleet} {t!r}"
        if window is not None:
            line += " " + " ".join(repr(v) for v in window)
        return self.request(line, idempotent=True)

    def stats(self) -> Reply:
        return self.request("STATS", idempotent=True)
