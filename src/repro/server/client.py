"""A small blocking client for the query-service line protocol.

For tests, benchmarks, and shell scripting — one socket, synchronous
request/response, responses returned as parsed :class:`Reply` values.
Not an ORM: rows come back as the ``key=value`` dictionaries the wire
carries.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ProtocolError, ReproError

__all__ = ["Reply", "ServerClient", "ServerError"]


class ServerError(ReproError):
    """The server answered ``ERR``; carries the remote type and text."""

    def __init__(self, remote_type: str, message: str):
        super().__init__(message)
        self.remote_type = remote_type


@dataclass
class Reply:
    """One parsed response: the OK header fields plus the data lines."""

    fields: Dict[str, str] = field(default_factory=dict)
    rows: List[Dict[str, str]] = field(default_factory=list)
    lines: List[str] = field(default_factory=list)  # PLAN / MSG / STAT text

    def stat(self, name: str) -> Optional[str]:
        """The value of a ``STAT <name> <value>`` line, if present."""
        prefix = f"STAT {name} "
        for line in self.lines:
            if line.startswith(prefix):
                return line[len(prefix):]
        return None


def _parse_kv(text: str, sep: str) -> Dict[str, str]:
    out: Dict[str, str] = {}
    for part in text.split(sep):
        key, eq, value = part.partition("=")
        if eq:
            out[key] = value
    return out


class ServerClient:
    """A synchronous connection to a running :class:`QueryServer`."""

    def __init__(self, host: str, port: int, timeout: float = 10.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        """End the session politely (``CLOSE`` → ``BYE``), then hang up."""
        try:
            self._file.write(b"CLOSE\n")
            self._file.flush()
            self._file.readline()  # BYE
        except (OSError, ValueError):
            pass
        finally:
            self._file.close()
            self._sock.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- the wire ----------------------------------------------------------

    def request(self, line: str) -> Reply:
        """Send one raw request line, read one framed response.

        Raises :class:`ServerError` for ``ERR`` responses and
        :class:`ProtocolError` if the server's framing is unreadable.
        """
        self._file.write(line.rstrip("\n").encode("utf-8") + b"\n")
        self._file.flush()
        reply = Reply()
        first = True
        while True:
            raw = self._file.readline()
            if not raw:
                raise ProtocolError("connection closed mid-response")
            text = raw.decode("utf-8").rstrip("\n")
            if first:
                first = False
                if text.startswith("ERR "):
                    _, _, detail = text.partition(" ")
                    rtype, _, message = detail.partition(" ")
                    raise ServerError(rtype, message)
                if text == "BYE":
                    reply.lines.append(text)
                    return reply
                if text == "OK" or text.startswith("OK "):
                    reply.fields = _parse_kv(text[3:], " ")
                    continue
                raise ProtocolError(f"unexpected response header {text!r}")
            if text == "END":
                return reply
            if text.startswith("ROW "):
                reply.rows.append(_parse_kv(text[4:], "\t"))
            else:
                reply.lines.append(text)

    # -- command helpers ---------------------------------------------------

    def query(self, sql: str) -> Reply:
        return self.request(f"QUERY {sql}")

    def explain(self, sql: str) -> Reply:
        return self.request(f"EXPLAIN {sql}")

    def ingest(
        self,
        fleet: str,
        obj: int,
        unit: Tuple[float, float, float, float, float, float],
    ) -> int:
        """Append one unit slice; returns the object's new unit count."""
        t0, x0, y0, t1, x1, y1 = unit
        reply = self.request(
            f"INGEST {fleet} {obj} {t0!r} {x0!r} {y0!r} {t1!r} {x1!r} {y1!r}"
        )
        return int(reply.fields.get("units", "0"))

    def snapshot(
        self,
        fleet: str,
        t: float,
        window: Optional[Tuple[float, float, float, float]] = None,
    ) -> Reply:
        line = f"SNAPSHOT {fleet} {t!r}"
        if window is not None:
            line += " " + " ".join(repr(v) for v in window)
        return self.request(line)

    def stats(self) -> Reply:
        return self.request("STATS")
