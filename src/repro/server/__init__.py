"""``repro.server`` — the always-on query service.

A long-running asyncio front end over the moving-objects store: clients
speak a small line protocol (QUERY / EXPLAIN / INGEST / SNAPSHOT /
STATS / CLOSE), ingestion appends unit slices to live fleets WAL-durably
behind a group-committed fsync, and every read pins a snapshot of the
versioned fleet so in-flight queries never observe a torn fleet.

Layering (modelled on a REPL/executor split):

* :mod:`repro.server.protocol` — parse request lines, format response
  lines; knows nothing about fleets or execution.
* :mod:`repro.server.executor` — owns the fleets, their R-tree indexes,
  the SQL database, and the snapshot-isolation pin; knows nothing about
  sockets.
* :mod:`repro.server.ingest` — the WAL group committer and recovery
  replay for ``INGEST`` records.
* :mod:`repro.server.session` — the asyncio session layer wiring the
  two together, one task per connection.
* :mod:`repro.server.client` — a small blocking client for tests,
  benchmarks, and scripting.
"""

from __future__ import annotations

from repro.server.client import ServerClient
from repro.server.executor import FleetExecutor, Snapshot
from repro.server.ingest import GroupCommitter, IngestRequest, replay_ingest
from repro.server.session import QueryServer, serve_in_thread

__all__ = [
    "FleetExecutor",
    "GroupCommitter",
    "IngestRequest",
    "QueryServer",
    "ServerClient",
    "Snapshot",
    "replay_ingest",
    "serve_in_thread",
]
