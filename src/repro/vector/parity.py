"""Scalar↔vector parity registry (MOD003).

Every public batched kernel in :mod:`repro.vector.kernels` is a
transcription of a scalar reference algorithm, and the two must stay
equivalent unit for unit — that equivalence is a representation
invariant of the columnar backend, not a nicety (see DESIGN.md).  This
registry makes the pairing explicit and machine-checkable: ``repro-lint``
rule MOD003 verifies that every kernel appears here and that the named
equivalence property test exists in ``tests/test_vector_properties.py``.

Keep the dict a pure literal: the checker reads it with the stdlib
``ast`` module, without importing numpy.
"""

from __future__ import annotations

from typing import Dict, NamedTuple


class KernelParity(NamedTuple):
    """One kernel's scalar twin and the property test pinning them."""

    #: Dotted path of the scalar reference implementation.
    scalar: str
    #: Name of the equivalence test in tests/test_vector_properties.py.
    test: str


KERNEL_PARITY: Dict[str, KernelParity] = {
    "locate_units": KernelParity(
        scalar="repro.temporal.mapping.Mapping.unit_at",
        test="test_locate_units_matches_unit_at",
    ),
    "atinstant_batch": KernelParity(
        scalar="repro.temporal.mapping.Mapping.value_at",
        test="test_matches_scalar_atinstant",
    ),
    "ureal_atinstant_batch": KernelParity(
        scalar="repro.temporal.ureal.UReal.value_at",
        test="test_matches_scalar_ureal",
    ),
    "bbox_filter_batch": KernelParity(
        scalar="repro.spatial.bbox.Cube.intersects",
        test="test_bbox_filter_matches_scalar",
    ),
    "segs_to_array": KernelParity(
        scalar="repro.geometry.segment.Seg",
        test="test_segs_to_array_round_trip",
    ),
    "crossings_above_batch": KernelParity(
        scalar="repro.geometry.plumbline.crossings_above",
        test="test_crossings_match_scalar",
    ),
    "on_boundary_batch": KernelParity(
        scalar="repro.geometry.segment.point_on_seg",
        test="test_on_boundary_matches_point_on_seg",
    ),
    "inside_prefilter": KernelParity(
        scalar="repro.geometry.plumbline.point_in_segset",
        test="test_inside_matches_point_in_segset",
    ),
    "window_times_batch": KernelParity(
        scalar="repro.ops.window.upoint_within_rect_times",
        test="test_window_times_batch_matches_scalar",
    ),
    "window_intervals_batch": KernelParity(
        scalar="repro.ops.window.mpoint_within_rect_times",
        test="test_window_intervals_batch_matches_scalar",
    ),
}
