"""Fleet-level evaluation with a scalar/vector/parallel backend switch.

The helpers here are the API the rest of the stack (executor, CLI,
benchmarks) calls: each takes a *fleet* (a sequence of moving values)
and evaluates one operation over all of it, either through the batched
columnar kernels (``vector``), through those same kernels chunked over a
shared-memory process pool (``parallel``, :mod:`repro.parallel`), or
through the per-object scalar reference loop (``scalar``).  All backends
return identical results; when the columnar paths cannot represent the
input (mixed unit types, non-mapping operands) they fall back to scalar
and count the event (``vector.fallback_to_scalar``), and the parallel
layer additionally degrades to single-process kernels under
``parallel.fallback.*``.

Column construction is routed through :mod:`repro.vector.cache`:
versioned :class:`~repro.vector.cache.Fleet` sequences reuse their
columns across calls (invalidated on mutation), plain sequences are
transcribed per call.

The process-wide default backend starts at
``repro.config.DEFAULT_BACKEND`` and is flipped by ``set_backend`` (the
CLI's ``--backend`` flag ends up here).  The fourth backend name,
``"sharded"``, belongs to :mod:`repro.shard` (hash-partitioned fleets
with scatter-gather execution); for the plain-sequence helpers here it
evaluates through the single-process vector kernels — partitioning an
un-partitioned fleet per call would only add copies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import config, obs
from repro.errors import InvalidValue, StorageError
from repro.spatial.bbox import Cube
from repro.spatial.point import Point
from repro.spatial.region import Region
from repro.temporal.mapping import MovingPoint, MovingReal
from repro.vector.cache import column_for_versioned, revalidate
from repro.vector.kernels import (
    atinstant_batch,
    bbox_filter_batch,
    inside_prefilter,
    ureal_atinstant_batch,
)

BACKENDS = ("scalar", "vector", "parallel", "sharded")

_backend: str = config.DEFAULT_BACKEND


def set_backend(name: str) -> None:
    """Select the process-wide default backend (see :data:`BACKENDS`)."""
    global _backend
    if name not in BACKENDS:
        raise InvalidValue(f"unknown backend {name!r}; choose from {BACKENDS}")
    _backend = name


def get_backend() -> str:
    """The current process-wide default backend."""
    return _backend


def _resolve(backend: Optional[str]) -> str:
    if backend is None:
        return _backend
    if backend not in BACKENDS:
        raise InvalidValue(f"unknown backend {backend!r}; choose from {BACKENDS}")
    return backend


def _fallback(reason: str) -> None:
    if obs.enabled:
        obs.counters.add("vector.fallback_to_scalar")
        obs.counters.add(f"vector.fallback_to_scalar.{reason}")


# ---------------------------------------------------------------------------
# Fleet operations
# ---------------------------------------------------------------------------


def fleet_atinstant(
    fleet: Sequence[MovingPoint],
    t: float,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
) -> List[Optional[Point]]:
    """Position of every moving point at instant ``t`` (None where ⊥)."""
    resolved = _resolve(backend)
    if resolved == "vector" or resolved == "parallel" or resolved == "sharded":
        try:
            version, col = column_for_versioned(fleet, "upoint")
            col = revalidate(fleet, "upoint", version, col)
        except (InvalidValue, StorageError):
            _fallback("upoint_column")
        else:
            if resolved == "parallel":
                from repro.parallel import parallel_atinstant

                xs, ys, defined = parallel_atinstant(col, t, workers=workers)
            else:
                xs, ys, defined = atinstant_batch(col, t)
            return [
                Point(float(x), float(y)) if d else None
                for x, y, d in zip(xs, ys, defined)
            ]
    return [m.value_at(t) for m in fleet]


def fleet_atinstant_real(
    fleet: Sequence[MovingReal],
    t: float,
    backend: Optional[str] = None,
) -> List[Optional[float]]:
    """Value of every moving real at instant ``t`` (None where ⊥).

    No chunked variant: moving-real fleets in this stack are derived,
    query-local values, never large enough to out-earn pool dispatch —
    ``parallel`` therefore runs the single-process kernel.
    """
    resolved = _resolve(backend)
    if resolved == "vector" or resolved == "parallel" or resolved == "sharded":
        try:
            version, col = column_for_versioned(fleet, "ureal")
            col = revalidate(fleet, "ureal", version, col)
        except (InvalidValue, StorageError):
            _fallback("ureal_column")
        else:
            vs, defined = ureal_atinstant_batch(col, t)
            return [float(v) if d else None for v, d in zip(vs, defined)]
    out: List[Optional[float]] = []
    for m in fleet:
        v = m.value_at(t)
        out.append(None if v is None else float(v.value))
    return out


def fleet_bbox_filter(
    fleet: Sequence[MovingPoint],
    cube: Cube,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
) -> List[int]:
    """Indices of fleet members whose bounding cube intersects ``cube``.

    The filter half of filter-and-refine: survivors still need the exact
    per-object check (window refinement, R-tree descent, ...).
    """
    resolved = _resolve(backend)
    if resolved == "vector" or resolved == "parallel" or resolved == "sharded":
        try:
            version, col = column_for_versioned(fleet, "bbox")
            col = revalidate(fleet, "bbox", version, col)
        except (InvalidValue, StorageError):
            _fallback("bbox_column")
        else:
            if resolved == "parallel":
                from repro.parallel import parallel_bbox_filter

                mask = parallel_bbox_filter(col, cube, workers=workers)
            else:
                mask = bbox_filter_batch(col, cube)
            return [int(k) for k, hit in zip(col.keys, mask) if hit]
    return [
        i
        for i, m in enumerate(fleet)
        if m.units and m.bounding_cube().intersects(cube)
    ]


def fleet_count_inside(
    fleet: Sequence[MovingPoint],
    t: float,
    region: Region,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
) -> Tuple[int, List[bool]]:
    """How many fleet members are inside ``region`` at instant ``t``?

    Returns ``(count, member_mask)``.  The columnar paths snapshot the
    whole fleet with one (possibly chunked) ``atinstant`` and answer
    membership with one batched plumbline call over the defined
    positions.
    """
    resolved = _resolve(backend)
    if resolved == "vector" or resolved == "parallel" or resolved == "sharded":
        try:
            version, col = column_for_versioned(fleet, "upoint")
            col = revalidate(fleet, "upoint", version, col)
        except (InvalidValue, StorageError):
            _fallback("upoint_column")
        else:
            if resolved == "parallel":
                from repro.parallel import parallel_atinstant

                xs, ys, defined = parallel_atinstant(col, t, workers=workers)
            else:
                xs, ys, defined = atinstant_batch(col, t)
            mask = [False] * len(fleet)
            idx = np.flatnonzero(defined)
            if idx.size:
                pts = np.column_stack([xs[idx], ys[idx]])
                hits = inside_prefilter(pts, region)
                for i, hit in zip(idx, hits):
                    mask[int(i)] = bool(hit)
            return sum(mask), mask
    mask = []
    for m in fleet:
        p = m.value_at(t)
        mask.append(bool(p is not None and region.contains_point(p.vec)))
    return sum(mask), mask
