"""Batched numpy kernels over columnar unit storage.

Each kernel evaluates *all* objects of a column per call, replacing the
scalar one-object-at-a-time loops of :mod:`repro.temporal` /
:mod:`repro.ops` on fleet-scale workloads.  The kernels are exact
transcriptions of the scalar reference algorithms — same binary-search
semantics as ``Mapping.unit_at``, same closedness handling as
``Interval.contains``, same eps-shifted half-open rule as
``crossings_above`` — so their results are asserted equivalent unit for
unit (see ``tests/test_vector_properties.py``).

Observability: every kernel counts its calls and the rows it processed
(``vector.<kernel>.calls`` / ``.rows``) and raises the high-water gauge
``vector.rows_per_call`` — the fleet-scale analogue of the Section-5
per-operation counters.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.config import EPSILON
from repro.errors import InvalidValue
from repro.geometry.segment import Seg
from repro.spatial.bbox import Cube, Rect
from repro.spatial.region import Region
from repro.vector.columns import BBoxColumn, UnitColumn, UPointColumn, URealColumn


def _record_rows(kernel: str, rows: int) -> None:
    if obs.enabled:
        obs.counters.add(f"vector.{kernel}.calls")
        obs.counters.add(f"vector.{kernel}.rows", rows)
        obs.counters.high_water("vector.rows_per_call", rows)


# ---------------------------------------------------------------------------
# Unit location: simultaneous per-object binary search
# ---------------------------------------------------------------------------


def locate_units(col: UnitColumn, t: float) -> Tuple[np.ndarray, np.ndarray]:
    """Find, for every object at once, the unit whose interval contains ``t``.

    Vectorized transcription of ``Mapping.unit_at``: a bisect-right over
    each object's (sorted) unit start times, run simultaneously for all
    objects — each halving pass is one numpy sweep, so the pass count is
    O(log max-units) while the per-object work is the same O(log n)
    probe sequence the Section-5.1 claim counts.  As in the scalar code,
    the containing unit is among the last *two* units starting at or
    before ``t``, and containment honours the closedness flags.

    Returns ``(unit_index, defined)``; ``unit_index`` is meaningful only
    where ``defined`` is True.
    """
    t = float(t)
    n = col.n_objects
    lo = col.offsets[:-1].copy()
    if col.n_units == 0:
        _record_rows("locate_units", n)
        return np.zeros(n, dtype=np.int64), np.zeros(n, dtype=np.bool_)
    hi = col.offsets[1:].copy()
    starts = col.starts
    passes = 0
    while True:
        active = lo < hi
        if not active.any():
            break
        passes += 1
        mid = (lo + hi) >> 1
        mid_safe = np.where(active, mid, 0)
        go_right = active & (starts[mid_safe] <= t)
        hi = np.where(active & ~go_right, mid, hi)
        lo = np.where(go_right, mid + 1, lo)

    base = col.offsets[:-1]

    def contained(idx: np.ndarray) -> np.ndarray:
        valid = idx >= base
        j = np.maximum(idx, 0)
        s, e = starts[j], col.ends[j]
        return (
            valid
            & (t >= s)
            & (t <= e)
            & ((t != s) | col.lc[j])
            & ((t != e) | col.rc[j])
        )

    idx1, idx2 = lo - 1, lo - 2
    hit1 = contained(idx1)
    hit2 = contained(idx2)
    unit = np.where(hit1, np.maximum(idx1, 0), np.maximum(idx2, 0))
    defined = hit1 | hit2
    _record_rows("locate_units", n)
    if obs.enabled:
        obs.counters.add("vector.locate_units.passes", passes)
    return unit.astype(np.int64), defined


# ---------------------------------------------------------------------------
# atinstant, batched
# ---------------------------------------------------------------------------


def atinstant_batch(
    col: UPointColumn, t: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``atinstant`` over a whole moving-point fleet in one call.

    Returns ``(x, y, defined)``: positions of every object at instant
    ``t`` with NaN in undefined lanes.  The evaluation is the fused
    linear form ``x0 + x1·t`` of the located units — identical
    arithmetic to ``MPoint.at``, so defined lanes match the scalar
    ``Mapping.value_at`` bit for bit.
    """
    t = float(t)
    unit, defined = locate_units(col, t)
    if col.n_units == 0:  # nothing to index: every lane is ⊥
        nan = np.full(col.n_objects, np.nan)
        _record_rows("atinstant_batch", col.n_objects)
        return nan, nan.copy(), defined
    x = col.x0[unit] + col.x1[unit] * t
    y = col.y0[unit] + col.y1[unit] * t
    x = np.where(defined, x, np.nan)
    y = np.where(defined, y, np.nan)
    _record_rows("atinstant_batch", col.n_objects)
    return x, y, defined


def ureal_atinstant_batch(
    col: URealColumn, t: float
) -> Tuple[np.ndarray, np.ndarray]:
    """``atinstant`` over a fleet of moving reals in one call.

    Returns ``(value, defined)`` with NaN in undefined lanes.  The
    quadratic is evaluated in the same Horner form as the scalar
    ``eval_quad``; square-root lanes clamp tiny negative radicands
    exactly like ``UReal._checked_radicand`` (coefficient-scaled
    tolerance) and raise :class:`InvalidValue` beyond it.
    """
    t = float(t)
    unit, defined = locate_units(col, t)
    if col.n_units == 0:  # nothing to index: every lane is ⊥
        _record_rows("ureal_atinstant_batch", col.n_objects)
        return np.full(col.n_objects, np.nan), defined
    a, b, c = col.a[unit], col.b[unit], col.c[unit]
    v = (a * t + b) * t + c
    sqrt_lane = defined & col.r[unit]
    if sqrt_lane.any():
        rad = v[sqrt_lane]
        tol = 1e-7 * np.maximum.reduce(
            [np.abs(a[sqrt_lane]), np.abs(b[sqrt_lane]), np.abs(c[sqrt_lane]),
             np.ones_like(rad)]
        )
        beyond = rad < -tol
        if beyond.any():
            worst = float(rad[beyond].min())
            raise InvalidValue(
                f"negative radicand {worst:g} of square-root ureal at t={t:g} "
                "(beyond rounding tolerance)"
            )
        v[sqrt_lane] = np.sqrt(np.maximum(rad, 0.0))
    v = np.where(defined, v, np.nan)
    _record_rows("ureal_atinstant_batch", col.n_objects)
    return v, defined


# ---------------------------------------------------------------------------
# Bounding-box filtering, batched
# ---------------------------------------------------------------------------


def bbox_filter_batch(col: BBoxColumn, cube: Cube) -> np.ndarray:
    """Vectorized 3-D bounding-cube overlap against one query cube.

    Boolean mask over the column's entries, by the same closed-box
    inequalities as ``Cube.intersects``.  This is the *filter* step: the
    exact R-tree/refinement path still decides the survivors.
    """
    mask = (
        (col.xmin <= cube.xmax)
        & (cube.xmin <= col.xmax)
        & (col.ymin <= cube.ymax)
        & (cube.ymin <= col.ymax)
        & (col.tmin <= cube.tmax)
        & (cube.tmin <= col.tmax)
    )
    _record_rows("bbox_filter", len(col))
    if obs.enabled:
        obs.counters.add("vector.bbox_filter.hits", int(mask.sum()))
    return mask


# ---------------------------------------------------------------------------
# Plumbline, batched: N query points against one region
# ---------------------------------------------------------------------------


def segs_to_array(segs: Iterable[Seg]) -> np.ndarray:
    """Segment tuples → an ``(S, 4)`` float array ``(x0, y0, x1, y1)``."""
    arr = np.asarray(
        [(s[0][0], s[0][1], s[1][0], s[1][1]) for s in segs], dtype=np.float64
    )
    return arr.reshape(-1, 4)


def _points_to_arrays(points: Union[np.ndarray, Sequence]) -> Tuple[np.ndarray, np.ndarray]:
    pts = np.asarray(points, dtype=np.float64).reshape(-1, 2)
    return pts[:, 0], pts[:, 1]


def crossings_above_batch(
    points: Union[np.ndarray, Sequence],
    segs: Union[np.ndarray, Iterable[Seg]],
    eps: float = EPSILON,
) -> np.ndarray:
    """Count, for N points at once, the segments crossed by each upward ray.

    Vectorized transcription of :func:`repro.geometry.plumbline.
    crossings_above`, including its eps-shifted half-open window
    ``x0 - eps <= px < x1 - eps``, the (near-)vertical exclusion
    ``x1 - x0 <= eps``, and the clamped interpolation parameter — so the
    counts agree with the scalar loop point for point.
    """
    px, py = _points_to_arrays(points)
    arr = segs if isinstance(segs, np.ndarray) else segs_to_array(segs)
    if arr.size == 0 or px.size == 0:
        _record_rows("plumbline", len(px))
        return np.zeros(len(px), dtype=np.int64)
    x0, y0, x1, y1 = arr[:, 0].copy(), arr[:, 1].copy(), arr[:, 2].copy(), arr[:, 3].copy()
    swap = x0 > x1  # tolerate unnormalized input, like the scalar loop
    x0[swap], x1[swap] = x1[swap], x0[swap].copy()
    y0[swap], y1[swap] = y1[swap], y0[swap].copy()
    span = x1 - x0
    crossable = span > eps  # (near-)vertical segments: never crossed
    window = crossable & (x0 - eps <= px[:, None]) & (px[:, None] < x1 - eps)
    denom = np.where(crossable, span, 1.0)
    tpar = np.clip((px[:, None] - x0) / denom, 0.0, 1.0)
    ys = y0 + tpar * (y1 - y0)
    counts = np.sum(window & (ys > py[:, None] + eps), axis=1)
    _record_rows("plumbline", len(px))
    if obs.enabled:
        obs.counters.add("vector.plumbline.segments", int(len(px) * len(x0)))
    return counts.astype(np.int64)


def on_boundary_batch(
    points: Union[np.ndarray, Sequence],
    segs: Union[np.ndarray, Iterable[Seg]],
    eps: float = EPSILON,
) -> np.ndarray:
    """For N points at once: does each lie on any of the segments?

    Vectorized transcription of ``point_on_seg`` (span-scaled collinear
    tolerance + eps-widened bounding box) any-reduced over segments.
    """
    px, py = _points_to_arrays(points)
    arr = segs if isinstance(segs, np.ndarray) else segs_to_array(segs)
    _record_rows("on_boundary", len(px))
    if arr.size == 0 or px.size == 0:
        return np.zeros(len(px), dtype=np.bool_)
    x0, y0, x1, y1 = arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3]
    dqx, dqy = x1 - x0, y1 - y0
    drx = px[:, None] - x0
    dry = py[:, None] - y0
    val = dqx * dry - dqy * drx
    scale = np.maximum.reduce(
        [np.broadcast_to(np.abs(dqx), val.shape),
         np.broadcast_to(np.abs(dqy), val.shape),
         np.abs(drx), np.abs(dry), np.ones_like(val)]
    )
    collinear = np.abs(val) <= eps * scale
    in_box = (
        (np.minimum(x0, x1) - eps <= px[:, None])
        & (px[:, None] <= np.maximum(x0, x1) + eps)
        & (np.minimum(y0, y1) - eps <= py[:, None])
        & (py[:, None] <= np.maximum(y0, y1) + eps)
    )
    return np.any(collinear & in_box, axis=1)


def inside_prefilter(
    points: Union[np.ndarray, Sequence],
    region: Region,
    eps: float = EPSILON,
    boundary_counts: bool = True,
) -> np.ndarray:
    """Batched point-in-region test: N query points against one region.

    Equivalent to ``point_in_segset(p, region.segments())`` per point —
    odd parity of upward-ray crossings over *all* boundary segments
    (parity handles holes and islands-in-holes alike), with boundary
    points decided by ``boundary_counts``.  Used as the set-at-a-time
    prefilter in fleet snapshot queries before any per-object exact
    work.
    """
    px, py = _points_to_arrays(points)
    arr = segs_to_array(region.segments())
    odd = crossings_above_batch(np.column_stack([px, py]), arr, eps) % 2 == 1
    on = on_boundary_batch(np.column_stack([px, py]), arr, eps)
    _record_rows("inside_prefilter", len(px))
    return np.where(on, boundary_counts, odd)


# ---------------------------------------------------------------------------
# Window refinement, batched: per-unit in-rect spans → merged, clipped runs
# ---------------------------------------------------------------------------


def window_times_batch(
    col: UPointColumn, rect: Rect
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-unit time spans inside ``rect``, for a whole fleet at once.

    Vectorized transcription of :func:`repro.ops.window.
    upoint_within_rect_times`: per axis, a (near-)constant coordinate is
    inside iff its value is (eps-)within the slab, otherwise the linear
    motion enters/leaves at the two slab-crossing parameters; the axis
    spans are intersected with each other and with the unit's interval.
    Closedness is inherited exactly as the scalar does — the unit's own
    flag where the span reaches the interval endpoint (eps-compared, via
    the same ``feq`` tolerance), closed where the rect boundary cuts the
    interior — and degenerate non-closed spans are dropped with the
    scalar's *exact* (not eps) equality.

    Returns ``(a, b, lc, rc, ok)`` aligned with the column's unit
    arrays; lanes are meaningful only where ``ok`` is True.
    """
    s, e = col.starts, col.ends

    def axis(
        c0: np.ndarray, c1: np.ndarray, lo: float, hi: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        const = np.abs(c1) <= EPSILON
        const_ok = (lo <= c0 + EPSILON) & (c0 <= hi + EPSILON)
        denom = np.where(const, 1.0, c1)
        ta = (lo - c0) / denom
        tb = (hi - c0) / denom
        a = np.maximum(s, np.minimum(ta, tb))
        b = np.minimum(e, np.maximum(ta, tb))
        ok = a <= b
        a = np.where(const, s, a)
        b = np.where(const, e, b)
        ok = np.where(const, const_ok, ok)
        return a, b, ok

    xa, xb, xok = axis(col.x0, col.x1, rect.xmin, rect.xmax)
    ya, yb, yok = axis(col.y0, col.y1, rect.ymin, rect.ymax)
    a = np.maximum(xa, ya)
    b = np.minimum(xb, yb)
    ok = xok & yok & (a <= b)
    lc = np.where(np.abs(a - s) <= EPSILON, col.lc, True)
    rc = np.where(np.abs(b - e) <= EPSILON, col.rc, True)
    ok &= ~((a == b) & ~(lc & rc))
    _record_rows("window_times_batch", col.n_units)
    return a, b, lc, rc, ok


def window_intervals_batch(
    col: UPointColumn, rect: Rect, t0: float, t1: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Merged, window-clipped in-rect intervals for a whole fleet at once.

    The batch analogue of ``mpoint_within_rect_times(m, rect).
    normalized(...).intersection(RangeSet([Interval(t0, t1)]))``: the
    per-unit spans of :func:`window_times_batch` are merged into runs
    exactly as ``RangeSet.normalized`` would (two spans coalesce iff
    they share an endpoint — raw float equality, like ``Interval.
    r_adjacent`` — with at least one touching side closed, and belong to
    the same object), then clipped against the closed window
    ``[t0, t1]`` with ``Interval.intersection``'s tie rules (degenerate
    survivors become closed on both sides).  Because each object's unit
    spans arrive in validated unit order, the resulting runs are already
    in canonical ``RangeSet`` order, pairwise disjoint and non-adjacent.

    Returns ``(owner, s, e, lc, rc)`` — one row per surviving interval,
    ``owner`` being the object's index in the column, grouped by object
    in ascending time order.
    """
    a, b, lc, rc, ok = window_times_batch(col, rect)
    _record_rows("window_intervals_batch", col.n_units)
    t0, t1 = float(t0), float(t1)
    empty = np.empty(0)
    idx = np.flatnonzero(ok)
    if idx.size == 0:
        return (
            np.empty(0, dtype=np.int64), empty, empty.copy(),
            np.empty(0, dtype=np.bool_), np.empty(0, dtype=np.bool_),
        )
    owner = (np.searchsorted(col.offsets, idx, side="right") - 1).astype(np.int64)
    av, bv, lv, rv = a[idx], b[idx], lc[idx], rc[idx]
    link = (bv[:-1] == av[1:]) & (rv[:-1] | lv[1:]) & (owner[:-1] == owner[1:])
    starts = np.flatnonzero(np.concatenate(([True], ~link)))
    ends = np.concatenate((starts[1:] - 1, [len(idx) - 1]))
    run_s, run_e = av[starts], bv[ends]
    run_lc, run_rc = lv[starts], rv[ends]
    run_owner = owner[starts]
    # Clip against the closed window [t0, t1]: Interval.r_disjoint on
    # either side drops the run; the survivors take the tighter endpoint
    # and, on the window's side, a closed flag (Interval.intersection tie
    # rules with lc = rc = True for the window).
    keep = ~(
        (run_e < t0)
        | ((run_e == t0) & ~run_rc)
        | (t1 < run_s)
        | ((t1 == run_s) & ~run_lc)
    )
    cs = np.maximum(run_s, t0)
    ce = np.minimum(run_e, t1)
    clc = np.where(run_s >= t0, run_lc, True)
    crc = np.where(run_e <= t1, run_rc, True)
    degenerate = cs == ce  # degenerate intersections are closed points
    clc = np.where(degenerate, True, clc)
    crc = np.where(degenerate, True, crc)
    return run_owner[keep], cs[keep], ce[keep], clc[keep], crc[keep]
