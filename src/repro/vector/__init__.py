"""Columnar unit storage and batched numpy kernels (fleet-scale evaluation).

The paper's sliced representation stores a moving object as an *array of
units* precisely so a DBMS can evaluate operations without interpreting
one unit at a time (Section 4).  This package transcribes that layout
columnar-ly, across *many* objects at once:

* :mod:`repro.vector.columns` — Structure-of-Arrays columns.  A
  :class:`~repro.vector.columns.UPointColumn` holds the interval end
  points, closedness flags, and motion coefficients of every unit of a
  whole fleet in contiguous numpy arrays, with a CSR-style ``offsets``
  array delimiting each object's unit range — the direct columnar
  counterpart of the Section-4 root record (offsets) + database arrays
  (unit fields).
* :mod:`repro.vector.kernels` — batched kernels over those columns:
  ``atinstant_batch`` (simultaneous per-object binary search +
  fused linear/quadratic evaluation), ``bbox_filter_batch`` (vectorized
  3-D bounding-cube overlap, the filter step before the exact
  R-tree/refinement path), and ``inside_prefilter`` (batched plumbline
  crossing counts for N query points against one region).
* :mod:`repro.vector.fleet` — the backend switch (``scalar`` |
  ``vector`` | ``parallel``) and fleet-level convenience wrappers with
  automatic, counted fallback to the scalar reference implementations.
* :mod:`repro.vector.cache` — the columnar cache: versioned
  :class:`~repro.vector.cache.Fleet` sequences reuse built columns
  across queries (``colcache.hits``), invalidated by mutation
  (``colcache.invalidations``).

Every kernel is observable through :mod:`repro.obs` (rows per kernel
call, fallback-to-scalar events) and equivalent to the scalar unit-at-a-
time path — an equivalence the property tests and benchmarks assert.
"""

from __future__ import annotations

from repro.vector.cache import ColumnCache, Fleet, clear_cache, column_for
from repro.vector.columns import BBoxColumn, UPointColumn, URealColumn
from repro.vector.fleet import (
    fleet_atinstant,
    fleet_atinstant_real,
    fleet_bbox_filter,
    fleet_count_inside,
    get_backend,
    set_backend,
)
from repro.vector.kernels import (
    atinstant_batch,
    bbox_filter_batch,
    crossings_above_batch,
    inside_prefilter,
    locate_units,
    on_boundary_batch,
    ureal_atinstant_batch,
    window_intervals_batch,
    window_times_batch,
)

__all__ = [
    "BBoxColumn",
    "ColumnCache",
    "Fleet",
    "UPointColumn",
    "URealColumn",
    "atinstant_batch",
    "bbox_filter_batch",
    "clear_cache",
    "column_for",
    "crossings_above_batch",
    "fleet_atinstant",
    "fleet_atinstant_real",
    "fleet_bbox_filter",
    "fleet_count_inside",
    "get_backend",
    "inside_prefilter",
    "locate_units",
    "on_boundary_batch",
    "set_backend",
    "ureal_atinstant_batch",
    "window_intervals_batch",
    "window_times_batch",
]
