"""Structure-of-Arrays columns over the units of many moving objects.

The Section-4 representation of one ``mapping`` value is a *root record*
(count + bounding box) pointing into *database arrays* of fixed-size
unit records.  A column generalizes that layout to a whole fleet: the
unit fields of every object live in contiguous numpy arrays, and a
CSR-style ``offsets`` array (the stacked root records) says which slice
of those arrays belongs to which object.  Batched kernels
(:mod:`repro.vector.kernels`) then evaluate all objects per call instead
of interpreting one unit at a time.

Columns are built from, and convert back to, the existing ``Mapping``
objects, and bridge losslessly to :class:`repro.storage.darray.
DatabaseArray` records (same field layout, bulk-packed), so a column is
just another view of the Section-4 on-disk structure.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import InvalidValue
from repro.ranges.interval import Interval
from repro.spatial.bbox import Cube
from repro.storage.darray import DatabaseArray
from repro.temporal.mapping import Mapping, MovingPoint, MovingReal
from repro.temporal.upoint import UPoint
from repro.temporal.ureal import UReal


def _as_offsets(counts: List[int]) -> np.ndarray:
    """Cumulative unit counts → CSR offsets (the stacked root records)."""
    offsets = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets


class UnitColumn:
    """Shared interval columns: ``starts``/``ends``/``lc``/``rc`` + offsets."""

    # __weakref__ lets the column cache and the shared-memory segment
    # registry key off column/owner identity without keeping it alive.
    # ``source`` identifies the persistent store a memmap-backed column
    # was opened from (:mod:`repro.vector.store`), or None for columns
    # that live purely in process memory.
    __slots__ = ("offsets", "starts", "ends", "lc", "rc", "source", "__weakref__")

    #: Per-subclass unit fields beyond the shared interval quadruple;
    #: in constructor order, so splicing can rebuild via ``cls(...)``.
    EXTRA_FIELDS: Tuple[str, ...] = ()

    def __init__(
        self,
        offsets: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        lc: np.ndarray,
        rc: np.ndarray,
    ):
        self.offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        self.starts = np.ascontiguousarray(starts, dtype=np.float64)
        self.ends = np.ascontiguousarray(ends, dtype=np.float64)
        self.lc = np.ascontiguousarray(lc, dtype=np.bool_)
        self.rc = np.ascontiguousarray(rc, dtype=np.bool_)
        self.source = None
        if self.offsets.ndim != 1 or len(self.offsets) == 0:
            raise InvalidValue("offsets must be a 1-D array of length n+1")
        if int(self.offsets[-1]) != len(self.starts):
            raise InvalidValue("offsets do not cover the unit arrays")

    @staticmethod
    def _check_offsets(offsets: np.ndarray, n_units: int) -> np.ndarray:
        """Validate a CSR offsets array against ``n_units`` unit records."""
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.ndim != 1 or len(offsets) == 0:
            raise InvalidValue("offsets must be a 1-D array of length n+1")
        if int(offsets[-1]) != n_units:
            raise InvalidValue("offsets do not cover the unit arrays")
        return offsets

    @property
    def n_objects(self) -> int:
        """Number of objects (root records) in the column."""
        return len(self.offsets) - 1

    @property
    def n_units(self) -> int:
        """Total number of units across all objects."""
        return len(self.starts)

    def units_of(self, i: int) -> slice:
        """The slice of the unit arrays belonging to object ``i``."""
        return slice(int(self.offsets[i]), int(self.offsets[i + 1]))

    def __len__(self) -> int:
        return self.n_objects

    def extended(self, mappings: Sequence[Mapping], changed: Sequence[int]):
        """Splice an updated fleet into a new column without retranscribing.

        ``mappings`` is the fleet's current contents and ``changed`` the
        object indices whose mappings differ from (or did not exist in)
        this column's build input.  Only the changed objects go through
        the Python-level ``from_mappings`` transcription; every
        unchanged object's unit rows are copied as whole array slices,
        so the result is bit-identical to ``from_mappings(mappings)`` at
        a cost of O(changed units) transcription + one memcopy.

        Raises :class:`InvalidValue` when ``changed`` is inconsistent
        with the new fleet (an index out of range, an appended object
        not marked changed, a shrunk fleet) — callers degrade to a full
        rebuild.
        """
        n_new = len(mappings)
        n_old = self.n_objects
        if n_new < n_old:
            raise InvalidValue("column extension cannot shrink the fleet")
        changed_sorted = sorted({int(i) for i in changed})
        changed_set = set(changed_sorted)
        if changed_sorted and (
            changed_sorted[0] < 0 or changed_sorted[-1] >= n_new
        ):
            raise InvalidValue("changed object index out of range")
        for i in range(n_old, n_new):
            if i not in changed_set:
                raise InvalidValue(
                    f"appended object {i} missing from the change set"
                )
        cls = type(self)
        sub = cls.from_mappings([mappings[i] for i in changed_sorted])
        rank = {obj: k for k, obj in enumerate(changed_sorted)}

        counts = np.empty(n_new, dtype=np.int64)
        old_counts = np.diff(self.offsets)
        sub_counts = np.diff(sub.offsets)
        for i in range(n_new):
            k = rank.get(i)
            counts[i] = sub_counts[k] if k is not None else old_counts[i]
        offsets = _as_offsets(list(counts))

        # Maximal runs of consecutive same-source objects become single
        # array-slice pieces; a pure tail append is just two pieces.
        pieces: List[Tuple[UnitColumn, slice]] = []
        i = 0
        while i < n_new:
            src: UnitColumn = sub if i in changed_set else self
            j = i
            while j < n_new and (j in changed_set) is (src is sub):
                j += 1
            if src is sub:
                lo, hi = rank[i], rank[j - 1] + 1
                pieces.append((sub, slice(int(sub.offsets[lo]),
                                          int(sub.offsets[hi]))))
            else:
                pieces.append((self, slice(int(self.offsets[i]),
                                           int(self.offsets[j]))))
            i = j

        fields = ("starts", "ends", "lc", "rc") + cls.EXTRA_FIELDS
        spliced = [
            np.concatenate([getattr(src, f)[sl] for src, sl in pieces])
            if pieces else getattr(self, f)[:0]
            for f in fields
        ]
        return cls(offsets, *spliced)


class UPointColumn(UnitColumn):
    """Columnar ``mapping(upoint)`` fleet: motion coefficients per unit.

    The per-unit fields mirror the ``upoint`` unit record of Section 4.2
    — interval ``(s, e, lc, rc)`` plus the MPoint quadruple
    ``(x0, x1, y0, y1)`` with position ``(x0 + x1·t, y0 + y1·t)``.
    """

    __slots__ = ("x0", "x1", "y0", "y1")

    #: struct layout of one unit record in a database array.
    UNIT_FORMAT = "<dd??dddd"
    #: numpy layout with identical bytes (bulk pack/unpack bridge).
    UNIT_DTYPE = np.dtype(
        [
            ("s", "<f8"),
            ("e", "<f8"),
            ("lc", "?"),
            ("rc", "?"),
            ("x0", "<f8"),
            ("x1", "<f8"),
            ("y0", "<f8"),
            ("y1", "<f8"),
        ]
    )
    #: struct layout of one root record (a unit-count offset).
    ROOT_FORMAT = "<q"

    EXTRA_FIELDS = ("x0", "x1", "y0", "y1")

    def __init__(self, offsets, starts, ends, lc, rc, x0, x1, y0, y1):
        super().__init__(offsets, starts, ends, lc, rc)
        self.x0 = np.ascontiguousarray(x0, dtype=np.float64)
        self.x1 = np.ascontiguousarray(x1, dtype=np.float64)
        self.y0 = np.ascontiguousarray(y0, dtype=np.float64)
        self.y1 = np.ascontiguousarray(y1, dtype=np.float64)

    @classmethod
    def from_mappings(cls, mappings: Sequence[MovingPoint]) -> "UPointColumn":
        """Transcribe a fleet of moving points into one column."""
        counts: List[int] = []
        rows: List[Tuple[float, float, bool, bool, float, float, float, float]] = []
        for m in mappings:
            if not isinstance(m, Mapping):
                raise InvalidValue(
                    f"UPointColumn holds mappings, got {type(m).__name__}"
                )
            for u in m.units:
                if not isinstance(u, UPoint):
                    raise InvalidValue(
                        f"UPointColumn holds upoint units, got {type(u).__name__}"
                    )
                iv, mo = u.interval, u.motion
                rows.append(
                    (iv.s, iv.e, iv.lc, iv.rc, mo.x0, mo.x1, mo.y0, mo.y1)
                )
            counts.append(len(m.units))
        rec = np.array(rows, dtype=cls.UNIT_DTYPE) if rows else np.empty(
            0, dtype=cls.UNIT_DTYPE
        )
        return cls(
            _as_offsets(counts),
            rec["s"], rec["e"], rec["lc"], rec["rc"],
            rec["x0"], rec["x1"], rec["y0"], rec["y1"],
        )

    def to_mappings(self) -> List[MovingPoint]:
        """Materialize the column back into ``MovingPoint`` objects."""
        from repro.temporal.mseg import MPoint

        out: List[MovingPoint] = []
        for i in range(self.n_objects):
            sl = self.units_of(i)
            units = [
                UPoint(
                    Interval(
                        float(self.starts[j]), float(self.ends[j]),
                        bool(self.lc[j]), bool(self.rc[j]),
                    ),
                    MPoint(
                        float(self.x0[j]), float(self.x1[j]),
                        float(self.y0[j]), float(self.y1[j]),
                    ),
                )
                for j in range(sl.start, sl.stop)
            ]
            # Units come back in CSR order, which is the validated unit
            # order they were transcribed in; revalidating every
            # round-trip would defeat the batch backend's purpose.
            out.append(MovingPoint(units, validate=False))  # modlint: disable=MOD002 see comment above
        return out

    def _unit_records(self) -> np.ndarray:
        rec = np.empty(self.n_units, dtype=self.UNIT_DTYPE)
        rec["s"], rec["e"] = self.starts, self.ends
        rec["lc"], rec["rc"] = self.lc, self.rc
        rec["x0"], rec["x1"] = self.x0, self.x1
        rec["y0"], rec["y1"] = self.y0, self.y1
        return rec

    @classmethod
    def from_records(
        cls, offsets: np.ndarray, rec: np.ndarray
    ) -> "UPointColumn":
        """Zero-copy view over structured unit records (e.g. a memmap).

        Unlike the constructor, the strided per-field views of ``rec``
        are kept as-is — no contiguous copy — so a memory-mapped file
        stays lazily paged and cold open cost is the mmap, not a
        column-width materialization.  The batch kernels only ever do
        comparisons, reductions and fancy indexing, all of which accept
        strided inputs.
        """
        col = object.__new__(cls)
        col.offsets = cls._check_offsets(offsets, len(rec))
        col.starts, col.ends = rec["s"], rec["e"]
        col.lc, col.rc = rec["lc"], rec["rc"]
        col.x0, col.x1 = rec["x0"], rec["x1"]
        col.y0, col.y1 = rec["y0"], rec["y1"]
        col.source = None
        return col

    def to_darrays(self) -> Tuple[DatabaseArray, DatabaseArray]:
        """Serialize as Section-4 database arrays ``(root, units)``.

        ``root`` holds the offsets array (one record per object plus the
        final sentinel); ``units`` holds the fixed-size unit records.
        Packing is a single buffer copy — the numpy record layout is
        byte-identical to the struct format.
        """
        root = DatabaseArray(self.ROOT_FORMAT)
        root.extend_packed(self.offsets.astype("<i8").tobytes(), len(self.offsets))
        units = DatabaseArray(self.UNIT_FORMAT)
        units.extend_packed(self._unit_records().tobytes(), self.n_units)
        return root, units

    @classmethod
    def from_darrays(
        cls, root: DatabaseArray, units: DatabaseArray
    ) -> "UPointColumn":
        """Rebuild a column from database arrays written by :meth:`to_darrays`."""
        offsets = np.frombuffer(root.payload, dtype="<i8").astype(np.int64)
        rec = np.frombuffer(units.payload, dtype=cls.UNIT_DTYPE)
        return cls(
            offsets,
            rec["s"], rec["e"], rec["lc"], rec["rc"],
            rec["x0"], rec["x1"], rec["y0"], rec["y1"],
        )


class URealColumn(UnitColumn):
    """Columnar ``mapping(ureal)`` fleet: ``(a, b, c, r)`` per unit."""

    __slots__ = ("a", "b", "c", "r")

    UNIT_FORMAT = "<dd??ddd?"
    UNIT_DTYPE = np.dtype(
        [
            ("s", "<f8"),
            ("e", "<f8"),
            ("lc", "?"),
            ("rc", "?"),
            ("a", "<f8"),
            ("b", "<f8"),
            ("c", "<f8"),
            ("r", "?"),
        ]
    )
    ROOT_FORMAT = "<q"

    EXTRA_FIELDS = ("a", "b", "c", "r")

    def __init__(self, offsets, starts, ends, lc, rc, a, b, c, r):
        super().__init__(offsets, starts, ends, lc, rc)
        self.a = np.ascontiguousarray(a, dtype=np.float64)
        self.b = np.ascontiguousarray(b, dtype=np.float64)
        self.c = np.ascontiguousarray(c, dtype=np.float64)
        self.r = np.ascontiguousarray(r, dtype=np.bool_)

    @classmethod
    def from_mappings(cls, mappings: Sequence[MovingReal]) -> "URealColumn":
        """Transcribe a fleet of moving reals into one column."""
        counts: List[int] = []
        rows: List[tuple] = []
        for m in mappings:
            if not isinstance(m, Mapping):
                raise InvalidValue(
                    f"URealColumn holds mappings, got {type(m).__name__}"
                )
            for u in m.units:
                if not isinstance(u, UReal):
                    raise InvalidValue(
                        f"URealColumn holds ureal units, got {type(u).__name__}"
                    )
                iv = u.interval
                a, b, c, r = u.coefficients
                rows.append((iv.s, iv.e, iv.lc, iv.rc, a, b, c, r))
            counts.append(len(m.units))
        rec = np.array(rows, dtype=cls.UNIT_DTYPE) if rows else np.empty(
            0, dtype=cls.UNIT_DTYPE
        )
        return cls(
            _as_offsets(counts),
            rec["s"], rec["e"], rec["lc"], rec["rc"],
            rec["a"], rec["b"], rec["c"], rec["r"],
        )

    def to_mappings(self) -> List[MovingReal]:
        """Materialize the column back into ``MovingReal`` objects."""
        out: List[MovingReal] = []
        for i in range(self.n_objects):
            sl = self.units_of(i)
            units = [
                UReal(
                    Interval(
                        float(self.starts[j]), float(self.ends[j]),
                        bool(self.lc[j]), bool(self.rc[j]),
                    ),
                    float(self.a[j]), float(self.b[j]), float(self.c[j]),
                    bool(self.r[j]),
                )
                for j in range(sl.start, sl.stop)
            ]
            # Same as UPointColumn.to_mappings: CSR order preserves the
            # validated unit order of the source mappings.
            out.append(MovingReal(units, validate=False))  # modlint: disable=MOD002 see comment above
        return out

    def _unit_records(self) -> np.ndarray:
        rec = np.empty(self.n_units, dtype=self.UNIT_DTYPE)
        rec["s"], rec["e"] = self.starts, self.ends
        rec["lc"], rec["rc"] = self.lc, self.rc
        rec["a"], rec["b"], rec["c"], rec["r"] = self.a, self.b, self.c, self.r
        return rec

    @classmethod
    def from_records(
        cls, offsets: np.ndarray, rec: np.ndarray
    ) -> "URealColumn":
        """Zero-copy view over structured unit records (e.g. a memmap).

        See :meth:`UPointColumn.from_records` for why the strided field
        views are deliberately not copied.
        """
        col = object.__new__(cls)
        col.offsets = cls._check_offsets(offsets, len(rec))
        col.starts, col.ends = rec["s"], rec["e"]
        col.lc, col.rc = rec["lc"], rec["rc"]
        col.a, col.b, col.c, col.r = rec["a"], rec["b"], rec["c"], rec["r"]
        col.source = None
        return col

    def to_darrays(self) -> Tuple[DatabaseArray, DatabaseArray]:
        """Serialize as Section-4 database arrays ``(root, units)``."""
        root = DatabaseArray(self.ROOT_FORMAT)
        root.extend_packed(self.offsets.astype("<i8").tobytes(), len(self.offsets))
        units = DatabaseArray(self.UNIT_FORMAT)
        units.extend_packed(self._unit_records().tobytes(), self.n_units)
        return root, units

    @classmethod
    def from_darrays(
        cls, root: DatabaseArray, units: DatabaseArray
    ) -> "URealColumn":
        """Rebuild a column from database arrays written by :meth:`to_darrays`."""
        offsets = np.frombuffer(root.payload, dtype="<i8").astype(np.int64)
        rec = np.frombuffer(units.payload, dtype=cls.UNIT_DTYPE)
        return cls(
            offsets,
            rec["s"], rec["e"], rec["lc"], rec["rc"],
            rec["a"], rec["b"], rec["c"], rec["r"],
        )


class BBoxColumn:
    """Columnar bounding cubes: one ``(x, y, t)`` box per entry.

    Entries carry opaque ``keys`` (object identities).  Built either one
    cube per *object* (whole-trajectory boxes, the coarse filter) or one
    cube per *unit* (the tight per-slice boxes the Section-4.2 unit
    records store, exactly what the R-tree indexes).
    """

    __slots__ = (
        "_keys", "_keys_i64", "xmin", "ymin", "tmin", "xmax", "ymax", "tmax",
        "source", "__weakref__",
    )

    #: struct layout of one persisted bbox record: integer key + cube.
    RECORD_FORMAT = "<qdddddd"
    RECORD_DTYPE = np.dtype(
        [
            ("key", "<i8"),
            ("xmin", "<f8"),
            ("ymin", "<f8"),
            ("tmin", "<f8"),
            ("xmax", "<f8"),
            ("ymax", "<f8"),
            ("tmax", "<f8"),
        ]
    )

    def __init__(self, keys, xmin, ymin, tmin, xmax, ymax, tmax):
        self._keys: Optional[List[object]] = list(keys)
        self._keys_i64: Optional[np.ndarray] = None
        self.xmin = np.ascontiguousarray(xmin, dtype=np.float64)
        self.ymin = np.ascontiguousarray(ymin, dtype=np.float64)
        self.tmin = np.ascontiguousarray(tmin, dtype=np.float64)
        self.xmax = np.ascontiguousarray(xmax, dtype=np.float64)
        self.ymax = np.ascontiguousarray(ymax, dtype=np.float64)
        self.tmax = np.ascontiguousarray(tmax, dtype=np.float64)
        self.source = None
        if len(self._keys) != len(self.xmin):
            raise InvalidValue("BBoxColumn keys and coordinates disagree in length")

    @property
    def keys(self) -> List[object]:
        """Entry keys as a list (materialized lazily for record-backed
        columns, where only the int64 array exists until asked for)."""
        if self._keys is None:
            assert self._keys_i64 is not None
            self._keys = self._keys_i64.tolist()
        return self._keys

    def keys_int64(self) -> np.ndarray:
        """Entry keys as an int64 array, cached on the column.

        For record-backed columns this is a zero-copy view of the
        persisted records — O(1), the fast path shard pruning relies on.
        Raises :class:`InvalidValue` for columns with non-integer keys.
        """
        if self._keys_i64 is None:
            assert self._keys is not None
            try:
                self._keys_i64 = np.asarray(
                    [int(k) for k in self._keys], dtype=np.int64
                )
            except (TypeError, ValueError) as exc:
                raise InvalidValue(
                    "BBoxColumn with non-integer keys has no int64 view"
                ) from exc
        return self._keys_i64

    @classmethod
    def from_cubes(cls, entries: Sequence[Tuple[object, Cube]]) -> "BBoxColumn":
        """Build from ``(key, cube)`` pairs."""
        keys = [k for k, _c in entries]
        cubes = [c for _k, c in entries]
        return cls(
            keys,
            [c.xmin for c in cubes],
            [c.ymin for c in cubes],
            [c.tmin for c in cubes],
            [c.xmax for c in cubes],
            [c.ymax for c in cubes],
            [c.tmax for c in cubes],
        )

    @classmethod
    def from_mappings(
        cls,
        mappings: Sequence[Union[MovingPoint, Mapping]],
        keys: Optional[Sequence[object]] = None,
        per_unit: bool = False,
    ) -> "BBoxColumn":
        """One box per object (default) or per unit (``per_unit=True``).

        Empty mappings contribute no entry (they have no bounding cube);
        their keys simply never appear in filter results, matching the
        scalar path, which skips empty operands.

        Raises :class:`InvalidValue` for members that are not sliced
        mappings, like the other column builders, so backend dispatchers
        can route mixed fleets through the counted scalar fallback.
        """
        if keys is None:
            keys = list(range(len(mappings)))
        entries: List[Tuple[object, Cube]] = []
        for key, m in zip(keys, mappings):
            if not isinstance(m, Mapping) or not hasattr(m, "bounding_cube"):
                raise InvalidValue(
                    f"BBoxColumn holds mappings with bounding cubes, "
                    f"got {type(m).__name__}"
                )
            if not m.units:
                continue
            if per_unit:
                for u in m.units:
                    entries.append((key, u.bounding_cube()))
            else:
                entries.append((key, m.bounding_cube()))
        return cls.from_cubes(entries)

    def _records(self) -> np.ndarray:
        """Structured ``RECORD_DTYPE`` array for persistence.

        Only integer keys (the fleet positions the default builders
        assign) can be persisted; columns with opaque keys stay
        in-memory only.
        """
        rec = np.empty(len(self), dtype=self.RECORD_DTYPE)
        try:
            rec["key"] = self.keys_int64()
        except InvalidValue as exc:
            raise InvalidValue(
                "BBoxColumn with non-integer keys cannot be persisted"
            ) from exc
        rec["xmin"], rec["ymin"], rec["tmin"] = self.xmin, self.ymin, self.tmin
        rec["xmax"], rec["ymax"], rec["tmax"] = self.xmax, self.ymax, self.tmax
        return rec

    @classmethod
    def from_records(cls, rec: np.ndarray) -> "BBoxColumn":
        """Zero-copy view over structured bbox records (e.g. a memmap).

        Every field — keys included — stays a strided view of ``rec``;
        the Python key *list* materializes only if :attr:`keys` is
        actually read, so a cold mmap load costs O(1), not O(entries).
        """
        col = object.__new__(cls)
        col._keys = None
        col._keys_i64 = rec["key"]
        col.xmin, col.ymin, col.tmin = rec["xmin"], rec["ymin"], rec["tmin"]
        col.xmax, col.ymax, col.tmax = rec["xmax"], rec["ymax"], rec["tmax"]
        col.source = None
        return col

    def __len__(self) -> int:
        return len(self.xmin)

    def extended(
        self, mappings: Sequence[Mapping], changed: Sequence[int]
    ) -> "BBoxColumn":
        """Splice an updated fleet into a new per-object bbox column.

        Mirror of :meth:`UnitColumn.extended` for the default
        ``from_mappings(mappings)`` build (one box per object, keys =
        fleet positions, empty mappings skipped): only changed objects
        have their bounding cubes recomputed; everything else is merged
        back in key order.  Raises :class:`InvalidValue` for columns
        whose keys are not the ascending integer positions the default
        builder assigns (per-unit or custom-keyed columns), or when
        ``changed`` is inconsistent with the fleet — callers degrade to
        a full rebuild.
        """
        n_new = len(mappings)
        try:
            old_keys = [int(k) for k in self.keys]
        except (TypeError, ValueError) as exc:
            raise InvalidValue(
                "BBoxColumn with non-integer keys cannot be extended"
            ) from exc
        if old_keys != sorted(set(old_keys)):
            raise InvalidValue(
                "BBoxColumn extension needs ascending unique keys "
                "(the default per-object build)"
            )
        changed_sorted = sorted({int(i) for i in changed})
        changed_set = set(changed_sorted)
        if changed_sorted and (
            changed_sorted[0] < 0 or changed_sorted[-1] >= n_new
        ):
            raise InvalidValue("changed object index out of range")
        if any(k >= n_new for k in old_keys):
            raise InvalidValue("column extension cannot shrink the fleet")
        sub = BBoxColumn.from_mappings(
            [mappings[i] for i in changed_sorted], keys=changed_sorted
        )
        keep = [j for j, k in enumerate(old_keys) if k not in changed_set]
        merged_keys = np.concatenate([
            np.asarray([old_keys[j] for j in keep], dtype=np.int64),
            np.asarray([int(k) for k in sub.keys], dtype=np.int64),
        ])
        order = np.argsort(merged_keys, kind="stable")
        fields = ("xmin", "ymin", "tmin", "xmax", "ymax", "tmax")
        merged = [
            np.concatenate(
                [getattr(self, f)[keep], getattr(sub, f)]
            )[order]
            for f in fields
        ]
        return BBoxColumn(merged_keys[order].tolist(), *merged)

    def overlap_mask(self, cube: Cube) -> np.ndarray:
        """Boolean mask of entries whose box intersects ``cube``.

        Delegates to :func:`repro.vector.kernels.bbox_filter_batch`.
        """
        from repro.vector.kernels import bbox_filter_batch

        return bbox_filter_batch(self, cube)

    def candidates(self, cube: Cube) -> List[object]:
        """Keys of entries whose box intersects ``cube`` (with duplicates
        collapsed, preserving first-seen order)."""
        seen = set()
        out: List[object] = []
        for key, hit in zip(self.keys, self.overlap_mask(cube)):
            if hit and key not in seen:
                seen.add(key)
                out.append(key)
        return out
