"""Persistent mmap-backed column store: Section-4 root records on disk.

Section 4 of the paper makes unit records fixed-size and array-packed
precisely so they can live on external storage and be scanned without
deserialization.  This module takes the in-memory fleet columns of
:mod:`repro.vector.columns` the final step: each column kind is one
little-endian file of fixed-size records (``upoint.bin``, ``ureal.bin``,
``bbox.bin``, plus CSR ``offsets.bin`` files — the stacked root
records), with a small header and a CRC-checked JSON manifest tying the
files together.  Because the file payload is byte-identical to the
numpy struct dtypes the batch kernels already consume, a warm process
restart costs one ``np.memmap`` per file instead of a full tuple-store
rebuild — the cold-start rebuild this PR kills.

File layout (all little-endian)::

    <16-byte header> <count × record>
    header = magic b"MODC" | u16 format version | u16 reserved | i64 count

The 16-byte header keeps the payload 8-byte aligned for memmap views.
The manifest (``manifest.json``) records the format version, the fleet
version each column was built from, and per-file record counts, CRCs,
and dtype hashes; the manifest itself carries a CRC over its payload so
a torn manifest write is detected, not misread.

Validation is two-tier, mirroring the page-checksum design of PR 4:

* :meth:`ColumnStore.load` does the *cheap* checks (manifest CRC, header
  magic/version, count and dtype-hash agreement, file size) — enough to
  reject torn writes and stale layouts without touching the payload;
* :meth:`ColumnStore.verify` additionally CRCs the full payload bytes,
  the check ``Database.recover`` runs so a bit-flipped file is
  rebuilt instead of served.

Any failure raises the typed :class:`~repro.errors.CorruptColumnError`;
the store never serves bytes that failed validation.  Callers degrade
through :meth:`ColumnStore.load_or_rebuild`, which rebuilds from the
live mappings (counted under ``colstore.rebuilds``) — the same
quarantine-style "detect, degrade, repair" posture the tuple store
takes for corrupt pages.
"""

from __future__ import annotations

import json
import os
import struct
import weakref
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import faults, obs
from repro.errors import CorruptColumnError, InvalidValue
from repro.vector.columns import BBoxColumn, UPointColumn, URealColumn

__all__ = [
    "COLUMN_KINDS",
    "ColumnStore",
    "MmapSource",
    "clear_store",
    "get_store",
    "set_store",
]

#: Column-file header: magic, format version, reserved, record count.
#: 16 bytes so the record payload starts 8-byte aligned.
HEADER = struct.Struct("<4sHHq")
MAGIC = b"MODC"
FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"

#: Per-kind file layout: ordered ``(file name, record dtype)`` pairs.
#: Unit columns persist as (units file, CSR offsets file); the bbox
#: column is a single file of ``(key, cube)`` records.
_LAYOUT: Dict[str, Tuple[Tuple[str, np.dtype], ...]] = {
    "upoint": (
        ("upoint.bin", UPointColumn.UNIT_DTYPE),
        ("offsets.bin", np.dtype("<i8")),
    ),
    "ureal": (
        ("ureal.bin", URealColumn.UNIT_DTYPE),
        ("ureal_offsets.bin", np.dtype("<i8")),
    ),
    "bbox": (
        ("bbox.bin", BBoxColumn.RECORD_DTYPE),
    ),
}

COLUMN_KINDS: Tuple[str, ...] = tuple(sorted(_LAYOUT))


def _dtype_hash(dtype: np.dtype) -> int:
    """CRC32 of the dtype's field description — a layout fingerprint.

    Two processes agree on this iff their in-memory struct layout is
    byte-identical, so a file written by an older field layout is
    rejected before a memmap view can misinterpret it.
    """
    return zlib.crc32(str(dtype.descr).encode("utf-8"))


def _column_records(kind: str, column) -> List[np.ndarray]:
    """The column's persistent representation, one array per file."""
    if kind == "upoint":
        return [column._unit_records(), np.ascontiguousarray(column.offsets, dtype="<i8")]
    if kind == "ureal":
        return [column._unit_records(), np.ascontiguousarray(column.offsets, dtype="<i8")]
    if kind == "bbox":
        return [column._records()]
    raise InvalidValue(f"unknown column kind {kind!r}")


def _column_from_records(kind: str, arrays: Sequence[np.ndarray]):
    """Inverse of :func:`_column_records`: zero-copy column views."""
    if kind == "upoint":
        return UPointColumn.from_records(arrays[1], arrays[0])
    if kind == "ureal":
        return URealColumn.from_records(arrays[1], arrays[0])
    if kind == "bbox":
        return BBoxColumn.from_records(arrays[0])
    raise InvalidValue(f"unknown column kind {kind!r}")


class MmapSource:
    """Identity of the persistent files a memmap-backed column came from.

    Carried on ``column.source`` so downstream layers can see (and
    re-open) the backing store: the parallel backend ships this to fork
    workers instead of copying bytes into shared memory, and EXPLAIN
    annotates the scan as ``MmapScan``.  ``manifest_crc`` pins the exact
    store generation — a rebuild changes the manifest, so stale worker
    attachments are detected rather than silently served.
    """

    __slots__ = ("root", "kind", "manifest_crc")

    def __init__(self, root: str, kind: str, manifest_crc: int):
        self.root = root
        self.kind = kind
        self.manifest_crc = manifest_crc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MmapSource({self.root!r}, {self.kind!r}, "
            f"crc={self.manifest_crc:#010x})"
        )


class ColumnStore:
    """One directory of column files plus their CRC-checked manifest."""

    __slots__ = ("root",)

    def __init__(self, root: str):
        self.root = os.fspath(root)

    # -- paths ------------------------------------------------------------

    def path(self, name: str) -> str:
        """Absolute path of one file inside the store directory."""
        return os.path.join(self.root, name)

    def exists(self) -> bool:
        """True when the store directory holds a manifest."""
        return os.path.exists(self.path(MANIFEST_NAME))

    def has(self, kind: str) -> bool:
        """True when the manifest lists column ``kind`` (manifest must
        be readable; a corrupt manifest reads as "nothing stored")."""
        try:
            payload, _crc = self._manifest()
        except CorruptColumnError:
            return False
        return kind in payload["columns"]

    # -- manifest ---------------------------------------------------------

    def _manifest(self) -> Tuple[dict, int]:
        """``(payload, payload_crc)`` of the manifest, CRC-verified."""
        try:
            with open(self.path(MANIFEST_NAME), "rb") as fh:
                raw = fh.read()
        except OSError as exc:
            raise CorruptColumnError(
                f"column store manifest unreadable: {exc}"
            ) from exc
        try:
            doc = json.loads(raw)
            payload = doc["payload"]
            declared = int(doc["crc32"])
            columns = payload["columns"]
            fmt = int(payload["format"])
        except (ValueError, KeyError, TypeError) as exc:
            raise CorruptColumnError(
                "column store manifest is not valid JSON of the expected shape"
            ) from exc
        actual = zlib.crc32(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        )
        if actual != declared:
            raise CorruptColumnError(
                f"column store manifest CRC mismatch "
                f"(declared {declared:#010x}, computed {actual:#010x})"
            )
        if fmt != FORMAT_VERSION:
            raise CorruptColumnError(
                f"column store format v{fmt} != supported v{FORMAT_VERSION}"
            )
        if not isinstance(columns, dict):
            raise CorruptColumnError("column store manifest: columns not a map")
        return payload, actual

    def manifest(self) -> dict:
        """The manifest payload (raises :class:`CorruptColumnError`)."""
        return self._manifest()[0]

    def fleet_version(self, kind: str) -> Optional[int]:
        """Fleet version column ``kind`` was built from, or None."""
        try:
            payload, _crc = self._manifest()
        except CorruptColumnError:
            return None
        entry = payload["columns"].get(kind)
        if entry is None:
            return None
        v = entry.get("fleet_version")
        return int(v) if v is not None else None

    def _write_manifest(self, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        doc = json.dumps(
            {"crc32": zlib.crc32(body), "payload": payload}, sort_keys=True
        ).encode("utf-8")
        tmp = self.path(MANIFEST_NAME + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(doc)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path(MANIFEST_NAME))

    # -- writing ----------------------------------------------------------

    def save(
        self,
        kind: str,
        column,
        fleet_version: Optional[int] = None,
        n_objects: Optional[int] = None,
    ) -> None:
        """Persist one column kind, then atomically update the manifest.

        Column files are written to temporaries and renamed into place;
        the manifest goes last, so a crash at any point leaves either
        the old consistent generation (manifest not yet replaced ⇒ file
        counts/CRCs disagree with the new files and validation rejects
        them) or the new one.  Failpoints ``colstore.write_crash`` (fires
        between column-file writes) and ``colstore.manifest_crash``
        (fires before the manifest update) let the crash matrix pin
        both torn-store shapes.
        """
        if kind not in _LAYOUT:
            raise InvalidValue(
                f"unknown column kind {kind!r}; expected one of "
                f"{', '.join(COLUMN_KINDS)}"
            )
        arrays = _column_records(kind, column)
        os.makedirs(self.root, exist_ok=True)
        try:
            payload = self._manifest()[0]
        except CorruptColumnError:
            payload = {"format": FORMAT_VERSION, "columns": {}}
        files: Dict[str, dict] = {}
        for (name, dtype), rec in zip(_LAYOUT[kind], arrays):
            if faults.active:
                faults.fail("colstore.write_crash")
            rec = np.ascontiguousarray(rec, dtype=dtype)
            body = rec.tobytes()
            tmp = self.path(name + ".tmp")
            with open(tmp, "wb") as fh:
                fh.write(HEADER.pack(MAGIC, FORMAT_VERSION, 0, len(rec)))
                fh.write(body)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path(name))
            files[name] = {
                "count": len(rec),
                "crc32": zlib.crc32(body),
                "dtype_crc32": _dtype_hash(dtype),
            }
        entry: Dict[str, object] = {"files": files}
        if fleet_version is not None:
            entry["fleet_version"] = int(fleet_version)
        if n_objects is not None:
            entry["n_objects"] = int(n_objects)
        payload["format"] = FORMAT_VERSION
        payload["columns"][kind] = entry
        if faults.active:
            faults.fail("colstore.manifest_crash")
        self._write_manifest(payload)

    def _rewrite_points(self, kind: str, min_changed: int, entry: dict) -> List[int]:
        """Per-file record index from which the stored bytes change when
        every object below ``min_changed`` kept its exact unit rows.

        Objects are contiguous in fleet order in every file, so the
        records of objects ``< min_changed`` are a byte-identical prefix
        of the new file: units files change from the first changed
        object's CSR offset, offsets files from entry ``min_changed+1``
        (the entries up to and including ``min_changed`` are sums over
        unchanged objects), and the bbox file from the first record
        whose key is a changed object.
        """
        if kind == "bbox":
            rec = self._open_file("bbox.bin", BBoxColumn.RECORD_DTYPE,
                                  entry["files"]["bbox.bin"])
            return [int(np.searchsorted(rec["key"], min_changed))]
        offsets_name = _LAYOUT[kind][1][0]
        offs = self._open_file(offsets_name, np.dtype("<i8"),
                               entry["files"][offsets_name])
        old_n = len(offs) - 1
        i = min(min_changed, old_n)
        return [int(offs[i]), min(min_changed + 1, old_n + 1)]

    def extend_or_save(
        self,
        kind: str,
        column,
        min_changed: int,
        fleet_version: Optional[int] = None,
        n_objects: Optional[int] = None,
    ):
        """Grow the stored files in place so they describe ``column``.

        ``column`` is the fleet's current (already spliced) column and
        ``min_changed`` the lowest object index whose mapping changed
        since the stored generation — everything below it is a verified
        byte-identical file prefix, so only the tail from the per-file
        rewrite point is written (payload CRCs updated incrementally
        from the unchanged prefix, counted ``colstore.extends``).  When
        the store holds no usable generation, the fleet shrank, or the
        tail write fails, this degrades to a full :meth:`save` (counted
        ``colstore.rewrites``).  Like :meth:`load_or_rebuild`, the
        result is re-opened from disk so the caller gets a memmap-backed
        column with ``source`` set, or ``column`` itself if even the
        re-open fails.

        Crash safety matches :meth:`save`: per-file writes first
        (``colstore.write_crash`` between files, ``colstore.
        manifest_crash`` before the manifest), CRC manifest last, so a
        torn extension leaves a file whose size or header count
        disagrees with the durable manifest and every reader rejects it
        as :class:`CorruptColumnError` instead of serving torn records.

        Memmap safety: live queries may still hold ``np.memmap`` views
        of the *current* files (pinned snapshots), so stored bytes are
        never mutated in place — a file is either purely appended to
        (existing record range untouched; the old fixed-shape views
        cannot see past their count) or rewritten whole to a temporary
        and renamed over (the old views keep the old inode).
        """
        if kind not in _LAYOUT:
            raise InvalidValue(
                f"unknown column kind {kind!r}; expected one of "
                f"{', '.join(COLUMN_KINDS)}"
            )
        arrays = _column_records(kind, column)
        try:
            done = self._extend_files(kind, arrays, min_changed)
        except (CorruptColumnError, OSError, KeyError, TypeError, ValueError):
            done = None
        if done is None:
            if obs.enabled:
                obs.add("colstore.rewrites")
            self.save(kind, column, fleet_version, n_objects=n_objects)
        else:
            if obs.enabled:
                obs.add("colstore.extends")
            payload, files = done
            entry: Dict[str, object] = {"files": files}
            if fleet_version is not None:
                entry["fleet_version"] = int(fleet_version)
            if n_objects is not None:
                entry["n_objects"] = int(n_objects)
            payload["columns"][kind] = entry
            if faults.active:
                faults.fail("colstore.manifest_crash")
            self._write_manifest(payload)
        try:
            return self._load(kind)
        except CorruptColumnError:
            return column

    def _extend_files(
        self, kind: str, arrays: Sequence[np.ndarray], min_changed: int
    ) -> Optional[Tuple[dict, Dict[str, dict]]]:
        """Tail-write every file of ``kind``; None ⇒ not extendable."""
        payload, _crc = self._manifest()
        entry = payload["columns"].get(kind)
        if entry is None:
            return None
        points = self._rewrite_points(kind, min_changed, entry)
        files: Dict[str, dict] = {}
        for (name, dtype), rec, k in zip(_LAYOUT[kind], arrays, points):
            finfo = entry["files"][name]
            old_count, old_crc = int(finfo["count"]), int(finfo["crc32"])
            if int(finfo["dtype_crc32"]) != _dtype_hash(dtype):
                return None
            rec = np.ascontiguousarray(rec, dtype=dtype)
            if len(rec) < old_count or k > old_count:
                return None  # shrunk or inconsistent: full save instead
            if faults.active:
                faults.fail("colstore.write_crash")
            if k == old_count:
                # Pure append: grow the file past the record range any
                # live memmap view covers, then bump the header count.
                tail = rec[k:].tobytes()
                crc = zlib.crc32(tail, old_crc)
                # modlint: disable=MOD009 deliberate in-place append: only bytes past every pinned view's record range are written, readers are gated by the header count + manifest CRC (fsynced below), and a rename here would orphan live memmaps
                with open(self.path(name), "r+b") as fh:
                    fh.seek(HEADER.size + k * dtype.itemsize)
                    fh.write(tail)
                    fh.truncate(HEADER.size + len(rec) * dtype.itemsize)
                    fh.seek(0)
                    fh.write(HEADER.pack(MAGIC, FORMAT_VERSION, 0, len(rec)))
                    fh.flush()
                    os.fsync(fh.fileno())
            else:
                # Records before old_count changed: whole-file rewrite
                # to a fresh inode so pinned views keep their old bytes.
                body = rec.tobytes()
                crc = zlib.crc32(body)
                tmp = self.path(name + ".tmp")
                with open(tmp, "wb") as fh:
                    fh.write(HEADER.pack(MAGIC, FORMAT_VERSION, 0, len(rec)))
                    fh.write(body)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, self.path(name))
            files[name] = {
                "count": len(rec),
                "crc32": crc,
                "dtype_crc32": _dtype_hash(dtype),
            }
        return payload, files

    # -- reading ----------------------------------------------------------

    def _open_file(self, name: str, dtype: np.dtype, finfo: dict) -> np.ndarray:
        """Memmap one column file after the cheap validation tier."""
        path = self.path(name)
        declared_dtype = int(finfo["dtype_crc32"])
        if declared_dtype != _dtype_hash(dtype):
            raise CorruptColumnError(
                f"{name}: stored dtype hash {declared_dtype:#010x} does not "
                f"match the in-memory record layout"
            )
        count = int(finfo["count"])
        try:
            with open(path, "rb") as fh:
                head = fh.read(HEADER.size)
        except OSError as exc:
            raise CorruptColumnError(f"{name}: unreadable: {exc}") from exc
        if len(head) != HEADER.size:
            raise CorruptColumnError(f"{name}: truncated header")
        magic, version, _reserved, file_count = HEADER.unpack(head)
        if magic != MAGIC:
            raise CorruptColumnError(f"{name}: bad magic {magic!r}")
        if version != FORMAT_VERSION:
            raise CorruptColumnError(
                f"{name}: format v{version} != supported v{FORMAT_VERSION}"
            )
        if file_count != count:
            raise CorruptColumnError(
                f"{name}: header count {file_count} != manifest count {count}"
            )
        expected = HEADER.size + count * dtype.itemsize
        actual = os.path.getsize(path)
        if actual != expected:
            raise CorruptColumnError(
                f"{name}: file size {actual} != expected {expected}"
            )
        if count == 0:
            return np.empty(0, dtype=dtype)
        mm = np.memmap(path, dtype=dtype, mode="r", offset=HEADER.size, shape=(count,))
        if obs.enabled:
            obs.add("colstore.bytes_mapped", count * dtype.itemsize)
        return mm

    def _load(self, kind: str):
        """Memmap-backed column for ``kind`` (cheap validation tier)."""
        payload, crc = self._manifest()
        entry = payload["columns"].get(kind)
        if entry is None:
            raise CorruptColumnError(
                f"column store has no {kind!r} column"
            )
        arrays: List[np.ndarray] = []
        try:
            for name, dtype in _LAYOUT[kind]:
                arrays.append(self._open_file(name, dtype, entry["files"][name]))
        except (KeyError, TypeError) as exc:
            raise CorruptColumnError(
                f"column store manifest entry for {kind!r} is malformed"
            ) from exc
        try:
            col = _column_from_records(kind, arrays)
        except InvalidValue as exc:
            # e.g. an offsets array that does not cover the unit file —
            # internally inconsistent data that passed the cheap checks.
            raise CorruptColumnError(
                f"{kind} column files are mutually inconsistent: {exc}"
            ) from exc
        col.source = MmapSource(self.root, kind, crc)
        if obs.enabled:
            obs.add("colstore.validations")
        return col

    def load(self, kind: str):
        """Open column ``kind`` from disk (counted ``colstore.hits``).

        Raises :class:`CorruptColumnError` when the manifest or any
        backing file fails the cheap validation tier.
        """
        col = self._load(kind)
        if obs.enabled:
            obs.add("colstore.hits")
        return col

    def verify(self, kind: Optional[str] = None) -> None:
        """Full-CRC verification of stored columns (the recovery tier).

        Checks everything :meth:`load` checks plus a CRC over each
        file's payload bytes, so bit flips inside the record payload are
        caught.  Raises :class:`CorruptColumnError` on the first
        failure.
        """
        payload, _crc = self._manifest()
        kinds = [kind] if kind is not None else sorted(payload["columns"])
        for k in kinds:
            entry = payload["columns"].get(k)
            if entry is None:
                raise CorruptColumnError(f"column store has no {k!r} column")
            if k not in _LAYOUT:
                raise CorruptColumnError(f"manifest lists unknown kind {k!r}")
            for name, dtype in _LAYOUT[k]:
                try:
                    finfo = entry["files"][name]
                    declared = int(finfo["crc32"])
                except (KeyError, TypeError, ValueError) as exc:
                    raise CorruptColumnError(
                        f"column store manifest entry for {k!r} is malformed"
                    ) from exc
                self._open_file(name, dtype, finfo)
                with open(self.path(name), "rb") as fh:
                    fh.seek(HEADER.size)
                    actual = zlib.crc32(fh.read())
                if actual != declared:
                    raise CorruptColumnError(
                        f"{name}: payload CRC mismatch "
                        f"(declared {declared:#010x}, computed {actual:#010x})"
                    )
                if obs.enabled:
                    obs.add("colstore.validations")

    # -- the degrade path --------------------------------------------------

    def load_or_rebuild(
        self,
        kind: str,
        mappings: Sequence,
        fleet_version: Optional[int] = None,
        **build_kwargs,
    ):
        """Serve ``kind`` from disk, rebuilding from ``mappings`` if the
        stored column is missing, corrupt, or stale.

        Staleness: when ``fleet_version`` is given and differs from the
        version recorded in the manifest, or the stored object count
        disagrees with ``len(mappings)`` (a store directory re-pointed
        at a different workload), the stored bytes describe another
        fleet and are rebuilt.  Rebuilds are counted under
        ``colstore.rebuilds``; a clean disk serve is a ``colstore.hits``.
        The rebuilt column is persisted and re-opened from disk so the
        caller always gets a memmap-backed column with ``source`` set;
        if even the re-open fails (disk gone), the freshly built
        in-memory column is returned — degraded, never wrong.
        """
        n_objects = len(mappings)
        try:
            col = self._load(kind)
        except CorruptColumnError:
            pass
        else:
            entry = self.manifest()["columns"][kind]
            stored_v = entry.get("fleet_version")
            stored_n = entry.get("n_objects")
            if (fleet_version is None or stored_v == fleet_version) and (
                stored_n is None or stored_n == n_objects
            ):
                if obs.enabled:
                    obs.add("colstore.hits")
                return col
        built = _BUILDERS[kind](mappings, **build_kwargs)
        if obs.enabled:
            obs.add("colstore.rebuilds")
        self.save(kind, built, fleet_version, n_objects=n_objects)
        try:
            return self._load(kind)
        except CorruptColumnError:
            return built


_BUILDERS = {
    "upoint": UPointColumn.from_mappings,
    "ureal": URealColumn.from_mappings,
    "bbox": BBoxColumn.from_mappings,
}


# ---------------------------------------------------------------------------
# Process-wide active store (set by the CLI's --colstore flag)
# ---------------------------------------------------------------------------

_ACTIVE: Optional[str] = None
#: The one fleet the active store serves.  Column files are keyed by
#: kind only, so two different fleets sharing a store directory would
#: overwrite each other's generations; the first fleet to build through
#: the store claims it (weakly — a collected fleet frees the claim).
_BOUND: Optional["weakref.ref"] = None


def set_store(root: Optional[str]) -> None:
    """Select the process-wide column store directory (None disables)."""
    global _ACTIVE, _BOUND
    _ACTIVE = os.fspath(root) if root is not None else None
    _BOUND = None


def get_store() -> Optional[ColumnStore]:
    """The active :class:`ColumnStore`, or None when not configured."""
    if _ACTIVE is None:
        return None
    return ColumnStore(_ACTIVE)


def store_for(fleet) -> Optional[ColumnStore]:
    """The active store, iff it serves ``fleet``.

    The first weak-referenceable fleet to ask claims the store; other
    fleets get None and build in memory, so a shared directory can never
    interleave two fleets' generations.
    """
    global _BOUND
    store = get_store()
    if store is None:
        return None
    try:
        if _BOUND is None or _BOUND() is None:
            _BOUND = weakref.ref(fleet)
            return store
    except TypeError:
        return None  # not weak-referenceable: cannot track its claim
    return store if _BOUND() is fleet else None


def clear_store() -> None:
    """Forget the active store (test teardown)."""
    set_store(None)
