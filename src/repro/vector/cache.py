"""Columnar cache: built columns keyed by fleet identity + version stamp.

``BENCH_vector.json`` made the economics plain: the batched ``atinstant``
kernel costs well under a millisecond at 10,000 objects, but building its
column costs tens of milliseconds — repeated snapshot and window queries
were paying a ~40× overhead to re-transcribe an unchanged fleet.  The
cache closes that gap for fleets that opt into mutation tracking:

* :class:`Fleet` is a list-like sequence of moving objects carrying a
  monotonically increasing *version stamp*, bumped by every mutating
  operation (``append``/``__setitem__``/``__delitem__``/``insert``/…).
* :class:`ColumnCache` memoizes built columns under the key
  ``(id(fleet), kind)`` and revalidates by version: a stamp mismatch is
  an *invalidation* (the fleet mutated since the column was built) and
  the column is rebuilt.  A weak reference guards against ``id`` reuse
  after the original fleet is garbage collected.

Plain sequences (lists, tuples) have no version stamp and bypass the
cache entirely — they get a fresh column per call, exactly the pre-cache
behaviour.  Counters: ``colcache.hits`` / ``colcache.misses`` /
``colcache.invalidations``.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from collections.abc import MutableSequence
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro import config, obs
from repro.analysis import dynlock
from repro.errors import InvalidValue, StorageError
from repro.vector.columns import BBoxColumn, UPointColumn, URealColumn

#: Changelog entries kept per fleet.  Past the cap the oldest half is
#: trimmed and versions at or below the trim point become unknowable
#: (``changes_since`` answers None → callers fall back to a rebuild).
_CHANGELOG_CAP = 4096


class Fleet(MutableSequence[Any]):
    """A mutable sequence of moving objects with a version stamp.

    Behaves like a list for every read, but every mutation bumps
    :attr:`version`, which is what lets :class:`ColumnCache` decide
    whether a previously built column still describes the fleet.  A
    bounded changelog additionally records *which* object each version
    bump touched, so the cache can splice stale columns forward
    (:meth:`changes_since`) instead of rebuilding from scratch —
    structural mutations (deletions, mid-sequence inserts, slice
    assignment, :meth:`invalidate`) shift indices and poison the log
    back to a full rebuild.
    """

    __slots__ = ("_items", "_version", "_changes", "_floor", "__weakref__")

    def __init__(self, items: Iterable[Any] = ()):
        self._items: List[Any] = list(items)
        self._version = 0
        # (version, object index) per mutation; index -1 = structural.
        self._changes: List[Tuple[int, int]] = []
        self._floor = 0

    @property
    def version(self) -> int:
        """Monotonic mutation stamp; changes iff the fleet changed."""
        return self._version

    def _record(self, idx: int) -> None:
        self._version += 1
        self._changes.append((self._version, idx))
        if len(self._changes) > _CHANGELOG_CAP:
            drop = len(self._changes) - _CHANGELOG_CAP // 2
            self._floor = self._changes[drop - 1][0]
            del self._changes[:drop]

    def changes_since(self, version: int) -> Optional[Set[int]]:
        """Object indices mutated after ``version``, or None when the
        change set is unknowable — a structural mutation happened, the
        changelog was trimmed past ``version``, or the stamp is not one
        this fleet ever issued.  An empty set means "nothing changed"
        (the stamp is current)."""
        if version == self._version:
            return set()
        if version < self._floor or version > self._version:
            return None
        out: Set[int] = set()
        for v, idx in reversed(self._changes):
            if v <= version:
                break
            if idx < 0:
                return None
            out.add(idx)
        return out

    def invalidate(self) -> None:
        """Bump the version without changing contents.

        For callers that mutated a *member* in place (the fleet cannot
        observe that), so cached columns must be declared stale by hand.
        The mutated object is unknown, so this also poisons the
        changelog: the next cache access is a full rebuild.
        """
        self._record(-1)

    # -- MutableSequence core ------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, i: Any) -> Any:
        return self._items[i]

    def __setitem__(self, i: Any, value: Any) -> None:
        self._items[i] = value
        if isinstance(i, int):
            self._record(i if i >= 0 else len(self._items) + i)
        else:
            self._record(-1)

    def __delitem__(self, i: Any) -> None:
        del self._items[i]
        self._record(-1)

    def insert(self, i: int, value: Any) -> None:
        tail = i >= len(self._items)
        self._items.insert(i, value)
        self._record(len(self._items) - 1 if tail else -1)

    def __repr__(self) -> str:
        return f"Fleet({len(self._items)} objects, version={self._version})"


#: How each column kind is built from a fleet of mappings.
_BUILDERS: Dict[str, Callable[[Any], Any]] = {
    "upoint": UPointColumn.from_mappings,
    "ureal": URealColumn.from_mappings,
    "bbox": BBoxColumn.from_mappings,
}

#: Array attributes that carry a column's payload, across all kinds.
_ARRAY_FIELDS = (
    "offsets", "starts", "ends", "lc", "rc",
    "xmin", "ymin", "tmin", "xmax", "ymax", "tmax",
)


def column_nbytes(column: Any) -> int:
    """Resident bytes of a built column: the sum of its array payloads.

    Counts every numpy field the column carries (CSR offsets, interval
    arrays, motion coefficients, bbox coordinates); non-array attributes
    (``keys`` lists, sources) are bookkeeping, not payload, and are not
    charged.  This is the unit of account for both the column cache's
    byte budget and the shard manager's residency budget.
    """
    total = 0
    for name in _ARRAY_FIELDS + tuple(getattr(type(column), "EXTRA_FIELDS", ())):
        nbytes = getattr(getattr(column, name, None), "nbytes", None)
        if nbytes is not None:
            total += int(nbytes)
    return total


class ColumnCache:
    """Byte-budgeted cache of built columns keyed by fleet identity.

    Eviction is by resident *bytes*, not entry count: an entry-count LRU
    could hold N huge columns while evicting small ones, so pressure is
    measured in :func:`column_nbytes` and least-recently-used entries
    are dropped until the unpinned total fits the budget
    (``config.COLCACHE_BYTES`` unless overridden per instance).  Entries
    built from the persistent column store (:mod:`repro.vector.store`)
    are *pinned* and exempt: a memmap-backed column is nearly free to
    keep resident (the OS owns the pages) but costly to re-open and
    re-validate.  The unpinned high-water mark is tracked as the
    ``colcache.bytes`` gauge.  An explicit ``capacity`` (entry count)
    is still honoured as an additional cap for callers that want one.
    """

    __slots__ = ("_budget", "_bytes", "_capacity", "_entries", "_lock")

    def __init__(
        self, capacity: Optional[int] = None, budget: Optional[int] = None
    ):
        self._capacity = capacity
        self._budget = budget
        self._bytes = 0  # resident bytes of unpinned entries
        # (id(fleet), kind) -> (version, weakref, column, pinned, nbytes)
        self._entries: "OrderedDict[Tuple[int, str], Tuple[int, Any, Any, bool, int]]" = (
            OrderedDict()
        )
        # The query service reads columns from executor threads while
        # the ingest path mutates fleets; every cache operation that
        # touches the entry table runs under this lock.  Re-entrant
        # because a column build may re-enter the cache via the fleet's
        # own __getitem__.
        self._lock = dynlock.rlock("vector.colcache")

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def resident_bytes(self) -> int:
        """Current unpinned resident bytes (the budgeted quantity)."""
        with self._lock:
            return self._bytes

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def drop_fleet(self, fleet: Any) -> None:
        """Forget every cached column of ``fleet`` (all kinds).

        Used by the shard manager when it evicts a shard: dropping only
        its own reference would leave the bytes resident here.
        """
        with self._lock:
            fid = id(fleet)
            for key in [k for k in self._entries if k[0] == fid]:
                self._drop(key)

    def _drop(self, key: Tuple[int, str]) -> None:
        """Remove one entry, keeping the byte account. Caller holds the
        lock (or is the locked get path itself)."""
        entry = self._entries.pop(key, None)
        if entry is not None and not entry[3]:
            self._bytes -= entry[4]

    def get(self, fleet: Fleet, kind: str) -> Any:
        """The ``kind`` column of ``fleet``, rebuilt only when stale."""
        return self.get_versioned(fleet, kind)[1]

    def get_versioned(self, fleet: Fleet, kind: str) -> Tuple[int, Any]:
        """``(version, column)`` — the stamp the column was built at.

        Callers that dispatch a kernel *after* obtaining the column
        compare the returned version against ``fleet.version`` at use
        time (:func:`revalidate`): a fleet mutated in between — even by
        its own builder iteration — must not silently feed the kernel a
        stale column.
        """
        if kind not in _BUILDERS:
            raise InvalidValue(f"unknown column kind {kind!r}")
        with self._lock:
            return self._get_versioned_locked(fleet, kind)

    def _get_versioned_locked(self, fleet: Fleet, kind: str) -> Tuple[int, Any]:
        key = (id(fleet), kind)
        entry = self._entries.get(key)
        if entry is not None:
            version, ref, column, pinned, _nbytes = entry
            if ref() is not fleet:
                # id() was recycled by a new fleet: a stale stranger's
                # entry, not an invalidation of *this* fleet's column.
                self._drop(key)
            elif version == fleet.version:
                if obs.enabled:
                    obs.counters.add("colcache.hits")
                self._entries.move_to_end(key)
                return version, column
            else:
                # Stale: splice the changed objects into the existing
                # column when the fleet's changelog pins exactly which
                # ones they are — O(changed) instead of a full rebuild.
                new_version = fleet.version
                spliced = self._try_extend(
                    fleet, kind, version, column, pinned
                )
                if spliced is not None and fleet.version == new_version:
                    column, pinned = spliced
                    if obs.enabled:
                        obs.counters.add("colcache.extended")
                    self._store_entry(key, new_version, ref, column, pinned)
                    self._entries.move_to_end(key)
                    return new_version, column
                if obs.enabled:
                    obs.counters.add("colcache.invalidations")
                self._drop(key)
        if obs.enabled:
            obs.counters.add("colcache.misses")
        version = fleet.version
        column, pinned = self._build(fleet, kind, version)
        self._store_entry(key, version, weakref.ref(fleet), column, pinned)
        self._evict_over_budget()
        return version, column

    def _store_entry(
        self, key: Tuple[int, str], version: int, ref: Any,
        column: Any, pinned: bool,
    ) -> None:
        """Insert or replace one entry, keeping the byte account and the
        ``colcache.bytes`` high-water gauge.  Caller holds the lock."""
        self._drop(key)
        nbytes = column_nbytes(column)
        self._entries[key] = (version, ref, column, pinned, nbytes)
        if not pinned:
            self._bytes += nbytes
            if obs.enabled:
                obs.counters.high_water("colcache.bytes", float(self._bytes))

    def _evict_over_budget(self) -> None:
        """Drop LRU unpinned entries until the resident bytes fit the
        budget (and, when a capacity was configured, the entry count
        fits it too).  Caller holds the lock."""
        budget = self._budget if self._budget is not None else config.COLCACHE_BYTES
        for k in list(self._entries):
            over_bytes = self._bytes > max(budget, 0)
            over_count = (
                self._capacity is not None
                and len(self._entries) > max(self._capacity, 1)
            )
            if not (over_bytes or over_count):
                break
            if self._entries[k][3]:
                continue  # pinned: memmap-backed, exempt from the budget
            self._drop(k)

    @staticmethod
    def _try_extend(
        fleet: Fleet, kind: str, old_version: int, column: Any, pinned: bool
    ) -> Optional[Tuple[Any, bool]]:
        """``(column, pinned)`` spliced forward to ``fleet.version``, or
        None when only a full rebuild is sound (structural mutation,
        trimmed changelog, splice-incompatible column)."""
        changed = fleet.changes_since(old_version)
        if not changed:
            return None
        items = list(fleet)
        try:
            newcol = column.extended(items, changed)
        except (InvalidValue, IndexError):
            return None
        from repro.vector import store as storemod

        st = storemod.store_for(fleet)
        if st is not None and pinned:
            try:
                newcol = st.extend_or_save(
                    kind, newcol, min(changed),
                    fleet_version=fleet.version, n_objects=len(items),
                )
                return newcol, newcol.source is not None
            except (OSError, StorageError):
                pass  # store unusable: keep the in-memory splice
        return newcol, False

    @staticmethod
    def _build(fleet: Fleet, kind: str, version: int) -> Tuple[Any, bool]:
        """Build one column: from the bound persistent store (pinned)
        when one is configured for this fleet, else in memory."""
        from repro.vector import store as storemod

        st = storemod.store_for(fleet)
        if st is not None:
            try:
                return (
                    st.load_or_rebuild(kind, fleet, fleet_version=version),
                    True,
                )
            except (OSError, StorageError):
                # Store directory unusable (permissions, disk full):
                # degrade to a plain in-memory build, never fail the
                # query over a persistence problem.
                pass
        return _BUILDERS[kind](fleet), False


#: Process-wide cache used by the fleet helpers and the query engine.
_CACHE = ColumnCache()


def column_for(fleet: Any, kind: str = "upoint") -> Any:
    """Build (or fetch) the ``kind`` column for ``fleet``.

    Versioned :class:`Fleet` instances go through the process-wide
    :class:`ColumnCache`; plain sequences are transcribed fresh per call
    (no identity + version to validate against).  Raises whatever the
    column builder raises (``InvalidValue`` for non-mapping members), so
    backend dispatchers keep their counted scalar fallback.
    """
    return column_for_versioned(fleet, kind)[1]


def column_for_versioned(
    fleet: Any, kind: str = "upoint"
) -> Tuple[Optional[int], Any]:
    """Like :func:`column_for`, plus the version stamp the column
    describes (None for plain sequences, which carry no stamp)."""
    if isinstance(fleet, Fleet):
        return _CACHE.get_versioned(fleet, kind)
    builder = _BUILDERS.get(kind)
    if builder is None:
        raise InvalidValue(f"unknown column kind {kind!r}")
    return None, builder(fleet)


#: How many get→mutate→re-get rounds :func:`revalidate` tolerates before
#: accepting the freshest build.  A fleet that mutates on *every* read
#: (pathological) can never be stably snapshotted by any backend.
_REVALIDATE_ROUNDS = 3


def revalidate(fleet: Any, kind: str, version: Optional[int], column: Any) -> Any:
    """Use-time validation of a previously obtained ``(version, column)``.

    Closes the TOCTOU window between obtaining a column and dispatching
    a kernel over it: if the fleet's version moved in between (an
    in-place mutation, possibly triggered *during* the column build by
    the fleet's own ``__getitem__``), the stale column is dropped and
    re-fetched — counted under ``colcache.invalidations`` by the cache.
    Plain sequences (``version is None``) have no stamp to validate.
    """
    if version is None or not isinstance(fleet, Fleet):
        return column
    for _ in range(_REVALIDATE_ROUNDS):
        if fleet.version == version:
            return column
        version, column = _CACHE.get_versioned(fleet, kind)
    return column


def clear_cache() -> None:
    """Drop every cached column (tests, benchmarks)."""
    _CACHE.clear()


def evict_columns(fleet: Any) -> None:
    """Drop the process-cached columns of one fleet (all kinds).

    The shard manager calls this when it evicts a shard, so the shard's
    bytes actually leave the process instead of lingering here.
    """
    _CACHE.drop_fleet(fleet)
