"""Temporally lifted arithmetic, comparisons, and boolean connectives.

Lifting (Section 2) makes every static operation applicable to moving
operands by applying it at each instant.  On the sliced representation
this becomes: refine the two unit sequences to a common partition, apply
the static operation per unit pair, and reassemble.

Closure limits of the ``ureal`` representation surface here: sums of
square-root units are not representable (``NotClosed``), exactly as
discussed in Section 3.2.5.
"""

from __future__ import annotations

from typing import Callable, List, Union

from repro.base.values import BoolVal
from repro.config import EPSILON
from repro.errors import NotClosed, TypeMismatch
from repro.ranges.interval import Interval
from repro.temporal.mapping import MovingBool, MovingReal
from repro.temporal.quadratics import sub_quad
from repro.temporal.refinement import refinement_partition
from repro.temporal.uconst import ConstUnit
from repro.temporal.ureal import UReal

# The ordering comparators are exact by definition: lifted SQL
# comparison semantics must agree with the plain comparison at every
# instant.  Only the equality pair is eps-mediated (root extraction
# makes exact equality of computed values meaningless).
_COMPARATORS: dict[str, Callable[[float, float], bool]] = {
    "<": lambda x, y: x < y,  # modlint: disable=MOD001 see comment above
    "<=": lambda x, y: x <= y,  # modlint: disable=MOD001 see comment above
    ">": lambda x, y: x > y,  # modlint: disable=MOD001 see comment above
    ">=": lambda x, y: x >= y,  # modlint: disable=MOD001 see comment above
    "==": lambda x, y: abs(x - y) <= EPSILON,
    "!=": lambda x, y: abs(x - y) > EPSILON,
}


def mreal_add(a: MovingReal, b: MovingReal) -> MovingReal:
    """Lifted ``+`` on moving reals (polynomial units only)."""
    units: List[UReal] = []
    for piece, ua, ub in refinement_partition(a.units, b.units):
        if ua is None or ub is None:
            continue
        assert isinstance(ua, UReal) and isinstance(ub, UReal)
        units.append(ua.with_interval(piece).plus(ub.with_interval(piece)))
    return MovingReal.normalized(units)


def mreal_sub(a: MovingReal, b: MovingReal) -> MovingReal:
    """Lifted ``−`` on moving reals (polynomial units only)."""
    units: List[UReal] = []
    for piece, ua, ub in refinement_partition(a.units, b.units):
        if ua is None or ub is None:
            continue
        assert isinstance(ua, UReal) and isinstance(ub, UReal)
        units.append(ua.with_interval(piece).minus(ub.with_interval(piece)))
    return MovingReal.normalized(units)


def mreal_scale(a: MovingReal, k: float) -> MovingReal:
    """Lifted multiplication by a constant."""
    return MovingReal.normalized(
        [u.scaled(k) for u in a.units]  # type: ignore[union-attr]
    )


def _unit_compare(u: UReal, op: str, v: UReal) -> List[ConstUnit]:
    """Compare two ureal units over their (identical) interval.

    The sign of the difference changes only at equality instants.  The
    interval is cut at those instants; each open piece gets its midpoint
    truth value, and every cut instant is assigned to the neighbouring
    piece whose value matches — or becomes a degenerate single-instant
    unit when it matches neither (e.g. ``(t−5)² > 0`` is false exactly
    at t = 5).
    """
    cmp = _COMPARATORS[op]
    iv = u.interval
    if iv.is_degenerate:
        holds = cmp(u.eval(iv.s), v.eval(iv.s))
        return [ConstUnit(iv, BoolVal(holds))]
    # Exact interior filter: the end points are already cuts, and they
    # are the same stored floats the roots are compared against.
    interior = sorted(
        {t for t in u.compare_times(v) if iv.s < t < iv.e}  # modlint: disable=MOD001 see comment above
    )
    cuts = [iv.s] + interior + [iv.e]
    piece_vals = [
        cmp(u.eval((a + b) / 2.0), v.eval((a + b) / 2.0))
        for a, b in zip(cuts, cuts[1:])
    ]
    cut_vals = {t: cmp(u.eval(t), v.eval(t)) for t in cuts}

    out: List[ConstUnit] = []
    n = len(piece_vals)
    for j in range(n):
        a, b = cuts[j], cuts[j + 1]
        holds = piece_vals[j]
        # Left closure: the unit's own closure at the interval start,
        # else claim the cut instant iff its value matches this piece
        # and the previous piece did not already claim it.
        if j == 0:
            lc = iv.lc
        else:
            lc = cut_vals[a] == holds and piece_vals[j - 1] != cut_vals[a]
        if j == n - 1:
            rc = iv.rc
        else:
            rc = cut_vals[b] == holds
        out.append(ConstUnit(Interval(a, b, lc, rc), BoolVal(holds)))
        # Orphaned instant: the cut value matches neither neighbour.
        if j < n - 1 and cut_vals[b] != holds and cut_vals[b] != piece_vals[j + 1]:
            out.append(
                ConstUnit(Interval(b, b, True, True), BoolVal(cut_vals[b]))
            )
    return out


def mreal_compare(
    a: MovingReal, op: str, b: Union[MovingReal, float, int]
) -> MovingBool:
    """Lifted comparison of moving reals, yielding a moving bool.

    ``op`` is one of ``< <= > >= == !=``; ``b`` may be a constant.
    """
    if op not in _COMPARATORS:
        raise TypeMismatch(f"unknown comparison operator {op!r}")
    if isinstance(b, (int, float)):
        const = float(b)
        units: List[ConstUnit] = []
        for u in a.units:
            assert isinstance(u, UReal)
            rhs = UReal.constant(u.interval, const)
            units.extend(_unit_compare(u, op, rhs))
        return MovingBool.normalized(units)
    units = []
    for piece, ua, ub in refinement_partition(a.units, b.units):
        if ua is None or ub is None:
            continue
        assert isinstance(ua, UReal) and isinstance(ub, UReal)
        units.extend(
            _unit_compare(ua.with_interval(piece), op, ub.with_interval(piece))
        )
    return MovingBool.normalized(units)


def _unit_pointwise_extreme(u: UReal, v: UReal, take_min: bool) -> List[UReal]:
    """Pointwise min/max of two ureal units over their common interval.

    The winner can only change at equality instants, so the interval is
    cut there and each piece keeps whichever unit wins at its midpoint.
    Closed for every form combination the comparison itself supports.
    """
    iv = u.interval
    if iv.is_degenerate:
        winner = u if (u.eval(iv.s) <= v.eval(iv.s)) == take_min else v
        return [winner.with_interval(iv)]
    # Same exact interior filter as in _unit_compare.
    cuts = [iv.s] + [t for t in u.compare_times(v) if iv.s < t < iv.e] + [iv.e]  # modlint: disable=MOD001 see comment above
    cuts = sorted(set(cuts))
    out: List[UReal] = []
    for j, (a, b) in enumerate(zip(cuts, cuts[1:])):
        mid = (a + b) / 2.0
        winner = u if (u.eval(mid) <= v.eval(mid)) == take_min else v
        lc = iv.lc if j == 0 else True
        rc = iv.rc if j == len(cuts) - 2 else False
        out.append(winner.with_interval(Interval(a, b, lc, rc)))
    return out


def _mreal_extreme(a: MovingReal, b: MovingReal, take_min: bool) -> MovingReal:
    units: List[UReal] = []
    for piece, ua, ub in refinement_partition(a.units, b.units):
        if ua is None or ub is None:
            continue
        assert isinstance(ua, UReal) and isinstance(ub, UReal)
        units.extend(
            _unit_pointwise_extreme(
                ua.with_interval(piece), ub.with_interval(piece), take_min
            )
        )
    return MovingReal.normalized(units)


def mreal_min(a: MovingReal, b: MovingReal) -> MovingReal:
    """Lifted pointwise minimum of two moving reals."""
    return _mreal_extreme(a, b, take_min=True)


def mreal_max(a: MovingReal, b: MovingReal) -> MovingReal:
    """Lifted pointwise maximum of two moving reals."""
    return _mreal_extreme(a, b, take_min=False)


def _mbool_combine(
    a: MovingBool, b: MovingBool, fn: Callable[[bool, bool], bool]
) -> MovingBool:
    units: List[ConstUnit] = []
    for piece, ua, ub in refinement_partition(a.units, b.units):
        if ua is None or ub is None:
            continue
        assert isinstance(ua, ConstUnit) and isinstance(ub, ConstUnit)
        value = fn(bool(ua.value.value), bool(ub.value.value))
        units.append(ConstUnit(piece, BoolVal(value)))
    return MovingBool.normalized(units)


def mbool_and(a: MovingBool, b: MovingBool) -> MovingBool:
    """Lifted conjunction (defined on the common deftime)."""
    return _mbool_combine(a, b, lambda x, y: x and y)


def mbool_or(a: MovingBool, b: MovingBool) -> MovingBool:
    """Lifted disjunction (defined on the common deftime)."""
    return _mbool_combine(a, b, lambda x, y: x or y)


def mbool_not(a: MovingBool) -> MovingBool:
    """Lifted negation."""
    return a.negated()
