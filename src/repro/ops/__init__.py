"""Operations of the discrete model.

The abstract model's operations, realized on the sliced representation:

* :mod:`repro.ops.interaction` — ``atinstant`` (Section 5.1),
  ``atperiods``, ``present``, ``at``, ``passes``;
* :mod:`repro.ops.inside` — the ``inside`` algorithm of Section 5.2;
* :mod:`repro.ops.distance` — the lifted Euclidean ``distance``;
* :mod:`repro.ops.lifted` — lifted arithmetic and comparisons;
* :mod:`repro.ops.aggregates` — ``atmin``, ``atmax``, ``initial``,
  ``final``, ``val``, ``inst``;
* :mod:`repro.ops.numeric` — lifted ``size`` (area), ``perimeter``,
  ``length``;
* :mod:`repro.ops.projection` — ``trajectory``, ``traversed``,
  ``deftime``, ``rangevalues``.
"""

from __future__ import annotations

from repro.ops.interaction import (
    atinstant,
    atperiods,
    present,
    mregion_atinstant,
    mpoint_at_region,
    passes,
)
from repro.ops.inside import inside, upoint_uregion_inside
from repro.ops.distance import mpoint_distance, mpoint_static_distance
from repro.ops.lifted import (
    mreal_add,
    mreal_sub,
    mreal_compare,
    mbool_and,
    mbool_or,
    mbool_not,
)
from repro.ops.aggregates import (
    mreal_atmin,
    mreal_atmax,
    initial,
    final,
    val,
    inst,
)
from repro.ops.numeric import mregion_area, mregion_perimeter, mline_length
from repro.ops.projection import trajectory, traversed, deftime
from repro.ops.motion import velocity, heading, turning_points
from repro.ops.interaction2 import mregion_intersects, mpoint_intersection
from repro.ops.simplify import simplify, simplification_error, compression_ratio
from repro.ops.window import WindowQueryEngine, mpoint_within_rect_times
from repro.ops.joins import closest_pairs, inside_pairs
from repro.ops.analytics import (
    presence_count,
    occupancy,
    total_travelled,
    peak_presence,
)
from repro.ops.overlap import overlap_area, overlap_fraction

__all__ = [
    "atinstant",
    "atperiods",
    "present",
    "mregion_atinstant",
    "mpoint_at_region",
    "passes",
    "inside",
    "upoint_uregion_inside",
    "mpoint_distance",
    "mpoint_static_distance",
    "mreal_add",
    "mreal_sub",
    "mreal_compare",
    "mbool_and",
    "mbool_or",
    "mbool_not",
    "mreal_atmin",
    "mreal_atmax",
    "initial",
    "final",
    "val",
    "inst",
    "mregion_area",
    "mregion_perimeter",
    "mline_length",
    "trajectory",
    "traversed",
    "deftime",
    "velocity",
    "heading",
    "turning_points",
    "mregion_intersects",
    "mpoint_intersection",
    "simplify",
    "simplification_error",
    "compression_ratio",
    "WindowQueryEngine",
    "mpoint_within_rect_times",
    "closest_pairs",
    "inside_pairs",
    "presence_count",
    "occupancy",
    "total_travelled",
    "peak_presence",
    "overlap_area",
    "overlap_fraction",
]
