"""Domain/range interaction operations: ``atinstant`` and friends.

``mregion_atinstant`` is the algorithm of Section 5.1: binary search for
the unit containing the argument instant, then evaluation of every
moving segment, then (optionally) construction of the proper region data
structure by sorting halfsegments — the O(log n + r log r) variant; with
``structured=False`` the function returns the raw segment evaluation in
O(log n + r), sufficient "for output", exactly as the paper observes.
"""

from __future__ import annotations

from typing import Optional, Union

from repro import obs
from repro.base.instant import Instant, as_time
from repro.ranges.intime import Intime
from repro.ranges.rangeset import RangeSet
from repro.spatial.region import Region, close_region
from repro.temporal.mapping import Mapping, MovingBool, MovingPoint, MovingRegion
from repro.temporal.uregion import URegion


def atinstant(m: Mapping, t: Union[Instant, float]) -> Optional[Intime]:
    """Generic ``atinstant``: the timestamped value of ``m`` at ``t``.

    The generic algorithm of Section 5.1: binary search over the ordered
    unit array, then evaluation of the unit function via ι.
    """
    return m.at_instant(t)


def atperiods(m: Mapping, periods: RangeSet[float]) -> Mapping:
    """Generic ``atperiods``: restrict ``m`` to a set of time intervals."""
    return m.at_periods(periods)


def present(m: Mapping, t: Union[Instant, float]) -> bool:
    """Generic ``present``: is ``m`` defined at instant ``t``?"""
    return m.present(t)


def mregion_atinstant(
    mr: MovingRegion, t: Union[Instant, float], structured: bool = True
) -> Region:
    """The ``atinstant`` algorithm for moving regions (Section 5.1).

    1. binary search the units array for the unit containing ``t``
       — O(log n);
    2. evaluate each moving segment at ``t`` — O(r);
    3. with ``structured=True``, build the proper region representation
       (faces/cycles via ``close``, which sorts halfsegments) —
       O(r log r); with ``structured=False`` return the unchecked direct
       evaluation, enough for display purposes — O(r).

    At the end points of a unit interval the degeneracy cleanup of
    Section 3.2.6 applies (handled by the unit's ι_s/ι_e).
    """
    with obs.scope("atinstant") as sc:
        tt = as_time(t)
        unit = mr.unit_at(tt)
        if unit is None:
            return Region([])
        assert isinstance(unit, URegion)
        iv = unit.interval
        # Exact interior-vs-endpoint dispatch: instants equal to a stored
        # end point must take the ι cleanup path below, and both paths
        # agree arbitrarily close to the end points.
        if not iv.is_degenerate and iv.s < tt < iv.e:  # modlint: disable=MOD001 see comment above
            if structured:
                # Rebuild the canonical structure from the evaluated segments.
                segs = []
                msegs = unit.msegs()
                sc.add("msegs_evaluated", len(msegs))
                for m in msegs:
                    s = m.seg_at(tt)
                    if s is not None:
                        segs.append(s)
                return close_region(segs)
            if obs.enabled:
                obs.counters.add(
                    "atinstant.msegs_evaluated", len(unit.msegs())
                )
            return unit._iota(tt)
        # Interval end point (or instant unit): cleanup path.
        value = unit.value_at(tt)
        assert value is not None
        return value


def mpoint_at_region(mp: MovingPoint, region: Region) -> MovingPoint:
    """The ``at`` operation: restrict a moving point to a region.

    Returns the moving point defined exactly when it lies inside the
    region, computed by lifting the static region to a stationary moving
    region over the point's deftime and running the ``inside`` algorithm
    of Section 5.2.
    """
    from repro.ops.inside import inside

    if not mp or not region:
        return MovingPoint([])
    span = mp.deftime().span()
    assert span is not None
    stationary = MovingRegion([URegion.stationary(span, region)])
    mb = inside(mp, stationary)
    return mp.at_periods(mb.when(True))  # type: ignore[return-value]


def passes(mp: MovingPoint, region: Region) -> bool:
    """The ``passes`` predicate: does the moving point ever enter the region?"""
    return bool(mpoint_at_region(mp, region))


def mreal_at_range(m, value_range) -> "MovingReal":
    """The ``at`` operation on moving reals: restrict to a set of values.

    ``value_range`` is a ``RangeSet`` over the reals (or a single
    ``Interval``); the result is defined exactly at the instants where
    the moving real's value lies in it.  Within a unit, the boundary
    crossings are roots of ``f(t) = bound`` — quadratics — so the time
    set is computed exactly.
    """
    from repro.ranges.interval import Interval
    from repro.temporal.mapping import MovingReal
    from repro.temporal.ureal import UReal

    if isinstance(value_range, Interval):
        value_range = RangeSet([value_range])
    units = []
    for u in m.units:
        assert isinstance(u, UReal)
        iv = u.interval
        cuts = {iv.s, iv.e}
        for viv in value_range:
            for bound in (viv.s, viv.e):
                for t in u.times_at_value(float(bound)):
                    if iv.contains(t):
                        cuts.add(t)
        ordered = sorted(cuts)
        prev_kept = False
        for j, (a, b) in enumerate(zip(ordered, ordered[1:])):
            mid = (a + b) / 2.0
            if not value_range.contains(u.eval(mid)):
                prev_kept = False
                continue
            # A cut instant is claimed by at most one piece (the earlier
            # one), so consecutive kept pieces stay disjoint and merge
            # cleanly in the normalizing constructor.
            # Exact: cuts is seeded with iv.s/iv.e verbatim, so matching
            # a cut against them is same-stored-float equality.
            if a == iv.s:  # modlint: disable=MOD001 see comment above
                lc = iv.lc
            else:
                lc = not prev_kept and value_range.contains(u.eval(a))
            rc = iv.rc if b == iv.e else value_range.contains(u.eval(b))  # modlint: disable=MOD001 see comment above
            units.append(u.with_interval(Interval(a, b, lc, rc)))
            prev_kept = rc
        if iv.is_degenerate and value_range.contains(u.eval(iv.s)):
            units.append(u)
    return MovingReal.normalized(units)


def mpoint_at_point(mp: MovingPoint, target) -> MovingPoint:
    """The ``at`` operation on moving points: restrict to a fixed point.

    Defined at the instants where the moving point is exactly at
    ``target`` — whole units when it parks there, single instants when
    it passes through (two linear equations).
    """
    from repro.ranges.interval import interval_at
    from repro.spatial.point import Point
    from repro.temporal.mseg import MPoint as MotionPoint
    from repro.temporal.upoint import UPoint

    vec = target.vec if isinstance(target, Point) else (
        float(target[0]), float(target[1])
    )
    anchor = MotionPoint.stationary(vec)
    units = []
    for u in mp.units:
        assert isinstance(u, UPoint)
        times = u.motion.coincidence_times(anchor)
        if times is None:
            units.append(u)  # parked at the target for the whole unit
            continue
        for t in times:
            if u.interval.contains(t):
                units.append(u.with_interval(interval_at(t)))
    return MovingPoint.normalized(units)
