"""Fleet-level temporal analytics.

Aggregations *across* a collection of moving objects, producing moving
values again:

* :func:`presence_count` — how many objects are defined at each instant
  (a moving int, computed by an event sweep over deftime boundaries);
* :func:`occupancy` — how many moving points are inside a region over
  time (inside + summed moving bools);
* :func:`total_travelled` — aggregate distance travelled by a fleet.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.base.values import IntVal
from repro.ranges.interval import Interval
from repro.spatial.region import Region
from repro.temporal.mapping import Mapping, MovingInt, MovingPoint, MovingRegion
from repro.temporal.uconst import ConstUnit
from repro.temporal.uregion import URegion
from repro.ops.inside import inside


def _count_sweep(interval_sets: Sequence[Iterable[Interval]]) -> MovingInt:
    """Sweep interval boundaries, counting how many sets cover each piece."""
    events: List[Tuple[float, bool, int]] = []  # (time, closed_at_time, delta)
    points: set = set()
    intervals: List[Interval] = []
    for ivs in interval_sets:
        for iv in ivs:
            intervals.append(iv)
            points.add(iv.s)
            points.add(iv.e)
    if not intervals:
        return MovingInt()
    cuts = sorted(points)
    # Elementary pieces: degenerate at cuts, open between them.
    pieces: List[Interval] = []
    for i, t in enumerate(cuts):
        pieces.append(Interval(t, t))
        if i + 1 < len(cuts):
            pieces.append(Interval(t, cuts[i + 1], False, False))
    units: List[ConstUnit] = []
    for piece in pieces:
        probe = piece.sample_inside()
        count = sum(1 for iv in intervals if iv.contains(probe))
        if count > 0:
            units.append(ConstUnit(piece, IntVal(count)))
    return MovingInt.normalized(units)


def presence_count(objects: Sequence[Mapping]) -> MovingInt:
    """How many of the moving values are defined at each instant."""
    return _count_sweep([list(obj.deftime()) for obj in objects])


def occupancy(points: Sequence[MovingPoint], region: Region) -> MovingInt:
    """How many moving points are inside the (static) region over time.

    Undefined where no point is inside (count 0 with at least one point
    defined is *not* distinguished from nobody-defined; callers needing
    that distinction can compare against :func:`presence_count`).
    """
    interval_sets = []
    for mp in points:
        if not mp:
            continue
        span = mp.deftime().span()
        assert span is not None
        mr = MovingRegion([URegion.stationary(span, region)])
        mb = inside(mp, mr)
        interval_sets.append(list(mb.when(True)))
    return _count_sweep(interval_sets)


def total_travelled(points: Sequence[MovingPoint]) -> float:
    """Aggregate distance travelled by the whole fleet."""
    return sum(mp.length() for mp in points)


def peak_presence(objects: Sequence[Mapping]) -> Tuple[int, float]:
    """The maximum simultaneous presence and an instant attaining it."""
    counts = presence_count(objects)
    if not counts:
        return (0, float("nan"))
    best_unit = max(
        counts.units, key=lambda u: int(u.value.value)  # type: ignore[union-attr]
    )
    return (
        int(best_unit.value.value),  # type: ignore[union-attr]
        best_unit.interval.sample_inside(),
    )
