"""Executable operation signatures.

Section 2 of the paper presents operations as a signature table
(``trajectory: moving(point) → line``, ``distance: moving(point) ×
moving(point) → moving(real)``, ...).  This module records the
operations this library implements in exactly that style: names,
argument type terms, result type terms, the implementing callable, and
whether the operation is a *lifted* version of a static one.

It is used by tests to verify that (a) every signature names valid
type terms of the discrete type system, (b) every operation is callable
under its declared name in the query language where applicable, and
(c) the known non-closed operations (``derivative`` on square-root
ureals) are flagged rather than silently wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.typesystem import DISCRETE_SIGNATURE, TypeTerm, parse_type


@dataclass(frozen=True)
class OperationSignature:
    """One operation: name, argument types, result type."""

    name: str
    args: Tuple[str, ...]
    result: str
    lifted: bool = False
    sql_name: Optional[str] = None  # name in the query language, if exposed
    notes: str = ""

    def arg_terms(self) -> List[TypeTerm]:
        """The argument types as parsed type terms."""
        return [parse_type(a) for a in self.args]

    def result_term(self) -> TypeTerm:
        """The result type as a parsed type term."""
        return parse_type(self.result)


#: The operation table.  Type terms use the discrete vocabulary of
#: Table 2 (``mapping(upoint)`` etc.); ``real``/``bool`` denote scalars.
OPERATIONS: List[OperationSignature] = [
    # -- projections into domain and range --------------------------------
    OperationSignature(
        "deftime", ("mapping(upoint)",), "range(instant)", sql_name="deftime"
    ),
    OperationSignature(
        "trajectory", ("mapping(upoint)",), "line", sql_name="trajectory",
        notes="Section 2: the line parts of the spatial projection",
    ),
    OperationSignature(
        "traversed", ("mapping(uregion)",), "region",
        notes="spatial projection of a moving region (exact overlay)",
    ),
    OperationSignature(
        "rangevalues", ("mapping(ureal)",), "range(real)",
    ),
    # -- interaction with domain and range ---------------------------------
    OperationSignature(
        "atinstant", ("mapping(uregion)", "instant"), "intime(region)",
        sql_name="atinstant",
        notes="Section 5.1: O(log n + r) / O(log n + r log r)",
    ),
    OperationSignature(
        "atperiods", ("mapping(upoint)", "range(instant)"), "mapping(upoint)",
    ),
    OperationSignature(
        "present", ("mapping(upoint)", "instant"), "bool", sql_name="present"
    ),
    OperationSignature(
        "at", ("mapping(upoint)", "region"), "mapping(upoint)",
        notes="restriction of a moving point to a region",
    ),
    OperationSignature(
        "passes", ("mapping(upoint)", "region"), "bool", sql_name="passes"
    ),
    OperationSignature(
        "initial", ("mapping(ureal)",), "intime(real)", sql_name="initial"
    ),
    OperationSignature(
        "final", ("mapping(ureal)",), "intime(real)", sql_name="final"
    ),
    OperationSignature("val", ("intime(real)",), "real", sql_name="val"),
    OperationSignature("inst", ("intime(real)",), "instant", sql_name="inst"),
    OperationSignature(
        "atmin", ("mapping(ureal)",), "mapping(ureal)", sql_name="atmin"
    ),
    OperationSignature(
        "atmax", ("mapping(ureal)",), "mapping(ureal)", sql_name="atmax"
    ),
    # -- lifted predicates and numerics -------------------------------------
    OperationSignature(
        "inside", ("mapping(upoint)", "mapping(uregion)"),
        "mapping(const(bool))", lifted=True, sql_name="inside",
        notes="Section 5.2: O(n + m + S); O(n + m) far apart",
    ),
    OperationSignature(
        "distance", ("mapping(upoint)", "mapping(upoint)"), "mapping(ureal)",
        lifted=True, sql_name="distance",
        notes="square-root ureal units (the reason for the r flag)",
    ),
    OperationSignature(
        "distance", ("mapping(upoint)", "line"), "mapping(ureal)", lifted=True,
        sql_name="distance",
    ),
    OperationSignature(
        "distance", ("mapping(upoint)", "region"), "mapping(ureal)", lifted=True,
        sql_name="distance",
    ),
    OperationSignature(
        "length", ("line",), "real", sql_name="length",
        notes="Section 2's length operation",
    ),
    OperationSignature(
        "length", ("mapping(uline)",), "mapping(ureal)", lifted=True,
        notes="linear per unit: non-rotating segments have linear length",
    ),
    OperationSignature(
        "size", ("mapping(uregion)",), "mapping(ureal)", lifted=True,
        sql_name="area",
        notes="quadratic per unit (shoelace over linear coordinates)",
    ),
    OperationSignature(
        "perimeter", ("mapping(uregion)",), "mapping(ureal)", lifted=True,
        sql_name="perimeter",
    ),
    OperationSignature(
        "speed", ("mapping(upoint)",), "mapping(ureal)", sql_name="speed"
    ),
    OperationSignature(
        "velocity", ("mapping(upoint)",), "mapping(ureal)",
        notes="the derivative of a moving point — closed (linear motion); "
        "returned as one moving real per coordinate",
    ),
    OperationSignature(
        "derivative", ("mapping(ureal)",), "mapping(ureal)",
        notes="NOT closed for square-root units; raises NotClosed "
        "(the paper's footnote 2)",
    ),
    OperationSignature(
        "min", ("mapping(ureal)", "mapping(ureal)"), "mapping(ureal)",
        lifted=True, sql_name="mmin",
    ),
    OperationSignature(
        "max", ("mapping(ureal)", "mapping(ureal)"), "mapping(ureal)",
        lifted=True, sql_name="mmax",
    ),
    OperationSignature(
        "integral", ("mapping(ureal)",), "real", sql_name="integral"
    ),
    OperationSignature(
        "avg", ("mapping(ureal)",), "real", sql_name="avg_value"
    ),
    # -- further lifted operations beyond the paper's examples ---------------
    OperationSignature(
        "intersects", ("mapping(uregion)", "mapping(uregion)"),
        "mapping(const(bool))", lifted=True,
        notes="status flips only at boundary-contact instants (roots of "
        "the pairwise orientation quadratics)",
    ),
    OperationSignature(
        "intersection", ("mapping(upoint)", "mapping(upoint)"),
        "mapping(upoint)", lifted=True,
        notes="defined when the operands coincide",
    ),
    OperationSignature(
        "overlap_area", ("mapping(uregion)", "region"), "mapping(ureal)",
        lifted=True,
        notes="piecewise quadratic between combinatorial events",
    ),
    OperationSignature(
        "heading", ("mapping(upoint)",), "mapping(ureal)",
        notes="piecewise constant; undefined while stationary",
    ),
    OperationSignature(
        "simplify", ("mapping(upoint)", "real"), "mapping(upoint)",
        notes="Douglas–Peucker under synchronized Euclidean distance",
    ),
    OperationSignature(
        "count", ("mapping(upoints)",), "mapping(const(int))", lifted=True,
    ),
]


def well_formed() -> List[str]:
    """Validate every signature against the discrete type system.

    Returns a list of error strings (empty when all signatures check).
    Scalar results (``real``/``bool``/``instant``) are atomic types of
    the signature; everything else must be a generated term.
    """
    errors = []
    for op in OPERATIONS:
        for term_text in (*op.args, op.result):
            term = parse_type(term_text)
            if not DISCRETE_SIGNATURE.is_well_formed(term):
                errors.append(f"{op.name}: bad type term {term_text!r}")
    return errors


def sql_exposed() -> List[OperationSignature]:
    """Operations reachable from the query language."""
    return [op for op in OPERATIONS if op.sql_name is not None]
