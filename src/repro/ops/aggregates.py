"""Aggregate-style operations on moving reals: ``atmin``, ``atmax``,
``initial``, ``final``, and the intime projections ``val`` and ``inst``.

``atmin`` restricts a moving real to exactly the instants at which it
attains its global minimum (Section 2); the result is again a moving
real (typically a set of degenerate or short units).
"""

from __future__ import annotations

from typing import List, Optional, TypeVar, Union

from repro.base.instant import Instant
from repro.config import EPSILON
from repro.errors import UndefinedValue
from repro.ranges.interval import Interval, interval_at
from repro.ranges.intime import Intime
from repro.temporal.mapping import Mapping, MovingReal
from repro.temporal.ureal import UReal

V = TypeVar("V")


def _restrict_to_extremum(m: MovingReal, target: float, kind: str) -> MovingReal:
    """Restrict ``m`` to the instants where its value equals ``target``.

    ``kind`` ('min' or 'max') selects the fallback instant when root
    finding narrowly misses the extremum (a square-root unit grazing its
    vertex): the attaining unit's own argmin/argmax, which is where the
    target value was measured from in the first place.
    """
    units: List[UReal] = []
    tol = max(abs(target), 1.0) * 1e-9
    for u in m.units:
        assert isinstance(u, UReal)
        mn, mx = u.range_on_interval()
        if mn > target + tol or mx < target - tol:
            continue
        if mx - mn <= tol:
            units.append(u)  # constantly at the target over the whole unit
            continue
        for t in u.times_at_value(target):
            if u.interval.contains(t) and abs(u.eval(t) - target) <= max(tol, 1e-7):
                units.append(u.with_interval(interval_at(t)))
    if not units:
        attaining = min(
            m.units,
            key=lambda u: abs(
                (u.minimum() if kind == "min" else u.maximum()) - target  # type: ignore[union-attr]
            ),
        )
        assert isinstance(attaining, UReal)
        t = attaining.argmin() if kind == "min" else attaining.argmax()
        units.append(attaining.with_interval(interval_at(t)))
    return MovingReal.normalized(units)


def mreal_atmin(m: MovingReal) -> MovingReal:
    """``atmin``: restrict to the instants attaining the global minimum."""
    if not m.units:
        return MovingReal([])
    return _restrict_to_extremum(m, m.minimum(), "min")


def mreal_atmax(m: MovingReal) -> MovingReal:
    """``atmax``: restrict to the instants attaining the global maximum."""
    if not m.units:
        return MovingReal([])
    return _restrict_to_extremum(m, m.maximum(), "max")


def initial(m: Mapping[V]) -> Optional[Intime[V]]:
    """``initial``: the (instant, value) pair at the earliest defined time."""
    return m.initial()


def final(m: Mapping[V]) -> Optional[Intime[V]]:
    """``final``: the (instant, value) pair at the latest defined time."""
    return m.final()


def val(pair: Optional[Intime[V]]) -> V:
    """``val``: project an intime pair onto its value component."""
    if pair is None:
        raise UndefinedValue("val of an undefined intime value")
    return pair.val


def inst(pair: Optional[Intime[V]]) -> Instant:
    """``inst``: project an intime pair onto its instant component."""
    if pair is None:
        raise UndefinedValue("inst of an undefined intime value")
    return pair.inst
