"""Rate-of-change operations on moving points.

The abstract model offers ``derivative``, ``speed``, and direction
observations.  For the *discrete* ``upoint`` representation the velocity
within a unit is constant (motion is linear), so — unlike the ureal
``derivative``, which is not closed — the moving point's velocity,
speed, and heading are exactly representable as piecewise-constant
moving reals.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.config import feq, flt, fzero
from repro.temporal.mapping import MovingPoint, MovingReal
from repro.temporal.upoint import UPoint
from repro.temporal.ureal import UReal


def velocity(mp: MovingPoint) -> Tuple[MovingReal, MovingReal]:
    """The velocity vector as two piecewise-constant moving reals.

    This is the ``derivative`` of a moving point — closed in the
    discrete model because upoint units move linearly.
    """
    vx_units: List[UReal] = []
    vy_units: List[UReal] = []
    for u in mp.units:
        assert isinstance(u, UPoint)
        vx, vy = u.motion.velocity
        vx_units.append(UReal.constant(u.interval, vx))
        vy_units.append(UReal.constant(u.interval, vy))
    return (
        MovingReal.normalized(vx_units),
        MovingReal.normalized(vy_units),
    )


def speed(mp: MovingPoint) -> MovingReal:
    """The scalar speed (also available as ``MovingPoint.speed``)."""
    return mp.speed()


def heading(mp: MovingPoint) -> MovingReal:
    """The direction of motion in radians, piecewise constant.

    Units where the point is stationary contribute no heading (the
    moving real is undefined there) — direction of a zero vector has no
    value, matching the abstract model's partial-function semantics.
    """
    units: List[UReal] = []
    for u in mp.units:
        assert isinstance(u, UPoint)
        vx, vy = u.motion.velocity
        if fzero(vx) and fzero(vy):
            continue
        units.append(UReal.constant(u.interval, math.atan2(vy, vx)))
    return MovingReal.normalized(units)


def turning_points(mp: MovingPoint) -> List[float]:
    """Instants at which the direction of motion changes.

    These are exactly the unit boundaries where consecutive units have
    non-parallel velocities.
    """
    out: List[float] = []
    units = [u for u in mp.units if isinstance(u, UPoint)]
    for a, b in zip(units, units[1:]):
        if not a.interval.adjacent(b.interval) and not feq(
            a.interval.e, b.interval.s
        ):
            continue
        ax, ay = a.motion.velocity
        bx, by = b.motion.velocity
        # A turn is a non-parallel or reversed velocity pair; both the
        # cross and dot products are compared through the eps helpers so
        # ulp-level drift between units does not report a spurious turn.
        if not fzero(ax * by - ay * bx) or flt(ax * bx + ay * by, 0.0):
            out.append(b.interval.s)
    return out
