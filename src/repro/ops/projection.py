"""Projections of moving values into their domain and range.

* ``deftime`` — projection into the time domain;
* ``trajectory`` — the 1-D spatial projection of a moving point
  (Section 2);
* ``traversed`` — the 2-D spatial projection (swept area) of a moving
  region, computed exactly: with linearly moving, non-rotating
  segments, the projection of each moving segment's swept trapezium is
  a planar trapezoid, so the traversed area is the union of the start
  snapshot, the end snapshot, and those trapezoids.
"""

from __future__ import annotations

from typing import List

from repro.errors import InvalidValue
from repro.geometry.primitives import orientation, point_eq
from repro.ranges.rangeset import RangeSet
from repro.spatial.line import Line
from repro.spatial.region import Region
from repro.temporal.mapping import Mapping, MovingPoint, MovingRegion
from repro.temporal.uregion import URegion


def deftime(m: Mapping) -> RangeSet[float]:
    """Projection into the time domain."""
    return m.deftime()


def trajectory(mp: MovingPoint) -> Line:
    """``trajectory``: the line parts of a moving point's spatial projection."""
    return mp.trajectory()


def _mseg_footprint(mseg, t0: float, t1: float) -> Region:
    """The spatial trapezoid swept by a moving segment between two instants."""
    a, b = mseg.at(t0)
    d, c = mseg.at(t1)
    # Drop duplicate consecutive corners (degenerate ends make triangles).
    ring = []
    for p in (a, b, c, d):
        if not ring or not point_eq(ring[-1], p):
            ring.append(p)
    if len(ring) >= 3 and point_eq(ring[0], ring[-1]):
        ring.pop()
    if len(ring) < 3:
        return Region([])
    # All-collinear footprints (sliding along the carrier line) sweep no area.
    if all(orientation(ring[0], ring[1], p) == 0 for p in ring[2:]):
        return Region([])
    try:
        return Region.polygon(ring)
    except InvalidValue:
        return Region([])


def traversed(mr: MovingRegion) -> Region:
    """``traversed``: the exact area covered by the moving region over time.

    Collects the start/end snapshots of every unit plus the planar
    trapezoid each moving segment sweeps, then overlays them all at once
    (one n-ary union, which is where the robustness lives).
    """
    from repro.spatial.region import union_all

    contributions: List[Region] = []
    for u in mr.units:
        assert isinstance(u, URegion)
        iv = u.interval
        for t in (iv.s, iv.e):
            snapshot = u.value_at(t)
            if snapshot is None and not iv.is_degenerate:
                snapshot = u._iota(t)
            if snapshot:
                contributions.append(snapshot)
        for mseg in u.msegs():
            footprint = _mseg_footprint(mseg, iv.s, iv.e)
            if footprint:
                contributions.append(footprint)
    return union_all(contributions)
