"""Spatio-temporal joins over collections of moving objects.

High-level entry points combining the per-unit index filter with the
exact operation algebra:

* :func:`closest_pairs` — all pairs of moving points that come within a
  distance threshold, with the instant and value of closest approach;
* :func:`inside_pairs` — all (point, region) pairs where the moving
  point enters the moving region, with the exact time set.

Both run index-filtered (``MovingObjectIndex``) and verify candidates
with the exact algorithms, so results equal the nested-loop answers.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

from repro.index.unitindex import MovingObjectIndex
from repro.ranges.rangeset import RangeSet
from repro.temporal.mapping import MovingPoint, MovingRegion
from repro.ops.distance import mpoint_distance
from repro.ops.inside import inside


def closest_pairs(
    points: Dict[Hashable, MovingPoint],
    threshold: float,
    use_index: bool = True,
) -> List[Tuple[Hashable, Hashable, float, float]]:
    """Pairs of moving points ever closer than ``threshold``.

    Returns ``(key_a, key_b, t_min, d_min)`` tuples with ``key_a <
    key_b`` (by sort order), sorted by keys.  With ``use_index`` the
    candidate set comes from the per-unit R-tree grown by the
    threshold; without it, every pair is verified (the ablation
    baseline).
    """
    keys = sorted(points, key=str)
    candidates: Iterable[Tuple[Hashable, Hashable]]
    if use_index:
        index = MovingObjectIndex()
        for k in keys:
            index.add(k, points[k])
        pair_set = set()
        for k in keys:
            for other in index.candidates_near(points[k], slack=threshold):
                if str(other) > str(k):
                    pair_set.add((k, other))
        candidates = sorted(pair_set, key=lambda p: (str(p[0]), str(p[1])))
    else:
        candidates = [
            (a, b) for i, a in enumerate(keys) for b in keys[i + 1 :]
        ]

    results: List[Tuple[Hashable, Hashable, float, float]] = []
    for a, b in candidates:
        d = mpoint_distance(points[a], points[b])
        if not d.units:
            continue
        d_min = d.minimum()
        if d_min < threshold:
            restricted = d.atmin()
            first = restricted.initial()
            assert first is not None
            results.append((a, b, first.time, float(first.val.value)))
    return results


def inside_pairs(
    points: Dict[Hashable, MovingPoint],
    regions: Dict[Hashable, MovingRegion],
    use_index: bool = True,
) -> List[Tuple[Hashable, Hashable, RangeSet]]:
    """(point, region) pairs where the point is ever inside the region.

    Returns ``(point_key, region_key, times)`` with the exact time set,
    sorted by keys.  The index filter pairs unit bounding cubes; the
    Section-5.2 algorithm verifies.
    """
    point_keys = sorted(points, key=str)
    region_keys = sorted(regions, key=str)
    if use_index:
        index = MovingObjectIndex()
        for rk in region_keys:
            index.add(rk, regions[rk])
        candidate_pairs = []
        for pk in point_keys:
            hits = index.candidates_near(points[pk], slack=0.0)
            for rk in sorted(hits, key=str):
                candidate_pairs.append((pk, rk))
    else:
        candidate_pairs = [(pk, rk) for pk in point_keys for rk in region_keys]

    results: List[Tuple[Hashable, Hashable, RangeSet]] = []
    for pk, rk in candidate_pairs:
        mb = inside(points[pk], regions[rk])
        times = mb.when(True)
        if times:
            results.append((pk, rk, times))
    return results
