"""Further binary operations on moving values.

These follow the template the paper establishes in Section 5.2: scan
the two unit lists in parallel over the refinement partition, solve the
unit-level problem by root analysis of low-degree polynomials, and
reassemble the result with merging ``concat``.

* :func:`mregion_intersects` — lifted ``intersects`` between two moving
  regions (a moving bool).  Within a refinement piece the answer can
  only flip when the two boundaries touch, and every touch instant is a
  root of one of the pairwise moving-segment orientation quadratics;
  the status between consecutive candidate instants is decided by a
  static test at the midpoint.

* :func:`mpoint_intersection` — lifted ``intersection`` of two moving
  points: the moving point defined exactly when the operands coincide
  (whole pieces for identical motions, degenerate instants for
  transversal meetings).
"""

from __future__ import annotations

from typing import List, Optional

from repro.base.values import BoolVal
from repro.geometry.segment import meet, p_intersect, seg_overlap, touch
from repro.ranges.interval import Interval, interval_at
from repro.temporal.mapping import MovingBool, MovingPoint, MovingRegion
from repro.temporal.mseg import MSeg
from repro.temporal.quadratics import is_zero_quad, roots_in_interval
from repro.temporal.refinement import refinement_partition
from repro.temporal.uconst import ConstUnit
from repro.temporal.uline import orientation_quad
from repro.temporal.unit import UnitInterval
from repro.temporal.upoint import UPoint
from repro.temporal.uregion import URegion


def _boundary_event_times(
    a: URegion, b: URegion, lo: float, hi: float
) -> List[float]:
    """Candidate instants at which the boundaries of a and b may touch."""
    times: set[float] = set()
    for ma in a.msegs():
        for mb in b.msegs():
            for quad in (
                orientation_quad(ma.s, ma.e, mb.s),
                orientation_quad(ma.s, ma.e, mb.e),
                orientation_quad(mb.s, mb.e, ma.s),
                orientation_quad(mb.s, mb.e, ma.e),
            ):
                if is_zero_quad(quad):
                    continue
                times.update(roots_in_interval(quad, lo, hi, open_ends=True))
    return sorted(times)


def _static_intersects(a: URegion, b: URegion, t: float) -> bool:
    """Do the two region values intersect at instant ``t``?

    Cheap test: boundary contact (pairwise segments) or containment of
    one region's sample point in the other — sufficient for closed
    regions, avoids building the full overlay.
    """
    ra = a._iota(t)
    rb = b._iota(t)
    for sa in ra.segments():
        for sb in rb.segments():
            if (
                p_intersect(sa, sb)
                or touch(sa, sb)
                or meet(sa, sb)
                or seg_overlap(sa, sb)
            ):
                return True
    # No boundary contact: either disjoint or one inside the other.
    pa = ra.faces[0].outer.interior_sample() if ra.faces else None
    pb = rb.faces[0].outer.interior_sample() if rb.faces else None
    if pa is not None and rb.contains_point(pa):
        return True
    if pb is not None and ra.contains_point(pb):
        return True
    return False


def uregion_uregion_intersects(
    ua: URegion, ub: URegion, refinement: Optional[UnitInterval] = None
) -> List[ConstUnit]:
    """Unit-level lifted ``intersects``: const(bool) units over the overlap."""
    common = ua.interval.intersection(ub.interval)
    if common is None:
        return []
    if refinement is not None:
        common = common.intersection(refinement)
        if common is None:
            return []
    if not ua.bounding_cube().intersects(ub.bounding_cube()):
        return [ConstUnit(common, BoolVal(False))]
    if common.is_degenerate:
        return [ConstUnit(common, BoolVal(_static_intersects(ua, ub, common.s)))]
    lo, hi = common.s, common.e
    cuts = [lo] + _boundary_event_times(ua, ub, lo, hi) + [hi]
    units: List[ConstUnit] = []
    prev_state: Optional[bool] = None
    run_start = lo
    for j, (a, b) in enumerate(zip(cuts, cuts[1:])):
        state = _static_intersects(ua, ub, (a + b) / 2.0)
        if prev_state is None:
            prev_state = state
        elif state != prev_state:
            units.append(
                ConstUnit(
                    _piece(run_start, a, common, prev_state), BoolVal(prev_state)
                )
            )
            run_start = a
            prev_state = state
    if prev_state is not None:
        units.append(
            ConstUnit(_piece(run_start, hi, common, prev_state), BoolVal(prev_state))
        )
    return units


def _piece(a: float, b: float, common: UnitInterval, state: bool) -> Interval:
    """A sub-interval of ``common`` with closures from the parent at its ends.

    At interior flip instants the boundaries touch, so the regions *do*
    intersect there: true pieces claim their interior cut instants.
    """
    # Exact: a and b come from the cut list seeded with common.s/common.e
    # verbatim, so these are same-stored-float comparisons.
    lc = common.lc if a == common.s else state  # modlint: disable=MOD001 see comment above
    rc = common.rc if b == common.e else state  # modlint: disable=MOD001 see comment above
    if a == b:  # modlint: disable=MOD001 collapsed piece; matches Interval.is_degenerate
        return interval_at(a)
    return Interval(a, b, lc, rc)


def mregion_intersects(a: MovingRegion, b: MovingRegion) -> MovingBool:
    """Lifted ``intersects`` between two moving regions.

    Defined on the common deftime; O(Σ S_a·S_b) root extractions per
    refinement piece plus one static test per status run.
    """
    out: List[ConstUnit] = []
    for piece, ua, ub in refinement_partition(a.units, b.units):
        if ua is None or ub is None:
            continue
        assert isinstance(ua, URegion) and isinstance(ub, URegion)
        out.extend(uregion_uregion_intersects(ua, ub, piece))
    return MovingBool.normalized(out)


def mpoint_intersection(a: MovingPoint, b: MovingPoint) -> MovingPoint:
    """Lifted ``intersection`` of two moving points.

    The result is defined exactly when the two points coincide: whole
    refinement pieces when the motions are identical, single instants
    when the trajectories cross transversally.
    """
    out: List[UPoint] = []
    for piece, ua, ub in refinement_partition(a.units, b.units):
        if ua is None or ub is None:
            continue
        assert isinstance(ua, UPoint) and isinstance(ub, UPoint)
        times = ua.motion.coincidence_times(ub.motion)
        if times is None:
            out.append(ua.with_interval(piece))
            continue
        for t in times:
            if piece.contains(t):
                out.append(ua.with_interval(interval_at(t)))
    return MovingPoint.normalized(out)
