"""Trajectory simplification for moving points.

Tracking devices sample far more densely than the motion warrants; a
moving objects database wants the *minimal* sliced representation that
stays within a spatial error bound.  This module implements
Douglas–Peucker simplification under the **synchronized Euclidean
distance**: the error of dropping a waypoint is the distance between
the original position and the simplified position *at the same
instant* — the right metric for spatio-temporal data (plain geometric
DP would misplace the object in time).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import InvalidValue
from repro.geometry.primitives import Vec, dist
from repro.temporal.mapping import MovingPoint
from repro.temporal.upoint import UPoint

Sample = Tuple[float, Vec]


def _waypoints_of(mp: MovingPoint) -> List[Sample]:
    """The waypoint sequence of a gap-free moving point."""
    samples: List[Sample] = []
    units = list(mp.units)
    if not units:
        return samples
    for i, u in enumerate(units):
        assert isinstance(u, UPoint)
        # Exact: the mapping invariant stores adjacent unit end points as
        # the identical float, so any inequality is a genuine gap.
        if i > 0 and units[i - 1].interval.e != u.interval.s:  # modlint: disable=MOD001 see comment above
            raise InvalidValue(
                "simplification requires a gap-free moving point; "
                "split at gaps with atperiods first"
            )
        samples.append((u.interval.s, u.start_point()))
    samples.append((units[-1].interval.e, units[-1].end_point()))
    return samples


def _synchronized_error(samples: Sequence[Sample], lo: int, hi: int) -> Tuple[float, int]:
    """Max synchronized distance of interior samples to the chord lo→hi."""
    t0, p0 = samples[lo]
    t1, p1 = samples[hi]
    span = t1 - t0
    worst = -1.0
    worst_idx = lo
    for k in range(lo + 1, hi):
        tk, pk = samples[k]
        f = (tk - t0) / span if span > 0 else 0.0
        interp = (p0[0] + f * (p1[0] - p0[0]), p0[1] + f * (p1[1] - p0[1]))
        err = dist(pk, interp)
        if err > worst:
            worst = err
            worst_idx = k
    return worst, worst_idx


def simplify(mp: MovingPoint, epsilon: float) -> MovingPoint:
    """Simplify a gap-free moving point within synchronized error ``epsilon``.

    Douglas–Peucker on the waypoint sequence: a chord replaces a span of
    waypoints when every dropped waypoint's synchronized distance stays
    within ``epsilon``.  The result is defined on the same time interval
    and deviates from the original by at most ``epsilon`` at any instant
    (the error at non-waypoint instants is bounded by the waypoint error
    because both motions are piecewise linear between kept waypoints).
    """
    if epsilon < 0:
        raise InvalidValue("epsilon must be nonnegative")
    samples = _waypoints_of(mp)
    if len(samples) <= 2:
        return mp
    keep = [False] * len(samples)
    keep[0] = keep[-1] = True
    stack = [(0, len(samples) - 1)]
    while stack:
        lo, hi = stack.pop()
        if hi - lo < 2:
            continue
        worst, idx = _synchronized_error(samples, lo, hi)
        if worst > epsilon:
            keep[idx] = True
            stack.append((lo, idx))
            stack.append((idx, hi))
    kept = [s for s, k in zip(samples, keep) if k]
    return MovingPoint.from_waypoints(kept)


def simplification_error(original: MovingPoint, simplified: MovingPoint) -> float:
    """Max synchronized distance between the two tracks at original waypoints."""
    worst = 0.0
    for t, p in _waypoints_of(original):
        q = simplified.value_at(t)
        if q is None:
            continue
        worst = max(worst, dist(p, q.vec))
    return worst


def compression_ratio(original: MovingPoint, simplified: MovingPoint) -> float:
    """Unit-count ratio original/simplified (>= 1)."""
    if not simplified.units:
        return float("inf")
    return len(original.units) / len(simplified.units)
