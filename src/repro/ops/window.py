"""Spatio-temporal window queries: filter and refine.

"Find all objects inside rectangle W during [t0, t1]" is the classic
moving objects query.  The filter step uses the per-unit 3-D R-tree
(:mod:`repro.index`); the refinement step here is *exact*: a linearly
moving point lies inside an axis-aligned rectangle exactly when four
linear inequalities hold, so the time set is an intersection of
intervals computed in closed form per unit — no sampling.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from repro import obs
from repro.config import feq, fle, fzero
from repro.errors import InvalidValue, StorageError
from repro.index.unitindex import MovingObjectIndex
from repro.ranges.interval import Interval
from repro.ranges.rangeset import RangeSet
from repro.spatial.bbox import Cube, Rect
from repro.temporal.mapping import MovingPoint
from repro.temporal.upoint import UPoint
from repro.vector.cache import Fleet, column_for
from repro.vector.columns import UPointColumn
from repro.vector.fleet import _fallback
from repro.vector.fleet import _resolve as _resolve_backend


def _linear_within(c0: float, c1: float, lo: float, hi: float, t0: float, t1: float):
    """Times in [t0, t1] where ``lo <= c0 + c1·t <= hi`` (None = never)."""
    if fzero(c1):
        return (t0, t1) if fle(lo, c0) and fle(c0, hi) else None
    ta = (lo - c0) / c1
    tb = (hi - c0) / c1
    if ta > tb:  # modlint: disable=MOD001 root ordering swap, not a tolerance decision
        ta, tb = tb, ta
    a, b = max(t0, ta), min(t1, tb)
    # Exact comparison: Interval construction requires s <= e exactly,
    # and a graze within eps was already admitted by the fle bounds.
    if a > b:  # modlint: disable=MOD001 see comment above
        return None
    return (a, b)


def upoint_within_rect_times(u: UPoint, rect: Rect) -> Optional[Interval]:
    """The (single) time interval during which the unit is inside ``rect``.

    A linear motion enters and leaves a convex window at most once, so
    the result is one interval or None.  Closure flags are inherited
    from the unit interval where the window condition extends to its
    end points.
    """
    iv = u.interval
    m = u.motion
    x_span = _linear_within(m.x0, m.x1, rect.xmin, rect.xmax, iv.s, iv.e)
    if x_span is None:
        return None
    y_span = _linear_within(m.y0, m.y1, rect.ymin, rect.ymax, iv.s, iv.e)
    if y_span is None:
        return None
    a = max(x_span[0], y_span[0])
    b = min(x_span[1], y_span[1])
    if a > b:  # modlint: disable=MOD001 Interval requires s <= e exactly; empty window
        return None
    # Closure flags inherit from the unit interval whenever the window
    # condition reaches its end points within tolerance — the entry
    # instant is a computed root and may drift by an ulp from the
    # stored end point.
    lc = iv.lc if feq(a, iv.s) else True
    rc = iv.rc if feq(b, iv.e) else True
    # Exact degenerate check, matching Interval.is_degenerate: a tiny
    # but genuine interval must stay a real interval.
    if a == b and not (lc and rc):  # modlint: disable=MOD001 see comment above
        return None
    return Interval(a, b, lc and True, rc and True)


def mpoint_within_rect_times(mp: MovingPoint, rect: Rect) -> RangeSet[float]:
    """All times at which the moving point lies inside the rectangle."""
    out: List[Interval] = []
    for u in mp.units:
        assert isinstance(u, UPoint)
        iv = upoint_within_rect_times(u, rect)
        if iv is not None:
            out.append(iv)
    return RangeSet.normalized(out)


class WindowQueryEngine:
    """Filter-and-refine window queries over a collection of moving points."""

    def __init__(self) -> None:
        self._index = MovingObjectIndex()
        self._objects: Dict[Hashable, MovingPoint] = {}
        self._loaders: Dict[Hashable, Callable[[], MovingPoint]] = {}
        # Eagerly registered objects double as a versioned Fleet so the
        # parallel backend's whole-collection column is cache-reusable
        # across queries (keys list kept index-aligned with the fleet).
        self._fleet = Fleet()
        self._keys: List[Hashable] = []

    def add(self, key: Hashable, mp: MovingPoint) -> None:
        """Register a moving point under ``key``."""
        self._index.add(key, mp)
        self._objects[key] = mp
        self._fleet.append(mp)
        self._keys.append(key)

    def add_fleet(
        self, items: Iterable[Tuple[Hashable, MovingPoint]]
    ) -> None:
        """Register many moving points at once.

        The index is built with one STR bulk-load pass
        (:meth:`MovingObjectIndex.bulk_load`) instead of per-object
        inserts — same query answers, packed nodes, a fraction of the
        build time.
        """
        pairs = list(items)
        self._index.bulk_load(pairs)
        for key, mp in pairs:
            self._objects[key] = mp
            self._fleet.append(mp)
            self._keys.append(key)

    def add_lazy(self, key: Hashable, loader: Callable[[], MovingPoint]) -> None:
        """Register a storage-resident moving point under ``key``.

        ``loader`` fetches the value from storage; it is called once now
        to index the bounding cubes and again at refinement time, so a
        value that rots on disk between indexing and querying surfaces
        as a :class:`StorageError` the query can quarantine.
        """
        self._index.add(key, loader())
        self._loaders[key] = loader

    def __len__(self) -> int:
        return len(self._objects) + len(self._loaders)

    def _resolve(self, key: Hashable) -> MovingPoint:
        mp = self._objects.get(key)
        if mp is not None:
            return mp
        return self._loaders[key]()

    def _snapshot_column(
        self, strict: bool
    ) -> Tuple[List[Hashable], UPointColumn]:
        """Keys + the whole collection as one ``UPointColumn``.

        Eager objects come from the cached fleet column; lazy loaders
        are materialized per query (their storage may have changed).
        With ``strict=False`` loaders that fail are quarantined (counted
        under ``storage.quarantined``) and simply excluded — the same
        skip the scalar refinement loop performs.
        """
        if not self._loaders:
            return list(self._keys), column_for(self._fleet, "upoint")
        keys = list(self._keys)
        mappings: List[MovingPoint] = list(self._fleet)
        for key, loader in self._loaders.items():
            if strict:
                mp = loader()
            else:
                try:
                    mp = loader()
                except StorageError:
                    if obs.enabled:
                        obs.counters.add("storage.quarantined")
                    continue
            keys.append(key)
            mappings.append(mp)
        return keys, UPointColumn.from_mappings(mappings)

    def query(
        self,
        rect: Rect,
        t0: float,
        t1: float,
        backend: Optional[str] = None,
        strict: bool = True,
        workers: Optional[int] = None,
    ) -> List[Tuple[Hashable, RangeSet[float]]]:
        """Objects inside ``rect`` at some instant of [t0, t1], with the
        exact time sets of their presence (restricted to the window).

        The filter step is backend-switched: R-tree descent (scalar) or
        the columnar per-unit cube sweep (vector); both yield the same
        candidate set, and the exact per-unit refinement is shared.
        Under the ``parallel`` backend filter *and* refinement run as
        one chunked ``window_intervals_batch`` sweep over the collection
        column (``workers`` pool processes) — same results, assembled
        straight from the kernel's canonical interval runs.
        ``strict=False`` quarantines candidates whose storage
        representation fails to load (skipped, counted under
        ``storage.quarantined``) instead of aborting the query.
        """
        resolved = _resolve_backend(backend)
        if resolved == "parallel":
            try:
                keys, col = self._snapshot_column(strict)
            except (InvalidValue, StorageError):
                _fallback("window_column")
            else:
                from repro.parallel import (
                    group_intervals,
                    parallel_window_intervals,
                )

                rows = parallel_window_intervals(
                    col, rect, t0, t1, workers=workers
                )
                grouped = group_intervals(*rows, keys=keys)
                grouped.sort(key=lambda kv: str(kv[0]))
                return grouped
        window_times = RangeSet([Interval(t0, t1)])
        results: List[Tuple[Hashable, RangeSet[float]]] = []
        cube = Cube(rect.xmin, rect.ymin, t0, rect.xmax, rect.ymax, t1)
        for key in sorted(
            self._index.candidates_in_cube(cube, backend=backend), key=str
        ):
            if strict:
                mp = self._resolve(key)
            else:
                try:
                    mp = self._resolve(key)
                except StorageError:
                    if obs.enabled:
                        obs.counters.add("storage.quarantined")
                    continue
            times = mpoint_within_rect_times(mp, rect)
            clipped = times.intersection(window_times)
            if clipped:
                results.append((key, clipped))
        return results

    def query_naive(
        self, rect: Rect, t0: float, t1: float
    ) -> List[Tuple[Hashable, RangeSet[float]]]:
        """The same query without the index filter (the ablation baseline)."""
        window_times = RangeSet([Interval(t0, t1)])
        results: List[Tuple[Hashable, RangeSet[float]]] = []
        for key in sorted([*self._objects, *self._loaders], key=str):
            times = mpoint_within_rect_times(self._resolve(key), rect)
            clipped = times.intersection(window_times)
            if clipped:
                results.append((key, clipped))
        return results
