"""The lifted ``inside`` operation (Section 5.2).

``inside(mp, mr)`` computes a moving bool describing when a moving point
was inside a moving region.  The outer algorithm scans the two unit
lists in parallel, forming the refinement partition of the time axis
(Figure 8); for each refinement interval where both operands are
defined, ``upoint_uregion_inside`` solves the unit-level problem:

* the moving point is a 3-D line segment; each moving segment of the
  region unit is a planar trapezium in 3-D;
* their intersection instants are roots of a quadratic (the moving
  orientation test of the point against the segment);
* between consecutive transversal crossings the answer is constant and
  alternates, starting from a single point-in-region test ("plumbline").

One deliberate deviation from the paper's pseudo-code: when the 3-D
bounding boxes do not intersect, the paper returns the empty unit set,
which would leave the moving bool *undefined* on that interval; since
both operands are defined and the point is certainly not inside, we
return a single ``false`` unit instead (still O(1) work, preserving the
O(n+m) far-apart complexity).

Robustness: crossings through cycle vertices (two moving segments hit at
the same instant) and tangential touches break the alternation argument.
These cases are detected (duplicate or non-transversal roots) and the
affected refinement interval falls back to midpoint sampling with a full
point-in-region test per piece, which is always correct.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro import obs
from repro.base.values import BoolVal
from repro.config import EPSILON
from repro.errors import InvalidValue
from repro.geometry.segment import point_on_seg
from repro.ranges.interval import Interval
from repro.temporal.mapping import MovingBool, MovingPoint, MovingRegion
from repro.temporal.mseg import MPoint, MSeg
from repro.temporal.quadratics import (
    Quad,
    eval_quad,
    is_zero_quad,
    mul_linear,
    roots_in_interval,
)
from repro.temporal.refinement import refinement_partition
from repro.temporal.uconst import ConstUnit
from repro.temporal.unit import UnitInterval
from repro.temporal.upoint import UPoint
from repro.temporal.uregion import URegion


def inside(mp: MovingPoint, mr: MovingRegion) -> MovingBool:
    """When was the moving point inside the moving region?

    Linear parallel scan over both unit lists; unit-pair work delegated
    to :func:`upoint_uregion_inside`; adjacent equal-valued bool units
    merged (the ``concat`` of the paper) by the normalizing constructor.
    """
    with obs.scope("inside") as s:
        out: List[ConstUnit] = []
        for piece, up, ur in refinement_partition(mp.units, mr.units):
            if up is None or ur is None:
                continue
            assert isinstance(up, UPoint) and isinstance(ur, URegion)
            s.add("unit_pairs")
            out.extend(upoint_uregion_inside(up, ur, piece))
        return MovingBool.normalized(out)


def _crossing_quad(mpo: MPoint, mseg: MSeg) -> Quad:
    """Orientation of the moving point against the moving segment.

    ``cross(P(t) − s(t), e(t) − s(t))`` as a quadratic in t: zero exactly
    when the point lies on the segment's carrier line at time t.
    """
    ux = (mpo.x1 - mseg.s.x1, mpo.x0 - mseg.s.x0)
    uy = (mpo.y1 - mseg.s.y1, mpo.y0 - mseg.s.y0)
    vx = (mseg.e.x1 - mseg.s.x1, mseg.e.x0 - mseg.s.x0)
    vy = (mseg.e.y1 - mseg.s.y1, mseg.e.y0 - mseg.s.y0)
    p1 = mul_linear(ux, vy)
    p2 = mul_linear(uy, vx)
    return (p1[0] - p2[0], p1[1] - p2[1], p1[2] - p2[2])


def _find_crossings(
    mpo: MPoint, ur: URegion, lo: float, hi: float
) -> Tuple[List[float], bool]:
    """All boundary-hit instants of the moving point in the open ``(lo, hi)``.

    Returns ``(times, clean)`` where ``clean`` is False when a
    degenerate configuration (vertex hit, tangential touch, riding along
    a boundary line) was detected and alternation cannot be trusted.
    """
    hits: List[Tuple[float, bool]] = []  # (time, transversal)
    clean = True
    span = hi - lo
    n_quads = 0
    for mseg in ur.msegs():
        n_quads += 1
        q = _crossing_quad(mpo, mseg)
        if is_zero_quad(q):
            # The point rides along the carrier line of this segment.
            clean = False
            continue
        for t in roots_in_interval(q, lo, hi, open_ends=True):
            p = mpo.at(t)
            seg = mseg.seg_at(t)
            if seg is None:
                continue
            if not point_on_seg(p, seg, 1e-7):
                continue
            delta = max(span * 1e-7, 1e-12)
            before = eval_quad(q, t - delta)
            after = eval_quad(q, t + delta)
            transversal = before * after < 0
            if not transversal:
                clean = False
            hits.append((t, transversal))
    times = sorted(t for t, transversal in hits if transversal)
    # Duplicate instants (vertex passages) break parity.
    dup_tol = max(span * EPSILON, 1e-12)
    for a, b in zip(times, times[1:]):
        if b - a <= dup_tol:
            clean = False
    if obs.enabled:
        obs.counters.add("inside.crossing_quads", n_quads)
        obs.counters.add("inside.crossings", len(times))
    return times, clean


def _point_in_region_at(mpo: MPoint, ur: URegion, t: float) -> bool:
    """Full point-in-region test at one instant (the plumbline check)."""
    if obs.enabled:
        obs.counters.add("inside.plumbline_tests")
    region = ur.value_at(t)
    if region is None:
        region = ur._iota(t)
    return region.contains_point(mpo.at(t))


def _pieces_to_units(
    cuts: List[float],
    states: List[bool],
    interval: UnitInterval,
) -> List[ConstUnit]:
    """Assemble alternating bool pieces into const units.

    True pieces are closed at crossing instants (the point is on the
    boundary there and region values include their boundary); false
    pieces are open at crossing instants.
    """
    units: List[ConstUnit] = []
    n = len(states)
    for j in range(n):
        a, b = cuts[j], cuts[j + 1]
        v = states[j]
        lc = interval.lc if j == 0 else v
        rc = interval.rc if j == n - 1 else v
        # Exact degenerate checks: cuts repeat the same stored float at a
        # collapsed piece, matching Interval.is_degenerate's exact test.
        if a == b and not (lc and rc):  # modlint: disable=MOD001 see comment above
            continue
        if a == b:  # modlint: disable=MOD001 see comment above
            units.append(ConstUnit(Interval(a, b, True, True), BoolVal(v)))
        else:
            units.append(ConstUnit(Interval(a, b, lc, rc), BoolVal(v)))
    return units


def upoint_uregion_inside(
    up: UPoint, ur: URegion, refinement: Optional[UnitInterval] = None
) -> List[ConstUnit]:
    """The unit-level ``inside`` algorithm of Section 5.2.

    Returns const(bool) units covering the common time interval of the
    two units (intersected with ``refinement`` when given).
    """
    common = up.interval.intersection(ur.interval)
    if common is None:
        return []
    if refinement is not None:
        common = common.intersection(refinement)
        if common is None:
            return []

    # Fast path: disjoint bounding cubes — never inside.
    if not up.bounding_cube().intersects(ur.bounding_cube()):
        if obs.enabled:
            obs.counters.add("inside.bbox_fast_path")
        return [ConstUnit(common, BoolVal(False))]

    mpo = up.motion
    if common.is_degenerate:
        v = _point_in_region_at(mpo, ur, common.s)
        return [ConstUnit(common, BoolVal(v))]

    lo, hi = common.s, common.e
    times, clean = _find_crossings(mpo, ur, lo, hi)
    cuts = [lo] + times + [hi]

    if clean and times:
        first_mid = (cuts[0] + cuts[1]) / 2.0
        state = _point_in_region_at(mpo, ur, first_mid)
        states = []
        for j in range(len(cuts) - 1):
            states.append(state if j % 2 == 0 else not state)
        return _pieces_to_units(cuts, states, common)
    if clean:
        # No crossings at all: constant answer, one plumbline test.
        state = _point_in_region_at(mpo, ur, common.midpoint())
        return [ConstUnit(common, BoolVal(state))]

    # Degenerate configuration: sample every piece (always correct).
    dedup: List[float] = [lo]
    sep_tol = max((hi - lo) * EPSILON, 1e-12)
    for t in times:
        if t - dedup[-1] > sep_tol:
            dedup.append(t)
    if dedup[-1] < hi:
        dedup.append(hi)
    states = []
    for a, b in zip(dedup, dedup[1:]):
        states.append(_point_in_region_at(mpo, ur, (a + b) / 2.0))
    if not states:
        states = [_point_in_region_at(mpo, ur, common.midpoint())]
        dedup = [lo, hi]
    # Merge consecutive equal states so the produced units never overlap.
    merged_cuts = [dedup[0]]
    merged_states: List[bool] = []
    for j, s in enumerate(states):
        if merged_states and merged_states[-1] == s:
            merged_cuts[-1] = dedup[j + 1]
        else:
            merged_states.append(s)
            merged_cuts.append(dedup[j + 1])
    return _pieces_to_units(merged_cuts, merged_states, common)
