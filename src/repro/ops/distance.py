"""The lifted Euclidean ``distance`` operation.

The distance between two linearly moving points is the square root of a
quadratic in time — precisely the reason the ``ureal`` unit carries the
``r`` flag (Section 3.2.5).  The mapping-level operation pairs units via
the refinement partition and is defined on the intersection of the two
deftimes.
"""

from __future__ import annotations

import math
from typing import List, Union

from repro.config import fgt, flt, fzero
from repro.geometry.primitives import Vec
from repro.spatial.point import Point
from repro.temporal.mapping import MovingPoint, MovingReal
from repro.temporal.mseg import MPoint
from repro.temporal.refinement import refinement_partition
from repro.temporal.ureal import UReal
from repro.temporal.upoint import UPoint


def mpoint_distance(a: MovingPoint, b: MovingPoint) -> MovingReal:
    """``distance : moving(point) × moving(point) → moving(real)``.

    Defined wherever both points are defined; each refinement piece
    yields one square-root ``ureal`` unit whose radicand is the squared
    coordinate difference.
    """
    units: List[UReal] = []
    for piece, ua, ub in refinement_partition(a.units, b.units):
        if ua is None or ub is None:
            continue
        assert isinstance(ua, UPoint) and isinstance(ub, UPoint)
        q = ua.motion.distance_sq_quad(ub.motion)
        units.append(UReal(piece, q[0], q[1], q[2], True))
    return MovingReal.normalized(units)


def mpoint_static_distance(a: MovingPoint, p: Union[Point, Vec]) -> MovingReal:
    """Lifted ``distance`` between a moving point and a fixed point."""
    fixed = p.vec if isinstance(p, Point) else (float(p[0]), float(p[1]))
    anchor = MPoint.stationary(fixed)
    units: List[UReal] = []
    for u in a.units:
        assert isinstance(u, UPoint)
        q = u.motion.distance_sq_quad(anchor)
        units.append(UReal(u.interval, q[0], q[1], q[2], True))
    return MovingReal.normalized(units)


def _upoint_seg_distance_units(
    motion: MPoint, seg, interval
) -> List[UReal]:
    """Distance from a linearly moving point to a fixed segment.

    The projection parameter of the point onto the segment's carrier is
    linear in time, so the interval splits at (at most two) instants
    where it crosses 0 or 1.  On each piece the distance is either the
    distance to one end point or the perpendicular distance to the
    carrier — in every case the square root of a quadratic, i.e. a
    valid ``ureal``.
    """
    from repro.temporal.quadratics import mul_linear

    (ax, ay), (bx, by) = seg
    ux, uy = bx - ax, by - ay
    len_sq = ux * ux + uy * uy
    # lambda(t) = ((P(t) - A) · u) / |u|², linear in t: (slope, intercept).
    lam_slope = (motion.x1 * ux + motion.y1 * uy) / len_sq
    lam_icept = ((motion.x0 - ax) * ux + (motion.y0 - ay) * uy) / len_sq

    def lam(t: float) -> float:
        return lam_icept + lam_slope * t

    cuts = {interval.s, interval.e}
    if not fzero(lam_slope):
        for target in (0.0, 1.0):
            t = (target - lam_icept) / lam_slope
            # Strict-beyond-eps: a cut within eps of an end point would
            # create a sliver unit whose midpoint classification is noise.
            if flt(interval.s, t) and flt(t, interval.e):
                cuts.add(t)
    ordered = sorted(cuts)

    def endpoint_quad(px: float, py: float):
        dx = (motion.x1, motion.x0 - px)
        dy = (motion.y1, motion.y0 - py)
        return tuple(
            p + q for p, q in zip(mul_linear(dx, dx), mul_linear(dy, dy))
        )

    # Perpendicular distance²: (cross(P(t) − A, u))² / |u|².
    cross_lin = (
        (motion.x1 * uy - motion.y1 * ux),
        ((motion.x0 - ax) * uy - (motion.y0 - ay) * ux),
    )
    perp = mul_linear(cross_lin, cross_lin)
    perp_quad = (perp[0] / len_sq, perp[1] / len_sq, perp[2] / len_sq)

    units: List[UReal] = []
    for j, (t0, t1) in enumerate(zip(ordered, ordered[1:])):
        mid_lam = lam((t0 + t1) / 2.0)
        if flt(mid_lam, 0.0):
            q = endpoint_quad(ax, ay)
        elif fgt(mid_lam, 1.0):
            q = endpoint_quad(bx, by)
        else:
            q = perp_quad
        lc = interval.lc if j == 0 else True
        rc = interval.rc if j == len(ordered) - 2 else False
        from repro.ranges.interval import Interval

        units.append(UReal(Interval(t0, t1, lc, rc), q[0], q[1], q[2], True))
    if not units and interval.is_degenerate:
        p = motion.at(interval.s)
        from repro.geometry.segment import point_on_seg, project_param

        lam_v = lam(interval.s)
        if flt(lam_v, 0.0):
            q = endpoint_quad(ax, ay)
        elif fgt(lam_v, 1.0):
            q = endpoint_quad(bx, by)
        else:
            q = perp_quad
        units.append(UReal(interval, q[0], q[1], q[2], True))
    return units


def mpoint_line_distance(mp: MovingPoint, line) -> MovingReal:
    """Lifted ``distance`` between a moving point and a fixed line value.

    Pointwise minimum over the per-segment distances — each a moving
    real of square-root units, folded with the lifted ``min``.
    """
    from repro.ops.lifted import mreal_min
    from repro.spatial.line import Line

    assert isinstance(line, Line)
    if not line or not mp:
        return MovingReal([])
    result: MovingReal | None = None
    for seg in line.segments:
        units: List[UReal] = []
        for u in mp.units:
            assert isinstance(u, UPoint)
            units.extend(_upoint_seg_distance_units(u.motion, seg, u.interval))
        per_seg = MovingReal.normalized(units)
        result = per_seg if result is None else mreal_min(result, per_seg)
    assert result is not None
    return result


def mpoint_region_distance(mp: MovingPoint, region) -> MovingReal:
    """Lifted ``distance`` between a moving point and a fixed region.

    Zero while the point is inside (regions are closed point sets);
    the distance to the boundary otherwise.
    """
    from repro.ops.interaction import mpoint_at_region
    from repro.spatial.line import Line
    from repro.spatial.region import Region

    assert isinstance(region, Region)
    if not mp or not region:
        return MovingReal([])
    # A region boundary is a valid line value (no collinear overlaps),
    # so full validation is both cheap to satisfy and worth keeping: a
    # malformed region surfaces here instead of as a wrong distance.
    boundary = Line(region.segments())
    boundary_dist = mpoint_line_distance(mp, boundary)
    inside_part = mpoint_at_region(mp, region)
    inside_times = inside_part.deftime()
    outside_times = mp.deftime().difference(inside_times)
    units: List[UReal] = [
        u
        for u in boundary_dist.at_periods(outside_times).units
        if isinstance(u, UReal)
    ]
    units.extend(UReal.constant(iv, 0.0) for iv in inside_times)
    return MovingReal.normalized(units)


def closest_approach(a: MovingPoint, b: MovingPoint) -> tuple[float, float]:
    """The minimum distance between two moving points and when it occurs.

    Returns ``(t_min, d_min)``; raises when the deftimes are disjoint.
    The composition ``val(initial(atmin(distance(a, b))))`` of the
    Section 2 join query computes exactly ``d_min`` at the earliest such
    instant.
    """
    d = mpoint_distance(a, b)
    restricted = d.atmin()
    first = restricted.initial()
    if first is None:
        raise ValueError("moving points are never simultaneously defined")
    return (first.time, float(first.val.value))
