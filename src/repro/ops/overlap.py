"""Time-dependent overlap between a moving region and a fixed region.

``overlap_area(mr, region)`` returns the area of ``mr(t) ∩ region`` as
a moving real.  Between *combinatorial events* — instants where a
vertex of one boundary crosses an edge of the other — the intersection
polygon's vertices move linearly (an intersection of a non-rotating
moving edge with a fixed edge moves linearly in t), so its area is a
quadratic in t, recovered exactly by interpolation.  Event instants are
roots of the moving-segment orientation quadratics against the fixed
boundary, the same machinery the lifted ``intersects`` uses.

This realizes the lifted ``intersection``-then-``size`` composition for
the common "how much of the moving thing covers the fixed thing" query
without materializing the (representation-expensive) moving overlay.
"""

from __future__ import annotations

from typing import List

from repro.ranges.interval import Interval
from repro.spatial.region import Region
from repro.temporal.mapping import MovingReal, MovingRegion
from repro.temporal.mseg import MSeg
from repro.temporal.quadratics import is_zero_quad, roots_in_interval
from repro.temporal.uline import orientation_quad
from repro.temporal.uregion import URegion
from repro.ops.numeric import _fit_quadratic


def _event_times(u: URegion, fixed: Region, lo: float, hi: float) -> List[float]:
    """Instants where the unit's boundary may touch the fixed boundary,
    plus instants where a moving vertex crosses a fixed edge's carrier."""
    times: set[float] = set()
    fixed_msegs = [MSeg.stationary(s) for s in fixed.segments()]
    for ma in u.msegs():
        for mb in fixed_msegs:
            for quad in (
                orientation_quad(ma.s, ma.e, mb.s),
                orientation_quad(ma.s, ma.e, mb.e),
                orientation_quad(mb.s, mb.e, ma.s),
                orientation_quad(mb.s, mb.e, ma.e),
            ):
                if is_zero_quad(quad):
                    continue
                times.update(roots_in_interval(quad, lo, hi, open_ends=True))
    return sorted(times)


def overlap_area(mr: MovingRegion, fixed: Region) -> MovingReal:
    """The area of the intersection with a fixed region, over time.

    Exact up to event detection: between events the area is a true
    quadratic (vertices of the intersection move linearly) and the
    three-point fit recovers it; at event instants the pieces meet
    continuously.
    """
    if not fixed:
        return MovingReal(
            []
        )
    units = []
    for u in mr.units:
        assert isinstance(u, URegion)
        iv = u.interval
        if iv.is_degenerate:
            area = _static_overlap(u, fixed, iv.s)
            from repro.temporal.ureal import UReal

            units.append(UReal.constant(iv, area))
            continue
        cuts = [iv.s] + _event_times(u, fixed, iv.s, iv.e) + [iv.e]
        for j, (a, b) in enumerate(zip(cuts, cuts[1:])):
            # Exact skip of empty/degenerate pieces between sorted cuts;
            # a positive-but-tiny piece is still a real piece.
            if b - a <= 0:  # modlint: disable=MOD001 see comment above
                continue
            lc = iv.lc if j == 0 else True
            rc = iv.rc if j == len(cuts) - 2 else False
            piece = Interval(a, b, lc, rc)
            units.append(
                _fit_quadratic(piece, lambda t, u=u: _static_overlap(u, fixed, t))
            )
    return MovingReal.normalized(units)


def overlap_fraction(mr: MovingRegion, fixed: Region) -> MovingReal:
    """The covered fraction of the fixed region over time (0..1)."""
    total = fixed.area()
    # Division guard: any positive area, however small, is a valid
    # denominator; only a true zero (empty region) must bail out.
    if total <= 0.0:  # modlint: disable=MOD001 see comment above
        return MovingReal([])
    area = overlap_area(mr, fixed)
    from repro.ops.lifted import mreal_scale

    return mreal_scale(area, 1.0 / total)


def _static_overlap(u: URegion, fixed: Region, t: float) -> float:
    """Intersection area of the unit's snapshot at ``t`` with ``fixed``."""
    snapshot = u.value_at(t)
    if snapshot is None:
        snapshot = u._iota(t)
    if not snapshot:
        return 0.0
    if not snapshot.bbox().intersects(fixed.bbox()):
        return 0.0
    return snapshot.intersection(fixed).area()
