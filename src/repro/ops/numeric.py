"""Lifted numeric operations: ``size`` (area), ``perimeter``, ``length``.

The no-rotation (coplanarity) constraint on moving segments is exactly
what makes these operations closed in the ``ureal`` representation
(Section 3.2.5):

* a moving segment's direction is constant, so its *length* is the
  absolute value of a linear function of time — linear on the open unit
  interval where it cannot degenerate; sums stay linear;
* the *area* swept by faces whose vertices move linearly is, by the
  shoelace formula over linear coordinate functions, a quadratic in
  time; signs cannot flip inside the open interval (the region would be
  invalid there), so the unsigned area is quadratic per unit.

Both facts let us recover exact polynomial coefficients from a few
point evaluations (two for linear, three for quadratic — polynomial
interpolation is exact, not an approximation).
"""

from __future__ import annotations

from typing import Callable, List

from repro.config import EPSILON
from repro.temporal.mapping import MovingLine, MovingReal, MovingRegion
from repro.temporal.uline import ULine
from repro.temporal.unit import Unit, UnitInterval
from repro.temporal.ureal import UReal
from repro.temporal.uregion import URegion


def _snap(value: float, scale: float) -> float:
    """Zero out interpolation noise far below the quantity's magnitude."""
    if abs(value) <= EPSILON * max(scale, 1e-300):
        return 0.0
    return value


def _fit_linear(iv: UnitInterval, f: Callable[[float], float]) -> UReal:
    """The ureal unit interpolating a linear quantity on ``iv``."""
    if iv.is_degenerate:
        return UReal.constant(iv, f(iv.s))
    span = iv.e - iv.s
    t0 = iv.s + 0.25 * span
    t1 = iv.s + 0.75 * span
    # Exact: detects when the 0.25/0.75 sample instants collapse at this
    # float magnitude; an eps test would reject representable spans.
    if t1 <= t0:  # modlint: disable=MOD001 see comment above
        return UReal.constant(iv, f(iv.midpoint()))
    v0, v1 = f(t0), f(t1)
    scale = max(abs(v0), abs(v1))
    slope = _snap((v1 - v0) / (t1 - t0), scale / max(span, 1e-300))
    return UReal(iv, 0.0, slope, v0 - slope * t0, False)


def _fit_quadratic(iv: UnitInterval, f: Callable[[float], float]) -> UReal:
    """The ureal unit interpolating a quadratic quantity on ``iv``.

    Lagrange interpolation through three interior sample instants —
    exact for genuinely quadratic quantities.
    """
    if iv.is_degenerate:
        return UReal.constant(iv, f(iv.s))
    span = iv.e - iv.s
    t0 = iv.s + 0.25 * span
    t1 = iv.s + 0.50 * span
    t2 = iv.s + 0.75 * span
    # Same exact collapse check as in _fit_linear, for three samples.
    if t1 <= t0 or t2 <= t1:  # modlint: disable=MOD001 see comment above
        return UReal.constant(iv, f(iv.midpoint()))
    v0, v1, v2 = f(t0), f(t1), f(t2)
    # Divided differences for the Newton form, expanded to monomials.
    d01 = (v1 - v0) / (t1 - t0)
    d12 = (v2 - v1) / (t2 - t1)
    scale = max(abs(v0), abs(v1), abs(v2))
    a = _snap((d12 - d01) / (t2 - t0), scale / max(span * span, 1e-300))
    b = _snap(d01 - a * (t0 + t1), scale / max(span, 1e-300))
    c = v0 - (a * t0 + b) * t0
    return UReal(iv, a, b, c, False)


def mregion_area(mr: MovingRegion) -> MovingReal:
    """Lifted ``size``: the area of a moving region as a moving real.

    Reads the per-unit summary quadruple (computed once and cached in
    the unit record, per the Section 4.2 suggestion).
    """
    units: List[UReal] = []
    for u in mr.units:
        assert isinstance(u, URegion)
        a, b, c, r = u.area_summary()
        units.append(UReal(u.interval, a, b, c, r))
    return MovingReal.normalized(units)


def mregion_perimeter(mr: MovingRegion) -> MovingReal:
    """Lifted ``perimeter`` of a moving region as a moving real."""
    units: List[UReal] = []
    for u in mr.units:
        assert isinstance(u, URegion)
        a, b, c, r = u.perimeter_summary()
        units.append(UReal(u.interval, a, b, c, r))
    return MovingReal.normalized(units)


def mline_length(ml: MovingLine) -> MovingReal:
    """Lifted ``length`` of a moving line as a moving real."""
    units: List[UReal] = []
    for u in ml.units:
        assert isinstance(u, ULine)
        units.append(
            _fit_linear(u.interval, lambda t, u=u: u._iota(t).length())
        )
    return MovingReal.normalized(units)
