"""Storm-cell workloads: moving regions under translation and scaling.

A vertex under simultaneous linear translation and linearly changing
uniform scale moves *linearly* in time, and every polygon edge keeps its
direction — so each storm phase is a valid ``uregion`` (coplanar moving
segments) by construction.  This is the natural generator for moving
regions in the paper's model, which excludes rotation within a unit.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.spatial.bbox import Rect
from repro.spatial.region import Region
from repro.temporal.mapping import MovingRegion
from repro.temporal.uregion import URegion


def regular_polygon(
    center: Tuple[float, float], radius: float, sides: int = 8, phase: float = 0.0
) -> Region:
    """A regular polygon region (convex, any number of sides >= 3)."""
    cx, cy = center
    verts = []
    for k in range(sides):
        angle = phase + 2.0 * math.pi * k / sides
        verts.append((cx + radius * math.cos(angle), cy + radius * math.sin(angle)))
    return Region.polygon(verts)


def _transform_region(
    base: Region, center: Tuple[float, float], offset: Tuple[float, float], scale: float
) -> Region:
    """Translate by ``offset`` and scale about ``center`` by ``scale``."""
    from repro.spatial.region import Cycle, Face

    cx, cy = center
    ox, oy = offset

    def tx(p):
        return (cx + (p[0] - cx) * scale + ox, cy + (p[1] - cy) * scale + oy)

    # Validation is skipped deliberately: ``tx`` is a similarity map
    # (translate + uniform positive scale), which preserves every cycle
    # and face invariant of the already-validated base region, and the
    # O(S²) revalidation would dominate workload generation time.
    faces = []
    for f in base.faces:
        outer = Cycle(  # modlint: disable=MOD002 see comment above
            [(tx(s[0]), tx(s[1])) for s in f.outer.segments], validate=False
        )
        holes = [
            Cycle(  # modlint: disable=MOD002 see comment above
                [(tx(s[0]), tx(s[1])) for s in h.segments], validate=False
            )
            for h in f.holes
        ]
        faces.append(Face(outer, holes, validate=False))  # modlint: disable=MOD002 see comment above
    return Region(faces, validate=False)  # modlint: disable=MOD002 see comment above


@dataclass
class StormGenerator:
    """Deterministic generator of drifting, growing/shrinking storm cells."""

    area: Rect = field(default_factory=lambda: Rect(0.0, 0.0, 10000.0, 10000.0))
    radius_range: Tuple[float, float] = (100.0, 400.0)
    drift_speed_range: Tuple[float, float] = (1.0, 5.0)
    sides: int = 8
    seed: int = 0

    def __post_init__(self):
        self._rng = random.Random(self.seed)

    def storm(
        self,
        phases: int = 6,
        phase_duration: float = 50.0,
        start_time: float = 0.0,
        with_hole: bool = False,
    ) -> MovingRegion:
        """One storm: ``phases`` uregion units chained in time.

        Each phase drifts the cell with a fresh wind vector and scales it
        by a fresh growth factor; consecutive phases share the boundary
        snapshot, so the moving region is continuous across units.
        """
        rng = self._rng
        cx = rng.uniform(self.area.xmin + 500, self.area.xmax - 500)
        cy = rng.uniform(self.area.ymin + 500, self.area.ymax - 500)
        radius = rng.uniform(*self.radius_range)
        if with_hole:
            # An eye at one third of the radius (hurricane-like cell).
            outer_ring = _ring_of(regular_polygon((cx, cy), radius, self.sides))
            hole_ring = _ring_of(regular_polygon((cx, cy), radius / 3.0, self.sides))
            base = Region.polygon(outer_ring, holes=[hole_ring])
        else:
            base = regular_polygon((cx, cy), radius, self.sides)

        units: List[URegion] = []
        current = base
        offset = (0.0, 0.0)
        scale = 1.0
        t = start_time
        for _ in range(phases):
            angle = rng.uniform(0.0, 2.0 * math.pi)
            speed = rng.uniform(*self.drift_speed_range)
            d_off = (
                speed * phase_duration * math.cos(angle),
                speed * phase_duration * math.sin(angle),
            )
            d_scale = rng.uniform(0.8, 1.25)
            next_offset = (offset[0] + d_off[0], offset[1] + d_off[1])
            next_scale = scale * d_scale
            nxt = _transform_region(base, (cx, cy), next_offset, next_scale)
            units.append(
                URegion.between_regions(t, current, t + phase_duration, nxt,
                                        validate="none")
            )
            current = nxt
            offset = next_offset
            scale = next_scale
            t += phase_duration
        return _chain_units(units)

    def storms(self, count: int, phases: int = 6) -> List[MovingRegion]:
        """A reproducible collection of storms."""
        return [self.storm(phases=phases) for _ in range(count)]


def _ring_of(region: Region) -> List[Tuple[float, float]]:
    """The vertex ring of a one-face, hole-free region."""
    return list(region.faces[0].outer.vertices)


def _chain_units(units: List[URegion]) -> MovingRegion:
    """Chain consecutive units into a mapping with half-open interiors.

    Consecutive units share their boundary instant; giving every unit
    except the last a right-open interval keeps the mapping invariant
    (disjoint intervals) intact.
    """
    from repro.ranges.interval import Interval

    adjusted: List[URegion] = []
    for k, u in enumerate(units):
        iv = u.interval
        if k < len(units) - 1:
            adjusted.append(u.with_interval(Interval(iv.s, iv.e, iv.lc, False)))
        else:
            adjusted.append(u)
    # The loop above makes every interval but the last right-open over a
    # strictly increasing phase grid, so the disjointness invariant holds
    # by construction and unit revalidation would re-check each snapshot.
    return MovingRegion(adjusted, validate=False)  # modlint: disable=MOD002 see comment above


def random_storms(count: int, phases: int = 6, seed: int = 0) -> List[MovingRegion]:
    """Convenience wrapper: a reproducible set of storm cells."""
    return StormGenerator(seed=seed).storms(count, phases=phases)
