"""Random-waypoint flight trajectories (moving points).

A flight picks waypoints uniformly in a rectangular airspace and flies
between them at a per-flight cruise speed, yielding a ``moving(point)``
with one upoint unit per leg — the shape of data the ``planes`` relation
of Section 2 holds.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.spatial.bbox import Rect
from repro.temporal.mapping import MovingPoint


@dataclass
class FlightGenerator:
    """Deterministic generator of random-waypoint flights."""

    airspace: Rect = field(default_factory=lambda: Rect(0.0, 0.0, 10000.0, 10000.0))
    speed_range: Tuple[float, float] = (5.0, 15.0)  # distance units per time unit
    seed: int = 0

    def __post_init__(self):
        self._rng = random.Random(self.seed)

    def _random_point(self) -> Tuple[float, float]:
        return (
            self._rng.uniform(self.airspace.xmin, self.airspace.xmax),
            self._rng.uniform(self.airspace.ymin, self.airspace.ymax),
        )

    def flight(
        self,
        legs: int = 10,
        start_time: float = 0.0,
        origin: Optional[Tuple[float, float]] = None,
    ) -> MovingPoint:
        """Generate one flight with ``legs`` waypoint-to-waypoint units."""
        speed = self._rng.uniform(*self.speed_range)
        pos = origin if origin is not None else self._random_point()
        t = start_time
        waypoints: List[Tuple[float, Tuple[float, float]]] = [(t, pos)]
        for _ in range(legs):
            nxt = self._random_point()
            dist = math.hypot(nxt[0] - pos[0], nxt[1] - pos[1])
            if dist <= 0.0:
                continue
            t += dist / speed
            waypoints.append((t, nxt))
            pos = nxt
        return MovingPoint.from_waypoints(waypoints)

    def fleet(
        self, count: int, legs: int = 10, stagger: float = 0.0
    ) -> List[MovingPoint]:
        """Generate ``count`` flights, optionally staggering departures."""
        return [
            self.flight(legs=legs, start_time=i * stagger) for i in range(count)
        ]


def random_flights(
    count: int,
    legs: int = 10,
    seed: int = 0,
    airspace: Optional[Rect] = None,
) -> List[MovingPoint]:
    """Convenience wrapper: a reproducible fleet of flights."""
    gen = FlightGenerator(seed=seed) if airspace is None else FlightGenerator(
        airspace=airspace, seed=seed
    )
    return gen.fleet(count, legs=legs)
