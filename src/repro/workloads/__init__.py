"""Synthetic workload generators.

The paper's motivating applications — air traffic, vehicles, weather
phenomena — drive three generators:

* :mod:`repro.workloads.trajectories` — random-waypoint flights
  (moving points with many units);
* :mod:`repro.workloads.regions` — storm cells: polygonal regions under
  piecewise translation and linear scaling (valid ``uregion`` motion);
* :mod:`repro.workloads.network` — trips constrained to a random road
  network (networkx), producing dense, realistic unit sequences.

All generators take an explicit seed; identical seeds reproduce
identical workloads, which the benchmarks rely on.
"""

from __future__ import annotations

from repro.workloads.trajectories import FlightGenerator, random_flights
from repro.workloads.regions import StormGenerator, random_storms, regular_polygon
from repro.workloads.network import RoadNetwork, network_trips

__all__ = [
    "FlightGenerator",
    "random_flights",
    "StormGenerator",
    "random_storms",
    "regular_polygon",
    "RoadNetwork",
    "network_trips",
]
