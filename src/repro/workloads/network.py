"""Road-network-constrained vehicle trips.

Builds a random planar-ish road network (a grid with perturbed node
positions and random extra edges, via networkx) and generates vehicle
trips as shortest paths traversed at constant speed per edge — producing
moving points whose units are dense and short, the workload shape where
the sliced representation and the refinement-partition algorithms earn
their keep.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.errors import InvalidValue
from repro.spatial.bbox import Rect
from repro.temporal.mapping import MovingPoint


@dataclass
class RoadNetwork:
    """A random road network with Euclidean edge lengths."""

    rows: int = 10
    cols: int = 10
    spacing: float = 1000.0
    jitter: float = 200.0
    extra_edges: int = 20
    seed: int = 0

    def __post_init__(self):
        rng = random.Random(self.seed)
        g = nx.Graph()
        pos: Dict[Tuple[int, int], Tuple[float, float]] = {}
        for r in range(self.rows):
            for c in range(self.cols):
                pos[(r, c)] = (
                    c * self.spacing + rng.uniform(-self.jitter, self.jitter),
                    r * self.spacing + rng.uniform(-self.jitter, self.jitter),
                )
        for r in range(self.rows):
            for c in range(self.cols):
                if c + 1 < self.cols:
                    g.add_edge((r, c), (r, c + 1))
                if r + 1 < self.rows:
                    g.add_edge((r, c), (r + 1, c))
        nodes = list(pos)
        for _ in range(self.extra_edges):
            a, b = rng.sample(nodes, 2)
            g.add_edge(a, b)
        for a, b in g.edges:
            pa, pb = pos[a], pos[b]
            g.edges[a, b]["length"] = math.hypot(pb[0] - pa[0], pb[1] - pa[1])
        self.graph = g
        self.positions = pos
        self._rng = rng

    def bbox(self) -> Rect:
        """The bounding rectangle of all road nodes."""
        return Rect.around(list(self.positions.values()))

    def shortest_path(self, a, b) -> List[Tuple[float, float]]:
        """Node positions along the shortest path from ``a`` to ``b``."""
        path = nx.shortest_path(self.graph, a, b, weight="length")
        return [self.positions[n] for n in path]

    def random_trip(
        self, speed: float = 12.0, start_time: float = 0.0
    ) -> MovingPoint:
        """A vehicle trip between two random nodes at constant speed."""
        nodes = list(self.positions)
        for _ in range(32):
            a, b = self._rng.sample(nodes, 2)
            try:
                route = self.shortest_path(a, b)
            except nx.NetworkXNoPath:  # pragma: no cover - grid is connected
                continue
            if len(route) >= 2:
                break
        else:  # pragma: no cover
            raise InvalidValue("could not sample a trip on this network")
        t = start_time
        waypoints = [(t, route[0])]
        for p, q in zip(route, route[1:]):
            dist = math.hypot(q[0] - p[0], q[1] - p[1])
            if dist <= 0.0:
                continue
            t += dist / speed
            waypoints.append((t, q))
        return MovingPoint.from_waypoints(waypoints)

    def trips(
        self, count: int, speed_range: Tuple[float, float] = (8.0, 16.0)
    ) -> List[MovingPoint]:
        """A reproducible set of trips with varying speeds."""
        out = []
        for _ in range(count):
            speed = self._rng.uniform(*speed_range)
            out.append(self.random_trip(speed=speed))
        return out


def network_trips(
    count: int, rows: int = 10, cols: int = 10, seed: int = 0
) -> List[MovingPoint]:
    """Convenience wrapper: trips on a fresh random network."""
    return RoadNetwork(rows=rows, cols=cols, seed=seed).trips(count)
