"""The ``line`` data type: a finite set of line segments (Section 3.2.2).

The paper deliberately takes the *unstructured* view: any set of segments
is a valid line value as long as no two collinear segments overlap (that
pair could be merged, so forbidding it makes representations unique).
The value is stored canonically as a sorted tuple of segments, and the
halfsegment sequence of Section 4.1 is derivable on demand for
plane-sweep consumers.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Union

from repro.config import EPSILON
from repro.errors import InvalidValue
from repro.geometry.mergesegs import merge_segs
from repro.geometry.primitives import Vec, dist
from repro.geometry.segment import (
    HalfSegment,
    Seg,
    collinear,
    halfsegments_of,
    make_seg,
    point_on_seg,
    seg_length,
    seg_overlap,
)
from repro.geometry.splitting import segment_midpoint, split_at_intersections
from repro.spatial.bbox import Rect
from repro.spatial.point import Point


def _as_seg(s: Union[Seg, tuple]) -> Seg:
    (p, q) = s
    return make_seg((float(p[0]), float(p[1])), (float(q[0]), float(q[1])))


class Line:
    """A value of type ``line``: segments with no collinear overlaps."""

    __slots__ = ("_segs",)

    def __init__(self, segments: Iterable[Seg] = (), validate: bool = True):
        segs = sorted({_as_seg(s) for s in segments})
        if validate:
            _check_no_collinear_overlap(segs)
        object.__setattr__(self, "_segs", tuple(segs))

    def __setattr__(self, name, value):
        raise AttributeError("Line values are immutable")

    @classmethod
    def from_unmerged(cls, segments: Iterable[Seg]) -> "Line":
        """Build a line value from arbitrary segments, merging overlaps.

        This applies ``merge-segs`` so the uniqueness constraint holds by
        construction; it is the constructor used by ``trajectory``.
        """
        return cls(merge_segs([_as_seg(s) for s in segments]), validate=False)

    @classmethod
    def polyline(cls, vertices: Sequence[Vec]) -> "Line":
        """Build a line value from a vertex chain."""
        segs = [
            make_seg(tuple(map(float, a)), tuple(map(float, b)))
            for a, b in zip(vertices, vertices[1:])
        ]
        return cls(segs)

    # -- container protocol --------------------------------------------------

    @property
    def segments(self) -> Sequence[Seg]:
        """The ordered segment tuple (canonical representation)."""
        return self._segs

    def halfsegments(self) -> list[HalfSegment]:
        """The ordered halfsegment sequence of Section 4.1."""
        return halfsegments_of(self._segs)

    def __iter__(self) -> Iterator[Seg]:
        return iter(self._segs)

    def __len__(self) -> int:
        return len(self._segs)

    def __bool__(self) -> bool:
        return bool(self._segs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Line):
            return NotImplemented
        return self._segs == other._segs

    def __hash__(self) -> int:
        return hash(self._segs)

    def __repr__(self) -> str:
        return f"Line({len(self._segs)} segments)"

    # -- numeric operations -----------------------------------------------------

    def length(self) -> float:
        """Total Euclidean length (the ``length`` operation of Section 2)."""
        return sum(seg_length(s) for s in self._segs)

    def bbox(self) -> Rect:
        """The bounding rectangle; raises on the empty line."""
        if not self._segs:
            raise InvalidValue("bounding box of an empty line value")
        pts = [p for s in self._segs for p in s]
        return Rect.around(pts)

    # -- predicates -------------------------------------------------------------

    def contains_point(self, p: Union[Point, Vec]) -> bool:
        """True iff the point lies on some segment."""
        v = p.vec if isinstance(p, Point) else (float(p[0]), float(p[1]))
        return any(point_on_seg(v, s) for s in self._segs)

    def intersects(self, other: "Line") -> bool:
        """True iff the two lines share at least one point."""
        from repro.geometry.segment import segs_disjoint

        for s in self._segs:
            for t in other._segs:
                if not segs_disjoint(s, t):
                    return True
        return False

    # -- set operations -----------------------------------------------------------

    def union(self, other: "Line") -> "Line":
        """Point-set union of two lines, renormalized."""
        return Line.from_unmerged(list(self._segs) + list(other._segs))

    def intersection(self, other: "Line") -> "Line":
        """The 1-D part of the point-set intersection.

        Isolated crossing points are dimension-0 and therefore not part
        of a ``line`` value; only collinear overlaps survive.
        """
        out: list[Seg] = []
        a, b = split_at_intersections(self._segs, other._segs)
        bset = list(other._segs)
        for piece in a:
            mid = segment_midpoint(piece)
            if any(point_on_seg(mid, t) for t in bset):
                out.append(piece)
        return Line.from_unmerged(out)

    def difference(self, other: "Line") -> "Line":
        """The part of this line not covered by the other."""
        out: list[Seg] = []
        a, _b = split_at_intersections(self._segs, other._segs)
        bset = list(other._segs)
        for piece in a:
            mid = segment_midpoint(piece)
            if not any(point_on_seg(mid, t) for t in bset):
                out.append(piece)
        return Line.from_unmerged(out)

    def crossings(self, other: "Line") -> "list[Vec]":
        """Proper crossing points between the two lines."""
        from repro.geometry.segment import p_intersect, seg_intersection_point

        pts: set[Vec] = set()
        for s in self._segs:
            for t in other._segs:
                if p_intersect(s, t):
                    ip = seg_intersection_point(s, t)
                    if ip is not None:
                        pts.add(ip)
        return sorted(pts)


def _check_no_collinear_overlap(segs: Sequence[Seg]) -> None:
    """Enforce the line uniqueness constraint of Section 3.2.2.

    Collinear overlap is only possible among segments whose bounding
    intervals overlap; a sort-based sweep over x keeps the check near
    O(k) for typical inputs while remaining O(k^2) in the worst case.
    """
    n = len(segs)
    for i in range(n):
        s = segs[i]
        s_xmax = max(s[0][0], s[1][0])
        for j in range(i + 1, n):
            t = segs[j]
            if t[0][0] > s_xmax + EPSILON:
                break  # segments are sorted by left endpoint; no overlap possible
            if collinear(s, t) and seg_overlap(s, t):
                raise InvalidValue(
                    f"line value contains collinear overlapping segments "
                    f"{s} and {t}; merge them for the canonical representation"
                )
