"""The ``points`` data type: a finite set of points in the plane.

Stored as a canonically (lexicographically) sorted tuple of coordinate
pairs so that, as Section 4 requires, two values are equal iff their
array representations are equal.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple, Union

from repro.errors import InvalidValue
from repro.geometry.primitives import Vec, dist
from repro.spatial.bbox import Rect
from repro.spatial.point import Point


def _as_vec(p: Union[Point, Vec]) -> Vec:
    if isinstance(p, Point):
        return p.vec
    return (float(p[0]), float(p[1]))


class Points:
    """A value of type ``points``: a finite set of 2-D points.

    The empty set is a valid value (it plays the role of ⊥ for set
    types, per the ``D'`` convention of Section 3.2.1).
    """

    __slots__ = ("_pts",)

    def __init__(self, points: Iterable[Union[Point, Vec]] = ()):
        vecs = sorted({_as_vec(p) for p in points})
        object.__setattr__(self, "_pts", tuple(vecs))

    def __setattr__(self, name, value):
        raise AttributeError("Points values are immutable")

    # -- container protocol -------------------------------------------------

    @property
    def vecs(self) -> Sequence[Vec]:
        """The ordered coordinate tuples (the array representation)."""
        return self._pts

    def __iter__(self) -> Iterator[Point]:
        return (Point.from_vec(v) for v in self._pts)

    def __len__(self) -> int:
        return len(self._pts)

    def __bool__(self) -> bool:
        return bool(self._pts)

    def __contains__(self, p: Union[Point, Vec]) -> bool:
        return _as_vec(p) in set(self._pts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Points):
            return NotImplemented
        return self._pts == other._pts

    def __hash__(self) -> int:
        return hash(self._pts)

    def __repr__(self) -> str:
        inner = ", ".join(f"({x:g}, {y:g})" for x, y in self._pts[:8])
        suffix = ", ..." if len(self._pts) > 8 else ""
        return f"Points({{{inner}{suffix}}})"

    # -- set operations -------------------------------------------------------

    def union(self, other: "Points") -> "Points":
        return Points(set(self._pts) | set(other._pts))

    def intersection(self, other: "Points") -> "Points":
        return Points(set(self._pts) & set(other._pts))

    def difference(self, other: "Points") -> "Points":
        return Points(set(self._pts) - set(other._pts))

    # -- numeric operations -----------------------------------------------------

    def bbox(self) -> Rect:
        """The bounding rectangle; raises on the empty set."""
        if not self._pts:
            raise InvalidValue("bounding box of an empty points value")
        return Rect.around(self._pts)

    def min_distance(self, other: "Points") -> float:
        """Smallest pairwise distance between the two sets."""
        if not self._pts or not other._pts:
            raise InvalidValue("distance involving an empty points value")
        return min(dist(p, q) for p in self._pts for q in other._pts)

    def center(self) -> Point:
        """The centroid of the point set."""
        if not self._pts:
            raise InvalidValue("center of an empty points value")
        n = len(self._pts)
        return Point(
            sum(p[0] for p in self._pts) / n, sum(p[1] for p in self._pts) / n
        )
