"""The ``point`` data type: a single 2-D point or the undefined value."""

from __future__ import annotations

import math
from typing import Any, Optional, Tuple

from repro.errors import InvalidValue, TypeMismatch, UndefinedValue
from repro.geometry.primitives import Vec, dist, point_cmp


class Point:
    """A point in the Euclidean plane, with lexicographic order.

    ``Point()`` constructs the undefined point ⊥.  Defined points expose
    ``x``, ``y``, and the total lexicographic order of Section 3.2.2.
    """

    __slots__ = ("_xy",)

    def __init__(self, x: Optional[float] = None, y: Optional[float] = None):
        if x is None and y is None:
            object.__setattr__(self, "_xy", None)
            return
        if x is None or y is None:
            raise TypeMismatch("point needs both coordinates or neither")
        x, y = float(x), float(y)
        if not (math.isfinite(x) and math.isfinite(y)):
            raise InvalidValue("point coordinates must be finite")
        object.__setattr__(self, "_xy", (x, y))

    @classmethod
    def from_vec(cls, v: Vec) -> "Point":
        """Wrap a raw coordinate tuple."""
        return cls(v[0], v[1])

    def __setattr__(self, name, value):
        raise AttributeError("Point values are immutable")

    @property
    def defined(self) -> bool:
        """True iff this is not the undefined point."""
        return self._xy is not None

    @property
    def vec(self) -> Vec:
        """The raw coordinate tuple; raises on ⊥."""
        if self._xy is None:
            raise UndefinedValue("point is undefined")
        return self._xy

    @property
    def x(self) -> float:
        return self.vec[0]

    @property
    def y(self) -> float:
        return self.vec[1]

    def distance(self, other: "Point") -> float:
        """Euclidean distance to another (defined) point."""
        return dist(self.vec, other.vec)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        return self._xy == other._xy

    def __hash__(self) -> int:
        return hash(("point", self._xy))

    def _key(self) -> tuple:
        if self._xy is None:
            return (0, 0.0, 0.0)
        return (1, self._xy[0], self._xy[1])

    def __lt__(self, other: "Point") -> bool:
        return self._key() < other._key()

    def __le__(self, other: "Point") -> bool:
        return self._key() <= other._key()

    def __gt__(self, other: "Point") -> bool:
        return self._key() > other._key()

    def __ge__(self, other: "Point") -> bool:
        return self._key() >= other._key()

    def __repr__(self) -> str:
        if self._xy is None:
            return "Point(⊥)"
        return f"Point({self._xy[0]:g}, {self._xy[1]:g})"
