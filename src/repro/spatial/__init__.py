"""Spatial data types of the discrete model (Section 3.2.2).

``point`` and ``points`` are exact; ``line`` and ``region`` are the
linear approximations (segment sets, polygons with polygonal holes) the
paper defines, with their uniqueness constraints enforced at
construction.
"""

from __future__ import annotations

from repro.spatial.bbox import Rect, Cube
from repro.spatial.point import Point
from repro.spatial.points import Points
from repro.spatial.line import Line
from repro.spatial.region import Cycle, Face, Region, close_region

__all__ = [
    "Rect",
    "Cube",
    "Point",
    "Points",
    "Line",
    "Cycle",
    "Face",
    "Region",
    "close_region",
]
