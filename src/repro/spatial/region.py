"""The ``region`` data type: faces with holes (Section 3.2.2, Figure 3).

A region is a set of pairwise edge-disjoint *faces*; a face is an outer
*cycle* with a set of hole cycles.  The constraints of the paper are
enforced at construction:

* cycle: no proper intersections or touches among its segments, every
  end point used exactly twice, and the segments form one single closed
  walk;
* face: holes edge-inside the outer cycle and pairwise edge-disjoint;
* region: faces pairwise edge-disjoint (touching in isolated points is
  allowed, overlapping boundary segments are not).

Condition (iii) of the face definition (unique decomposition into
cycles) holds by construction for values built through
:func:`close_region`, which is the ``close`` operation of Section 4.1:
it takes a segment soup and determines the face/cycle structure.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Optional, Sequence, Union

from repro.config import EPSILON
from repro.errors import InvalidValue
from repro.geometry.plumbline import crossings_above, point_in_segset
from repro.geometry.primitives import (
    Vec,
    point_cmp,
    point_eq,
    polygon_area,
    unit_normal,
)
from repro.geometry.segment import (
    HalfSegment,
    Seg,
    halfsegments_of,
    make_seg,
    meet,
    p_intersect,
    point_on_seg,
    seg_length,
    seg_overlap,
    touch,
)
from repro.geometry.splitting import segment_midpoint, split_at_intersections
from repro.spatial.bbox import Rect
from repro.spatial.point import Point


class Cycle:
    """A simple polygon given as a set of segments (the paper's ``Cycle``)."""

    __slots__ = ("_segs", "_vertices", "_bbox")

    def __init__(self, segments: Iterable[Seg], validate: bool = True):
        segs = sorted({make_seg(s[0], s[1]) for s in segments})
        if len(segs) < 3:
            raise InvalidValue("a cycle needs at least three segments")
        vertices = _trace_single_cycle(segs)
        if validate:
            _check_cycle_segments(segs)
        object.__setattr__(self, "_segs", tuple(segs))
        object.__setattr__(self, "_vertices", tuple(vertices))
        object.__setattr__(
            self, "_bbox", Rect.around([p for s in segs for p in s])
        )

    def __setattr__(self, name, value):
        raise AttributeError("Cycle values are immutable")

    def __getstate__(self):
        return tuple(getattr(self, s) for s in Cycle.__slots__)

    def __setstate__(self, state):
        # Bypass the immutability guard: pickling must restore slots
        # directly (the parallel backend ships regions to pool workers).
        for slot, value in zip(Cycle.__slots__, state):
            object.__setattr__(self, slot, value)

    @classmethod
    def from_vertices(cls, vertices: Sequence[Vec]) -> "Cycle":
        """Build a cycle from a closed vertex ring (first != last)."""
        verts = [tuple(map(float, v)) for v in vertices]
        if len(verts) >= 2 and point_eq(verts[0], verts[-1]):
            verts = verts[:-1]
        if len(verts) < 3:
            raise InvalidValue("a cycle needs at least three vertices")
        segs = [
            make_seg(a, b)
            for a, b in zip(verts, verts[1:] + verts[:1])
        ]
        return cls(segs)

    # -- accessors ---------------------------------------------------------

    @property
    def segments(self) -> Sequence[Seg]:
        """The canonical ordered segment tuple."""
        return self._segs

    @property
    def vertices(self) -> Sequence[Vec]:
        """The vertex ring in walk order (orientation unspecified)."""
        return self._vertices

    def bbox(self) -> Rect:
        return self._bbox

    def __len__(self) -> int:
        return len(self._segs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cycle):
            return NotImplemented
        return self._segs == other._segs

    def __hash__(self) -> int:
        return hash(self._segs)

    def __repr__(self) -> str:
        return f"Cycle({len(self._segs)} segments)"

    # -- geometry ------------------------------------------------------------

    def area(self) -> float:
        """The enclosed (unsigned) area."""
        return abs(polygon_area(list(self._vertices)))

    def perimeter(self) -> float:
        """Total boundary length."""
        return sum(seg_length(s) for s in self._segs)

    def contains_point(self, p: Vec, boundary_counts: bool = True) -> bool:
        """True iff ``p`` is enclosed (boundary included by default)."""
        if not self._bbox.contains_point(p):
            return False
        return point_in_segset(p, self._segs, boundary_counts=boundary_counts)

    def interior_sample(self) -> Vec:
        """Return a point guaranteed to lie strictly inside the cycle."""
        diag = max(self._bbox.width, self._bbox.height, 1.0)
        for s in self._segs:
            mid = segment_midpoint(s)
            n = unit_normal(s[0], s[1])
            for eps_scale in (1e-6, 1e-9, 1e-4):
                d = eps_scale * diag
                for sign in (1.0, -1.0):
                    cand = (mid[0] + sign * d * n[0], mid[1] + sign * d * n[1])
                    on_any = any(point_on_seg(cand, t) for t in self._segs)
                    if not on_any and crossings_above(cand, self._segs) % 2 == 1:
                        return cand
        raise InvalidValue("could not find an interior point of the cycle")

    # -- the paper's cycle relations ----------------------------------------------

    def edge_inside(self, other: "Cycle") -> bool:
        """True iff this cycle's interior is inside ``other`` with no edge overlap."""
        if not other._bbox.contains_rect(self._bbox):
            return False
        for s in self._segs:
            for t in other._segs:
                if seg_overlap(s, t) or p_intersect(s, t):
                    return False
        return other.contains_point(self.interior_sample(), boundary_counts=False)

    def edge_disjoint(self, other: "Cycle") -> bool:
        """True iff interiors are disjoint and no edges overlap.

        Touching in isolated points is permitted.
        """
        for s in self._segs:
            for t in other._segs:
                if seg_overlap(s, t) or p_intersect(s, t):
                    return False
        if self._bbox.intersects(other._bbox):
            if other.contains_point(self.interior_sample(), boundary_counts=False):
                return False
            if self.contains_point(other.interior_sample(), boundary_counts=False):
                return False
        return True


class Face:
    """A face: outer cycle plus hole cycles (the paper's ``Face``)."""

    __slots__ = ("_outer", "_holes")

    def __init__(
        self,
        outer: Cycle,
        holes: Iterable[Cycle] = (),
        validate: bool = True,
    ):
        hole_list = sorted(holes, key=lambda c: c.segments)
        if validate:
            for h in hole_list:
                if not h.edge_inside(outer):
                    raise InvalidValue("hole cycle is not edge-inside the outer cycle")
            for i, h1 in enumerate(hole_list):
                for h2 in hole_list[i + 1 :]:
                    if not h1.edge_disjoint(h2):
                        raise InvalidValue("hole cycles are not edge-disjoint")
        object.__setattr__(self, "_outer", outer)
        object.__setattr__(self, "_holes", tuple(hole_list))

    def __setattr__(self, name, value):
        raise AttributeError("Face values are immutable")

    def __getstate__(self):
        return tuple(getattr(self, s) for s in Face.__slots__)

    def __setstate__(self, state):
        for slot, value in zip(Face.__slots__, state):
            object.__setattr__(self, slot, value)

    @property
    def outer(self) -> Cycle:
        return self._outer

    @property
    def holes(self) -> Sequence[Cycle]:
        return self._holes

    @property
    def cycles(self) -> Sequence[Cycle]:
        """Outer cycle followed by the holes."""
        return (self._outer, *self._holes)

    def segments(self) -> list[Seg]:
        """All boundary segments of the face."""
        out = list(self._outer.segments)
        for h in self._holes:
            out.extend(h.segments)
        return out

    def bbox(self) -> Rect:
        return self._outer.bbox()

    def area(self) -> float:
        """Outer area minus hole areas."""
        return self._outer.area() - sum(h.area() for h in self._holes)

    def perimeter(self) -> float:
        """Total boundary length including holes."""
        return self._outer.perimeter() + sum(h.perimeter() for h in self._holes)

    def contains_point(self, p: Vec, boundary_counts: bool = True) -> bool:
        """Point-in-face with the semantics of Section 3.2.2.

        The face's point set is ``closure(outer \\ holes)``: hole
        boundaries belong to the face, hole interiors do not.
        """
        if not self._outer.contains_point(p, boundary_counts):
            return False
        for h in self._holes:
            if h.contains_point(p, boundary_counts=not boundary_counts):
                return False
        return True

    def edge_disjoint(self, other: "Face") -> bool:
        """The paper's face relation: disjoint, or nested inside a hole."""
        if self._outer.edge_disjoint(other._outer):
            return True
        if any(self._outer.edge_inside(h) for h in other._holes):
            return True
        if any(other._outer.edge_inside(h) for h in self._holes):
            return True
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Face):
            return NotImplemented
        return self._outer == other._outer and self._holes == other._holes

    def __hash__(self) -> int:
        return hash((self._outer, self._holes))

    def __repr__(self) -> str:
        return f"Face(outer={len(self._outer)} segs, holes={len(self._holes)})"


class Region:
    """A value of type ``region``: pairwise edge-disjoint faces.

    The empty region (no faces) is the ⊥-like empty set value.
    """

    __slots__ = ("_faces", "_bbox")

    def __init__(self, faces: Iterable[Face] = (), validate: bool = True):
        face_list = sorted(faces, key=lambda f: f.outer.segments)
        if validate:
            for i, f1 in enumerate(face_list):
                for f2 in face_list[i + 1 :]:
                    if not f1.edge_disjoint(f2):
                        raise InvalidValue("region faces are not edge-disjoint")
        bbox = None
        for f in face_list:
            bbox = f.bbox() if bbox is None else bbox.union(f.bbox())
        object.__setattr__(self, "_faces", tuple(face_list))
        object.__setattr__(self, "_bbox", bbox)

    def __setattr__(self, name, value):
        raise AttributeError("Region values are immutable")

    def __getstate__(self):
        return tuple(getattr(self, s) for s in Region.__slots__)

    def __setstate__(self, state):
        for slot, value in zip(Region.__slots__, state):
            object.__setattr__(self, slot, value)

    # -- constructors ------------------------------------------------------

    @classmethod
    def polygon(
        cls, vertices: Sequence[Vec], holes: Sequence[Sequence[Vec]] = ()
    ) -> "Region":
        """Build a one-face region from vertex rings."""
        outer = Cycle.from_vertices(vertices)
        hole_cycles = [Cycle.from_vertices(h) for h in holes]
        return cls([Face(outer, hole_cycles)])

    @classmethod
    def box(cls, xmin: float, ymin: float, xmax: float, ymax: float) -> "Region":
        """Build an axis-aligned rectangular region."""
        return cls.polygon([(xmin, ymin), (xmax, ymin), (xmax, ymax), (xmin, ymax)])

    @classmethod
    def from_segments(cls, segments: Iterable[Seg]) -> "Region":
        """Build a region from a boundary segment soup (the ``close`` operation)."""
        return close_region(segments)

    # -- accessors -------------------------------------------------------------

    @property
    def faces(self) -> Sequence[Face]:
        return self._faces

    def segments(self) -> list[Seg]:
        """All boundary segments."""
        out: list[Seg] = []
        for f in self._faces:
            out.extend(f.segments())
        return out

    def halfsegments(self) -> list[HalfSegment]:
        """The ordered halfsegment sequence of Section 4.1."""
        return halfsegments_of(self.segments())

    def cycles(self) -> list[Cycle]:
        """All cycles (outers and holes)."""
        out: list[Cycle] = []
        for f in self._faces:
            out.extend(f.cycles)
        return out

    def __iter__(self) -> Iterator[Face]:
        return iter(self._faces)

    def __len__(self) -> int:
        return len(self._faces)

    def __bool__(self) -> bool:
        return bool(self._faces)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Region):
            return NotImplemented
        return self._faces == other._faces

    def __hash__(self) -> int:
        return hash(self._faces)

    def __repr__(self) -> str:
        nsegs = len(self.segments())
        return f"Region({len(self._faces)} faces, {nsegs} segments)"

    # -- numeric operations --------------------------------------------------------

    def area(self) -> float:
        """Total area (the ``size`` operation of the abstract model)."""
        return sum(f.area() for f in self._faces)

    def perimeter(self) -> float:
        """Total boundary length."""
        return sum(f.perimeter() for f in self._faces)

    def bbox(self) -> Rect:
        """The bounding rectangle; raises on the empty region."""
        if self._bbox is None:
            raise InvalidValue("bounding box of an empty region value")
        return self._bbox

    # -- predicates -------------------------------------------------------------

    def contains_point(
        self, p: Union[Point, Vec], boundary_counts: bool = True
    ) -> bool:
        """Point-in-region (the static ``inside`` predicate)."""
        v = p.vec if isinstance(p, Point) else (float(p[0]), float(p[1]))
        if self._bbox is None or not self._bbox.contains_point(v):
            return False
        return any(f.contains_point(v, boundary_counts) for f in self._faces)

    def intersects(self, other: "Region") -> bool:
        """True iff the two regions share at least one point."""
        if self._bbox is None or other._bbox is None:
            return False
        if not self._bbox.intersects(other._bbox):
            return False
        return bool(self.intersection(other)) or self._boundaries_touch(other)

    def _boundaries_touch(self, other: "Region") -> bool:
        for s in self.segments():
            for t in other.segments():
                if p_intersect(s, t) or touch(s, t) or meet(s, t) or seg_overlap(s, t):
                    return True
        return False

    # -- set operations ---------------------------------------------------------------

    def union(self, other: "Region") -> "Region":
        """Point-set union of two regions."""
        return _boolean_op(self, other, "union")

    def intersection(self, other: "Region") -> "Region":
        """Point-set intersection (regularized: lower-dimensional slivers drop)."""
        return _boolean_op(self, other, "intersection")

    def difference(self, other: "Region") -> "Region":
        """Point-set difference (regularized)."""
        return _boolean_op(self, other, "difference")


# ---------------------------------------------------------------------------
# Cycle validation and tracing
# ---------------------------------------------------------------------------


def _check_cycle_segments(segs: Sequence[Seg]) -> None:
    """Enforce conditions (i) and (ii) of the ``Cycle`` definition."""
    counts: dict[Vec, int] = {}
    for s in segs:
        for p in s:
            counts[p] = counts.get(p, 0) + 1
    for p, c in counts.items():
        if c != 2:
            raise InvalidValue(
                f"cycle end point {p} occurs {c} times (must be exactly 2)"
            )
    n = len(segs)
    for i in range(n):
        for j in range(i + 1, n):
            if p_intersect(segs[i], segs[j]):
                raise InvalidValue(
                    f"cycle segments {segs[i]} and {segs[j]} properly intersect"
                )
            if touch(segs[i], segs[j]):
                raise InvalidValue(
                    f"cycle segments {segs[i]} and {segs[j]} touch"
                )


def _trace_single_cycle(segs: Sequence[Seg]) -> list[Vec]:
    """Order the segments into one closed walk; raise if impossible.

    Realizes condition (iii) of the ``Cycle`` definition.
    """
    adjacency: dict[Vec, list[int]] = {}
    for idx, s in enumerate(segs):
        adjacency.setdefault(s[0], []).append(idx)
        adjacency.setdefault(s[1], []).append(idx)
    for p, idxs in adjacency.items():
        if len(idxs) != 2:
            raise InvalidValue(f"cycle vertex {p} has degree {len(idxs)}, not 2")
    start = segs[0][0]
    walk = [start]
    used = [False] * len(segs)
    current = start
    for _ in range(len(segs)):
        next_idx = None
        for idx in adjacency[current]:
            if not used[idx]:
                next_idx = idx
                break
        if next_idx is None:
            raise InvalidValue("cycle segments do not form a single closed walk")
        used[next_idx] = True
        s = segs[next_idx]
        current = s[1] if s[0] == current else s[0]
        walk.append(current)
    if walk[-1] != start:
        raise InvalidValue("cycle segments do not close")
    if not all(used):
        raise InvalidValue("cycle segments form more than one closed walk")
    return walk[:-1]


# ---------------------------------------------------------------------------
# The `close` operation: segment soup -> region structure (Section 4.1)
# ---------------------------------------------------------------------------


def close_region(segments: Iterable[Seg]) -> Region:
    """Determine the face/cycle structure of a boundary segment soup.

    This is the ``close`` operation offered by the ``region`` data type
    (Section 4.1): algorithms produce the list of (half)segments and call
    ``close`` to establish faces and cycles.

    The soup must be the boundary of a valid region: the function traces
    cycles (resolving shared vertices of touching cycles by angular
    grouping with backtracking), nests them by containment depth, and
    assembles faces.
    """
    segs = sorted({make_seg(s[0], s[1]) for s in segments})
    if not segs:
        return Region([])
    cycles = _extract_cycles(segs)
    return _assemble_faces(cycles)


def _extract_cycles(segs: list[Seg]) -> list[Cycle]:
    """Partition a segment soup into simple cycles.

    Vertices of degree two force the continuation; at higher-degree
    vertices (isolated touch points of distinct cycles) the walk tries
    candidates in angular order and backtracks on failure.
    """
    adjacency: dict[Vec, list[int]] = {}
    for idx, s in enumerate(segs):
        adjacency.setdefault(s[0], []).append(idx)
        adjacency.setdefault(s[1], []).append(idx)
    for p, idxs in adjacency.items():
        if len(idxs) % 2 != 0:
            raise InvalidValue(f"boundary vertex {p} has odd degree {len(idxs)}")

    used = [False] * len(segs)
    cycles: list[Cycle] = []

    def other_end(idx: int, v: Vec) -> Vec:
        s = segs[idx]
        return s[1] if s[0] == v else s[0]

    def candidates(v: Vec, came_from: Optional[Vec]) -> list[int]:
        cands = [i for i in adjacency[v] if not used[i]]

        def angle_key(i: int) -> float:
            w = other_end(i, v)
            a = math.atan2(w[1] - v[1], w[0] - v[0])
            if came_from is None:
                return a
            back = math.atan2(came_from[1] - v[1], came_from[0] - v[0])
            rel = (a - back) % (2 * math.pi)
            return rel

        cands.sort(key=angle_key)
        return cands

    def walk_cycle(start_idx: int) -> Optional[list[int]]:
        """Trace one simple cycle starting with ``start_idx``; backtracking DFS."""
        start_v = segs[start_idx][0]
        path = [start_idx]
        used[start_idx] = True

        def dfs(current: Vec, came_from: Vec) -> bool:
            if current == start_v:
                return True
            for idx in candidates(current, came_from):
                w = other_end(idx, current)
                used[idx] = True
                path.append(idx)
                if dfs(w, current):
                    return True
                path.pop()
                used[idx] = False
            return False

        first_other = other_end(start_idx, start_v)
        if dfs(first_other, start_v):
            return path
        used[start_idx] = False
        return None

    for idx in range(len(segs)):
        if used[idx]:
            continue
        path = walk_cycle(idx)
        if path is None:
            raise InvalidValue("boundary segments do not decompose into cycles")
        cycles.append(Cycle([segs[i] for i in path]))
    return cycles


def _assemble_faces(cycles: list[Cycle]) -> Region:
    """Nest cycles by containment depth and build faces."""
    n = len(cycles)
    samples = [c.interior_sample() for c in cycles]
    contains = [[False] * n for _ in range(n)]
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if cycles[i].bbox().contains_rect(cycles[j].bbox()):
                if cycles[i].contains_point(samples[j], boundary_counts=False):
                    contains[i][j] = True
    depth = [sum(1 for i in range(n) if contains[i][j]) for j in range(n)]
    faces: list[Face] = []
    for j in range(n):
        if depth[j] % 2 != 0:
            continue  # hole cycle
        holes = []
        for k in range(n):
            if depth[k] == depth[j] + 1 and contains[j][k]:
                # Direct child check: no intermediate cycle between j and k.
                direct = not any(
                    contains[j][m] and contains[m][k] for m in range(n) if m not in (j, k)
                )
                if direct:
                    holes.append(cycles[k])
        faces.append(Face(cycles[j], holes, validate=False))
    return Region(faces, validate=False)


# ---------------------------------------------------------------------------
# Boolean set operations via arrangement + midpoint classification
# ---------------------------------------------------------------------------


def _inside_for_sample(region: Region, p: Vec) -> bool:
    """Interior test for offset sample points (never on the boundary)."""
    if region._bbox is None or not region._bbox.contains_point(p):
        return False
    for f in region.faces:
        inside_outer = crossings_above(p, f.outer.segments) % 2 == 1
        if not inside_outer:
            continue
        in_hole = any(
            crossings_above(p, h.segments) % 2 == 1 for h in f.holes
        )
        if not in_hole:
            return True
    return False


def _quantize(p: Vec, grid: float = 1e-9) -> Vec:
    return (round(p[0] / grid) * grid, round(p[1] / grid) * grid)


def _boolean_op(a: Region, b: Region, op: str) -> Region:
    """Compute a regularized boolean operation on two regions.

    All boundary segments are split at mutual intersections; every
    resulting piece is kept iff the result membership differs between
    its two sides (sampled just off the midpoint along the normal).
    The surviving pieces are assembled by ``close_region``.
    """
    asegs = a.segments()
    bsegs = b.segments()
    if not asegs:
        return Region([]) if op != "union" else b
    if not bsegs:
        return Region([]) if op == "intersection" else a
    ra, rb = split_at_intersections(asegs, bsegs)
    # Deduplicate identical pieces arising from shared boundaries.
    seen: set[Seg] = set()
    pieces: list[Seg] = []
    for s in ra + rb:
        key = make_seg(_quantize(s[0]), _quantize(s[1]))
        if key in seen:
            continue
        seen.add(key)
        pieces.append(s)

    diag = 1.0
    boxes = [r.bbox() for r in (a, b) if r._bbox is not None]
    if boxes:
        bb = boxes[0]
        for other in boxes[1:]:
            bb = bb.union(other)
        diag = max(bb.width, bb.height, 1.0)
    offset = 1e-7 * diag

    def in_result(p: Vec) -> bool:
        ia = _inside_for_sample(a, p)
        ib = _inside_for_sample(b, p)
        if op == "union":
            return ia or ib
        if op == "intersection":
            return ia and ib
        return ia and not ib  # difference

    kept: list[Seg] = []
    for s in pieces:
        mid = segment_midpoint(s)
        n = unit_normal(s[0], s[1])
        left = (mid[0] + offset * n[0], mid[1] + offset * n[1])
        right = (mid[0] - offset * n[0], mid[1] - offset * n[1])
        if in_result(left) != in_result(right):
            kept.append(s)
    if not kept:
        return Region([])
    kept = _snap_and_trim(kept, snap_grid=1e-9 * diag)
    if not kept:
        return Region([])
    try:
        return close_region(kept)
    except InvalidValue:
        # Sliver fragments can survive the snap (collinear micro-overlaps
        # straddling a grid boundary): merge collinear runs and retry.
        from repro.geometry.mergesegs import merge_segs

        repaired = _snap_and_trim(merge_segs(kept), snap_grid=1e-9 * diag)
        if not repaired:
            return Region([])
        return close_region(repaired)


def union_all(regions: "list[Region]") -> Region:
    """Point-set union of many regions in a single overlay.

    Far more robust (and faster) than folding binary unions: all
    boundary segments are split against each other once, every piece is
    classified once against all operands, and the structure is built
    once at the end — floating point drift cannot accumulate across
    intermediate results.
    """
    regions = [r for r in regions if r]
    if not regions:
        return Region([])
    if len(regions) == 1:
        return regions[0]

    all_segs: list[Seg] = []
    owners: list[list[Seg]] = []
    for r in regions:
        segs = r.segments()
        owners.append(segs)
        all_segs.extend(segs)

    # Split every segment at its intersections with all others.
    pieces_raw, _ = split_at_intersections(all_segs, [])
    seen: set[Seg] = set()
    pieces: list[Seg] = []
    for s in pieces_raw:
        key = make_seg(_quantize(s[0]), _quantize(s[1]))
        if key not in seen:
            seen.add(key)
            pieces.append(s)

    bb = regions[0].bbox()
    for r in regions[1:]:
        bb = bb.union(r.bbox())
    diag = max(bb.width, bb.height, 1.0)
    offset = 1e-7 * diag

    def in_union(p: Vec) -> bool:
        return any(_inside_for_sample(r, p) for r in regions)

    kept: list[Seg] = []
    for s in pieces:
        mid = segment_midpoint(s)
        n = unit_normal(s[0], s[1])
        left = (mid[0] + offset * n[0], mid[1] + offset * n[1])
        right = (mid[0] - offset * n[0], mid[1] - offset * n[1])
        if in_union(left) != in_union(right):
            kept.append(s)
    kept = _snap_and_trim(kept, snap_grid=1e-9 * diag)
    if not kept:
        return Region([])
    try:
        return close_region(kept)
    except InvalidValue:
        from repro.geometry.mergesegs import merge_segs

        repaired = _snap_and_trim(merge_segs(kept), snap_grid=1e-9 * diag)
        if not repaired:
            return Region([])
        return close_region(repaired)


def _snap_and_trim(segs: list[Seg], snap_grid: float) -> list[Seg]:
    """Repair a near-boundary segment soup before structure building.

    Floating point drift in the arrangement step can leave endpoints of
    adjacent pieces microscopically apart, or strand the odd sliver
    segment whose sides classified inconsistently.  Snapping endpoints
    to a fine grid re-welds coincident vertices; iteratively trimming
    odd-degree (dangling) edges removes slivers.  Both operations move
    the boundary by at most a few grid cells, far below the model's
    tolerance.
    """
    snapped: list[Seg] = []
    seen: set[Seg] = set()
    for s in segs:
        p = _quantize(s[0], snap_grid)
        q = _quantize(s[1], snap_grid)
        if point_cmp(p, q) == 0:
            continue
        canon = make_seg(p, q)
        if canon not in seen:
            seen.add(canon)
            snapped.append(canon)
    while True:
        degree: dict[Vec, int] = {}
        for s in snapped:
            for p in s:
                degree[p] = degree.get(p, 0) + 1
        dangling = {p for p, d in degree.items() if d % 2 != 0}
        if not dangling:
            return snapped
        trimmed = [
            s for s in snapped if s[0] not in dangling and s[1] not in dangling
        ]
        if len(trimmed) == len(snapped):  # pragma: no cover - defensive
            return snapped
        snapped = trimmed
        if not snapped:
            return snapped
